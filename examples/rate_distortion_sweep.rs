//! Rate-distortion sweep: reproduce one panel of Fig. 8 end to end — train
//! AE-SZ, sweep error bounds across AE-SZ / SZ2.1 / ZFP / SZauto / SZinterp on
//! a Hurricane-like field, and print the PSNR-vs-bit-rate series.
//!
//! Run with `cargo run --release --example rate_distortion_sweep`.

use aesz_repro::baselines::{Sz2, SzAuto, SzInterp, Zfp};
use aesz_repro::core::training::TrainingOptions;
use aesz_repro::core::{train_swae_for_field, AeSz, AeSzConfig};
use aesz_repro::datagen::Application;
use aesz_repro::metrics::{measure, Compressor, ErrorBound, RdCurve, RdPoint};
use aesz_repro::tensor::Dims;

fn main() {
    let app = Application::HurricaneQvapor;
    let train_field = app.generate(Dims::d3(48, 48, 48), 1);
    let test_field = app.generate(Dims::d3(48, 48, 48), 45);
    println!("training AE-SZ for {} ...", app.name());
    let opts = TrainingOptions {
        epochs: 4,
        max_blocks: 192,
        ..TrainingOptions::default_for_rank(3)
    };
    let model = train_swae_for_field(std::slice::from_ref(&train_field), &opts);
    let mut aesz = AeSz::new(model, AeSzConfig::default_3d());

    let bounds = [1e-1, 2e-2, 1e-2, 5e-3, 1e-3, 5e-4, 1e-4];
    let mut sz2 = Sz2::new();
    let mut zfp = Zfp::new();
    let mut szauto = SzAuto::new();
    let mut szinterp = SzInterp::new();
    let compressors: Vec<(&str, &mut dyn Compressor)> = vec![
        ("AE-SZ", &mut aesz),
        ("SZ2.1", &mut sz2),
        ("ZFP", &mut zfp),
        ("SZauto", &mut szauto),
        ("SZinterp", &mut szinterp),
    ];
    for (name, comp) in compressors {
        let mut curve = RdCurve::new(name);
        for &eb in &bounds {
            let p = measure(comp, &test_field, ErrorBound::rel(eb)).expect("valid roundtrip");
            curve.push(RdPoint {
                error_bound: eb,
                bit_rate: p.bit_rate,
                psnr: p.psnr,
                compression_ratio: p.compression_ratio,
            });
        }
        print!("{}", curve.to_table());
    }
    println!("\nExpected shape (paper, Fig. 8f): AE-SZ and SZinterp lead at low bit rates;");
    println!("SZ2.1 catches up at high bit rates; ZFP trails in this regime.");
}
