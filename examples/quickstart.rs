//! Quickstart: train an AE-SZ compressor on one climate snapshot, compress a
//! later snapshot under a 1e-3 value-range-relative error bound, verify the
//! bound, and print the compression ratio.
//!
//! Run with `cargo run --release --example quickstart`.

use aesz_repro::core::training::TrainingOptions;
use aesz_repro::core::{train_swae_for_field, AeSz, AeSzConfig};
use aesz_repro::datagen::Application;
use aesz_repro::metrics::{verify_error_bound, ErrorBound, ErrorStats};
use aesz_repro::tensor::Dims;

fn main() {
    // 1. Get data: an early snapshot for training, a later one to compress.
    let app = Application::CesmCldhgh;
    let train_field = app.generate(Dims::d2(128, 128), 0);
    let test_field = app.generate(Dims::d2(128, 128), 50);

    // 2. Offline training (Fig. 2, left): a small SWAE on 16x16 blocks.
    println!("training the SWAE predictor ...");
    let opts = TrainingOptions {
        block_size: 16,
        latent_dim: 8,
        epochs: 5,
        max_blocks: 192,
        ..TrainingOptions::default_for_rank(2)
    };
    let model = train_swae_for_field(std::slice::from_ref(&train_field), &opts);

    // 3. Online compression (Fig. 2, right).
    let mut aesz = AeSz::new(
        model,
        AeSzConfig {
            block_size: 16,
            ..AeSzConfig::default_2d()
        },
    );
    let rel_eb = 1e-3;
    let (bytes, report) = aesz
        .compress_with_report(&test_field, ErrorBound::rel(rel_eb))
        .expect("valid input");
    let recon = aesz.try_decompress(&bytes).expect("own stream decodes");

    // 4. Verify the error bound and report quality.
    let abs = rel_eb * test_field.value_range() as f64;
    verify_error_bound(test_field.as_slice(), recon.as_slice(), abs, abs * 1e-3)
        .expect("AE-SZ must respect the requested error bound");
    let stats = ErrorStats::compute(test_field.as_slice(), recon.as_slice());
    println!("error bound            : {rel_eb:.0e} (abs {abs:.3e}) — verified");
    println!(
        "compression ratio      : {:.1}x",
        (test_field.len() * 4) as f64 / bytes.len() as f64
    );
    println!("PSNR                   : {:.2} dB", stats.psnr);
    println!(
        "blocks by predictor    : {} AE / {} Lorenzo / {} mean",
        report.ae_blocks, report.lorenzo_blocks, report.mean_blocks
    );
}
