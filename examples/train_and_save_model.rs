//! Model lifecycle: train a SWAE predictor, serialize it to disk, reload it,
//! and verify the reloaded model compresses identically — the paper's
//! "network stored separately from the compressed data, reused across
//! snapshots" workflow.
//!
//! Run with `cargo run --release --example train_and_save_model`.

use aesz_repro::core::training::TrainingOptions;
use aesz_repro::core::{train_swae_for_field, AeSz, AeSzConfig};
use aesz_repro::datagen::Application;
use aesz_repro::metrics::ErrorBound;
use aesz_repro::nn::serialize::{load_model, save_model};
use aesz_repro::tensor::Dims;

fn main() {
    let app = Application::HurricaneU;
    let train_field = app.generate(Dims::d3(32, 48, 48), 1);
    let opts = TrainingOptions {
        epochs: 3,
        max_blocks: 128,
        ..TrainingOptions::default_for_rank(3)
    };
    println!("training the Hurricane-U model ...");
    let model = train_swae_for_field(std::slice::from_ref(&train_field), &opts);

    let path = std::env::temp_dir().join("aesz_hurricane_u.model");
    std::fs::write(&path, save_model(&model)).expect("write model file");
    println!(
        "model saved to {path:?} ({} bytes, {} parameters)",
        std::fs::metadata(&path).unwrap().len(),
        model.num_params()
    );

    let reloaded = load_model(&std::fs::read(&path).unwrap()).expect("reload model");
    let mut a = AeSz::new(model, AeSzConfig::default_3d());
    let mut b = AeSz::new(reloaded, AeSzConfig::default_3d());

    // Compress three later snapshots with both instances; streams must match.
    for snapshot in [40u64, 44, 48] {
        let field = app.generate(Dims::d3(32, 48, 48), snapshot);
        let eb = ErrorBound::rel(1e-3);
        let bytes_a = a.compress_with_report(&field, eb).expect("valid input").0;
        let bytes_b = b.compress_with_report(&field, eb).expect("valid input").0;
        assert_eq!(bytes_a, bytes_b, "reloaded model must behave identically");
        println!(
            "snapshot {snapshot}: {} bytes (identical from saved and reloaded model)",
            bytes_a.len()
        );
    }
    std::fs::remove_file(&path).ok();
}
