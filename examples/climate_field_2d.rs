//! Climate workflow: compress a 2D CESM-like cloud-fraction field at several
//! error bounds and compare AE-SZ with the SZ2.1-like and ZFP-like baselines —
//! the 2D panels of Fig. 8 in miniature.
//!
//! Run with `cargo run --release --example climate_field_2d`.

use aesz_repro::baselines::{Sz2, Zfp};
use aesz_repro::core::training::TrainingOptions;
use aesz_repro::core::{train_swae_for_field, AeSz, AeSzConfig};
use aesz_repro::datagen::Application;
use aesz_repro::metrics::{measure, Compressor, ErrorBound};
use aesz_repro::tensor::Dims;

fn main() {
    let app = Application::CesmCldhgh;
    let train_field = app.generate(Dims::d2(128, 128), 0);
    let test_field = app.generate(Dims::d2(128, 128), 55);

    println!("training AE-SZ for {} ...", app.name());
    let opts = TrainingOptions {
        block_size: 16,
        latent_dim: 8,
        epochs: 5,
        max_blocks: 192,
        ..TrainingOptions::default_for_rank(2)
    };
    let model = train_swae_for_field(std::slice::from_ref(&train_field), &opts);
    let mut aesz = AeSz::new(
        model,
        AeSzConfig {
            block_size: 16,
            ..AeSzConfig::default_2d()
        },
    );
    let mut sz2 = Sz2::new();
    let mut zfp = Zfp::new();

    println!(
        "\n{:<10} {:<10} {:>10} {:>10} {:>10}",
        "compressor", "eb", "CR", "bit rate", "PSNR"
    );
    for eb in [1e-2, 5e-3, 1e-3, 1e-4] {
        for (name, comp) in [
            ("AE-SZ", &mut aesz as &mut dyn Compressor),
            ("SZ2.1", &mut sz2),
            ("ZFP", &mut zfp),
        ] {
            let p = measure(comp, &test_field, ErrorBound::rel(eb)).expect("valid roundtrip");
            println!(
                "{name:<10} {eb:<10.0e} {:>10.1} {:>10.3} {:>10.2}",
                p.compression_ratio, p.bit_rate, p.psnr
            );
        }
    }
    println!("\nExpected shape (paper, Fig. 8a/b): AE-SZ wins at coarse bounds (low bit rate),");
    println!("and converges towards SZ2.1 as the bound tightens.");
}
