//! Streaming archive walkthrough: compress a 3D field into the chunked
//! `AESA` format with a different codec per region, inspect the chunk index,
//! decode one chunk by random access, then decode the whole archive — all
//! through the codec registry.
//!
//! Run with `cargo run --release --example archive_stream`.

use aesz_repro::archive::{
    compress_field_with, decompress, decompress_chunk, ArchiveOptions, ArchiveReader,
};
use aesz_repro::datagen::Application;
use aesz_repro::metrics::{CodecId, ErrorBound};
use aesz_repro::tensor::BlockSpec;
use aesz_repro::{Dims, Registry};

fn main() {
    let registry = Registry::with_defaults();
    let dims = Dims::d3(48, 48, 48);
    let field = Application::HurricaneQvapor.generate(dims, 12);
    let bound = ErrorBound::rel(1e-3);

    // Chunks of 16³, at most 4 in flight: the writer's resident raw payload
    // is 4 × 16³ × 4 B = 64 KiB, independent of the field size.
    let opts = ArchiveOptions::new().chunk(16).window(4);

    // Per-chunk codec choice: SZ2.1 for boundary chunks (they are cheap to
    // predict), the ZFP-like transform codec for the interior.
    let pick = |spec: &BlockSpec| {
        let interior = spec
            .origin
            .iter()
            .zip(spec.size.iter())
            .zip(dims.extents())
            .all(|((&o, &s), e)| o > 0 && o + s < e);
        if interior {
            CodecId::Zfp
        } else {
            CodecId::Sz2
        }
    };
    let (bytes, stats) =
        compress_field_with(&registry, &field, bound, &opts, pick).expect("archive");
    println!(
        "archived {} ({} chunks): {} -> {} bytes (ratio {:.2}:1), peak window {} KiB",
        dims,
        stats.chunks,
        stats.raw_bytes,
        stats.archive_bytes,
        stats.raw_bytes as f64 / stats.archive_bytes as f64,
        stats.peak_window_raw_bytes / 1024,
    );

    // The chunk index is validated up front and tells us who wrote what.
    let reader = ArchiveReader::open(&bytes).expect("valid archive");
    for id in [CodecId::Sz2, CodecId::Zfp] {
        let n = reader.entries().iter().filter(|e| e.codec == id).count();
        println!("  {:<6} {n:>3} chunks", id.name());
    }

    // Random access: decode a single interior chunk without touching the
    // other frames.
    let middle = stats.chunks / 2;
    let (spec, chunk) = decompress_chunk(&registry, &bytes, middle).expect("chunk");
    println!(
        "chunk {middle} at origin {:?} decoded alone: {} values, first = {:.5}",
        spec.origin,
        chunk.len(),
        chunk[0]
    );

    // Full decode (windowed + parallel) honours the field-level bound.
    let (recon, _) = decompress(&registry, &bytes, opts.window_chunks()).expect("decode");
    let abs = bound.resolve(&field);
    let worst = field
        .as_slice()
        .iter()
        .zip(recon.as_slice())
        .map(|(a, b)| ((a - b) as f64).abs())
        .fold(0.0f64, f64::max);
    println!("full decode: max abs err {worst:.3e} <= bound {abs:.3e}");
    assert!(worst <= abs * 1.0001);
    assert_eq!(
        chunk.as_slice(),
        recon.read_block_valid(&spec).as_slice(),
        "random access must match the full decode"
    );
    println!("random-access chunk matches the full decode bit-for-bit");
}
