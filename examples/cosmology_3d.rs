//! Cosmology workflow: compress a 3D NYX-like log baryon-density field,
//! including the train/test split across different simulations that the paper
//! uses, and inspect which predictor each error bound favours (Fig. 10).
//!
//! Run with `cargo run --release --example cosmology_3d`.

use aesz_repro::core::training::TrainingOptions;
use aesz_repro::core::{train_swae_for_field, AeSz, AeSzConfig};
use aesz_repro::datagen::Application;
use aesz_repro::metrics::{verify_error_bound, ErrorBound};
use aesz_repro::tensor::Dims;

fn main() {
    let app = Application::NyxBaryonDensity;
    // Snapshots 0..7 share a halo catalogue ("one simulation"); snapshot 8+
    // starts another, which is what we compress (the paper's test split).
    let train_fields: Vec<_> = (0..3)
        .map(|s| app.generate(Dims::d3(48, 48, 48), s))
        .collect();
    let test_field = app.generate(Dims::d3(48, 48, 48), 9);

    println!(
        "training AE-SZ on {} (3 snapshots of simulation A) ...",
        app.name()
    );
    let opts = TrainingOptions {
        epochs: 4,
        max_blocks: 192,
        ..TrainingOptions::default_for_rank(3)
    };
    let model = train_swae_for_field(&train_fields, &opts);
    let mut aesz = AeSz::new(model, AeSzConfig::default_3d());

    println!("\ncompressing an unseen snapshot of simulation B:");
    println!(
        "{:>10} {:>10} {:>10} {:>14}",
        "eb", "CR", "max err", "AE blocks (%)"
    );
    for eb in [2e-2, 1e-2, 5e-3, 1e-3, 1e-4] {
        let (bytes, report) = aesz
            .compress_with_report(&test_field, ErrorBound::rel(eb))
            .expect("valid input");
        let recon = aesz.try_decompress(&bytes).expect("own stream decodes");
        let abs = eb * test_field.value_range() as f64;
        verify_error_bound(test_field.as_slice(), recon.as_slice(), abs, abs * 1e-3).unwrap();
        let max_err = aesz_repro::metrics::max_abs_error(test_field.as_slice(), recon.as_slice());
        println!(
            "{eb:>10.0e} {:>10.1} {max_err:>10.3e} {:>14.1}",
            (test_field.len() * 4) as f64 / bytes.len() as f64,
            100.0 * report.ae_fraction()
        );
    }
    println!("\nExpected shape (paper, Fig. 10): the AE handles most blocks at medium bounds");
    println!("and hands over to Lorenzo as the bound tightens.");
}
