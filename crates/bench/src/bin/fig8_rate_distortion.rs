//! Fig. 8 — rate-distortion (PSNR vs bit rate) of AE-SZ against SZ2.1, ZFP,
//! SZauto, SZinterp, AE-A and AE-B on every evaluated field. 2D fields only
//! get the compressors that support 2D data, exactly as in the paper.

use aesz_baselines::{AeA, AeB, Sz2, SzAuto, SzInterp, Zfp};
use aesz_bench::{print_curves, standard_bounds, sweep, test_field, trained_aesz, training_fields};
use aesz_datagen::Application;
use aesz_metrics::{measure, ErrorBound, RdCurve, RdPoint};

fn main() {
    let apps = [
        Application::CesmCldhgh,
        Application::CesmFreqsh,
        Application::Exafel,
        Application::NyxBaryonDensity,
        Application::NyxTemperature,
        Application::HurricaneQvapor,
        Application::HurricaneU,
        Application::Rtm,
    ];
    println!("Fig. 8 counterpart — rate distortion per field (PSNR dB vs bits/value)");
    println!("paper reference: AE-SZ best at low bit rates (100%-800% higher CR than SZ2.1/ZFP), close to SZinterp.");
    let bounds = standard_bounds();
    for app in apps {
        let field = test_field(app);
        let train = training_fields(app);
        let mut curves: Vec<RdCurve> = Vec::new();

        let mut aesz = trained_aesz(app);
        curves.push(sweep(&mut aesz, &field, &bounds));
        curves.push(sweep(&mut Sz2::new(), &field, &bounds));
        curves.push(sweep(&mut Zfp::new(), &field, &bounds));
        let mut ae_a = AeA::new(3);
        ae_a.train(&train, 2, 4);
        curves.push(sweep(&mut ae_a, &field, &bounds));
        if app.rank() == 3 {
            curves.push(sweep(&mut SzAuto::new(), &field, &bounds));
            curves.push(sweep(&mut SzInterp::new(), &field, &bounds));
            let mut ae_b = AeB::new(5);
            ae_b.train(&train, 2, 6);
            // AE-B has a single fixed-rate operating point.
            let p = measure(&mut ae_b, &field, ErrorBound::rel(1e-3)).expect("valid roundtrip");
            let mut c = RdCurve::new("AE-B");
            c.push(RdPoint {
                error_bound: f64::NAN,
                bit_rate: p.bit_rate,
                psnr: p.psnr,
                compression_ratio: p.compression_ratio,
            });
            curves.push(c);
        }
        print_curves(app.name(), &curves);
    }
}
