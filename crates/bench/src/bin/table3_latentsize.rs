//! Table III — AE-SZ compression ratio (error bound 1e-2) on Hurricane-U for
//! different latent vector sizes at a fixed 8×8×8 block.

use aesz_core::training::{train_swae_for_field, TrainingOptions};
use aesz_core::{AeSz, AeSzConfig};
use aesz_datagen::Application;
use aesz_metrics::{measure, ErrorBound};
use aesz_tensor::Dims;

fn main() {
    let app = Application::HurricaneU;
    let dims = Dims::d3(48, 48, 48);
    let train_field = app.generate(dims, 1);
    let test_field = app.generate(dims, 45);
    println!("Table III counterpart — latent size vs CR at eb=1e-2 on Hurricane-U (8x8x8 blocks)");
    println!(
        "paper reference: latent 4 -> 123.4, 6 -> 137.4, 8 -> 149.1 (best), 12 -> 127.7, 16 -> 106"
    );
    println!(
        "{:<12} {:>12} {:>10}",
        "latent size", "latent ratio", "CR(1e-2)"
    );
    for latent in [4usize, 8, 16] {
        let opts = TrainingOptions {
            block_size: 8,
            latent_dim: latent,
            channels: vec![8, 16],
            epochs: 4,
            max_blocks: 192,
            ..TrainingOptions::default_for_rank(3)
        };
        let model = train_swae_for_field(std::slice::from_ref(&train_field), &opts);
        let ratio = model.config().latent_ratio();
        let mut aesz = AeSz::new(model, AeSzConfig::default_3d());
        let point =
            measure(&mut aesz, &test_field, ErrorBound::rel(1e-2)).expect("valid roundtrip");
        println!(
            "{latent:<12} {ratio:>12.1} {:>10.1}",
            point.compression_ratio
        );
    }
}
