//! Table I — average prediction PSNR of eight autoencoder variants on
//! CESM-CLDHGH blocks. All variants share the same convolutional trunk and
//! differ only in the training objective; the paper reports SWAE winning.

use aesz_core::training::training_blocks_from_field;
use aesz_datagen::Application;
use aesz_nn::models::conv_ae::AeConfig;
use aesz_nn::models::zoo::AeVariant;
use aesz_nn::train::{TrainConfig, Trainer};
use aesz_tensor::Dims;

fn main() {
    let app = Application::CesmCldhgh;
    let train_field = app.generate(Dims::d2(128, 128), 0);
    let test_field = app.generate(Dims::d2(128, 128), 55);
    let block = 16usize;
    let train_blocks = training_blocks_from_field(&train_field, block, 128, 1);
    let test_blocks = training_blocks_from_field(&test_field, block, 64, 2);

    println!("Table I counterpart — prediction PSNR (dB) per AE variant on CESM-CLDHGH");
    println!("paper reference: AE 42.2, VAE 36.2, beta-VAE 40.1, DIP-VAE 32.2, Info-VAE 26.5, LogCosh-VAE 39.0, WAE 42.4, SWAE 43.9");
    println!("{:<14} {:>10}", "variant", "PSNR (dB)");
    for variant in AeVariant::table1() {
        let config = AeConfig {
            spatial_rank: 2,
            block_size: block,
            latent_dim: 8,
            channels: vec![8, 16],
            variational: variant.is_variational(),
            seed: 7,
        };
        let mut trainer = Trainer::new(
            config,
            TrainConfig {
                epochs: 5,
                batch_size: 16,
                learning_rate: 2e-3,
                variant,
                seed: 11,
            },
        );
        trainer.train(&train_blocks);
        let psnr = trainer.prediction_psnr(&test_blocks);
        println!("{:<14} {:>10.2}", variant.name(), psnr);
    }
}
