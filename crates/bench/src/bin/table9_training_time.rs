//! Table IX — wall-clock training time of the AE-SZ autoencoder (SWAE) versus
//! AE-A on the same training data and epoch budget.

use aesz_baselines::AeA;
use aesz_bench::{harness_training_options, training_fields};
use aesz_core::train_swae_for_field;
use aesz_datagen::Application;
use std::time::Instant;

fn main() {
    println!("Table IX counterpart — autoencoder training time (seconds, same data & epochs)");
    println!("paper reference (hours, V100): AE-SZ 1.0-5.5 vs AE-A 1.5-21.4 (AE-SZ never slower).");
    println!("{:<22} {:>12} {:>12}", "dataset", "AE-SZ (s)", "AE-A (s)");
    for app in [
        Application::CesmCldhgh,
        Application::NyxBaryonDensity,
        Application::HurricaneU,
    ] {
        let fields = training_fields(app);
        let opts = harness_training_options(app);
        let t0 = Instant::now();
        let _ = train_swae_for_field(&fields, &opts);
        let t_aesz = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let mut ae_a = AeA::new(1);
        ae_a.train(&fields, opts.epochs, 2);
        let t_aea = t1.elapsed().as_secs_f64();
        println!("{:<22} {:>12.1} {:>12.1}", app.name(), t_aesz, t_aea);
    }
}
