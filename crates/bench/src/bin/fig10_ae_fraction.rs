//! Fig. 10 — fraction of blocks predicted by the autoencoder (vs Lorenzo/mean)
//! as a function of the error bound, on CESM-CLDHGH, Hurricane-U and
//! NYX-temperature.

use aesz_bench::{test_field, trained_aesz};
use aesz_datagen::Application;
use aesz_metrics::ErrorBound;

fn main() {
    println!("Fig. 10 counterpart — fraction of AE-predicted blocks vs error bound");
    println!("paper reference: AE dominates for medium bounds (~5e-3..2e-2) and loses to Lorenzo at small bounds.");
    let bounds = [1e-1f64, 5e-2, 2e-2, 1e-2, 5e-3, 2e-3, 1e-3, 3e-4];
    for app in [
        Application::CesmCldhgh,
        Application::HurricaneU,
        Application::NyxTemperature,
    ] {
        let field = test_field(app);
        let mut aesz = trained_aesz(app);
        println!("-- {} --", app.name());
        println!(
            "{:>10} {:>16} {:>10} {:>10} {:>10}",
            "eb", "AE fraction", "AE", "Lorenzo", "mean"
        );
        for &eb in &bounds {
            let (_, report) = aesz
                .compress_with_report(&field, ErrorBound::rel(eb))
                .expect("valid input");
            println!(
                "{eb:>10.0e} {:>16.3} {:>10} {:>10} {:>10}",
                report.ae_fraction(),
                report.ae_blocks,
                report.lorenzo_blocks,
                report.mean_blocks
            );
        }
    }
}
