//! Table II — prediction PSNR and AE-SZ compression ratio (error bound 1e-2)
//! for different input block sizes at a fixed latent ratio.

use aesz_core::training::{train_swae_for_field, training_blocks_from_field, TrainingOptions};
use aesz_core::{AeSz, AeSzConfig};
use aesz_datagen::Application;
use aesz_metrics::{measure, ErrorBound};
use aesz_nn::train::{TrainConfig, Trainer};
use aesz_tensor::Dims;

fn run(app: Application, block_sizes: &[usize], latent_ratio: usize) {
    println!("-- {} (latent ratio {latent_ratio}) --", app.name());
    println!(
        "{:<12} {:>12} {:>10}",
        "block size", "PSNR (dB)", "CR(1e-2)"
    );
    let dims = if app.rank() == 2 {
        Dims::d2(128, 128)
    } else {
        Dims::d3(48, 48, 48)
    };
    let train_field = app.generate(dims, 0);
    let test_field = app.generate(dims, 50);
    for &bs in block_sizes {
        let rank = app.rank();
        let block_len = bs.pow(rank as u32);
        let latent = (block_len / latent_ratio).max(1);
        let opts = TrainingOptions {
            block_size: bs,
            latent_dim: latent,
            channels: vec![8, 16],
            epochs: 4,
            max_blocks: 192,
            ..TrainingOptions::default_for_rank(rank)
        };
        let model = train_swae_for_field(std::slice::from_ref(&train_field), &opts);
        // Prediction PSNR on held-out blocks (normalised domain, as in Table I).
        let test_blocks = training_blocks_from_field(&test_field, bs, 64, 3);
        let mut probe = Trainer::with_model(model, TrainConfig::default());
        let psnr = probe.prediction_psnr(&test_blocks);
        let model = probe.into_model();
        let mut aesz = AeSz::new(
            model,
            AeSzConfig {
                block_size: bs,
                ..AeSzConfig::default_2d()
            },
        );
        let point =
            measure(&mut aesz, &test_field, ErrorBound::rel(1e-2)).expect("valid roundtrip");
        let label = match rank {
            2 => format!("{bs}x{bs}"),
            _ => format!("{bs}x{bs}x{bs}"),
        };
        println!("{label:<12} {psnr:>12.2} {:>10.1}", point.compression_ratio);
    }
}

fn main() {
    println!("Table II counterpart — block size vs prediction PSNR and CR at eb=1e-2");
    println!(
        "paper reference: CESM 32x32 best (43.9 dB / CR 60.9); NYX 8x8x8 best (46.6 dB / CR 71.1)"
    );
    run(Application::CesmCldhgh, &[16, 32, 64], 64);
    run(Application::NyxBaryonDensity, &[8, 16], 32);
}
