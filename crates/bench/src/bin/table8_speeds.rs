//! Table VIII — compression and decompression throughput (MB/s) of every
//! compressor at error bound 1e-3. Criterion benches in `benches/` back these
//! numbers with statistically sound measurements; this binary prints the
//! single-shot table.

use aesz_baselines::{AeA, AeB, Sz2, SzAuto, SzInterp, Zfp};
use aesz_bench::{test_field, trained_aesz, training_fields};
use aesz_datagen::Application;
use aesz_metrics::{Compressor, ErrorBound};
use std::time::Instant;

fn throughput(mb: f64, seconds: f64) -> f64 {
    mb / seconds.max(1e-9)
}

fn main() {
    println!("Table VIII counterpart — compression / decompression speed (MB/s), eb = 1e-3");
    println!("paper reference ordering: SZ2.1/ZFP/SZauto/SZinterp >> AE-SZ >> AE-A; AE-B similar to AE-SZ.");
    println!(
        "AE-SZ rows use the rayon-parallel block pipeline; AE-SZ(ser) is the serial reference."
    );
    println!(
        "{:<22} {:<10} {:>12} {:>12}",
        "dataset", "compressor", "comp MB/s", "decomp MB/s"
    );
    for app in [
        Application::CesmCldhgh,
        Application::NyxBaryonDensity,
        Application::HurricaneU,
        Application::Rtm,
    ] {
        let field = test_field(app);
        let train = training_fields(app);
        let mb = (field.len() * 4) as f64 / (1024.0 * 1024.0);
        let mut aesz = trained_aesz(app);
        let mut ae_a = AeA::new(1);
        ae_a.train(&train, 1, 2);
        let mut sz2 = Sz2::new();
        let mut zfp = Zfp::new();
        let mut szauto = SzAuto::new();
        let mut szinterp = SzInterp::new();
        let mut entries: Vec<(&str, &mut dyn Compressor)> = vec![("SZ2.1", &mut sz2)];
        entries.push(("ZFP", &mut zfp));
        if app.rank() == 3 {
            entries.push(("SZauto", &mut szauto));
            entries.push(("SZinterp", &mut szinterp));
        }
        entries.push(("AE-SZ", &mut aesz));
        entries.push(("AE-A", &mut ae_a));
        let mut ae_b = AeB::new(2);
        if app.rank() == 3 {
            ae_b.train(&train, 1, 3);
            entries.push(("AE-B", &mut ae_b));
        }
        for (name, comp) in entries {
            let t0 = Instant::now();
            let bytes = comp
                .compress(&field, ErrorBound::rel(1e-3))
                .expect("valid input");
            let t_comp = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let _ = comp.decompress(&bytes).expect("own stream decodes");
            let t_dec = t1.elapsed().as_secs_f64();
            println!(
                "{:<22} {:<10} {:>12.2} {:>12.2}",
                app.name(),
                name,
                throughput(mb, t_comp),
                throughput(mb, t_dec)
            );
        }
        // Serial reference path of AE-SZ (the entries borrow has ended).
        let t0 = Instant::now();
        let bytes = aesz
            .compress_with_report_serial(&field, ErrorBound::rel(1e-3))
            .expect("valid input")
            .0;
        let t_comp = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let _ = aesz
            .try_decompress_serial(&bytes)
            .expect("own stream decodes");
        let t_dec = t1.elapsed().as_secs_f64();
        println!(
            "{:<22} {:<10} {:>12.2} {:>12.2}",
            app.name(),
            "AE-SZ(ser)",
            throughput(mb, t_comp),
            throughput(mb, t_dec)
        );
    }
}
