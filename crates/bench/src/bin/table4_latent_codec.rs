//! Table IV — compression ratios of the customized ("custo.") latent codec vs
//! an SZ2.1-style compressor applied to the same latent vectors, at error
//! bounds 1e-2 / 1e-3 / 1e-4.

use aesz_baselines::Sz2;
use aesz_core::training::{train_swae_for_field, training_blocks_from_field, TrainingOptions};
use aesz_core::LatentCodec;
use aesz_datagen::Application;
use aesz_metrics::{Compressor, ErrorBound};
use aesz_tensor::{Dims, Field};

fn latents_for(app: Application) -> (Vec<f32>, usize) {
    let dims = if app.rank() == 2 {
        Dims::d2(128, 128)
    } else {
        Dims::d3(48, 48, 48)
    };
    let field = app.generate(dims, 0);
    let rank = app.rank();
    let opts = TrainingOptions {
        epochs: 3,
        max_blocks: 128,
        ..TrainingOptions::default_for_rank(rank)
    };
    let mut model = train_swae_for_field(std::slice::from_ref(&field), &opts);
    let blocks = training_blocks_from_field(&field, opts.block_size, 256, 9);
    let flat: Vec<f32> = blocks.iter().flatten().copied().collect();
    let latents = model.encode_blocks(&flat, blocks.len());
    (latents, opts.latent_dim)
}

fn main() {
    println!("Table IV counterpart — latent-vector compression ratio: custo. vs SZ2.1-style");
    println!("paper reference (custo./SZ2.1): eb 1e-2: 6.9/5.9 (RTM), 7.1/6.2 (NYX-dmd), 6.6/5.7 (EXAFEL)");
    println!(
        "{:<26} {:>8} {:>10} {:>10}",
        "field", "eb", "custo.", "SZ2.1"
    );
    for app in [
        Application::Rtm,
        Application::NyxDarkMatterDensity,
        Application::Exafel,
    ] {
        let (latents, latent_dim) = latents_for(app);
        let n_vectors = latents.len() / latent_dim;
        let raw_bytes = latents.len() * 4;
        for eb in [1e-2f64, 1e-3, 1e-4] {
            // custo.: quantize with 0.1*e (normalised-domain bound = 2*eb) + Huffman/zlite.
            let codec = LatentCodec::new(0.1 * 2.0 * eb);
            let indices = codec.quantize(&latents);
            let custo_bytes = codec.encode(&indices, latent_dim).len();
            // SZ2.1-style: treat the latent matrix as a 2D field.
            let latent_field =
                Field::from_vec(Dims::d2(n_vectors, latent_dim), latents.clone()).unwrap();
            let mut sz2 = Sz2::new();
            let sz2_bytes = sz2
                .compress(&latent_field, ErrorBound::rel(0.1 * eb))
                .expect("valid input")
                .len();
            println!(
                "{:<26} {:>8.0e} {:>10.2} {:>10.2}",
                app.name(),
                eb,
                raw_bytes as f64 / custo_bytes as f64,
                raw_bytes as f64 / sz2_bytes as f64
            );
        }
    }
}
