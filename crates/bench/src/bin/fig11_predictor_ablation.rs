//! Fig. 11 — rate distortion of AE-SZ with the adaptive AE+Lorenzo selection
//! versus forcing a single predictor (AE only / Lorenzo only), on CESM-CLDHGH
//! and Hurricane-U.

use aesz_bench::{print_curves, standard_bounds, sweep, test_field, trained_aesz};
use aesz_core::PredictorPolicy;
use aesz_datagen::Application;

fn main() {
    println!("Fig. 11 counterpart — predictor ablation (adaptive vs AE-only vs Lorenzo-only)");
    println!(
        "paper reference: AE+Lorenzo dominates both single-predictor variants at every bit rate."
    );
    let bounds = standard_bounds();
    for app in [Application::CesmCldhgh, Application::HurricaneU] {
        let field = test_field(app);
        let mut aesz = trained_aesz(app);
        let mut curves = Vec::new();
        for (label, policy) in [
            ("AE+Lorenzo", PredictorPolicy::Adaptive),
            ("AE only", PredictorPolicy::AeOnly),
            ("Lorenzo only", PredictorPolicy::LorenzoOnly),
        ] {
            aesz.set_policy(policy);
            let mut curve = sweep(&mut aesz, &field, &bounds);
            curve.name = label.to_string();
            curves.push(curve);
        }
        print_curves(app.name(), &curves);
    }
}
