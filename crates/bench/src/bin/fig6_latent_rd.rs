//! Fig. 6 — prediction PSNR of the SWAE as a function of the bit rate spent on
//! (lossily compressed) latent vectors, on CESM-FREQSH and NYX-baryon-density.

use aesz_core::training::{train_swae_for_field, training_blocks_from_field, TrainingOptions};
use aesz_core::LatentCodec;
use aesz_datagen::Application;
use aesz_tensor::Dims;

fn main() {
    println!("Fig. 6 counterpart — SWAE prediction PSNR vs latent bit rate");
    println!("paper reference: PSNR flat until latent bit-rate drops below ~0.05-0.1 bits/value");
    for app in [Application::CesmFreqsh, Application::NyxBaryonDensity] {
        let dims = if app.rank() == 2 {
            Dims::d2(128, 128)
        } else {
            Dims::d3(48, 48, 48)
        };
        let field = app.generate(dims, 0);
        let rank = app.rank();
        let opts = TrainingOptions {
            epochs: 4,
            max_blocks: 192,
            ..TrainingOptions::default_for_rank(rank)
        };
        let mut model = train_swae_for_field(std::slice::from_ref(&field), &opts);
        let blocks = training_blocks_from_field(&app.generate(dims, 50), opts.block_size, 128, 5);
        let flat: Vec<f32> = blocks.iter().flatten().copied().collect();
        let latents = model.encode_blocks(&flat, blocks.len());
        let block_len = opts.block_size.pow(rank as u32);
        println!("-- {} --", app.name());
        println!(
            "{:>12} {:>12} {:>10}",
            "latent eb", "bits/value", "PSNR (dB)"
        );
        for leb in [1e-4f64, 1e-3, 5e-3, 2e-2, 1e-1] {
            let codec = LatentCodec::new(leb);
            let indices = codec.quantize(&latents);
            let bytes = codec.encode(&indices, opts.latent_dim).len();
            let zd = codec.dequantize(&indices);
            let recon = model.decode_latents(&zd, blocks.len());
            // PSNR in the normalised block domain.
            let mut mse = 0.0f64;
            for (a, b) in flat.iter().zip(recon.iter()) {
                mse += (*a as f64 - *b as f64).powi(2);
            }
            mse /= flat.len() as f64;
            let psnr = 20.0 * 2.0f64.log10() - 10.0 * mse.log10();
            let bits_per_value = bytes as f64 * 8.0 / (blocks.len() * block_len) as f64;
            println!("{leb:>12.0e} {bits_per_value:>12.4} {psnr:>10.2}");
        }
    }
}
