//! Fig. 7 — distribution of prediction errors of the Lorenzo predictor, the
//! linear-regression predictor and the convolutional autoencoder on the
//! CESM-FREQSH field, at error bounds 1e-2 and 1e-4 (the AE prediction is
//! computed from latents quantized at 0.1×eb, which is why it degrades at the
//! coarse bound in the paper and here).

use aesz_core::training::{train_swae_for_field, training_blocks_from_field, TrainingOptions};
use aesz_core::LatentCodec;
use aesz_datagen::Application;
use aesz_predictors::{lorenzo, regression};
use aesz_tensor::Dims;

fn histogram(errors: &[f64], half_width: f64, bins: usize) -> Vec<f64> {
    let mut h = vec![0.0f64; bins];
    for &e in errors {
        let t = ((e + half_width) / (2.0 * half_width) * bins as f64).floor();
        if t >= 0.0 && (t as usize) < bins {
            h[t as usize] += 1.0;
        }
    }
    let total: f64 = errors.len() as f64;
    h.iter().map(|v| v / total).collect()
}

fn main() {
    let app = Application::CesmFreqsh;
    let dims = Dims::d2(128, 128);
    let train_field = app.generate(dims, 0);
    let test_field = app.generate(dims, 55);
    let block = 16usize;
    let opts = TrainingOptions {
        block_size: block,
        epochs: 4,
        max_blocks: 192,
        ..TrainingOptions::default_for_rank(2)
    };
    let mut model = train_swae_for_field(std::slice::from_ref(&train_field), &opts);
    let blocks = training_blocks_from_field(&test_field, block, 64, 7);
    let flat: Vec<f32> = blocks.iter().flatten().copied().collect();
    let range = test_field.value_range() as f64;

    println!(
        "Fig. 7 counterpart — prediction-error PDF (fraction per bin, range +/-5% of value range)"
    );
    for eb in [1e-2f64, 1e-4] {
        // AE predictions from latents quantized at 0.1*eb (normalised bound 2*eb).
        let codec = LatentCodec::new((0.1 * 2.0 * eb).max(1e-9));
        let latents = model.encode_blocks(&flat, blocks.len());
        let zd = codec.roundtrip(&latents);
        let ae_recon = model.decode_latents(&zd, blocks.len());
        let ae_err: Vec<f64> = flat
            .iter()
            .zip(ae_recon.iter())
            .map(|(a, b)| (*a as f64 - *b as f64) * range / 2.0)
            .collect();
        // Lorenzo and regression errors on the raw (unnormalised) test field.
        let ext = test_field.dims().extents();
        let lor = lorenzo::ideal_predictions(test_field.as_slice(), &ext);
        let lor_err: Vec<f64> = test_field
            .as_slice()
            .iter()
            .zip(lor.iter())
            .map(|(a, b)| *a as f64 - *b as f64)
            .collect();
        let coeffs = regression::fit(test_field.as_slice(), &ext);
        let reg = regression::predictions(&coeffs, &ext);
        let reg_err: Vec<f64> = test_field
            .as_slice()
            .iter()
            .zip(reg.iter())
            .map(|(a, b)| *a as f64 - *b as f64)
            .collect();

        let hw = 0.05 * range;
        println!("-- error bound {eb:.0e} (histogram over [-{hw:.3}, {hw:.3}], 11 bins) --");
        for (name, err) in [
            ("lorenzo", &lor_err),
            ("linear reg", &reg_err),
            ("conv. AE", &ae_err),
        ] {
            let h = histogram(err, hw, 11);
            let cells: Vec<String> = h.iter().map(|v| format!("{v:.3}")).collect();
            println!("{name:<12} {}", cells.join(" "));
        }
    }
    println!("\npaper reference: at eb=1e-2 the AE has the sharpest error distribution; at 1e-4 Lorenzo is sharpest.");
}
