//! Fig. 9 — visual quality at (approximately) the same compression ratio on
//! NYX baryon density: AE-SZ vs SZinterp, SZauto, SZ2.1 and ZFP. The harness
//! matches each compressor's error bound so its CR lands near the target, then
//! reports PSNR and renders an ASCII slice.

use aesz_baselines::{Sz2, SzAuto, SzInterp, Zfp};
use aesz_bench::{ascii_heatmap, test_field, trained_aesz};
use aesz_datagen::Application;
use aesz_metrics::{measure, Compressor, ErrorBound};

fn find_eb_for_cr(
    compressor: &mut dyn Compressor,
    field: &aesz_tensor::Field,
    target_cr: f64,
) -> f64 {
    let mut best = (f64::INFINITY, 1e-2);
    for &eb in &[2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1] {
        let p = measure(compressor, field, ErrorBound::rel(eb)).expect("valid roundtrip");
        let gap = (p.compression_ratio - target_cr).abs();
        if gap < best.0 {
            best = (gap, eb);
        }
    }
    best.1
}

fn main() {
    let app = Application::NyxBaryonDensity;
    let field = test_field(app);
    let target_cr = 60.0;
    println!(
        "Fig. 9 counterpart — visual quality at matched CR (~{target_cr}) on {}",
        app.name()
    );
    println!("paper reference at CR~180: AE-SZ PSNR 46.8 > SZinterp 45.5 > SZ 41.7 > SZauto 40.6 > ZFP 30.2");
    println!(
        "\noriginal (middle slice):\n{}",
        ascii_heatmap(&field, 16, 48)
    );

    let mut aesz = trained_aesz(app);
    let mut compressors: Vec<(&str, &mut dyn Compressor)> = vec![("AE-SZ", &mut aesz)];
    let mut szinterp = SzInterp::new();
    let mut szauto = SzAuto::new();
    let mut sz2 = Sz2::new();
    let mut zfp = Zfp::new();
    compressors.push(("SZinterp", &mut szinterp));
    compressors.push(("SZauto", &mut szauto));
    compressors.push(("SZ2.1", &mut sz2));
    compressors.push(("ZFP", &mut zfp));
    for (name, comp) in compressors {
        let eb = find_eb_for_cr(comp, &field, target_cr);
        let bytes = comp
            .compress(&field, ErrorBound::rel(eb))
            .expect("valid input");
        let recon = comp.decompress(&bytes).expect("own stream decodes");
        let stats = aesz_metrics::ErrorStats::compute(field.as_slice(), recon.as_slice());
        let cr = (field.len() * 4) as f64 / bytes.len() as f64;
        println!(
            "{name}: CR {cr:.1}, PSNR {:.2} dB (eb {eb:.0e})\n{}",
            stats.psnr,
            ascii_heatmap(&recon, 16, 48)
        );
    }
}
