//! Fig. 1 — reconstruction quality of a plain (non-error-bounded) 64:1
//! convolutional autoencoder (AE-B) on a turbulence-like 3D field, reported as
//! value range vs. maximum pointwise error, plus ASCII renderings of the
//! original and reconstructed middle slice.

use aesz_baselines::AeB;
use aesz_bench::ascii_heatmap;
use aesz_datagen::Application;
use aesz_metrics::{Compressor, ErrorBound, ErrorStats};
use aesz_tensor::Dims;

fn main() {
    let app = Application::Rtm;
    let train = app.generate(Dims::d3(48, 48, 48), 10);
    let test = app.generate(Dims::d3(48, 48, 48), 30);
    let mut ae = AeB::new(1);
    println!("training AE-B (fixed 64:1) on a turbulence-like RTM snapshot ...");
    ae.train(std::slice::from_ref(&train), 3, 2);
    // AE-B is fixed-rate: the bound is ignored, but must still be valid.
    let bytes = ae
        .compress(&test, ErrorBound::rel(1e-3))
        .expect("valid input");
    let recon = ae.decompress(&bytes).expect("own stream decodes");
    let stats = ErrorStats::compute(test.as_slice(), recon.as_slice());
    let (lo, hi) = test.min_max();
    println!("Fig. 1 counterpart (paper: range [-3.06, 2.64], max abs error 1.2 at 64:1)");
    println!("  value range           : [{lo:.3}, {hi:.3}]");
    println!(
        "  compression ratio     : {:.1}",
        (test.len() * 4) as f64 / bytes.len() as f64
    );
    println!(
        "  max pointwise error   : {:.4} ({:.1}% of range)",
        stats.max_abs_error,
        100.0 * stats.max_abs_error / stats.value_range
    );
    println!("  PSNR                  : {:.2} dB", stats.psnr);
    println!(
        "\noriginal (middle slice):\n{}",
        ascii_heatmap(&test, 16, 48)
    );
    println!(
        "AE 64:1 reconstruction (middle slice):\n{}",
        ascii_heatmap(&recon, 16, 48)
    );
}
