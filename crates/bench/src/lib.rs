//! # aesz-bench
//!
//! Benchmark harness regenerating every table and figure of the AE-SZ paper's
//! evaluation (Section V). Each table/figure has a dedicated binary under
//! `src/bin/` (see DESIGN.md §5 for the full index), and the Criterion benches
//! under `benches/` back the throughput numbers of Table VIII.
//!
//! The harness runs on the synthetic SDRBench stand-ins from `aesz-datagen`
//! at laptop-scale extents, so absolute numbers differ from the paper's
//! V100-node measurements; the comparisons (who wins, by roughly what factor,
//! where the crossovers fall) are what the binaries print and what
//! EXPERIMENTS.md records.

#![forbid(unsafe_code)]

use aesz_core::training::TrainingOptions;
use aesz_core::{train_swae_for_field, AeSz, AeSzConfig};
use aesz_datagen::Application;
use aesz_metrics::{measure, Compressor, ErrorBound, RdCurve, RdPoint, SweepPoint};
use aesz_tensor::{Dims, Field};

/// Field extents used by the harness (scaled-down stand-ins for Table V).
pub fn bench_dims(app: Application) -> Dims {
    match app.rank() {
        2 => Dims::d2(128, 128),
        _ => Dims::d3(48, 48, 48),
    }
}

/// Snapshot indices used for training (the paper trains on early time steps).
pub fn train_snapshots() -> Vec<u64> {
    vec![0, 1, 2]
}

/// Snapshot index used for testing (a later, unseen time step).
pub fn test_snapshot() -> u64 {
    50
}

/// Generate the training fields for an application at harness extents.
pub fn training_fields(app: Application) -> Vec<Field> {
    train_snapshots()
        .into_iter()
        .map(|s| app.generate(bench_dims(app), s))
        .collect()
}

/// Generate the held-out test field for an application at harness extents.
pub fn test_field(app: Application) -> Field {
    app.generate(bench_dims(app), test_snapshot())
}

/// Training options used for the harness (small networks, few epochs — the
/// architecture matches Table VI, the capacity is scaled for CPU training).
pub fn harness_training_options(app: Application) -> TrainingOptions {
    let rank = app.rank();
    let mut opts = TrainingOptions::default_for_rank(rank);
    opts.block_size = if rank == 2 { 16 } else { 8 };
    opts.latent_dim = if rank == 2 { 8 } else { 16 };
    opts.channels = vec![8, 16];
    opts.epochs = 4;
    opts.max_blocks = 192;
    opts
}

/// Train an AE-SZ compressor for an application on its training snapshots.
pub fn trained_aesz(app: Application) -> AeSz {
    let opts = harness_training_options(app);
    let fields = training_fields(app);
    let model = train_swae_for_field(&fields, &opts);
    let config = AeSzConfig {
        block_size: opts.block_size,
        ..if app.rank() == 2 {
            AeSzConfig::default_2d()
        } else {
            AeSzConfig::default_3d()
        }
    };
    AeSz::new(model, config)
}

/// The error-bound sweep used by the rate-distortion figures.
pub fn standard_bounds() -> Vec<f64> {
    vec![1e-1, 5e-2, 2e-2, 1e-2, 5e-3, 2e-3, 1e-3, 5e-4, 1e-4]
}

/// Sweep one compressor over a field and collect its rate-distortion curve.
///
/// The harness generates its own (valid) inputs, so a failed roundtrip is a
/// bug in the compressor under test and panics with the reported error.
pub fn sweep(compressor: &mut dyn Compressor, field: &Field, bounds: &[f64]) -> RdCurve {
    let mut curve = RdCurve::new(compressor.name());
    for &eb in bounds {
        let p: SweepPoint = measure(compressor, field, ErrorBound::rel(eb))
            .unwrap_or_else(|e| panic!("{} failed at eb {eb:e}: {e}", compressor.name()));
        curve.push(RdPoint {
            error_bound: eb,
            bit_rate: p.bit_rate,
            psnr: p.psnr,
            compression_ratio: p.compression_ratio,
        });
    }
    curve
}

/// Print a set of rate-distortion curves as an aligned text block (the text
/// form of one panel of Fig. 8 / Fig. 11).
pub fn print_curves(title: &str, curves: &[RdCurve]) {
    println!("== {title} ==");
    for curve in curves {
        print!("{}", curve.to_table());
    }
    println!();
}

/// Render a 2D slice of a field as a coarse ASCII heat map (the text stand-in
/// for the visual comparisons of Fig. 1 / Fig. 9).
pub fn ascii_heatmap(field: &Field, rows: usize, cols: usize) -> String {
    let ramp = b" .:-=+*#%@";
    let (lo, hi) = field.min_max();
    let range = (hi - lo).max(f32::MIN_POSITIVE);
    let e = field.dims().extents();
    // Take the middle slice of 3D data; the whole field for 2D.
    let (ny, nx, offset) = match field.dims() {
        Dims::D2 { ny, nx } => (ny, nx, 0usize),
        Dims::D3 { nz, ny, nx } => (ny, nx, (nz / 2) * ny * nx),
        Dims::D1 { n } => (1, n, 0),
    };
    let _ = e;
    let data = field.as_slice();
    let mut out = String::new();
    for r in 0..rows {
        let y = r * ny / rows;
        for c in 0..cols {
            let x = c * nx / cols;
            let v = data[offset + y * nx + x];
            let t = ((v - lo) / range * (ramp.len() - 1) as f32).round() as usize;
            out.push(ramp[t.min(ramp.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_baselines::Sz2;

    #[test]
    fn sweep_produces_monotone_bit_rates() {
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 64), 1);
        let mut sz = Sz2::new();
        let curve = sweep(&mut sz, &field, &[1e-2, 1e-3, 1e-4]);
        assert_eq!(curve.points.len(), 3);
        assert!(curve.points[0].bit_rate <= curve.points[2].bit_rate);
        assert!(curve.points[0].psnr <= curve.points[2].psnr);
    }

    #[test]
    fn ascii_heatmap_has_requested_shape() {
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 64), 1);
        let map = ascii_heatmap(&field, 10, 20);
        assert_eq!(map.lines().count(), 10);
        assert!(map.lines().all(|l| l.chars().count() == 20));
    }

    #[test]
    fn bench_dims_match_application_rank() {
        for app in Application::all() {
            assert_eq!(bench_dims(app).rank(), app.rank());
        }
    }
}
