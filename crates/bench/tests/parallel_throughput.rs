//! Table VIII-style throughput assertion for the parallel AE-SZ pipeline:
//! on a ≥ 8 MB field the rayon-parallel block pipeline must beat the serial
//! reference in both directions while producing byte-identical streams.
//!
//! The measurement needs the optimized profile to be meaningful, so the test
//! is ignored under debug builds (CI runs it via `cargo test --release`).
//! The byte-identity check always runs; the timing assertions are skipped on
//! single-core machines, where the rayon shim degenerates to the serial path
//! plus scheduling overhead.

use aesz_core::{AeSz, AeSzConfig, PredictorPolicy};
use aesz_datagen::Application;
use aesz_metrics::ErrorBound;
use aesz_nn::models::conv_ae::{AeConfig, ConvAutoencoder};
use aesz_tensor::{Dims, Field};
use std::time::Instant;

/// Best-of-3 wall time of `f`, returning its last output alongside.
fn best_of_3<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out.expect("loop ran"))
}

#[test]
#[cfg_attr(debug_assertions, ignore = "throughput assertion needs --release")]
fn parallel_beats_serial_on_8mb_field() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // 1456² f32 = 8.09 MB. The model is untrained (predictor quality is
    // irrelevant to throughput) and the policy is LorenzoOnly so the
    // measurement isolates the per-block pipeline that the chunked rayon
    // fan-out parallelizes; AE inference is batch-parallel inside `aesz_nn`
    // for serial and parallel paths alike.
    let field = Application::CesmCldhgh.generate(Dims::d2(1456, 1456), 42);
    assert!(field.len() * 4 >= 8 * 1024 * 1024, "field must be >= 8 MB");
    let model = ConvAutoencoder::new(AeConfig {
        spatial_rank: 2,
        block_size: 16,
        latent_dim: 8,
        channels: vec![8, 16],
        variational: false,
        seed: 1,
    });
    let mut aesz = AeSz::new(
        model,
        AeSzConfig {
            block_size: 16,
            policy: PredictorPolicy::LorenzoOnly,
            ..AeSzConfig::default_2d()
        },
    );

    // Warm-up pass doubling as a reference stream.
    let eb = ErrorBound::rel(1e-3);
    let (reference, _) = aesz
        .compress_with_report_serial(&field, eb)
        .expect("valid input");

    let (t_ser, ser_bytes) = {
        let (t, b) = best_of_3(|| aesz.compress_with_report_serial(&field, eb).unwrap().0);
        (t, b)
    };
    let (t_par, par_bytes) = {
        let (t, b) = best_of_3(|| aesz.compress_with_report(&field, eb).unwrap().0);
        (t, b)
    };
    assert_eq!(par_bytes, ser_bytes, "streams must be byte-identical");
    assert_eq!(par_bytes, reference);

    let (t_dser, dser_field): (f64, Field) =
        best_of_3(|| aesz.try_decompress_serial(&ser_bytes).unwrap());
    let (t_dpar, dpar_field): (f64, Field) = best_of_3(|| aesz.try_decompress(&ser_bytes).unwrap());
    assert_eq!(
        dpar_field.as_slice(),
        dser_field.as_slice(),
        "reconstructions must be identical"
    );

    let mb = (field.len() * 4) as f64 / (1024.0 * 1024.0);
    eprintln!(
        "compress:   serial {:.2} MB/s, parallel {:.2} MB/s ({cores} cores)",
        mb / t_ser,
        mb / t_par
    );
    eprintln!(
        "decompress: serial {:.2} MB/s, parallel {:.2} MB/s",
        mb / t_dser,
        mb / t_dpar
    );

    if cores < 2 {
        eprintln!("only {cores} core(s): byte-identity verified, timing assertions skipped");
        return;
    }
    assert!(
        t_par < t_ser,
        "parallel compression ({t_par:.3}s) must beat serial ({t_ser:.3}s) on {cores} cores"
    );
    assert!(
        t_dpar < t_dser,
        "parallel decompression ({t_dpar:.3}s) must beat serial ({t_dser:.3}s) on {cores} cores"
    );
}
