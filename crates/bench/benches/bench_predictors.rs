//! Criterion benches for the SZ-family predictors (Lorenzo, second-order
//! Lorenzo, spline interpolation) on a Hurricane-like 3D field.

use aesz_datagen::Application;
use aesz_predictors::{interp, lorenzo, lorenzo2, Quantizer};
use aesz_tensor::Dims;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_predictors(c: &mut Criterion) {
    let field = Application::HurricaneU.generate(Dims::d3(32, 32, 32), 1);
    let extents = field.dims().extents();
    let q = Quantizer::with_default_bins(1e-3 * field.value_range() as f64);
    let mut group = c.benchmark_group("predictors");
    group.throughput(Throughput::Bytes((field.len() * 4) as u64));
    group.bench_function("lorenzo_compress_32cube", |b| {
        b.iter(|| lorenzo::compress(std::hint::black_box(field.as_slice()), &extents, &q))
    });
    group.bench_function("lorenzo2_compress_32cube", |b| {
        b.iter(|| lorenzo2::compress(std::hint::black_box(field.as_slice()), &extents, &q))
    });
    group.bench_function("interp_compress_32cube", |b| {
        b.iter(|| interp::compress(std::hint::black_box(field.as_slice()), &extents, &q))
    });
    let (blk, _) = lorenzo::compress(field.as_slice(), &extents, &q);
    group.bench_function("lorenzo_decompress_32cube", |b| {
        b.iter(|| lorenzo::decompress(std::hint::black_box(&blk), &extents, &q))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_predictors
}
criterion_main!(benches);
