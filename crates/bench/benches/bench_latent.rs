//! Criterion benches for the latent-vector "custo." codec versus the
//! SZ2.1-style alternative (backs Table IV).

use aesz_baselines::Sz2;
use aesz_core::LatentCodec;
use aesz_metrics::{Compressor, ErrorBound};
use aesz_tensor::{Dims, Field};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn synthetic_latents(vectors: usize, dim: usize) -> Vec<f32> {
    (0..vectors * dim)
        .map(|i| (i as f32 * 0.618).sin() * 1.5 + ((i / dim) as f32 * 0.01).cos())
        .collect()
}

fn bench_latent(c: &mut Criterion) {
    let (vectors, dim) = (2048usize, 16usize);
    let latents = synthetic_latents(vectors, dim);
    let codec = LatentCodec::new(2e-3);
    let indices = codec.quantize(&latents);
    let encoded = codec.encode(&indices, dim);
    let latent_field = Field::from_vec(Dims::d2(vectors, dim), latents.clone()).unwrap();

    let mut group = c.benchmark_group("latent_codec_table4");
    group.throughput(Throughput::Bytes((latents.len() * 4) as u64));
    group.bench_function("custo_quantize_encode", |b| {
        b.iter(|| {
            let idx = codec.quantize(std::hint::black_box(&latents));
            codec.encode(&idx, dim)
        })
    });
    group.bench_function("custo_decode", |b| {
        b.iter(|| codec.decode(std::hint::black_box(&encoded)).unwrap())
    });
    group.bench_function("sz2_on_latent_matrix", |b| {
        let mut sz = Sz2::new();
        b.iter(|| {
            sz.compress(std::hint::black_box(&latent_field), ErrorBound::rel(1e-3))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_latent
}
criterion_main!(benches);
