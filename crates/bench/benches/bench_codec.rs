//! Criterion benches for the lossless coding substrate (backs the throughput
//! discussion of Table VIII): Huffman, zlite and the composed code pipeline.

use aesz_codec::{decode_codes, encode_codes, huffman_encode, zlite_compress, zlite_decompress};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn quantization_like_codes(n: usize) -> Vec<u32> {
    (0..n as u32)
        .map(|i| if i % 37 == 0 { 32768 + (i % 11) } else { 32768 })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let codes = quantization_like_codes(1 << 16);
    let bytes: Vec<u8> = codes.iter().flat_map(|v| v.to_le_bytes()).collect();
    let encoded = encode_codes(&codes);

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("huffman_encode_64k_codes", |b| {
        b.iter(|| huffman_encode(std::hint::black_box(&codes)))
    });
    group.bench_function("zlite_compress_256KiB", |b| {
        b.iter(|| zlite_compress(std::hint::black_box(&bytes)))
    });
    let z = zlite_compress(&bytes);
    group.bench_function("zlite_decompress_256KiB", |b| {
        b.iter(|| zlite_decompress(std::hint::black_box(&z)).unwrap())
    });
    group.bench_function("encode_codes_pipeline_64k", |b| {
        b.iter(|| encode_codes(std::hint::black_box(&codes)))
    });
    group.bench_function("decode_codes_pipeline_64k", |b| {
        b.iter(|| decode_codes(std::hint::black_box(&encoded)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_codec
}
criterion_main!(benches);
