//! Criterion benches for the neural substrate: SWAE encode/decode batches and
//! one training step (the building blocks of the AE-SZ throughput numbers).

use aesz_core::training::training_blocks_from_field;
use aesz_datagen::Application;
use aesz_nn::models::conv_ae::{AeConfig, ConvAutoencoder};
use aesz_nn::train::{TrainConfig, Trainer};
use aesz_tensor::Dims;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_nn(c: &mut Criterion) {
    let field = Application::CesmCldhgh.generate(Dims::d2(128, 128), 0);
    let blocks = training_blocks_from_field(&field, 16, 32, 1);
    let flat: Vec<f32> = blocks.iter().flatten().copied().collect();
    let config = AeConfig {
        spatial_rank: 2,
        block_size: 16,
        latent_dim: 8,
        channels: vec![8, 16],
        variational: false,
        seed: 1,
    };
    let mut model = ConvAutoencoder::new(config.clone());

    let mut group = c.benchmark_group("nn");
    group.bench_function("swae_encode_32_blocks_16x16", |b| {
        b.iter(|| model.encode_blocks(std::hint::black_box(&flat), blocks.len()))
    });
    let latents = model.encode_blocks(&flat, blocks.len());
    group.bench_function("swae_decode_32_blocks_16x16", |b| {
        b.iter(|| model.decode_latents(std::hint::black_box(&latents), blocks.len()))
    });
    group.bench_function("swae_train_one_epoch_32_blocks", |b| {
        b.iter(|| {
            let mut trainer = Trainer::new(
                config.clone(),
                TrainConfig {
                    epochs: 1,
                    batch_size: 16,
                    ..TrainConfig::default()
                },
            );
            trainer.train(std::hint::black_box(&blocks))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_nn
}
criterion_main!(benches);
