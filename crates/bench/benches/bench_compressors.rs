//! Criterion benches backing Table VIII: end-to-end compression and
//! decompression throughput of AE-SZ and the traditional baselines at
//! error bound 1e-3 on a Hurricane-like 3D field.

use aesz_baselines::{Sz2, SzAuto, SzInterp, Zfp};
use aesz_core::training::{train_swae_for_field, TrainingOptions};
use aesz_core::{AeSz, AeSzConfig};
use aesz_datagen::Application;
use aesz_metrics::{Compressor, ErrorBound};
use aesz_tensor::Dims;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_compressors(c: &mut Criterion) {
    let app = Application::HurricaneU;
    let field = app.generate(Dims::d3(32, 32, 32), 40);
    let train = app.generate(Dims::d3(32, 32, 32), 1);
    let opts = TrainingOptions {
        epochs: 2,
        max_blocks: 96,
        ..TrainingOptions::default_for_rank(3)
    };
    let model = train_swae_for_field(std::slice::from_ref(&train), &opts);
    let mut aesz = AeSz::new(model, AeSzConfig::default_3d());
    let eb = ErrorBound::rel(1e-3);

    let mut group = c.benchmark_group("compressors_table8");
    group.throughput(Throughput::Bytes((field.len() * 4) as u64));
    group.bench_function("sz2_compress", |b| {
        let mut sz = Sz2::new();
        b.iter(|| sz.compress(std::hint::black_box(&field), eb).unwrap())
    });
    group.bench_function("zfp_compress", |b| {
        let mut z = Zfp::new();
        b.iter(|| z.compress(std::hint::black_box(&field), eb).unwrap())
    });
    group.bench_function("szauto_compress", |b| {
        let mut s = SzAuto::new();
        b.iter(|| s.compress(std::hint::black_box(&field), eb).unwrap())
    });
    group.bench_function("szinterp_compress", |b| {
        let mut s = SzInterp::new();
        b.iter(|| s.compress(std::hint::black_box(&field), eb).unwrap())
    });
    group.bench_function("aesz_compress", |b| {
        b.iter(|| aesz.compress(std::hint::black_box(&field), eb).unwrap())
    });
    let bytes = aesz.compress(&field, eb).unwrap();
    group.bench_function("aesz_decompress", |b| {
        b.iter(|| aesz.decompress(std::hint::black_box(&bytes)).unwrap())
    });
    let mut sz = Sz2::new();
    let sz_bytes = sz.compress(&field, eb).unwrap();
    group.bench_function("sz2_decompress", |b| {
        b.iter(|| sz.decompress(std::hint::black_box(&sz_bytes)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compressors
}
criterion_main!(benches);
