//! CLI for the wire-safety analyzer: `cargo run -p aesz-lint -- --check`.

#![forbid(unsafe_code)]

use aesz_lint::{Baseline, Config, Report};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
aesz-lint — wire-safety static analysis for the AE-SZ decode paths

USAGE:
    aesz-lint --check [--verbose] [--root <dir>]
    aesz-lint --update-baseline [--root <dir>]

MODES:
    --check             verify the deny-set against lint-baseline.toml (CI mode)
    --update-baseline   rewrite lint-baseline.toml with the current counts
                        (refuses to raise any count: the ratchet only tightens)

OPTIONS:
    --root <dir>        repository root (default: current directory)
    --verbose           also list annotated (lint:allow'd) sites
";

struct Args {
    root: PathBuf,
    update: bool,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut update = false;
    let mut check = false;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--update-baseline" => update = true,
            "--verbose" => verbose = true,
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if check == update {
        return Err("pass exactly one of --check / --update-baseline".into());
    }
    Ok(Args {
        root,
        update,
        verbose,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let config_path = args.root.join("lint.toml");
    let config = match std::fs::read_to_string(&config_path).map_err(|e| e.to_string()) {
        Ok(text) => match Config::parse(&text) {
            Ok(config) => config,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = args.root.join("lint-baseline.toml");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        // Missing baseline = empty baseline (everything must be at zero).
        Err(_) => Baseline::default(),
    };

    let report = aesz_lint::run(&args.root, &config, &baseline);

    if args.update {
        let current = report.to_baseline();
        // The ratchet only tightens: refuse to regenerate a looser baseline
        // while violations have regressed.
        if !report.regressions.is_empty() {
            print_findings(&report, false);
            eprintln!("error: refusing to update the baseline upward; fix the new violations");
            return ExitCode::from(1);
        }
        if !report.errors.is_empty() {
            print_findings(&report, false);
            return ExitCode::from(1);
        }
        if let Err(e) = std::fs::write(&baseline_path, current.render()) {
            eprintln!("error: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    print_findings(&report, args.verbose);
    if report.is_clean() {
        let files = report.files.len();
        let annotated: usize = report.files.iter().map(|f| f.annotated.len()).sum();
        println!("lint: clean — {files} deny-set files, {annotated} annotated allowances");
        if !report.improvements.is_empty() {
            println!(
                "note: {} baseline entr{} can ratchet down; run `cargo run -p aesz-lint -- \
                 --update-baseline`",
                report.improvements.len(),
                if report.improvements.len() == 1 {
                    "y"
                } else {
                    "ies"
                }
            );
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_findings(report: &Report, verbose: bool) {
    for error in &report.errors {
        eprintln!("error: {error}");
    }
    for file in &report.files {
        for v in &file.unannotated {
            let over = report
                .regressions
                .iter()
                .any(|(p, r, _, _)| *p == file.path && *r == v.rule);
            let status = if over { "DENY" } else { "baselined" };
            eprintln!(
                "{}:{}: [{}] {} ({status})",
                file.path,
                v.line,
                v.rule.name(),
                v.what
            );
        }
        if verbose {
            for (v, reason) in &file.annotated {
                eprintln!(
                    "{}:{}: [{}] allowed: {reason}",
                    file.path,
                    v.line,
                    v.rule.name()
                );
            }
        }
    }
    for (path, rule, count, allowed) in &report.regressions {
        eprintln!(
            "regression: {path} has {count} unannotated {} violations, baseline allows {allowed}",
            rule.name()
        );
    }
}
