//! The wire-safety rule families R1–R4 over a lexed, test-stripped token
//! stream.
//!
//! These are *syntactic* rules: without type or data-flow analysis they
//! cannot prove an index in bounds or an allocation capped, so each rule
//! carves out the patterns that are safe by construction (literal indices,
//! const-sized allocations, `len`-proportional capacities, adjacent cap
//! checks) and flags everything else. What the rules cannot see, the
//! `// lint:allow(<rule>): <reason>` escape hatch records explicitly — with
//! the burden of a written justification.

use crate::lexer::{Tok, Token};

/// The rule families. `R5` (crate roots must `#![forbid(unsafe_code)]`) is
/// checked at the file level in `lib.rs`, not over tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`/
    /// `assert*!` in decode paths (`debug_assert*!` is allowed: compiled out
    /// of release builds, it documents invariants without a release panic).
    R1,
    /// No direct slice indexing `buf[i]` / `buf[a..b]` with runtime-computed
    /// positions; use `.get()` and surface an error. Literal, const and
    /// const-derived indices are exempt.
    R2,
    /// No `Vec::with_capacity(n)` / `vec![x; n]` whose size comes from a
    /// plain variable without cap evidence (a `.min(...)`/`*_len()` call in
    /// the expression, a const, or a cap check on a nearby preceding line).
    R3,
    /// No `as usize` / `as u32` narrowing casts; use `usize::from`,
    /// `try_from`, or justify the cap with an annotation.
    R4,
    /// Crate roots must carry `#![forbid(unsafe_code)]`.
    R5,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
        }
    }

    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "R1" => Some(Rule::R1),
            "R2" => Some(Rule::R2),
            "R3" => Some(Rule::R3),
            "R4" => Some(Rule::R4),
            "R5" => Some(Rule::R5),
            _ => None,
        }
    }
}

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    pub line: u32,
    pub what: String,
}

/// Run R1–R4 over a test-stripped token stream. `lines` is the raw source
/// split by line (1-based indexing via `line - 1`), used only for R3's
/// nearby-cap-evidence scan.
pub fn check_tokens(tokens: &[Token], lines: &[&str]) -> Vec<Violation> {
    let mut out = Vec::new();
    check_r1(tokens, &mut out);
    check_r2(tokens, &mut out);
    check_r3(tokens, lines, &mut out);
    check_r4(tokens, &mut out);
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

const R1_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];
const R1_METHODS: &[&str] = &["unwrap", "expect"];

fn check_r1(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        let next = tokens.get(i + 1).map(|t| &t.tok);
        if R1_MACROS.contains(&name.as_str()) && next == Some(&Tok::Punct('!')) {
            out.push(Violation {
                rule: Rule::R1,
                line: t.line,
                what: format!("`{name}!` can panic at runtime"),
            });
        }
        if R1_METHODS.contains(&name.as_str())
            && next == Some(&Tok::Punct('('))
            && i > 0
            && tokens[i - 1].tok == Tok::Punct('.')
        {
            out.push(Violation {
                rule: Rule::R1,
                line: t.line,
                what: format!("`.{name}()` panics on the Err/None it hides"),
            });
        }
    }
}

/// Identifiers treated as compile-time constants: `SCREAMING_SNAKE_CASE`
/// with at least one letter and two characters.
fn is_const_ident(name: &str) -> bool {
    name.len() >= 2
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && name.chars().any(|c| c.is_ascii_uppercase())
}

/// Does `[` at `open` open an index expression (as opposed to an array
/// literal/type, slice pattern, attribute or `vec![`)? True when the previous
/// token could end a place expression.
fn is_index_position(tokens: &[Token], open: usize) -> bool {
    let Some(prev) = open.checked_sub(1).map(|p| &tokens[p].tok) else {
        return false;
    };
    match prev {
        Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('?') => true,
        Tok::Ident(name) => !matches!(
            name.as_str(),
            // Keywords that may directly precede an array literal or type.
            "mut"
                | "ref"
                | "let"
                | "const"
                | "static"
                | "return"
                | "break"
                | "in"
                | "as"
                | "dyn"
                | "impl"
                | "where"
                | "else"
                | "match"
                | "if"
                | "move"
        ),
        _ => false,
    }
}

/// Tokens allowed inside an exempt (const-derived) index expression.
fn index_token_allowed(tokens: &[Token], i: usize) -> bool {
    match &tokens[i].tok {
        Tok::Num => true,
        Tok::Punct('.' | '+' | '-' | '*' | ':' | '=' | '(' | ')') => true,
        Tok::Ident(name) => {
            if is_const_ident(name) {
                return true;
            }
            match name.as_str() {
                "as" | "usize" | "u64" | "u32" | "u16" | "u8" => true,
                // `.len()`/`.min()` only as *calls* (CONST.len() is fine;
                // a variable named `len` is not).
                "len" | "min" => tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('(')),
                _ => false,
            }
        }
        _ => false,
    }
}

fn check_r2(tokens: &[Token], out: &mut Vec<Violation>) {
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok != Tok::Punct('[') || !is_index_position(tokens, i) {
            i += 1;
            continue;
        }
        let close = matching(tokens, i, '[', ']');
        let exempt = (i + 1..close).all(|j| index_token_allowed(tokens, j));
        if !exempt {
            out.push(Violation {
                rule: Rule::R2,
                line: tokens[i].line,
                what: "slice indexing with a runtime-computed position can panic; use `.get()`"
                    .into(),
            });
        }
        i += 1; // nested index expressions are reported on their own
    }
}

/// Index of the token holding the delimiter that closes `open_ch` at `open`.
fn matching(tokens: &[Token], open: usize, open_ch: char, close_ch: char) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].tok == Tok::Punct(open_ch) {
            depth += 1;
        } else if tokens[j].tok == Tok::Punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    j.saturating_sub(1)
}

/// How many preceding source lines R3 searches for cap evidence.
const R3_EVIDENCE_WINDOW: u32 = 12;
/// Substrings on a nearby preceding line accepted as evidence that the size
/// was capped or validated before the allocation.
const R3_EVIDENCE: &[&str] = &["MAX", "CAP", ".min(", "checked_", "contains("];

fn size_expr_is_risky(tokens: &[Token], range: std::ops::Range<usize>) -> bool {
    let mut saw_variable = false;
    for j in range.clone() {
        if let Tok::Ident(name) = &tokens[j].tok {
            if is_const_ident(name) {
                return false; // const-sized
            }
            let is_call = tokens.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('('));
            if is_call && (name.ends_with("len") || name == "min") {
                // Proportional to something already in memory, or
                // explicitly clamped.
                return false;
            }
            if !is_call
                && !matches!(
                    name.as_str(),
                    "as" | "usize" | "u64" | "u32" | "u16" | "u8" | "self" | "f32" | "f64"
                )
            {
                saw_variable = true;
            }
        }
    }
    saw_variable
}

fn nearby_cap_evidence(lines: &[&str], line: u32) -> bool {
    let end = line.saturating_sub(1) as usize; // violation line itself excluded
    let start = line.saturating_sub(R3_EVIDENCE_WINDOW) as usize;
    lines[start.min(lines.len())..end.min(lines.len())]
        .iter()
        .any(|l| R3_EVIDENCE.iter().any(|e| l.contains(e)))
}

fn check_r3(tokens: &[Token], lines: &[&str], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        // `fn with_capacity(...)` definitions declare the API, they don't
        // allocate; only call sites are checked.
        let is_definition = i > 0 && tokens[i - 1].tok == Tok::Ident("fn".into());
        let (range, what) = if name == "with_capacity"
            && !is_definition
            && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('('))
        {
            let close = matching(tokens, i + 1, '(', ')');
            (i + 2..close, "with_capacity")
        } else if name == "vec" && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('!')) {
            let Some(open) = tokens.get(i + 2).filter(|t| t.tok == Tok::Punct('[')) else {
                continue;
            };
            let _ = open;
            let close = matching(tokens, i + 2, '[', ']');
            // `vec![elem; n]`: the size expression follows the top-level `;`.
            let Some(semi) = (i + 3..close).find(|&j| {
                tokens[j].tok == Tok::Punct(';')
                    && (i + 3..j).fold(0i32, |d, k| match tokens[k].tok {
                        Tok::Punct('[' | '(' | '{') => d + 1,
                        Tok::Punct(']' | ')' | '}') => d - 1,
                        _ => d,
                    }) == 0
            }) else {
                continue; // list form `vec![a, b, c]`
            };
            (semi + 1..close, "vec![..; n]")
        } else {
            continue;
        };
        if size_expr_is_risky(tokens, range) && !nearby_cap_evidence(lines, t.line) {
            out.push(Violation {
                rule: Rule::R3,
                line: t.line,
                what: format!(
                    "`{what}` sized by a variable with no visible cap; clamp it or check it first"
                ),
            });
        }
    }
}

fn check_r4(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.tok != Tok::Ident("as".into()) {
            continue;
        }
        let Some(Tok::Ident(target)) = tokens.get(i + 1).map(|t| &t.tok) else {
            continue;
        };
        if target == "usize" || target == "u32" {
            out.push(Violation {
                rule: Rule::R4,
                line: t.line,
                what: format!(
                    "`as {target}` silently truncates wider integers; use `{target}::from` or \
                     `try_from`"
                ),
            });
        }
    }
}
