//! A small Rust lexer: just enough token structure for the wire-safety rules.
//!
//! The goal is *not* a faithful grammar — it is to walk real source without
//! being fooled by the things that break naive text matching: string and raw
//! string literals (`"buf[i]"` is not an index expression), nested block
//! comments, char literals vs. lifetimes, raw identifiers, and numeric
//! literals with suffixes. Everything the rules reason about (identifiers,
//! punctuation, literals) comes out as a flat token stream with line numbers;
//! comment text is captured separately so `// lint:allow(...)` escapes can be
//! associated with the code they annotate.

/// One lexical token, stripped of literal contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers lose their `r#` prefix).
    Ident(String),
    /// Numeric literal (value and suffix dropped).
    Num,
    /// String, byte-string, raw-string or char literal (contents dropped).
    Lit,
    /// Lifetime such as `'a` (label dropped).
    Lifetime,
    /// A single punctuation character (`::` is two `:` tokens, `..` two `.`).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A `//` comment: its line and its text (without the leading slashes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and line comments. Never fails: unterminated
/// literals or comments simply end the token stream at end of input, which is
/// the right behaviour for a linter (rustc will reject the file anyway).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start_line = line;
                i = skip_string(b, i, &mut line);
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) or char literal (`'a'`, `'\n'`, `'\u{1}'`)?
                let next = b.get(i + 1).copied();
                let after = b.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if is_ident_start(n))
                    && after != Some(b'\'')
                    && next != Some(b'\\');
                if is_lifetime {
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                } else {
                    i += 1;
                    if b.get(i) == Some(&b'\\') {
                        i += 2; // escape lead + escaped char (u{..} handled below)
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                    } else if i < b.len() {
                        // One (possibly multi-byte) char.
                        i += utf8_len(b[i]);
                    }
                    if b.get(i) == Some(&b'\'') {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lit,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                i += 1;
                while i < b.len() && (is_ident_continue(b[i]) || b[i] == b'.') {
                    if b[i] == b'.' {
                        // `1..x` is a range, `1.5` a float: only consume the
                        // dot when a digit follows.
                        if b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                            i += 2;
                        } else {
                            break;
                        }
                    } else {
                        i += 1;
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Num,
                    line,
                });
            }
            c if is_ident_start(c) => {
                // Raw strings / byte strings / raw identifiers share their
                // first letters with plain identifiers; disambiguate first.
                let start_line = line;
                if let Some(end) = raw_or_byte_string(b, i, &mut line) {
                    i = end;
                    out.tokens.push(Token {
                        tok: Tok::Lit,
                        line: start_line,
                    });
                    continue;
                }
                let mut j = i;
                if c == b'r' && b.get(i + 1) == Some(&b'#') && {
                    b.get(i + 2).copied().is_some_and(is_ident_start)
                } {
                    j = i + 2; // raw identifier: keep the name, drop `r#`
                }
                let start = j;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(src[start..j].to_string()),
                    line,
                });
                i = j;
            }
            _ => {
                out.tokens.push(Token {
                    tok: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Skip a `"…"` string starting at the opening quote; returns the index past
/// the closing quote and keeps the line counter honest across embedded
/// newlines.
fn skip_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            // An escape consumes the next char too; `\<newline>` (a string
            // continuation) still ends a source line and must be counted.
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// If position `i` starts a raw string (`r"`, `r#"`), byte string (`b"`,
/// `b'`), or raw byte string (`br"`, `br#"`), skip it and return the index
/// past its end.
fn raw_or_byte_string(b: &[u8], i: usize, line: &mut u32) -> Option<usize> {
    let (raw, mut j) = match (b[i], b.get(i + 1).copied()) {
        (b'r', Some(b'"' | b'#')) => (true, i + 1),
        (b'b', Some(b'"')) => (false, i + 1),
        (b'b', Some(b'\'')) => {
            // Byte char literal `b'x'` / `b'\n'`.
            let mut k = i + 2;
            if b.get(k) == Some(&b'\\') {
                k += 2;
            } else {
                k += 1;
            }
            while k < b.len() && b[k] != b'\'' {
                k += 1;
            }
            return Some((k + 1).min(b.len()));
        }
        (b'b', Some(b'r')) if matches!(b.get(i + 2), Some(b'"' | b'#')) => (true, i + 2),
        _ => return None,
    };
    if raw {
        let mut hashes = 0usize;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if b.get(j) != Some(&b'"') {
            return None; // `r#ident`, not a raw string
        }
        j += 1;
        loop {
            match b.get(j) {
                None => return Some(j),
                Some(b'\n') => {
                    *line += 1;
                    j += 1;
                }
                Some(b'"') => {
                    let mut k = j + 1;
                    let mut seen = 0usize;
                    while seen < hashes && b.get(k) == Some(&b'#') {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        return Some(k);
                    }
                    j += 1;
                }
                Some(_) => j += 1,
            }
        }
    } else {
        Some(skip_string(b, j, line))
    }
}

/// Remove test-only regions from a token stream: any item annotated
/// `#[cfg(test)]` or `#[test]`, and any `mod tests { … }` block. Returns the
/// tokens that belong to shipped (non-test) code.
pub fn strip_test_code(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        // `#[…]` attribute: decide whether it marks a test item.
        if tokens[i].tok == Tok::Punct('#')
            && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('['))
        {
            let (attr_end, is_test) = scan_attribute(tokens, i + 1);
            if is_test {
                // Consume any further attributes, then the whole item.
                let mut j = attr_end;
                while tokens.get(j).map(|t| &t.tok) == Some(&Tok::Punct('#'))
                    && tokens.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('['))
                {
                    j = scan_attribute(tokens, j + 1).0;
                }
                i = skip_item(tokens, j);
                continue;
            }
            // Not a test attribute: emit it verbatim.
            out.extend_from_slice(&tokens[i..attr_end]);
            i = attr_end;
            continue;
        }
        // Conventional `mod tests { … }` (covered by #[cfg(test)] in this
        // workspace, but the convention is worth honouring on its own).
        if tokens[i].tok == Tok::Ident("mod".into())
            && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Ident("tests".into()))
            && tokens.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct('{'))
        {
            i = skip_braced(tokens, i + 2);
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Scan an attribute whose `[` is at `open`. Returns (index past the closing
/// `]`, whether the attribute gates test-only code).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            Tok::Ident(name) => idents.push(name),
            _ => {}
        }
        i += 1;
    }
    let is_bare_test = idents.first() == Some(&"test");
    let is_cfg_test = idents.first() == Some(&"cfg") && idents.contains(&"test");
    (i, is_bare_test || is_cfg_test)
}

/// Skip one item starting at `i`: through the matching `}` of its first brace
/// block, or past a `;` reached before any brace (use/const/fn-declarations).
fn skip_item(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].tok {
            Tok::Punct('{') => return skip_braced(tokens, j),
            Tok::Punct(';') => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skip a brace block whose `{` is at `open`; returns the index past the
/// matching `}`.
fn skip_braced(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}
