//! `aesz-lint` — a dependency-free, token-level wire-safety analyzer for the
//! AE-SZ workspace.
//!
//! The decode paths of this repository (container/archive/stream headers,
//! the capped codec decoders, the push-based `StreamDecoder`) promise that
//! hostile bytes return `Err` — never a panic, never an attacker-sized
//! allocation. This tool makes that promise machine-checked:
//!
//! * **R1** — no `unwrap`/`expect`/`panic!`-family calls in decode paths;
//! * **R2** — no direct slice indexing where `.get()` is required;
//! * **R3** — no allocation sized by an uncapped variable;
//! * **R4** — no `as usize`/`as u32` narrowing casts;
//! * **R5** — every non-compat crate root carries `#![forbid(unsafe_code)]`.
//!
//! R1–R4 apply to the *deny-set* — the parse/decode surface listed in the
//! repo-root `lint.toml`; R5 applies to every non-compat crate. Sites the
//! rules cannot prove safe but a human can are annotated in place with
//! `// lint:allow(<rule>): <non-empty reason>`, and `lint-baseline.toml`
//! ratchets the unannotated counts: CI fails when any count rises, and
//! `--update-baseline` rewrites the file downward as violations are burned
//! off.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use rules::{Rule, Violation};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Repo-root configuration (`lint.toml`): the deny-set and scan exclusions.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Files (repo-relative, `/`-separated) under R1–R4.
    pub deny: Vec<String>,
    /// Directory prefixes never scanned (vendored shims, fixtures).
    pub exclude: Vec<String>,
}

impl Config {
    /// Parse the minimal TOML subset `lint.toml` uses: top-level
    /// `key = [ "string", … ]` arrays, possibly spanning lines, with `#`
    /// comments.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut key: Option<String> = None;
        let mut items: Vec<String> = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let line = if key.is_none() {
                match line.split_once('=') {
                    Some((k, rest)) => {
                        key = Some(k.trim().to_string());
                        rest.trim().to_string()
                    }
                    None => return Err(format!("lint.toml:{}: expected `key = [...]`", n + 1)),
                }
            } else {
                line
            };
            let mut rest = line.as_str();
            loop {
                rest = rest.trim_start_matches([',', ' ', '\t', '[']);
                if let Some(stripped) = rest.strip_prefix('"') {
                    let Some(end) = stripped.find('"') else {
                        return Err(format!("lint.toml:{}: unterminated string", n + 1));
                    };
                    items.push(stripped[..end].to_string());
                    rest = &stripped[end + 1..];
                    continue;
                }
                break;
            }
            if rest.trim_start_matches([',', ' ', '\t']).starts_with(']') {
                let k = key.take().unwrap_or_default();
                match k.as_str() {
                    "deny" => config.deny = std::mem::take(&mut items),
                    "exclude" => config.exclude = std::mem::take(&mut items),
                    other => return Err(format!("lint.toml: unknown key `{other}`")),
                }
            }
        }
        if key.is_some() {
            return Err("lint.toml: unterminated array".into());
        }
        Ok(config)
    }
}

fn strip_toml_comment(line: &str) -> &str {
    // Good enough for this file: `#` never appears inside our strings.
    line.split('#').next().unwrap_or(line)
}

/// Per-file, per-rule unannotated violation counts (`lint-baseline.toml`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub files: BTreeMap<String, BTreeMap<Rule, u32>>,
}

impl Baseline {
    /// Parse the `[[file]]` table-array format written by [`Baseline::render`].
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut baseline = Baseline::default();
        let mut current: Option<String> = None;
        for (n, raw) in text.lines().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[file]]" {
                current = None;
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(format!(
                    "lint-baseline.toml:{}: expected `key = value`",
                    n + 1
                ));
            };
            let (k, v) = (k.trim(), v.trim());
            if k == "path" {
                let path = v.trim_matches('"').to_string();
                baseline.files.entry(path.clone()).or_default();
                current = Some(path);
            } else if let Some(rule) = Rule::parse(k) {
                let count: u32 = v
                    .parse()
                    .map_err(|_| format!("lint-baseline.toml:{}: bad count `{v}`", n + 1))?;
                let Some(path) = &current else {
                    return Err(format!(
                        "lint-baseline.toml:{}: rule count before any `path`",
                        n + 1
                    ));
                };
                baseline
                    .files
                    .entry(path.clone())
                    .or_default()
                    .insert(rule, count);
            } else {
                return Err(format!("lint-baseline.toml:{}: unknown key `{k}`", n + 1));
            }
        }
        Ok(baseline)
    }

    /// Serialize in a stable order, ready to commit.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Unannotated wire-safety violations per deny-set file (see lint.toml).\n\
             # The ratchet only turns one way: CI fails if any count rises; run\n\
             # `cargo run -p aesz-lint -- --update-baseline` after burning one down.\n",
        );
        for (path, counts) in &self.files {
            let _ = write!(out, "\n[[file]]\npath = \"{path}\"\n");
            for rule in [Rule::R1, Rule::R2, Rule::R3, Rule::R4] {
                let _ = writeln!(
                    out,
                    "{} = {}",
                    rule.name(),
                    counts.get(&rule).copied().unwrap_or(0)
                );
            }
        }
        out
    }

    pub fn allowed(&self, path: &str, rule: Rule) -> u32 {
        self.files
            .get(path)
            .and_then(|c| c.get(&rule))
            .copied()
            .unwrap_or(0)
    }
}

/// A `// lint:allow(<rules>): <reason>` annotation found in a source file.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rules: Vec<Rule>,
    pub reason: String,
    /// Line of the comment itself.
    pub line: u32,
    /// Line of the code the annotation covers (same line for trailing
    /// comments, the next code line for comments on their own line).
    pub target: u32,
}

/// Extract and validate the allow annotations of one lexed file. Malformed
/// or reason-less annotations are hard errors (pushed into `errors`).
fn collect_allows(lexed: &lexer::Lexed, path: &str, errors: &mut Vec<String>) -> Vec<Allow> {
    let code_lines: std::collections::BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let mut allows = Vec::new();
    for comment in &lexed.comments {
        let text = comment.text.trim();
        let Some(rest) = text.strip_prefix("lint:allow") else {
            continue;
        };
        let parse = || -> Option<(Vec<Rule>, String)> {
            let rest = rest.strip_prefix('(')?;
            let (names, after) = rest.split_once(')')?;
            let rules = names
                .split(',')
                .map(Rule::parse)
                .collect::<Option<Vec<_>>>()?;
            let reason = after.strip_prefix(':')?.trim().to_string();
            if rules.is_empty() || reason.is_empty() {
                return None;
            }
            Some((rules, reason))
        };
        match parse() {
            Some((rules, reason)) => {
                let target = if code_lines.contains(&comment.line) {
                    comment.line
                } else {
                    code_lines
                        .range(comment.line..)
                        .next()
                        .copied()
                        .unwrap_or(comment.line)
                };
                allows.push(Allow {
                    rules,
                    reason,
                    line: comment.line,
                    target,
                });
            }
            None => errors.push(format!(
                "{path}:{}: malformed annotation `// {text}` — the form is \
                 `// lint:allow(R2): non-empty reason`",
                comment.line
            )),
        }
    }
    allows
}

/// One checked file's outcome.
#[derive(Debug)]
pub struct FileReport {
    pub path: String,
    /// Violations with no covering annotation — what the baseline counts.
    pub unannotated: Vec<Violation>,
    /// Violations covered by a `lint:allow` (kept for `--verbose` listings).
    pub annotated: Vec<(Violation, String)>,
}

/// The whole run's outcome.
#[derive(Debug, Default)]
pub struct Report {
    pub files: Vec<FileReport>,
    /// Hard errors independent of the baseline: malformed annotations,
    /// missing `#![forbid(unsafe_code)]`, unreadable config.
    pub errors: Vec<String>,
    /// Ratchet regressions: (path, rule, count, allowed).
    pub regressions: Vec<(String, Rule, u32, u32)>,
    /// Entries where the live count undercuts the baseline — the nudge to
    /// ratchet down.
    pub improvements: Vec<(String, Rule, u32, u32)>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty() && self.regressions.is_empty()
    }

    /// Current unannotated counts in baseline form.
    pub fn to_baseline(&self) -> Baseline {
        let mut baseline = Baseline::default();
        for file in &self.files {
            let counts = baseline.files.entry(file.path.clone()).or_default();
            for rule in [Rule::R1, Rule::R2, Rule::R3, Rule::R4] {
                counts.insert(rule, 0);
            }
            for v in &file.unannotated {
                *counts.entry(v.rule).or_insert(0) += 1;
            }
        }
        baseline
    }
}

/// Check one source file against R1–R4, honouring its annotations.
pub fn check_file(path: &str, source: &str) -> (FileReport, Vec<String>) {
    let lexed = lexer::lex(source);
    let mut errors = Vec::new();
    let allows = collect_allows(&lexed, path, &mut errors);
    let stripped = lexer::strip_test_code(&lexed.tokens);
    let lines: Vec<&str> = source.lines().collect();
    let violations = rules::check_tokens(&stripped, &lines);
    let mut report = FileReport {
        path: path.to_string(),
        unannotated: Vec::new(),
        annotated: Vec::new(),
    };
    for v in violations {
        let covering = allows
            .iter()
            .find(|a| a.target == v.line && a.rules.contains(&v.rule));
        match covering {
            Some(a) => report.annotated.push((v, a.reason.clone())),
            None => report.unannotated.push(v),
        }
    }
    (report, errors)
}

/// Does a crate-root source carry `#![forbid(unsafe_code)]`?
pub fn has_forbid_unsafe(source: &str) -> bool {
    source
        .lines()
        .any(|l| l.replace(' ', "").starts_with("#![forbid(unsafe_code)]"))
}

/// Walk `root`, run every check, compare against `baseline`.
pub fn run(root: &Path, config: &Config, baseline: &Baseline) -> Report {
    let mut report = Report::default();

    // R1–R4 over the deny-set.
    for rel in &config.deny {
        let path = root.join(rel);
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                report
                    .errors
                    .push(format!("{rel}: cannot read deny-set file: {e}"));
                continue;
            }
        };
        let (file, mut errors) = check_file(rel, &source);
        report.errors.append(&mut errors);
        let mut counts: BTreeMap<Rule, u32> = BTreeMap::new();
        for v in &file.unannotated {
            *counts.entry(v.rule).or_insert(0) += 1;
        }
        for rule in [Rule::R1, Rule::R2, Rule::R3, Rule::R4] {
            let count = counts.get(&rule).copied().unwrap_or(0);
            let allowed = baseline.allowed(rel, rule);
            if count > allowed {
                report.regressions.push((rel.clone(), rule, count, allowed));
            } else if count < allowed {
                report
                    .improvements
                    .push((rel.clone(), rule, count, allowed));
            }
        }
        report.files.push(file);
    }

    // R5 over every non-compat crate root, plus annotation syntax everywhere.
    for crate_root in find_crate_roots(root, config) {
        let rel = rel_path(root, &crate_root);
        match std::fs::read_to_string(&crate_root) {
            Ok(source) => {
                if !has_forbid_unsafe(&source) {
                    report.errors.push(format!(
                        "{rel}: crate root lacks `#![forbid(unsafe_code)]` (R5)"
                    ));
                }
            }
            Err(e) => report.errors.push(format!("{rel}: cannot read: {e}")),
        }
    }
    report
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Every crate root (`src/lib.rs`, else `src/main.rs`) of every `Cargo.toml`
/// under `root`, excluding the configured prefixes.
fn find_crate_roots(root: &Path, config: &Config) -> Vec<PathBuf> {
    let mut manifests = Vec::new();
    walk(root, root, config, &mut |path| {
        if path.file_name().is_some_and(|n| n == "Cargo.toml") {
            manifests.push(path.to_path_buf());
        }
    });
    let mut roots = Vec::new();
    for manifest in manifests {
        let dir = manifest.parent().unwrap_or(root);
        for candidate in ["src/lib.rs", "src/main.rs"] {
            let path = dir.join(candidate);
            if path.is_file() {
                roots.push(path);
                break;
            }
        }
    }
    roots.sort();
    roots
}

fn walk(root: &Path, dir: &Path, config: &Config, f: &mut impl FnMut(&Path)) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let rel = rel_path(root, &path);
        if config.exclude.iter().any(|e| rel.starts_with(e.as_str()))
            || rel.starts_with('.')
            || rel.starts_with("target")
        {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, config, f);
        } else {
            f(&path);
        }
    }
}
