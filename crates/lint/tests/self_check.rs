//! The linter run against this repository itself, exactly as the CI `--check`
//! step runs it: the committed baseline must hold, every annotation must be
//! well-formed, and — because the deny-set is fully burned down — every
//! baseline count must be zero so the decode surface ships panic-free.

use aesz_lint::{run, Baseline, Config};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

#[test]
fn the_repo_is_clean_against_its_committed_baseline() {
    let root = repo_root();
    let config = Config::parse(&std::fs::read_to_string(root.join("lint.toml")).unwrap()).unwrap();
    let baseline =
        Baseline::parse(&std::fs::read_to_string(root.join("lint-baseline.toml")).unwrap())
            .unwrap();
    let report = run(&root, &config, &baseline);
    assert!(
        report.errors.is_empty(),
        "hard errors:\n{}",
        report.errors.join("\n")
    );
    let regressions: Vec<String> = report
        .regressions
        .iter()
        .map(|(p, r, c, a)| format!("{p}: {} {c} > baseline {a}", r.name()))
        .collect();
    assert!(regressions.is_empty(), "{}", regressions.join("\n"));
}

#[test]
fn the_committed_baseline_is_fully_burned_down() {
    let root = repo_root();
    let baseline =
        Baseline::parse(&std::fs::read_to_string(root.join("lint-baseline.toml")).unwrap())
            .unwrap();
    for (path, counts) in &baseline.files {
        for (rule, count) in counts {
            assert_eq!(
                *count,
                0,
                "{path} still allows {count} unannotated {} violations",
                rule.name()
            );
        }
    }
}
