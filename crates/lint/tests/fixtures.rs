//! Rule-level fixture tests: each fixture file triggers exactly the
//! violations asserted here, at the exact lines asserted here. Line numbers
//! are load-bearing — they pin the lexer's line accounting (strings, raw
//! strings, comments, backslash-newline continuations) as much as the rules
//! themselves.

use aesz_lint::check_file;
use aesz_lint::rules::Rule;

/// Unannotated (rule, line) pairs of a fixture, asserting no hard errors.
fn unannotated(src: &str) -> Vec<(Rule, u32)> {
    let (report, errors) = check_file("fixture.rs", src);
    assert!(errors.is_empty(), "unexpected hard errors: {errors:?}");
    report
        .unannotated
        .iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn r1_flags_unwrap_and_panic_at_exact_lines() {
    let got = unannotated(include_str!("fixtures/r1.rs"));
    assert_eq!(got, vec![(Rule::R1, 2), (Rule::R1, 6)]);
}

#[test]
fn r2_flags_runtime_indices_but_not_const_ones() {
    let got = unannotated(include_str!("fixtures/r2.rs"));
    // `buf[i]` is flagged; `buf[0]` and `&buf[..HEADER_LEN]` are exempt.
    assert_eq!(got, vec![(Rule::R2, 4)]);
}

#[test]
fn r3_flags_uncapped_capacity_but_not_min_or_len() {
    let got = unannotated(include_str!("fixtures/r3.rs"));
    assert_eq!(got, vec![(Rule::R3, 2)]);
}

#[test]
fn r4_flags_narrowing_casts_but_not_widening_ones() {
    let got = unannotated(include_str!("fixtures/r4.rs"));
    assert_eq!(got, vec![(Rule::R4, 2)]);
}

#[test]
fn clean_fixture_is_clean_including_its_test_module() {
    let got = unannotated(include_str!("fixtures/clean.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn allow_with_reason_covers_own_line_and_next_code_line() {
    let (report, errors) = check_file("fixture.rs", include_str!("fixtures/allow_ok.rs"));
    assert!(errors.is_empty(), "{errors:?}");
    assert!(report.unannotated.is_empty(), "{:?}", report.unannotated);
    assert_eq!(report.annotated.len(), 2);
}

#[test]
fn allow_without_reason_is_a_hard_error_not_a_suppression() {
    let (report, errors) = check_file("fixture.rs", include_str!("fixtures/allow_bad.rs"));
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert!(errors[0].contains("malformed annotation"), "{}", errors[0]);
    // The malformed annotation must NOT silence the violation.
    assert_eq!(report.unannotated.len(), 1);
    assert_eq!(report.unannotated[0].rule, Rule::R1);
}

#[test]
fn backslash_newline_continuations_still_count_source_lines() {
    // The string literal spans lines 2-4 via `\<newline>` continuations; a
    // lexer that skips the escaped newline reports the unwrap 2 lines early.
    let got = unannotated(include_str!("fixtures/continuation.rs"));
    assert_eq!(got, vec![(Rule::R1, 9)]);
}
