fn narrow(n: u64) -> usize {
    n as usize
}

fn widen(n: u8) -> u64 {
    n as u64
}
