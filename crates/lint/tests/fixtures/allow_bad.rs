fn decode(v: Option<u8>) -> u8 {
    // lint:allow(R1):
    v.unwrap()
}
