fn alloc(n: usize) -> Vec<u8> {
    Vec::with_capacity(n)
}

fn alloc_capped(n: usize) -> Vec<u8> {
    Vec::with_capacity(n.min(4096))
}

fn alloc_proportional(data: &[u8]) -> Vec<u8> {
    Vec::with_capacity(data.len())
}
