const HEADER_LEN: usize = 4;

fn at(buf: &[u8], i: usize) -> u8 {
    buf[i]
}

fn first(buf: &[u8]) -> u8 {
    buf[0]
}

fn header(buf: &[u8]) -> &[u8] {
    &buf[..HEADER_LEN]
}
