fn decode(v: Option<u8>) -> u8 {
    v.unwrap()
}

fn fail() -> u8 {
    panic!("boom")
}
