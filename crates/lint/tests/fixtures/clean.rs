fn read(buf: &[u8], i: usize) -> Option<u8> {
    buf.get(i).copied()
}

fn narrow(n: u64) -> Option<usize> {
    usize::try_from(n).ok()
}

fn looks_like_code_but_is_a_string() -> &'static str {
    "buf[i].unwrap() as usize // vec![0; n]"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic_and_index() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let buf = [0u8; 4];
        let i = 1;
        let _ = buf[i];
        let _ = (7u64) as usize;
    }
}
