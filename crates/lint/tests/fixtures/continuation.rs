fn message() -> String {
    let s = "a string whose backslash-newline \
continuation \
spans three source lines";
    s.to_string()
}

fn after_continuation(v: Option<u8>) -> u8 {
    v.unwrap()
}
