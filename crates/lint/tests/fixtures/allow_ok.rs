fn decode(v: Option<u8>) -> u8 {
    // lint:allow(R1): the caller has already checked is_some
    v.unwrap()
}

fn trailing(v: Option<u8>) -> u8 {
    v.unwrap() // lint:allow(R1): same-line trailing annotation
}
