//! Ratchet semantics over a throwaway repo root: the baseline only holds or
//! tightens, and going above it is a regression.

use aesz_lint::rules::Rule;
use aesz_lint::{run, Baseline, Config};
use std::path::PathBuf;

/// A scratch repo root holding one deny-set file with `src` as its contents.
fn scratch_root(name: &str, src: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("src")).unwrap();
    std::fs::write(root.join("src/parse.rs"), src).unwrap();
    root
}

fn deny_parse() -> Config {
    Config::parse("deny = [\"src/parse.rs\"]\nexclude = []").unwrap()
}

const ONE_VIOLATION: &str = "fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n";
const NO_VIOLATION: &str = "fn f(v: Option<u8>) -> Option<u8> {\n    v\n}\n";

fn baseline(r1: u32) -> Baseline {
    Baseline::parse(&format!(
        "[[file]]\npath = \"src/parse.rs\"\nR1 = {r1}\nR2 = 0\nR3 = 0\nR4 = 0\n"
    ))
    .unwrap()
}

#[test]
fn count_at_baseline_is_clean() {
    let root = scratch_root("ratchet_at", ONE_VIOLATION);
    let report = run(&root, &deny_parse(), &baseline(1));
    assert!(report.is_clean(), "{report:?}");
    assert!(report.improvements.is_empty());
}

#[test]
fn count_above_baseline_is_a_regression() {
    let root = scratch_root("ratchet_above", ONE_VIOLATION);
    let report = run(&root, &deny_parse(), &baseline(0));
    assert!(!report.is_clean());
    assert_eq!(
        report.regressions,
        vec![("src/parse.rs".to_string(), Rule::R1, 1, 0)]
    );
}

#[test]
fn count_below_baseline_is_an_improvement_to_ratchet_down() {
    let root = scratch_root("ratchet_below", NO_VIOLATION);
    let report = run(&root, &deny_parse(), &baseline(1));
    assert!(report.is_clean(), "undercutting the baseline must not fail");
    assert_eq!(
        report.improvements,
        vec![("src/parse.rs".to_string(), Rule::R1, 0, 1)]
    );
    // --update-baseline writes the tightened counts.
    let updated = report.to_baseline();
    assert_eq!(updated.files["src/parse.rs"][&Rule::R1], 0);
}

#[test]
fn baseline_render_parse_roundtrips() {
    let root = scratch_root("ratchet_roundtrip", ONE_VIOLATION);
    let report = run(&root, &deny_parse(), &baseline(1));
    let b = report.to_baseline();
    assert_eq!(Baseline::parse(&b.render()).unwrap(), b);
}

#[test]
fn missing_deny_set_file_is_a_hard_error() {
    let root = scratch_root("ratchet_missing", ONE_VIOLATION);
    let config = Config::parse("deny = [\"src/gone.rs\"]\nexclude = []").unwrap();
    let report = run(&root, &config, &Baseline::default());
    assert!(!report.is_clean());
    assert!(
        report.errors[0].contains("cannot read"),
        "{:?}",
        report.errors
    );
}
