//! Generalized Divisive Normalization (GDN) and its inverse (iGDN).
//!
//! GDN (Ballé et al.) normalises each channel by a learned combination of the
//! squared activations of all channels at the same spatial position:
//!
//! `y_c = x_c / sqrt(β_c + Σ_j γ_{c,j} · x_j²)`
//!
//! and iGDN multiplies instead of dividing. The paper replaces every classic
//! activation in AE-SZ with GDN/iGDN (encoder/decoder respectively) and
//! reports better reconstruction quality than ReLU/LeakyReLU/BatchNorm.
//!
//! β and γ must stay positive; they are stored as raw parameters whose squares
//! are used in the forward pass, which keeps the constraint differentiable.

use crate::conv::Act5;
use crate::infer::{NnScratch, Shape};
use crate::layer::{Layer, NnError, Param};
use aesz_tensor::Tensor;

/// Shared implementation of GDN (divide) and iGDN (multiply).
#[derive(Clone)]
pub struct Gdn {
    /// Raw β parameters; effective β = raw² + ε.
    beta_raw: Param,
    /// Raw γ parameters (C×C); effective γ = raw².
    gamma_raw: Param,
    channels: usize,
    spatial_rank: usize,
    inverse: bool,
    cached_input: Option<Tensor>,
}

const BETA_EPS: f32 = 1e-6;

impl Gdn {
    /// New GDN (`inverse = false`) or iGDN (`inverse = true`) over `channels`.
    pub fn new(spatial_rank: usize, channels: usize, inverse: bool) -> Self {
        // β starts at 1, γ at 0.1 on the diagonal and a small positive value
        // elsewhere so off-diagonal interactions can still receive gradient.
        let beta_raw = Tensor::ones(&[channels]);
        let mut gamma = vec![0.05f32; channels * channels];
        for c in 0..channels {
            gamma[c * channels + c] = 0.1f32.sqrt();
        }
        Gdn {
            beta_raw: Param::new(beta_raw),
            gamma_raw: Param::new(Tensor::from_vec(&[channels, channels], gamma).expect("shape")),
            channels,
            spatial_rank,
            inverse,
            cached_input: None,
        }
    }

    /// Effective (positive) β values.
    fn beta(&self) -> Vec<f32> {
        self.beta_raw
            .value
            .as_slice()
            .iter()
            .map(|&b| b * b + BETA_EPS)
            .collect()
    }

    /// Effective (non-negative) γ values.
    fn gamma(&self) -> Vec<f32> {
        self.gamma_raw
            .value
            .as_slice()
            .iter()
            .map(|&g| g * g)
            .collect()
    }

    /// Shape checks shared by both forward entry points.
    fn validate(&self, shape: &[usize]) -> Result<Act5, NnError> {
        let layer: &'static str = if self.inverse { "iGDN" } else { "GDN" };
        let a = Act5::try_from_shape(shape, self.spatial_rank, layer)?;
        if a.c != self.channels {
            return Err(NnError {
                layer,
                problem: "channel count mismatch",
                expected: self.channels,
                got: a.c,
            });
        }
        Ok(a)
    }

    /// Normalisation core shared by `try_forward` and `infer_into`. The
    /// effective β/γ coefficients and the per-position squares live in
    /// `scratch.coeff` (partitioned `[β C | γ C² | x² C]`), so the hot loop
    /// is allocation-free; the arithmetic and its order are unchanged from
    /// the original forward pass.
    fn run(&self, x: &[f32], a: Act5, out: &mut [f32], scratch: &mut NnScratch) {
        let c = a.c;
        scratch.coeff.clear();
        scratch.coeff.resize(c + c * c + c, 0.0);
        let (beta, rest) = scratch.coeff.split_at_mut(c);
        let (gamma, sq) = rest.split_at_mut(c * c);
        for (b_eff, &b) in beta.iter_mut().zip(self.beta_raw.value.as_slice()) {
            *b_eff = b * b + BETA_EPS;
        }
        for (g_eff, &g) in gamma.iter_mut().zip(self.gamma_raw.value.as_slice()) {
            *g_eff = g * g;
        }
        let spatial = a.spatial_len();
        for n in 0..a.n {
            let base = n * c * spatial;
            for s in 0..spatial {
                // Gather x_j² at this position.
                for (j, sqj) in sq.iter_mut().enumerate() {
                    let v = x[base + j * spatial + s];
                    *sqj = v * v;
                }
                for ch in 0..c {
                    let mut denom = beta[ch];
                    let grow = &gamma[ch * c..(ch + 1) * c];
                    for j in 0..c {
                        denom += grow[j] * sq[j];
                    }
                    let xc = x[base + ch * spatial + s];
                    out[base + ch * spatial + s] = if self.inverse {
                        xc * denom.sqrt()
                    } else {
                        xc / denom.sqrt()
                    };
                }
            }
        }
    }
}

impl Layer for Gdn {
    fn name(&self) -> &'static str {
        if self.inverse {
            "iGDN"
        } else {
            "GDN"
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn try_forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let a = self.validate(input.shape())?;
        let mut out = vec![0.0f32; input.len()];
        let mut scratch = NnScratch::new();
        self.run(input.as_slice(), a, &mut out, &mut scratch);
        self.cached_input = Some(input.clone());
        Ok(Tensor::from_vec(input.shape(), out).expect("consistent shape"))
    }

    fn infer_into(
        &self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        scratch: &mut NnScratch,
    ) -> Result<Shape, NnError> {
        let a = self.validate(shape.dims())?;
        if input.len() != shape.len() {
            return Err(NnError {
                layer: if self.inverse { "iGDN" } else { "GDN" },
                problem: "input length does not match shape",
                expected: shape.len(),
                got: input.len(),
            });
        }
        out.resize(input.len(), 0.0);
        self.run(input, a, out, scratch);
        Ok(shape)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let a = Act5::from_shape(input.shape(), self.spatial_rank);
        let beta = self.beta();
        let gamma = self.gamma();
        let x = input.as_slice();
        let go = grad_output.as_slice();
        let spatial = a.spatial_len();

        let beta_raw = self.beta_raw.value.as_slice().to_vec();
        let gamma_raw = self.gamma_raw.value.as_slice().to_vec();
        let gbeta_raw = self.beta_raw.grad.as_mut_slice();
        let ggamma_raw = self.gamma_raw.grad.as_mut_slice();
        let mut gx = vec![0.0f32; x.len()];

        for n in 0..a.n {
            let base = n * a.c * spatial;
            for s in 0..spatial {
                let mut xs = vec![0.0f32; a.c];
                let mut sq = vec![0.0f32; a.c];
                for j in 0..a.c {
                    let v = x[base + j * spatial + s];
                    xs[j] = v;
                    sq[j] = v * v;
                }
                for c in 0..a.c {
                    let g = go[base + c * spatial + s];
                    if g == 0.0 {
                        continue;
                    }
                    let grow = &gamma[c * a.c..(c + 1) * a.c];
                    let mut denom = beta[c];
                    for j in 0..a.c {
                        denom += grow[j] * sq[j];
                    }
                    let xc = xs[c];
                    if self.inverse {
                        let root = denom.sqrt();
                        let inv_root = 1.0 / root;
                        // dy/dx_k = δ_ck·√denom + x_c·γ_ck·x_k/√denom
                        gx[base + c * spatial + s] += g * root;
                        for k in 0..a.c {
                            gx[base + k * spatial + s] += g * xc * grow[k] * xs[k] * inv_root;
                        }
                        // dy/dβ_c = x_c / (2√denom); dy/dγ_cj = x_c·x_j² / (2√denom)
                        let dbeta = g * xc * 0.5 * inv_root;
                        gbeta_raw[c] += dbeta * 2.0 * beta_raw[c];
                        for j in 0..a.c {
                            let dgamma = g * xc * 0.5 * inv_root * sq[j];
                            ggamma_raw[c * a.c + j] += dgamma * 2.0 * gamma_raw[c * a.c + j];
                        }
                    } else {
                        let inv_root = 1.0 / denom.sqrt();
                        let inv_3 = inv_root / denom;
                        // dy/dx_k = δ_ck/√denom − x_c·γ_ck·x_k/denom^{3/2}
                        gx[base + c * spatial + s] += g * inv_root;
                        for k in 0..a.c {
                            gx[base + k * spatial + s] -= g * xc * grow[k] * xs[k] * inv_3;
                        }
                        // dy/dβ_c = −x_c/(2·denom^{3/2}); dy/dγ_cj adds x_j².
                        let dbeta = -g * xc * 0.5 * inv_3;
                        gbeta_raw[c] += dbeta * 2.0 * beta_raw[c];
                        for j in 0..a.c {
                            let dgamma = -g * xc * 0.5 * inv_3 * sq[j];
                            ggamma_raw[c * a.c + j] += dgamma * 2.0 * gamma_raw[c * a.c + j];
                        }
                    }
                }
            }
        }
        Tensor::from_vec(input.shape(), gx).expect("consistent shape")
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.beta_raw, &mut self.gamma_raw]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.beta_raw, &self.gamma_raw]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::grad_check_input;
    use aesz_tensor::init::{normal, rng};

    #[test]
    fn forward_matches_closed_form_for_single_channel() {
        // With one channel, β = 1 + ε and γ = 0.1: y = x / sqrt(1 + 0.1 x²).
        let mut gdn = Gdn::new(2, 1, false);
        let x = Tensor::from_vec(&[1, 1, 1, 3], vec![0.0, 1.0, -2.0]).unwrap();
        let y = gdn.forward(&x);
        let expect = |v: f32| v / (1.0 + BETA_EPS + 0.1 * v * v).sqrt();
        for (a, &b) in y.as_slice().iter().zip(x.as_slice()) {
            assert!((a - expect(b)).abs() < 1e-4, "{a} vs {}", expect(b));
        }
    }

    #[test]
    fn igdn_approximately_inverts_gdn_for_small_inputs() {
        let mut gdn = Gdn::new(2, 4, false);
        let mut igdn = Gdn::new(2, 4, true);
        let mut r = rng(1);
        let x = normal(&[2, 4, 3, 3], 0.0, 0.1, &mut r);
        let y = gdn.forward(&x);
        let z = igdn.forward(&y);
        // With identical fresh parameters the composition is close to the identity
        // for small activations (denominators near β = 1).
        for (a, b) in x.as_slice().iter().zip(z.as_slice()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn gradient_check_gdn() {
        let mut gdn = Gdn::new(2, 3, false);
        let mut r = rng(2);
        let x = normal(&[1, 3, 4, 4], 0.0, 1.0, &mut r);
        let err = grad_check_input(&mut gdn, &x, 1e-3);
        assert!(err < 2e-2, "relative gradient error {err}");
    }

    #[test]
    fn gradient_check_igdn_3d() {
        let mut igdn = Gdn::new(3, 2, true);
        let mut r = rng(3);
        let x = normal(&[1, 2, 3, 3, 3], 0.0, 1.0, &mut r);
        let err = grad_check_input(&mut igdn, &x, 1e-3);
        assert!(err < 2e-2, "relative gradient error {err}");
    }

    #[test]
    fn infer_into_matches_forward_bitwise() {
        for inverse in [false, true] {
            let mut gdn = Gdn::new(2, 3, inverse);
            let mut r = rng(4);
            let x = normal(&[2, 3, 4, 4], 0.0, 1.0, &mut r);
            let y = gdn.forward(&x);
            let mut out = Vec::new();
            let mut scratch = NnScratch::new();
            let shape = gdn
                .infer_into(x.as_slice(), Shape::new(x.shape()), &mut out, &mut scratch)
                .expect("valid shape");
            assert_eq!(shape.dims(), y.shape());
            let fwd: Vec<u32> = y.as_slice().iter().map(|v| v.to_bits()).collect();
            let inf: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fwd, inf, "inverse={inverse}");
        }
    }

    #[test]
    fn parameters_stay_positive_under_the_reparameterisation() {
        let gdn = Gdn::new(2, 8, false);
        assert!(gdn.beta().iter().all(|&b| b > 0.0));
        assert!(gdn.gamma().iter().all(|&g| g >= 0.0));
        assert_eq!(gdn.params().len(), 2);
        assert_eq!(gdn.num_params(), 8 + 64);
    }
}
