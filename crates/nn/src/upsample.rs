//! Nearest-neighbour upsampling (the decoder's resolution-doubling step).
//!
//! The paper's decoder uses strided *deconvolutions*; this implementation uses
//! nearest-neighbour upsampling followed by a stride-1 convolution instead —
//! the standard "resize-convolution" alternative that avoids checkerboard
//! artefacts and needs no extra parameters. DESIGN.md records this
//! substitution; the representational role (doubling the spatial size while
//! mixing channels) is identical.

use crate::conv::Act5;
use crate::infer::{NnScratch, Shape};
use crate::layer::{Layer, NnError};
use aesz_tensor::Tensor;

/// Repeat each spatial cell `factor` times along every spatial axis.
#[derive(Clone)]
pub struct Upsample {
    factor: usize,
    spatial_rank: usize,
    cached_in_shape: Option<Vec<usize>>,
}

impl Upsample {
    /// New upsampling layer for 2D or 3D activations.
    pub fn new(spatial_rank: usize, factor: usize) -> Self {
        assert!(spatial_rank == 2 || spatial_rank == 3);
        assert!(factor >= 1);
        Upsample {
            factor,
            spatial_rank,
            cached_in_shape: None,
        }
    }

    fn output_act(&self, ia: Act5) -> Act5 {
        let f = self.factor;
        let fd = if self.spatial_rank == 2 { 1 } else { f };
        Act5 {
            n: ia.n,
            c: ia.c,
            d: ia.d * fd,
            h: ia.h * f,
            w: ia.w * f,
        }
    }

    /// Replication core shared by `try_forward` and `infer_into` (pure data
    /// movement, so bit-identity between the two paths is trivial).
    fn run(&self, x: &[f32], ia: Act5, oa: Act5, out: &mut [f32]) {
        let f = self.factor;
        let fd = if self.spatial_rank == 2 { 1 } else { f };
        for n in 0..oa.n {
            for c in 0..oa.c {
                for od in 0..oa.d {
                    for oh in 0..oa.h {
                        for ow in 0..oa.w {
                            let (id, ih, iw) = (od / fd, oh / f, ow / f);
                            let src = ((n * ia.c + c) * ia.d + id) * ia.h * ia.w + ih * ia.w + iw;
                            let dst = ((n * oa.c + c) * oa.d + od) * oa.h * oa.w + oh * oa.w + ow;
                            out[dst] = x[src];
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Upsample {
    fn name(&self) -> &'static str {
        "Upsample"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn try_forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let ia = Act5::try_from_shape(input.shape(), self.spatial_rank, "Upsample")?;
        let oa = self.output_act(ia);
        let mut out = vec![0.0f32; oa.n * oa.sample_len()];
        self.run(input.as_slice(), ia, oa, &mut out);
        self.cached_in_shape = Some(input.shape().to_vec());
        Ok(Tensor::from_vec(&oa.to_shape(self.spatial_rank), out).expect("consistent shape"))
    }

    fn infer_into(
        &self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        _scratch: &mut NnScratch,
    ) -> Result<Shape, NnError> {
        let ia = Act5::try_from_shape(shape.dims(), self.spatial_rank, "Upsample")?;
        if input.len() != shape.len() {
            return Err(NnError {
                layer: "Upsample",
                problem: "input length does not match shape",
                expected: shape.len(),
                got: input.len(),
            });
        }
        let oa = self.output_act(ia);
        out.resize(oa.n * oa.sample_len(), 0.0);
        self.run(input, ia, oa, out);
        Ok(oa.to_infer_shape(self.spatial_rank))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let in_shape = self
            .cached_in_shape
            .as_ref()
            .expect("backward called before forward");
        let ia = Act5::from_shape(in_shape, self.spatial_rank);
        let oa = Act5::from_shape(grad_output.shape(), self.spatial_rank);
        let f = self.factor;
        let fd = if self.spatial_rank == 2 { 1 } else { f };
        let go = grad_output.as_slice();
        let mut gx = vec![0.0f32; ia.n * ia.sample_len()];
        for n in 0..oa.n {
            for c in 0..oa.c {
                for od in 0..oa.d {
                    for oh in 0..oa.h {
                        for ow in 0..oa.w {
                            let (id, ih, iw) = (od / fd, oh / f, ow / f);
                            let src = ((n * ia.c + c) * ia.d + id) * ia.h * ia.w + ih * ia.w + iw;
                            let dst = ((n * oa.c + c) * oa.d + od) * oa.h * oa.w + oh * oa.w + ow;
                            gx[src] += go[dst];
                        }
                    }
                }
            }
        }
        Tensor::from_vec(in_shape, gx).expect("consistent shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::grad_check_input;
    use aesz_tensor::init::{normal, rng};

    #[test]
    fn upsample_2x_repeats_values() {
        let mut up = Upsample::new(2, 2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = up.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.at(&[0, 0, 0, 1]), 1.0);
        assert_eq!(y.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(y.at(&[0, 0, 3, 3]), 4.0);
    }

    #[test]
    fn upsample_3d_doubles_every_axis() {
        let mut up = Upsample::new(3, 2);
        let x = Tensor::ones(&[2, 3, 2, 2, 2]);
        assert_eq!(up.forward(&x).shape(), &[2, 3, 4, 4, 4]);
    }

    #[test]
    fn backward_sums_gradient_of_copies() {
        let mut up = Upsample::new(2, 2);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let _ = up.forward(&x);
        let g = Tensor::ones(&[1, 1, 4, 4]);
        let gx = up.backward(&g);
        // Each input cell fed 4 output cells.
        assert_eq!(gx.as_slice(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn gradient_check() {
        let mut r = rng(7);
        let mut up = Upsample::new(3, 2);
        let x = normal(&[1, 2, 3, 3, 3], 0.0, 1.0, &mut r);
        let err = grad_check_input(&mut up, &x, 1e-3);
        assert!(err < 1e-2, "relative gradient error {err}");
    }

    #[test]
    fn factor_one_is_identity() {
        let mut up = Upsample::new(2, 1);
        let mut r = rng(8);
        let x = normal(&[1, 2, 3, 3], 0.0, 1.0, &mut r);
        assert_eq!(up.forward(&x), x);
    }
}
