//! `im2col`/`col2im` packing: lowering N-dimensional convolution onto the
//! [`gemm`](crate::gemm) micro-kernel.
//!
//! `im2col` unfolds one input sample into a column panel `B: (K, P)` where
//! `K = channels · kd·kh·kw` ranges over the kernel taps in the weight
//! layout's `(ci, dk, hk, wk)` order and `P` ranges over a contiguous run of
//! output positions. Out-of-bounds taps (same-padding) become explicit `0.0`
//! entries, so `W·B` sums each output element in exactly the direct loop's
//! tap order with the padded taps contributing `+0.0` — bit-identical for
//! finite weights (see the [`gemm`](crate::gemm) module docs for the one
//! caveat). Panels are caller-sized so the column buffer can be held to a
//! cache-friendly footprint regardless of the activation size.
//!
//! `col2im` is the adjoint scatter-add (the decode-side pairing a strided
//! transpose convolution would use; the current decoder substitutes
//! upsample + convolution, so it is exercised by the differential harness
//! only). Both directions keep scalar reference twins; the harness demands
//! bitwise equality.

/// Geometry of one convolution lowering: a single sample's input extents,
/// kernel, stride and padding, with the output extents derived. 2D data uses
/// depth extent 1 with a 1×k×k kernel, exactly like
/// [`ConvNd`](crate::conv::ConvNd).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub channels: usize,
    /// Input spatial extents `(d, h, w)`.
    pub in_dhw: [usize; 3],
    /// Kernel extents `(kd, kh, kw)`.
    pub kernel_dhw: [usize; 3],
    /// Strides `(sd, sh, sw)`.
    pub stride_dhw: [usize; 3],
    /// Leading pads `(pd, ph, pw)` (same-padding uses `k/2`).
    pub pad_dhw: [usize; 3],
    /// Output spatial extents `(d, h, w)`.
    pub out_dhw: [usize; 3],
}

fn out_extent(extent: usize, kernel: usize, pad: usize, stride: usize) -> usize {
    (extent + 2 * pad - kernel) / stride + 1
}

impl ConvGeom {
    /// Geometry with output extents derived from input/kernel/stride/pad.
    pub fn new(
        channels: usize,
        in_dhw: [usize; 3],
        kernel_dhw: [usize; 3],
        stride_dhw: [usize; 3],
        pad_dhw: [usize; 3],
    ) -> ConvGeom {
        let out = |i: usize| out_extent(in_dhw[i], kernel_dhw[i], pad_dhw[i], stride_dhw[i]);
        ConvGeom {
            channels,
            in_dhw,
            kernel_dhw,
            stride_dhw,
            pad_dhw,
            out_dhw: [out(0), out(1), out(2)],
        }
    }

    /// Rows of the column panel: `channels · kd·kh·kw`, the GEMM `K`.
    pub fn k_rows(&self) -> usize {
        self.channels * self.kernel_dhw.iter().product::<usize>()
    }

    /// Input spatial length per channel.
    pub fn in_spatial(&self) -> usize {
        self.in_dhw.iter().product()
    }

    /// Output spatial length per channel, the full GEMM `P`.
    pub fn out_spatial(&self) -> usize {
        self.out_dhw.iter().product()
    }

    /// Output "rows" (one per `(od, oh)` pair); panels are whole numbers of
    /// these so every panel is a contiguous slice of the output.
    pub fn out_rows(&self) -> usize {
        self.out_dhw[0] * self.out_dhw[1]
    }
}

/// Unfold output rows `or0..or1` (each `out_w` positions wide) of one input
/// sample into `col`, row-major `(k_rows, (or1-or0)·out_w)`. Out-of-bounds
/// taps become `0.0`. `x` is one sample: `channels · in_spatial` values.
pub fn im2col_into(x: &[f32], g: &ConvGeom, or0: usize, or1: usize, col: &mut Vec<f32>) {
    let [_, ih_e, iw_e] = g.in_dhw;
    let id_e = g.in_dhw[0];
    let [kd, kh, kw] = g.kernel_dhw;
    let [sd, sh, sw] = g.stride_dhw;
    let [pd, ph, pw] = g.pad_dhw;
    let [_, oh_e, ow_e] = g.out_dhw;
    let in_spatial = g.in_spatial();
    assert!(or1 <= g.out_rows() && or0 <= or1, "panel out of range");
    assert!(x.len() >= g.channels * in_spatial, "sample too small");

    let np = (or1 - or0) * ow_e;
    col.clear();
    col.resize(g.k_rows() * np, 0.0);

    let mut row = 0usize;
    for ci in 0..g.channels {
        let x_c = &x[ci * in_spatial..(ci + 1) * in_spatial];
        for dk in 0..kd {
            for hk in 0..kh {
                for wk in 0..kw {
                    let dst_row = &mut col[row * np..(row + 1) * np];
                    // iw = ow·sw + tw; valid ow span precomputed so the copy
                    // loop below runs branch-free.
                    let tw = wk as isize - pw as isize;
                    let ow_lo = if tw >= 0 {
                        0
                    } else {
                        ((-tw) as usize).div_ceil(sw)
                    };
                    let ow_hi = if (iw_e as isize) <= tw {
                        0
                    } else {
                        ow_e.min(((iw_e as isize - tw - 1) as usize) / sw + 1)
                    };
                    for (ri, r) in (or0..or1).enumerate() {
                        let od = r / oh_e;
                        let oh = r % oh_e;
                        let id = (od * sd + dk) as isize - pd as isize;
                        let ih = (oh * sh + hk) as isize - ph as isize;
                        if id < 0 || id >= id_e as isize || ih < 0 || ih >= ih_e as isize {
                            continue; // stays zero
                        }
                        let base = (id as usize * ih_e + ih as usize) * iw_e;
                        let dst = &mut dst_row[ri * ow_e..(ri + 1) * ow_e];
                        if ow_hi <= ow_lo {
                            continue;
                        }
                        if sw == 1 {
                            let iw0 = (ow_lo as isize + tw) as usize;
                            dst[ow_lo..ow_hi]
                                .copy_from_slice(&x_c[base + iw0..base + iw0 + (ow_hi - ow_lo)]);
                        } else {
                            for (ow, d) in dst[ow_lo..ow_hi].iter_mut().enumerate() {
                                let iw = ((ow_lo + ow) * sw) as isize + tw;
                                *d = x_c[base + iw as usize];
                            }
                        }
                    }
                    row += 1;
                }
            }
        }
    }
}

/// Scalar reference twin of [`im2col_into`]: one bounds check per entry.
pub fn im2col_reference(x: &[f32], g: &ConvGeom, or0: usize, or1: usize, col: &mut Vec<f32>) {
    let [id_e, ih_e, iw_e] = g.in_dhw;
    let [kd, kh, kw] = g.kernel_dhw;
    let [sd, sh, sw] = g.stride_dhw;
    let [pd, ph, pw] = g.pad_dhw;
    let [_, oh_e, ow_e] = g.out_dhw;
    let in_spatial = g.in_spatial();
    let np = (or1 - or0) * ow_e;
    col.clear();
    col.resize(g.k_rows() * np, 0.0);
    let mut row = 0usize;
    for ci in 0..g.channels {
        for dk in 0..kd {
            for hk in 0..kh {
                for wk in 0..kw {
                    for (ri, r) in (or0..or1).enumerate() {
                        let (od, oh) = (r / oh_e, r % oh_e);
                        for ow in 0..ow_e {
                            let id = (od * sd + dk) as isize - pd as isize;
                            let ih = (oh * sh + hk) as isize - ph as isize;
                            let iw = (ow * sw + wk) as isize - pw as isize;
                            let inside = id >= 0
                                && id < id_e as isize
                                && ih >= 0
                                && ih < ih_e as isize
                                && iw >= 0
                                && iw < iw_e as isize;
                            if inside {
                                let xi = ci * in_spatial
                                    + (id as usize * ih_e + ih as usize) * iw_e
                                    + iw as usize;
                                col[row * np + ri * ow_e + ow] = x[xi];
                            }
                        }
                    }
                    row += 1;
                }
            }
        }
    }
}

/// Fold a column panel back onto one input sample, accumulating (`x +=`).
/// The adjoint of [`im2col_into`]: entries whose tap fell in the padding are
/// dropped. Accumulation order is row-major over the panel (ascending `k`,
/// then ascending position), pinned for the reference twin.
pub fn col2im_into(col: &[f32], g: &ConvGeom, or0: usize, or1: usize, x: &mut [f32]) {
    let [id_e, ih_e, iw_e] = g.in_dhw;
    let [kd, kh, kw] = g.kernel_dhw;
    let [sd, sh, sw] = g.stride_dhw;
    let [pd, ph, pw] = g.pad_dhw;
    let [_, oh_e, ow_e] = g.out_dhw;
    let in_spatial = g.in_spatial();
    let np = (or1 - or0) * ow_e;
    assert!(col.len() >= g.k_rows() * np, "panel too small");
    assert!(x.len() >= g.channels * in_spatial, "sample too small");
    let mut row = 0usize;
    for ci in 0..g.channels {
        for dk in 0..kd {
            for hk in 0..kh {
                for wk in 0..kw {
                    let src_row = &col[row * np..(row + 1) * np];
                    for (ri, r) in (or0..or1).enumerate() {
                        let (od, oh) = (r / oh_e, r % oh_e);
                        let id = (od * sd + dk) as isize - pd as isize;
                        let ih = (oh * sh + hk) as isize - ph as isize;
                        if id < 0 || id >= id_e as isize || ih < 0 || ih >= ih_e as isize {
                            continue;
                        }
                        let base = ci * in_spatial + (id as usize * ih_e + ih as usize) * iw_e;
                        for ow in 0..ow_e {
                            let iw = (ow * sw + wk) as isize - pw as isize;
                            if iw < 0 || iw >= iw_e as isize {
                                continue;
                            }
                            x[base + iw as usize] += src_row[ri * ow_e + ow];
                        }
                    }
                    row += 1;
                }
            }
        }
    }
}

/// Scalar reference twin of [`col2im_into`], same pinned accumulation order
/// with one bounds check per entry.
pub fn col2im_reference(col: &[f32], g: &ConvGeom, or0: usize, or1: usize, x: &mut [f32]) {
    let [id_e, ih_e, iw_e] = g.in_dhw;
    let [kd, kh, kw] = g.kernel_dhw;
    let [sd, sh, sw] = g.stride_dhw;
    let [pd, ph, pw] = g.pad_dhw;
    let [_, oh_e, ow_e] = g.out_dhw;
    let in_spatial = g.in_spatial();
    let np = (or1 - or0) * ow_e;
    let mut row = 0usize;
    for ci in 0..g.channels {
        for dk in 0..kd {
            for hk in 0..kh {
                for wk in 0..kw {
                    for (ri, r) in (or0..or1).enumerate() {
                        let (od, oh) = (r / oh_e, r % oh_e);
                        for ow in 0..ow_e {
                            let id = (od * sd + dk) as isize - pd as isize;
                            let ih = (oh * sh + hk) as isize - ph as isize;
                            let iw = (ow * sw + wk) as isize - pw as isize;
                            let inside = id >= 0
                                && id < id_e as isize
                                && ih >= 0
                                && ih < ih_e as isize
                                && iw >= 0
                                && iw < iw_e as isize;
                            if inside {
                                let xi = ci * in_spatial
                                    + (id as usize * ih_e + ih as usize) * iw_e
                                    + iw as usize;
                                x[xi] += col[row * np + ri * ow_e + ow];
                            }
                        }
                    }
                    row += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn geometry_matches_same_padding_arithmetic() {
        // 3x3 kernel, pad 1: stride 1 preserves, stride 2 halves even sizes.
        let g = ConvGeom::new(2, [1, 8, 8], [1, 3, 3], [1, 1, 1], [0, 1, 1]);
        assert_eq!(g.out_dhw, [1, 8, 8]);
        assert_eq!(g.k_rows(), 2 * 9);
        let g2 = ConvGeom::new(1, [8, 8, 8], [3, 3, 3], [2, 2, 2], [1, 1, 1]);
        assert_eq!(g2.out_dhw, [4, 4, 4]);
    }

    #[test]
    fn packed_panel_matches_reference_across_strides_and_panels() {
        for &(stride, edge) in &[(1usize, 5usize), (2, 6), (2, 7), (3, 7)] {
            let g = ConvGeom::new(
                2,
                [1, edge, edge],
                [1, 3, 3],
                [1, stride, stride],
                [0, 1, 1],
            );
            let x: Vec<f32> = (0..2 * edge * edge)
                .map(|i| (i as f32 * 0.31).sin())
                .collect();
            let rows = g.out_rows();
            for or0 in 0..rows {
                let or1 = (or0 + 2).min(rows);
                let (mut fast, mut slow) = (Vec::new(), Vec::new());
                im2col_into(&x, &g, or0, or1, &mut fast);
                im2col_reference(&x, &g, or0, or1, &mut slow);
                assert_eq!(
                    bits(&fast),
                    bits(&slow),
                    "stride {stride} edge {edge} rows {or0}..{or1}"
                );
            }
        }
    }

    #[test]
    fn fold_then_unfold_matches_reference_3d() {
        let g = ConvGeom::new(2, [4, 4, 4], [3, 3, 3], [2, 2, 2], [1, 1, 1]);
        let np = g.out_spatial();
        let col: Vec<f32> = (0..g.k_rows() * np)
            .map(|i| (i as f32 * 0.17).cos())
            .collect();
        let mut fast = vec![0.0f32; 2 * g.in_spatial()];
        let mut slow = fast.clone();
        col2im_into(&col, &g, 0, g.out_rows(), &mut fast);
        col2im_reference(&col, &g, 0, g.out_rows(), &mut slow);
        assert_eq!(bits(&fast), bits(&slow));
        assert!(fast.iter().any(|&v| v != 0.0));
    }
}
