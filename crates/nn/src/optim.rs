//! Optimizers: Adam (used for all autoencoder training in this reproduction)
//! and plain SGD (kept for ablations and tests).
//!
//! The optimizer owns its moment buffers, keyed by position in the parameter
//! list, so the same optimizer instance must always be stepped with the same
//! model's parameter list (which is how [`crate::train::Trainer`] uses it).

use crate::layer::Param;

/// Adam optimizer with bias-corrected first/second moments.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the usual defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Change the learning rate (for simple decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one update step to `params` using their accumulated gradients,
    /// then clear the gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for (idx, param) in params.iter_mut().enumerate() {
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            assert_eq!(m.len(), param.len(), "parameter list changed between steps");
            let grads = param.grad.as_slice().to_vec();
            let values = param.value.as_mut_slice();
            for i in 0..values.len() {
                let g = grads[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                values[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            param.zero_grad();
        }
    }
}

/// Plain stochastic gradient descent (no momentum).
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Apply one update step and clear the gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        for param in params.iter_mut() {
            let grads = param.grad.as_slice().to_vec();
            let values = param.value.as_mut_slice();
            for i in 0..values.len() {
                values[i] -= self.lr * grads[i];
            }
            param.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_tensor::Tensor;

    /// Minimise f(x) = (x − 3)² with each optimizer; both must converge.
    fn quadratic_descent(optimizer: &mut dyn FnMut(&mut [&mut Param])) -> f32 {
        let mut p = Param::new(Tensor::zeros(&[1]));
        for _ in 0..500 {
            let x = p.value.as_slice()[0];
            p.grad = Tensor::from_vec(&[1], vec![2.0 * (x - 3.0)]).unwrap();
            optimizer(&mut [&mut p]);
        }
        p.value.as_slice()[0]
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.05);
        let x = quadratic_descent(&mut |ps| adam.step(ps));
        assert!((x - 3.0).abs() < 0.05, "x = {x}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.05);
        let x = quadratic_descent(&mut |ps| sgd.step(ps));
        assert!((x - 3.0).abs() < 0.01, "x = {x}");
    }

    #[test]
    fn step_clears_gradients() {
        let mut adam = Adam::new(0.01);
        let mut p = Param::new(Tensor::ones(&[4]));
        p.grad = Tensor::ones(&[4]);
        adam.step(&mut [&mut p]);
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn learning_rate_can_be_decayed() {
        let mut adam = Adam::new(0.1);
        assert_eq!(adam.learning_rate(), 0.1);
        adam.set_learning_rate(0.01);
        assert_eq!(adam.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "parameter list changed")]
    fn detects_parameter_list_mismatch() {
        let mut adam = Adam::new(0.01);
        let mut a = Param::new(Tensor::ones(&[2]));
        adam.step(&mut [&mut a]);
        let mut b = Param::new(Tensor::ones(&[5]));
        adam.step(&mut [&mut b]);
    }
}
