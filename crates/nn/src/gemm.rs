//! Blocked, SIMD-friendly f32 GEMM micro-kernel with a pinned accumulation
//! order — the single matrix engine behind every inference-path layer.
//!
//! `C[m][p] = seed ⊕ Σ_k A[m][k]·B[k][p]` where the seed is a per-row bias
//! (convolution), a per-column bias (dense) or zero. The defining property is
//! **bit-identity by construction**: every output element accumulates its
//! products in ascending `k` order starting from its bias, exactly the order
//! of the direct 7-deep convolution loop and the dense dot product it
//! replaces. The optimized kernel vectorizes across *independent* output
//! elements (the `p` axis) and unrolls `k` four-wide, which changes neither
//! the per-element operand order nor the rounding: Rust never contracts
//! `a*b + c` into an FMA and never reassociates float sums, so the axpy form
//! below is bitwise equal to the scalar reference twin on every input —
//! enforced by `tests/kernel_differential.rs`.
//!
//! One caveat is inherited by callers that lower padding to explicit zero
//! columns (`im2col`): a `+0.0·w` term is a bitwise no-op only while `w` is
//! finite and the accumulator is not exactly `-0.0`. Trained and initialised
//! networks satisfy both (biases are born `+0.0` and round-to-nearest
//! subtraction cannot produce `-0.0` from training updates); hand-crafted
//! hostile model files may not, and get a well-defined — just different —
//! reconstruction, never undefined behaviour.

/// How each output element's accumulator is seeded before the `k` loop.
#[derive(Clone, Copy, Debug)]
pub enum GemmBias<'a> {
    /// Row `m` of `C` starts at `bias[m]` — one bias per output channel, the
    /// convolution layout.
    Row(&'a [f32]),
    /// Every row of `C` starts as a copy of `bias[..p]` — one bias per output
    /// feature, the dense layout.
    Col(&'a [f32]),
    /// Accumulate from `0.0`.
    Zero,
}

fn seed_row(c_row: &mut [f32], bias: GemmBias, m: usize) {
    match bias {
        GemmBias::Row(b) => c_row.fill(b[m]),
        GemmBias::Col(b) => c_row.copy_from_slice(&b[..c_row.len()]),
        GemmBias::Zero => c_row.fill(0.0),
    }
}

/// `C = bias ⊕ A·B` with `A: (m, k)` row-major, `B: (k, p)` row-major and
/// `C` rows of length `p` placed at stride `ldc` (so a caller can write a
/// panel straight into a larger activation buffer). Accumulation is pinned:
/// element `(im, ip)` computes `bias ⊕ A[im][0]·B[0][ip] ⊕ A[im][1]·B[1][ip]
/// ⊕ …` in exactly that order.
#[allow(clippy::too_many_arguments)] // the BLAS sgemm-style signature
pub fn gemm_into(
    a: &[f32],
    b: &[f32],
    bias: GemmBias,
    m: usize,
    k: usize,
    p: usize,
    c: &mut [f32],
    ldc: usize,
) {
    assert!(ldc >= p, "row stride {ldc} shorter than row length {p}");
    assert!(a.len() >= m * k, "A too small");
    assert!(b.len() >= k * p, "B too small");
    if m > 0 {
        assert!(c.len() >= (m - 1) * ldc + p, "C too small");
    }
    for im in 0..m {
        let a_row = &a[im * k..im * k + k];
        let c_row = &mut c[im * ldc..im * ldc + p];
        seed_row(c_row, bias, im);
        // k unrolled 4-wide: four B rows stream through one pass over the C
        // row, quartering the C-row traffic. Each element still adds its
        // products in ascending-k order, so the bits match the scalar loop.
        let mut ik = 0usize;
        while ik + 4 <= k {
            let (a0, a1, a2, a3) = (a_row[ik], a_row[ik + 1], a_row[ik + 2], a_row[ik + 3]);
            let b0 = &b[ik * p..ik * p + p];
            let b1 = &b[(ik + 1) * p..(ik + 1) * p + p];
            let b2 = &b[(ik + 2) * p..(ik + 2) * p + p];
            let b3 = &b[(ik + 3) * p..(ik + 3) * p + p];
            for j in 0..p {
                let mut v = c_row[j];
                v += a0 * b0[j];
                v += a1 * b1[j];
                v += a2 * b2[j];
                v += a3 * b3[j];
                c_row[j] = v;
            }
            ik += 4;
        }
        while ik < k {
            let av = a_row[ik];
            let b_row = &b[ik * p..ik * p + p];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
            ik += 1;
        }
    }
}

/// Scalar reference twin of [`gemm_into`]: the naive per-element triple loop
/// in the pinned order. The differential harness demands bitwise equality
/// between the two on every input.
#[allow(clippy::too_many_arguments)] // mirrors `gemm_into`
pub fn gemm_reference(
    a: &[f32],
    b: &[f32],
    bias: GemmBias,
    m: usize,
    k: usize,
    p: usize,
    c: &mut [f32],
    ldc: usize,
) {
    assert!(ldc >= p, "row stride {ldc} shorter than row length {p}");
    for im in 0..m {
        for ip in 0..p {
            let mut acc = match bias {
                GemmBias::Row(bs) => bs[im],
                GemmBias::Col(bs) => bs[ip],
                GemmBias::Zero => 0.0,
            };
            for ik in 0..k {
                acc += a[im * k + ik] * b[ik * p + ip];
            }
            c[im * ldc + ip] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn matches_reference_on_a_small_case() {
        let a = [1.0f32, 2.0, 3.0, -4.0, 0.5, 0.25];
        let b = [1.0f32, -1.0, 2.0, 0.5, 3.0, -0.5];
        let bias = [0.125f32, -0.5];
        let mut fast = [0.0f32; 4];
        let mut slow = [0.0f32; 4];
        gemm_into(&a, &b, GemmBias::Row(&bias), 2, 3, 2, &mut fast, 2);
        gemm_reference(&a, &b, GemmBias::Row(&bias), 2, 3, 2, &mut slow, 2);
        assert_eq!(bits(&fast), bits(&slow));
        // m=0: first row = 0.125 + 1·1 + 2·2 + 3·3 = 14.125
        assert_eq!(fast[0], 14.125);
    }

    #[test]
    fn col_bias_seeds_every_row() {
        let a = [0.0f32; 6]; // 2x3 of zeros
        let b = [0.0f32; 6]; // 3x2 of zeros
        let bias = [7.0f32, -3.0];
        let mut c = [0.0f32; 4];
        gemm_into(&a, &b, GemmBias::Col(&bias), 2, 3, 2, &mut c, 2);
        assert_eq!(c, [7.0, -3.0, 7.0, -3.0]);
    }

    #[test]
    fn strided_c_rows_leave_the_gap_untouched() {
        let a = [1.0f32, 1.5];
        let b = [2.0f32];
        let mut c = [9.0f32; 6]; // 2 rows of p=1 at stride 3
        gemm_into(&a, &b, GemmBias::Zero, 2, 1, 1, &mut c, 3);
        assert_eq!(c, [2.0, 9.0, 9.0, 3.0, 9.0, 9.0]);
    }

    #[test]
    fn k_remainder_paths_agree_with_reference() {
        // k = 1..9 exercises both the unrolled body and the remainder loop.
        for k in 1..9usize {
            let a: Vec<f32> = (0..2 * k).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..k * 3).map(|i| (i as f32 * 0.71).cos()).collect();
            let bias = [0.1f32, 0.2];
            let mut fast = vec![0.0f32; 6];
            let mut slow = vec![0.0f32; 6];
            gemm_into(&a, &b, GemmBias::Row(&bias), 2, k, 3, &mut fast, 3);
            gemm_reference(&a, &b, GemmBias::Row(&bias), 2, k, 3, &mut slow, 3);
            assert_eq!(bits(&fast), bits(&slow), "k={k}");
        }
    }
}
