//! Flat binary serialization of trained autoencoders.
//!
//! The paper stores the trained network separately from the compressed data so
//! one model can serve many snapshots of the same application. This module
//! writes the [`AeConfig`] followed by every parameter tensor (encoder first,
//! then decoder, in construction order) as little-endian `f32`, and rebuilds
//! an identical model on load. Because the [`AeConfig`] pins every
//! architectural choice (rank, block, latent, channels, variational flag),
//! **every member of the autoencoder zoo round-trips through the same
//! format** — the zoo variants differ only in training objective, which is
//! not a property of the weights.
//!
//! The `AESZMDL1` layout is a **stable wire format**: golden fixtures lock it
//! byte-for-byte, and the content-addressed [`ModelId`] derived from these
//! bytes travels inside stream headers and archives, so neither the field
//! order nor the encoding may change without a new magic.
//!
//! The parameter-stream halves ([`write_params`] / [`read_params_into`]) are
//! exposed on their own so other model-bearing codecs (AE-A's dense stack in
//! `aesz_baselines`) serialize their weights the same way without sharing the
//! `AESZMDL1` header.

use crate::layer::Param;
use crate::models::conv_ae::{AeConfig, ConvAutoencoder};

pub use aesz_codec::hash::ModelId;

/// Magic bytes identifying a serialized AE-SZ model.
const MAGIC: &[u8; 8] = b"AESZMDL1";

/// Errors produced while loading a serialized model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The buffer ended before all fields could be read.
    Truncated,
    /// A config field holds a value no valid model file can contain (wrong
    /// rank, zero/oversized geometry, non-canonical flag). Validated before
    /// any architecture is built, so hostile headers cannot drive a panic or
    /// an attacker-sized allocation.
    InvalidConfig(&'static str),
    /// The parameter payload does not match the model the config describes.
    ParamMismatch {
        /// Number of scalars the config implies.
        expected: usize,
        /// Number of scalars present in the payload.
        got: usize,
    },
    /// Bytes follow the last parameter — the file is not a pure `AESZMDL1`
    /// stream (rejecting them keeps `ModelId` canonical: one model, one
    /// byte sequence, one id).
    TrailingBytes,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::BadMagic => write!(f, "not an AE-SZ model file"),
            ModelError::Truncated => write!(f, "model file truncated"),
            ModelError::InvalidConfig(what) => {
                write!(f, "invalid model config field: {what}")
            }
            ModelError::ParamMismatch { expected, got } => {
                write!(
                    f,
                    "parameter count mismatch: expected {expected}, got {got}"
                )
            }
            ModelError::TrailingBytes => write!(f, "trailing bytes after the model parameters"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Caps on the architecture a model file may describe, far above the paper's
/// largest configuration (block 32, channels \[32, 64, 128, 256\], latent
/// 128) but small enough that building the described model is a bounded
/// allocation even for a hostile file.
const MAX_MODEL_BLOCK: usize = 1024;
const MAX_MODEL_LATENT: usize = 65_536;
const MAX_MODEL_CONV_BLOCKS: usize = 6;
const MAX_MODEL_CHANNELS: usize = 512;
/// Cap on the flattened-feature × latent product of the junction dense
/// layers (2²⁸ scalars ≈ 1 GiB of `f32`).
const MAX_MODEL_DENSE: usize = 1 << 28;

/// Validate a deserialized config before any layer is constructed.
///
/// [`ConvAutoencoder::new`] `assert!`s on impossible configs and allocates
/// proportionally to the architecture, so this is the trust boundary between
/// file bytes and the constructor.
fn validate_config(cfg: &AeConfig) -> Result<(), ModelError> {
    if cfg.spatial_rank != 2 && cfg.spatial_rank != 3 {
        return Err(ModelError::InvalidConfig("spatial rank must be 2 or 3"));
    }
    if cfg.channels.is_empty() || cfg.channels.len() > MAX_MODEL_CONV_BLOCKS {
        return Err(ModelError::InvalidConfig("conv block count out of range"));
    }
    if cfg
        .channels
        .iter()
        .any(|&c| c == 0 || c > MAX_MODEL_CHANNELS)
    {
        return Err(ModelError::InvalidConfig("channel count out of range"));
    }
    if cfg.block_size == 0 || cfg.block_size > MAX_MODEL_BLOCK {
        return Err(ModelError::InvalidConfig("block size out of range"));
    }
    if !cfg.block_size.is_multiple_of(1 << cfg.channels.len()) {
        return Err(ModelError::InvalidConfig(
            "block size not divisible by 2^conv blocks",
        ));
    }
    if cfg.latent_dim == 0 || cfg.latent_dim > MAX_MODEL_LATENT {
        return Err(ModelError::InvalidConfig("latent dim out of range"));
    }
    if cfg
        .feature_len()
        .checked_mul(cfg.encoder_out())
        .is_none_or(|n| n > MAX_MODEL_DENSE)
    {
        return Err(ModelError::InvalidConfig("junction dense layer too large"));
    }
    Ok(())
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, ModelError> {
    let b = buf.get(*pos..*pos + 8).ok_or(ModelError::Truncated)?;
    *pos += 8;
    Ok(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// Total scalar count of a parameter list (what a serialized stream of those
/// parameters must carry).
pub fn param_count(params: &[&Param]) -> usize {
    params.iter().map(|p| p.len()).sum()
}

/// Append every parameter tensor as little-endian `f32`, preceded by the
/// total scalar count as a `u64` — the weight half of every model format in
/// the workspace.
pub fn write_params(out: &mut Vec<u8>, params: &[&Param]) {
    push_u64(out, param_count(params) as u64);
    for p in params {
        for &v in p.value.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Read a parameter stream written by [`write_params`] back into `params`
/// (which must describe the identical architecture), advancing `pos` past the
/// payload. Rejects count mismatches and truncation without partial writes
/// being observable as success.
pub fn read_params_into(
    bytes: &[u8],
    pos: &mut usize,
    mut params: Vec<&mut Param>,
) -> Result<(), ModelError> {
    let expected: usize = params.iter().map(|p| p.len()).sum();
    let total = read_u64(bytes, pos)? as usize;
    if expected != total {
        return Err(ModelError::ParamMismatch {
            expected,
            got: total,
        });
    }
    let payload = bytes
        .get(*pos..*pos + total * 4)
        .ok_or(ModelError::Truncated)?;
    *pos += total * 4;
    let mut values = payload
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]));
    for p in params.iter_mut() {
        for v in p.value.as_mut_slice() {
            *v = values.next().ok_or(ModelError::Truncated)?;
        }
    }
    Ok(())
}

/// Serialize the model (config + all weights) to bytes.
pub fn save_model(model: &ConvAutoencoder) -> Vec<u8> {
    let cfg = model.config();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    push_u64(&mut out, cfg.spatial_rank as u64);
    push_u64(&mut out, cfg.block_size as u64);
    push_u64(&mut out, cfg.latent_dim as u64);
    push_u64(&mut out, cfg.variational as u64);
    push_u64(&mut out, cfg.seed);
    push_u64(&mut out, cfg.channels.len() as u64);
    for &c in &cfg.channels {
        push_u64(&mut out, c as u64);
    }
    write_params(&mut out, &model.params());
    out
}

/// Content-addressed identity of a model: the truncated SHA-256 of its
/// [`save_model`] bytes. Two models share an id exactly when their serialized
/// form is byte-identical (same architecture, same weights, same seed field),
/// which is what lets streams and archives name "the network that encoded
/// me" without shipping it.
pub fn model_id(model: &ConvAutoencoder) -> ModelId {
    ModelId::of(&save_model(model))
}

/// Rebuild a model from bytes written by [`save_model`].
pub fn load_model(bytes: &[u8]) -> Result<ConvAutoencoder, ModelError> {
    if bytes.len() < 8 || &bytes[..8] != MAGIC {
        return Err(ModelError::BadMagic);
    }
    let mut pos = 8usize;
    let spatial_rank = read_u64(bytes, &mut pos)? as usize;
    let block_size = read_u64(bytes, &mut pos)? as usize;
    let latent_dim = read_u64(bytes, &mut pos)? as usize;
    let variational = match read_u64(bytes, &mut pos)? {
        0 => false,
        1 => true,
        _ => return Err(ModelError::InvalidConfig("variational flag not 0/1")),
    };
    let seed = read_u64(bytes, &mut pos)?;
    let n_channels = read_u64(bytes, &mut pos)? as usize;
    if n_channels > MAX_MODEL_CONV_BLOCKS {
        return Err(ModelError::InvalidConfig("conv block count out of range"));
    }
    let mut channels = Vec::with_capacity(n_channels);
    for _ in 0..n_channels {
        channels.push(read_u64(bytes, &mut pos)? as usize);
    }
    let config = AeConfig {
        spatial_rank,
        block_size,
        latent_dim,
        channels,
        variational,
        seed,
    };
    validate_config(&config)?;
    let mut model = ConvAutoencoder::new(config);
    read_params_into(bytes, &mut pos, model.params_mut())?;
    if pos != bytes.len() {
        return Err(ModelError::TrailingBytes);
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_tensor::Tensor;

    fn tiny_model() -> ConvAutoencoder {
        ConvAutoencoder::new(AeConfig {
            spatial_rank: 2,
            block_size: 8,
            latent_dim: 4,
            channels: vec![4],
            variational: false,
            seed: 11,
        })
    }

    #[test]
    fn save_load_roundtrip_preserves_outputs() {
        let mut model = tiny_model();
        let bytes = save_model(&model);
        let mut loaded = load_model(&bytes).expect("roundtrip");
        let x =
            Tensor::from_vec(&[1, 1, 8, 8], (0..64).map(|v| v as f32 / 64.0).collect()).unwrap();
        let a = model.reconstruct(&x);
        let b = loaded.reconstruct(&x);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(loaded.config(), model.config());
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let model = tiny_model();
        let mut bytes = save_model(&model);
        bytes[0] = b'X';
        assert!(matches!(load_model(&bytes), Err(ModelError::BadMagic)));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let model = tiny_model();
        let bytes = save_model(&model);
        assert!(matches!(
            load_model(&bytes[..bytes.len() - 10]),
            Err(ModelError::Truncated)
        ));
        assert!(matches!(
            load_model(&bytes[..20]),
            Err(ModelError::Truncated)
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(ModelError::BadMagic.to_string().contains("AE-SZ"));
        assert!(ModelError::ParamMismatch {
            expected: 10,
            got: 5
        }
        .to_string()
        .contains("expected 10"));
        assert!(ModelError::InvalidConfig("latent dim out of range")
            .to_string()
            .contains("latent dim"));
        assert!(ModelError::TrailingBytes.to_string().contains("trailing"));
    }

    #[test]
    fn every_zoo_variant_roundtrips_with_a_stable_id() {
        use crate::models::zoo::AeVariant;
        use crate::train::{TrainConfig, Trainer};

        // All eight zoo variants share the conv trunk; the variational ones
        // double the encoder output. Train each for one tiny epoch so the
        // weights are variant-specific, then save → load → compare.
        let blocks: Vec<Vec<f32>> = (0..8)
            .map(|i| crate::train::synthetic_block(64, 8, 2, i))
            .collect();
        for variant in AeVariant::table1() {
            let cfg = AeConfig {
                spatial_rank: 2,
                block_size: 8,
                latent_dim: 4,
                channels: vec![4],
                variational: variant.is_variational(),
                seed: 21,
            };
            let mut trainer = Trainer::new(
                cfg,
                TrainConfig {
                    epochs: 1,
                    batch_size: 4,
                    learning_rate: 1e-3,
                    variant,
                    seed: 22,
                },
            );
            trainer.train(&blocks);
            let model = trainer.into_model();
            let bytes = save_model(&model);
            let mut loaded = load_model(&bytes).unwrap_or_else(|e| {
                panic!("{} failed to round-trip: {e}", variant.name());
            });
            assert_eq!(loaded.config(), model.config(), "{}", variant.name());
            assert_eq!(
                model_id(&loaded),
                model_id(&model),
                "{} id must survive the round-trip",
                variant.name()
            );
            assert_eq!(save_model(&loaded), bytes, "{}", variant.name());
            let x = Tensor::from_vec(&[1, 1, 8, 8], (0..64).map(|v| v as f32 / 64.0).collect())
                .unwrap();
            let mut model = model;
            assert_eq!(
                model.reconstruct(&x).as_slice(),
                loaded.reconstruct(&x).as_slice(),
                "{} outputs must match",
                variant.name()
            );
        }
    }

    #[test]
    fn model_id_tracks_weight_content() {
        let model = tiny_model();
        let id = model_id(&model);
        assert_eq!(id, ModelId::of(&save_model(&model)), "id = hash of bytes");
        assert_eq!(id, model_id(&tiny_model()), "same seed, same id");
        let mut other = tiny_model();
        other.params_mut()[0].value.as_mut_slice()[0] += 1.0;
        assert_ne!(model_id(&other), id, "a changed weight changes the id");
    }

    #[test]
    fn hostile_configs_are_rejected_before_construction() {
        let good = save_model(&tiny_model());
        // Field layout: magic(8) rank(8) block(8) latent(8) variational(8)
        // seed(8) n_channels(8) channels… — patch fields in place.
        let patch = |at: usize, v: u64| {
            let mut b = good.clone();
            b[at..at + 8].copy_from_slice(&v.to_le_bytes());
            b
        };
        assert!(matches!(
            load_model(&patch(8, 5)),
            Err(ModelError::InvalidConfig(_))
        ));
        assert!(matches!(
            load_model(&patch(16, 0)), // zero block size
            Err(ModelError::InvalidConfig(_))
        ));
        assert!(matches!(
            load_model(&patch(16, 7)), // not divisible by 2^blocks
            Err(ModelError::InvalidConfig(_))
        ));
        assert!(matches!(
            load_model(&patch(16, u64::MAX)), // absurd block size
            Err(ModelError::InvalidConfig(_))
        ));
        assert!(matches!(
            load_model(&patch(24, 0)), // zero latent
            Err(ModelError::InvalidConfig(_))
        ));
        assert!(matches!(
            load_model(&patch(24, u64::MAX)), // absurd latent
            Err(ModelError::InvalidConfig(_))
        ));
        assert!(matches!(
            load_model(&patch(32, 2)), // non-canonical variational flag
            Err(ModelError::InvalidConfig(_))
        ));
        assert!(matches!(
            load_model(&patch(48, u64::MAX)), // absurd conv block count
            Err(ModelError::InvalidConfig(_))
        ));
        // A wrong parameter count and trailing bytes are both rejected.
        let total_at = 48 + 8 + 8; // one channel entry in tiny_model
        let mut b = good.clone();
        let claimed = u64::from_le_bytes(b[total_at..total_at + 8].try_into().unwrap());
        b[total_at..total_at + 8].copy_from_slice(&(claimed + 1).to_le_bytes());
        assert!(matches!(
            load_model(&b),
            Err(ModelError::ParamMismatch { .. })
        ));
        let mut b = good.clone();
        b.push(0);
        assert!(matches!(load_model(&b), Err(ModelError::TrailingBytes)));
    }
}
