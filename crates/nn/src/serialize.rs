//! Flat binary serialization of trained autoencoders.
//!
//! The paper stores the trained network separately from the compressed data so
//! one model can serve many snapshots of the same application. This module
//! writes the [`AeConfig`] followed by every parameter tensor (encoder first,
//! then decoder, in construction order) as little-endian `f32`, and rebuilds
//! an identical model on load.

use crate::models::conv_ae::{AeConfig, ConvAutoencoder};

/// Magic bytes identifying a serialized AE-SZ model.
const MAGIC: &[u8; 8] = b"AESZMDL1";

/// Errors produced while loading a serialized model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The buffer ended before all fields could be read.
    Truncated,
    /// The parameter payload does not match the model the config describes.
    ParamMismatch {
        /// Number of scalars the config implies.
        expected: usize,
        /// Number of scalars present in the payload.
        got: usize,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::BadMagic => write!(f, "not an AE-SZ model file"),
            ModelError::Truncated => write!(f, "model file truncated"),
            ModelError::ParamMismatch { expected, got } => {
                write!(
                    f,
                    "parameter count mismatch: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, ModelError> {
    let b = buf.get(*pos..*pos + 8).ok_or(ModelError::Truncated)?;
    *pos += 8;
    Ok(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// Serialize the model (config + all weights) to bytes.
pub fn save_model(model: &ConvAutoencoder) -> Vec<u8> {
    let cfg = model.config();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    push_u64(&mut out, cfg.spatial_rank as u64);
    push_u64(&mut out, cfg.block_size as u64);
    push_u64(&mut out, cfg.latent_dim as u64);
    push_u64(&mut out, cfg.variational as u64);
    push_u64(&mut out, cfg.seed);
    push_u64(&mut out, cfg.channels.len() as u64);
    for &c in &cfg.channels {
        push_u64(&mut out, c as u64);
    }
    let params = model.params();
    let total: usize = params.iter().map(|p| p.len()).sum();
    push_u64(&mut out, total as u64);
    for p in params {
        for &v in p.value.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Rebuild a model from bytes written by [`save_model`].
pub fn load_model(bytes: &[u8]) -> Result<ConvAutoencoder, ModelError> {
    if bytes.len() < 8 || &bytes[..8] != MAGIC {
        return Err(ModelError::BadMagic);
    }
    let mut pos = 8usize;
    let spatial_rank = read_u64(bytes, &mut pos)? as usize;
    let block_size = read_u64(bytes, &mut pos)? as usize;
    let latent_dim = read_u64(bytes, &mut pos)? as usize;
    let variational = read_u64(bytes, &mut pos)? != 0;
    let seed = read_u64(bytes, &mut pos)?;
    let n_channels = read_u64(bytes, &mut pos)? as usize;
    let mut channels = Vec::with_capacity(n_channels);
    for _ in 0..n_channels {
        channels.push(read_u64(bytes, &mut pos)? as usize);
    }
    let total = read_u64(bytes, &mut pos)? as usize;

    let config = AeConfig {
        spatial_rank,
        block_size,
        latent_dim,
        channels,
        variational,
        seed,
    };
    let mut model = ConvAutoencoder::new(config);
    let expected: usize = model.params().iter().map(|p| p.len()).sum();
    if expected != total {
        return Err(ModelError::ParamMismatch {
            expected,
            got: total,
        });
    }
    let payload = bytes
        .get(pos..pos + total * 4)
        .ok_or(ModelError::Truncated)?;
    let mut values = payload
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]));
    for p in model.params_mut() {
        for v in p.value.as_mut_slice() {
            *v = values.next().ok_or(ModelError::Truncated)?;
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_tensor::Tensor;

    fn tiny_model() -> ConvAutoencoder {
        ConvAutoencoder::new(AeConfig {
            spatial_rank: 2,
            block_size: 8,
            latent_dim: 4,
            channels: vec![4],
            variational: false,
            seed: 11,
        })
    }

    #[test]
    fn save_load_roundtrip_preserves_outputs() {
        let mut model = tiny_model();
        let bytes = save_model(&model);
        let mut loaded = load_model(&bytes).expect("roundtrip");
        let x =
            Tensor::from_vec(&[1, 1, 8, 8], (0..64).map(|v| v as f32 / 64.0).collect()).unwrap();
        let a = model.reconstruct(&x);
        let b = loaded.reconstruct(&x);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(loaded.config(), model.config());
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let model = tiny_model();
        let mut bytes = save_model(&model);
        bytes[0] = b'X';
        assert!(matches!(load_model(&bytes), Err(ModelError::BadMagic)));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let model = tiny_model();
        let bytes = save_model(&model);
        assert!(matches!(
            load_model(&bytes[..bytes.len() - 10]),
            Err(ModelError::Truncated)
        ));
        assert!(matches!(
            load_model(&bytes[..20]),
            Err(ModelError::Truncated)
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(ModelError::BadMagic.to_string().contains("AE-SZ"));
        assert!(ModelError::ParamMismatch {
            expected: 10,
            got: 5
        }
        .to_string()
        .contains("expected 10"));
    }
}
