//! The `Layer` trait and trainable parameters.
//!
//! Layers own their parameters and cache whatever they need from the forward
//! pass to compute gradients in the backward pass (classic define-by-layer
//! backprop; no tape/autograd). The optimizer walks the parameter list each
//! step, so `Param` keeps the gradient accumulator alongside the value.

use crate::infer::{NnScratch, Shape};
use aesz_tensor::Tensor;

/// Shaped-input error of the layer API: the input tensor is incompatible
/// with the layer's geometry. Returned (never panicked) by
/// [`Layer::try_forward`] and [`Layer::infer_into`], consistent with the
/// repo's no-panic posture on data paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NnError {
    /// Layer that rejected the input.
    pub layer: &'static str,
    /// What was wrong (e.g. "channel count mismatch").
    pub problem: &'static str,
    /// The extent the layer requires.
    pub expected: usize,
    /// The extent the input carried.
    pub got: usize,
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} (expected {}, got {})",
            self.layer, self.problem, self.expected, self.got
        )
    }
}

impl std::error::Error for NnError {}

/// A trainable parameter: value plus gradient accumulator of identical shape.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value of the parameter.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Tensor,
}

impl Param {
    /// Parameter initialised to `value` with a zero gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Reset the gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        self.grad.zero_();
    }

    /// Number of scalar weights in this parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True for parameters with no elements (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A neural-network layer with explicit forward/backward passes.
///
/// `Send + Sync` so compressors holding a network can be shared across
/// server worker threads (layers only mutate through `&mut self`).
pub trait Layer: Send + Sync {
    /// Human-readable layer name (used in summaries and serialization).
    fn name(&self) -> &'static str;

    /// Run the layer on `input`, caching activations needed by `backward`.
    /// Rejects incompatible input shapes with an [`NnError`].
    fn try_forward(&mut self, input: &Tensor) -> Result<Tensor, NnError>;

    /// Training-loop convenience wrapper around [`Layer::try_forward`]:
    /// panics on shaped-input errors (the training data pipeline controls
    /// its shapes; data paths use the fallible entry points).
    fn forward(&mut self, input: &Tensor) -> Tensor {
        match self.try_forward(input) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Allocation-free inference: compute the layer's output from a flat
    /// activation slice into the caller-owned `out`, using `scratch` for any
    /// intermediate buffers, and return the output shape.
    ///
    /// Contract (enforced by the allocation-discipline tests):
    /// * `&self` — training-only state (`cached_input`, gradients) is never
    ///   touched, so inference never pays the training path's input clone;
    /// * no per-call heap allocation once `out` and `scratch` have warmed to
    ///   the batch's high-water mark;
    /// * bit-identical to [`Layer::try_forward`] for finite weights (the
    ///   GEMM lowering pins the accumulation order; see [`crate::gemm`]).
    fn infer_into(
        &self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        scratch: &mut NnScratch,
    ) -> Result<Shape, NnError>;

    /// Propagate `grad_output` (∂loss/∂output) back through the layer,
    /// accumulating parameter gradients and returning ∂loss/∂input.
    ///
    /// Must be called after `forward` with the matching input.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Mutable access to the trainable parameters (empty for stateless layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// An owned deep copy of this layer behind the trait object.
    ///
    /// This is what makes whole layer stacks (and therefore the models and
    /// compressors built from them) cloneable, so independent copies can run
    /// on different threads — the archive layer forks one compressor per
    /// in-flight chunk. Implementors that derive [`Clone`] just return
    /// `Box::new(self.clone())`.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Immutable access to the trainable parameters.
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Total number of scalar weights.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Finite-difference gradient checking helper used by layer unit tests.
///
/// Returns the maximum relative error between the analytic input gradient of
/// `layer` and a central-difference estimate on the scalar loss
/// `L = Σ out·coeffs` (a fixed random linear functional of the output).
#[cfg(test)]
pub fn grad_check_input(layer: &mut dyn Layer, input: &Tensor, eps: f32) -> f32 {
    let out = layer.forward(input);
    // Fixed pseudo-random coefficients.
    let coeffs: Vec<f32> = (0..out.len())
        .map(|i| ((i as f32 * 12.9898).sin() * 43_758.547).fract() - 0.5)
        .collect();
    let grad_out = Tensor::from_vec(out.shape(), coeffs.clone()).expect("shape matches");
    let analytic = layer.backward(&grad_out);

    let loss = |layer: &mut dyn Layer, x: &Tensor| -> f64 {
        let o = layer.forward(x);
        o.as_slice()
            .iter()
            .zip(coeffs.iter())
            .map(|(&a, &c)| a as f64 * c as f64)
            .sum()
    };

    // Probe a subset of the input elements (all of them for small inputs) and
    // combine two error measures, returning the larger:
    //
    // * aggregate ‖numeric − analytic‖ / (‖numeric‖ + ‖analytic‖) — catches
    //   broadly wrong gradients;
    // * per-element max |numericᵢ − analyticᵢ| / ‖gradient‖∞ — catches bugs
    //   confined to a few elements (e.g. a skipped boundary contribution)
    //   that the norm ratio would dilute.
    //
    // Both denominators are global magnitudes: a per-element *relative*
    // metric is too brittle in f32, since a probe whose true gradient is
    // near zero turns central-difference noise into a large ratio.
    let stride = (input.len() / 64).max(1);
    let mut diff_sq = 0.0f64;
    let mut numeric_sq = 0.0f64;
    let mut analytic_sq = 0.0f64;
    let mut max_abs_diff = 0.0f64;
    let mut grad_inf = 0.0f64;
    for i in (0..input.len()).step_by(stride) {
        let mut plus = input.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = input.clone();
        minus.as_mut_slice()[i] -= eps;
        let numeric = (loss(layer, &plus) - loss(layer, &minus)) / (2.0 * eps as f64);
        let a = analytic.as_slice()[i] as f64;
        diff_sq += (numeric - a).powi(2);
        numeric_sq += numeric.powi(2);
        analytic_sq += a.powi(2);
        max_abs_diff = max_abs_diff.max((numeric - a).abs());
        grad_inf = grad_inf.max(numeric.abs()).max(a.abs());
    }
    let l2_ratio = diff_sq.sqrt() / (numeric_sq.sqrt() + analytic_sq.sqrt()).max(1e-8);
    let elem_ratio = max_abs_diff / grad_inf.max(1e-8);
    l2_ratio.max(elem_ratio) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_tracks_grad_shape() {
        let p = Param::new(Tensor::ones(&[3, 4]));
        assert_eq!(p.grad.shape(), &[3, 4]);
        assert_eq!(p.len(), 12);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new(Tensor::ones(&[4]));
        p.grad = Tensor::full(&[4], 2.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
