//! Mini-batch training of the autoencoder zoo.
//!
//! One trainer owns one [`ConvAutoencoder`] and an Adam optimizer and trains
//! it on a set of flat, already-normalised data blocks (the offline-training
//! stage of Fig. 2 in the paper). The objective is selected by
//! [`AeVariant`]: every variant uses the same trunk, so this module is where
//! the reconstruction losses and latent-space regularizers get combined and
//! their gradients routed through the encoder/decoder.

use crate::loss;
use crate::models::conv_ae::{AeConfig, ConvAutoencoder};
use crate::models::zoo::AeVariant;
use crate::optim::Adam;
use aesz_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training blocks.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Which member of the autoencoder zoo to train.
    pub variant: AeVariant,
    /// RNG seed (shuffling, prior samples, random projections, reparameterisation).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 16,
            learning_rate: 1e-3,
            variant: AeVariant::aesz_default(),
            seed: 1234,
        }
    }
}

/// Trains one autoencoder on blockwise data.
pub struct Trainer {
    model: ConvAutoencoder,
    optimizer: Adam,
    config: TrainConfig,
    rng: StdRng,
}

/// Per-epoch training record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean total loss over the epoch.
    pub loss: f32,
    /// Mean reconstruction component.
    pub reconstruction: f32,
    /// Mean regularizer component.
    pub regularizer: f32,
}

impl Trainer {
    /// Build a trainer for a fresh model. The model's `variational` flag is
    /// forced to match the variant's requirement.
    pub fn new(mut ae_config: AeConfig, config: TrainConfig) -> Self {
        ae_config.variational = config.variant.is_variational();
        let model = ConvAutoencoder::new(ae_config);
        let optimizer = Adam::new(config.learning_rate);
        let rng = init::rng(config.seed);
        Trainer {
            model,
            optimizer,
            config,
            rng,
        }
    }

    /// Wrap an already-built model (used to fine-tune or continue training).
    pub fn with_model(model: ConvAutoencoder, config: TrainConfig) -> Self {
        let optimizer = Adam::new(config.learning_rate);
        let rng = init::rng(config.seed);
        Trainer {
            model,
            optimizer,
            config,
            rng,
        }
    }

    /// The model being trained.
    pub fn model(&self) -> &ConvAutoencoder {
        &self.model
    }

    /// Mutable access to the model (e.g. for inference between epochs).
    pub fn model_mut(&mut self) -> &mut ConvAutoencoder {
        &mut self.model
    }

    /// Consume the trainer, returning the trained model.
    pub fn into_model(self) -> ConvAutoencoder {
        self.model
    }

    /// Train on the given flat blocks (each of length `block_len()`); returns
    /// one [`EpochStats`] per epoch.
    pub fn train(&mut self, blocks: &[Vec<f32>]) -> Vec<EpochStats> {
        assert!(!blocks.is_empty(), "training set must not be empty");
        let block_len = self.model.config().block_len();
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.len(), block_len, "block {i} has the wrong length");
        }
        let mut order: Vec<usize> = (0..blocks.len()).collect();
        let mut stats = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            order.shuffle(&mut self.rng);
            let mut sum = EpochStats {
                loss: 0.0,
                reconstruction: 0.0,
                regularizer: 0.0,
            };
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let batch: Vec<f32> = chunk
                    .iter()
                    .flat_map(|&i| blocks[i].iter().copied())
                    .collect();
                let s = self.train_batch(&batch, chunk.len());
                sum.loss += s.loss;
                sum.reconstruction += s.reconstruction;
                sum.regularizer += s.regularizer;
                batches += 1;
            }
            let b = batches.max(1) as f32;
            stats.push(EpochStats {
                loss: sum.loss / b,
                reconstruction: sum.reconstruction / b,
                regularizer: sum.regularizer / b,
            });
        }
        stats
    }

    /// One optimisation step on a flat batch of `n` blocks.
    fn train_batch(&mut self, batch: &[f32], n: usize) -> EpochStats {
        let shape = self.model.input_shape(n);
        let x = Tensor::from_vec(&shape, batch.to_vec()).expect("batch shape");
        let latent_dim = self.model.config().latent_dim;
        let variant = self.config.variant;

        // Forward: encode, (sample), decode.
        let enc_out = self.model.encode(&x);
        let (z, mu, logvar, eps) = if variant.is_variational() {
            let (mu, logvar) = split_mu_logvar(&enc_out, latent_dim);
            let eps = init::normal(&[n, latent_dim], 0.0, 1.0, &mut self.rng);
            let z = reparameterise(&mu, &logvar, &eps);
            (z, Some(mu), Some(logvar), Some(eps))
        } else {
            (enc_out.clone(), None, None, None)
        };
        let recon = self.model.decode(&z);

        // Reconstruction loss (per variant).
        let (rec_loss, grad_recon) = match variant {
            AeVariant::LogCoshVae => loss::log_cosh(&recon, &x),
            _ => loss::mse(&recon, &x),
        };

        // Latent regularizer: gradient contributions on z and, for VAEs, on μ/log σ².
        let mut reg_loss = 0.0f32;
        let mut grad_z_extra = Tensor::zeros(z.shape());
        let mut grad_mu_extra = Tensor::zeros(&[n, latent_dim]);
        let mut grad_logvar_extra = Tensor::zeros(&[n, latent_dim]);
        match variant {
            AeVariant::Ae => {}
            AeVariant::Vae => {
                let (kl, gmu, glv) =
                    loss::kl_divergence(mu.as_ref().expect("vae"), logvar.as_ref().expect("vae"));
                reg_loss += kl;
                grad_mu_extra = gmu;
                grad_logvar_extra = glv;
            }
            AeVariant::BetaVae { beta } => {
                let (kl, gmu, glv) =
                    loss::kl_divergence(mu.as_ref().expect("vae"), logvar.as_ref().expect("vae"));
                reg_loss += beta * kl;
                grad_mu_extra = gmu.scale(beta);
                grad_logvar_extra = glv.scale(beta);
            }
            AeVariant::DipVae {
                lambda_od,
                lambda_d,
            } => {
                let mu_t = mu.as_ref().expect("vae");
                let (kl, gmu, glv) = loss::kl_divergence(mu_t, logvar.as_ref().expect("vae"));
                let (dip, gdip) = loss::kl::dip_covariance_penalty(mu_t, lambda_od, lambda_d);
                reg_loss += kl + dip;
                grad_mu_extra = gmu.add(&gdip).expect("same shape");
                grad_logvar_extra = glv;
            }
            AeVariant::InfoVae { lambda_mmd } => {
                let mu_t = mu.as_ref().expect("vae");
                let (kl, gmu, glv) = loss::kl_divergence(mu_t, logvar.as_ref().expect("vae"));
                let prior = init::normal(&[n, latent_dim], 0.0, 1.0, &mut self.rng);
                let (mmd, gz) = loss::mmd_rbf(&z, &prior, 1.0);
                // Info-VAE keeps a small KL plus a strong MMD term.
                reg_loss += 0.1 * kl + lambda_mmd * mmd;
                grad_mu_extra = gmu.scale(0.1);
                grad_logvar_extra = glv.scale(0.1);
                grad_z_extra = gz.scale(lambda_mmd);
            }
            AeVariant::LogCoshVae => {
                let (kl, gmu, glv) =
                    loss::kl_divergence(mu.as_ref().expect("vae"), logvar.as_ref().expect("vae"));
                reg_loss += kl;
                grad_mu_extra = gmu;
                grad_logvar_extra = glv;
            }
            AeVariant::Wae { lambda_mmd } => {
                let prior = init::normal(&[n, latent_dim], 0.0, 1.0, &mut self.rng);
                let (mmd, gz) = loss::mmd_rbf(&z, &prior, 1.0);
                reg_loss += lambda_mmd * mmd;
                grad_z_extra = gz.scale(lambda_mmd);
            }
            AeVariant::Swae {
                lambda,
                projections,
            } => {
                let prior = init::normal(&[n, latent_dim], 0.0, 1.0, &mut self.rng);
                let (swd, gz) = loss::sliced_wasserstein(&z, &prior, projections, &mut self.rng);
                reg_loss += lambda * swd;
                grad_z_extra = gz.scale(lambda);
            }
        }

        // Backward: decoder, then combine latent gradients, then encoder.
        let grad_z = self
            .model
            .decoder_backward(&grad_recon)
            .add(&grad_z_extra)
            .expect("same latent shape");
        let grad_encoder_out = if variant.is_variational() {
            let logvar_t = logvar.as_ref().expect("vae");
            let eps_t = eps.as_ref().expect("vae");
            // z = μ + ε·exp(½ℓ):  ∂z/∂μ = 1, ∂z/∂ℓ = ½·ε·exp(½ℓ).
            let grad_mu = grad_z.add(&grad_mu_extra).expect("shape");
            let dz_dlogvar = logvar_t
                .zip(eps_t, |lv, e| 0.5 * e * (0.5 * lv).exp())
                .expect("shape");
            let grad_logvar = grad_z
                .mul(&dz_dlogvar)
                .expect("shape")
                .add(&grad_logvar_extra)
                .expect("shape");
            concat_mu_logvar(&grad_mu, &grad_logvar)
        } else {
            grad_z
        };
        let _ = self.model.encoder_backward(&grad_encoder_out);
        self.optimizer.step(&mut self.model.params_mut());

        EpochStats {
            loss: rec_loss + reg_loss,
            reconstruction: rec_loss,
            regularizer: reg_loss,
        }
    }

    /// Deterministic prediction PSNR of the current model on held-out blocks
    /// (in normalised `[-1, 1]` space) — the metric reported in Table I.
    pub fn prediction_psnr(&mut self, blocks: &[Vec<f32>]) -> f64 {
        assert!(!blocks.is_empty());
        let n = blocks.len();
        let flat: Vec<f32> = blocks.iter().flat_map(|b| b.iter().copied()).collect();
        let shape = self.model.input_shape(n);
        let x = Tensor::from_vec(&shape, flat.clone()).expect("shape");
        let recon = self.model.reconstruct(&x);
        let mut mse = 0.0f64;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (&a, &b) in flat.iter().zip(recon.as_slice().iter()) {
            mse += (a as f64 - b as f64).powi(2);
            lo = lo.min(a as f64);
            hi = hi.max(a as f64);
        }
        mse /= flat.len() as f64;
        let range = (hi - lo).max(1e-12);
        if mse == 0.0 {
            f64::INFINITY
        } else {
            20.0 * range.log10() - 10.0 * mse.log10()
        }
    }
}

/// Split an encoder output `(N, 2d)` into μ and log σ², each `(N, d)`.
fn split_mu_logvar(enc_out: &Tensor, latent_dim: usize) -> (Tensor, Tensor) {
    let n = enc_out.shape()[0];
    let src = enc_out.as_slice();
    let mut mu = Vec::with_capacity(n * latent_dim);
    let mut lv = Vec::with_capacity(n * latent_dim);
    for i in 0..n {
        mu.extend_from_slice(&src[i * 2 * latent_dim..i * 2 * latent_dim + latent_dim]);
        lv.extend_from_slice(&src[i * 2 * latent_dim + latent_dim..(i + 1) * 2 * latent_dim]);
    }
    (
        Tensor::from_vec(&[n, latent_dim], mu).expect("shape"),
        Tensor::from_vec(&[n, latent_dim], lv).expect("shape"),
    )
}

/// Interleave μ and log σ² gradients back into the encoder-output layout.
fn concat_mu_logvar(gmu: &Tensor, glogvar: &Tensor) -> Tensor {
    let n = gmu.shape()[0];
    let d = gmu.shape()[1];
    let mut out = Vec::with_capacity(n * 2 * d);
    for i in 0..n {
        out.extend_from_slice(&gmu.as_slice()[i * d..(i + 1) * d]);
        out.extend_from_slice(&glogvar.as_slice()[i * d..(i + 1) * d]);
    }
    Tensor::from_vec(&[n, 2 * d], out).expect("shape")
}

/// Reparameterisation trick: `z = μ + ε · exp(½ log σ²)`.
fn reparameterise(mu: &Tensor, logvar: &Tensor, eps: &Tensor) -> Tensor {
    let z: Vec<f32> = mu
        .as_slice()
        .iter()
        .zip(logvar.as_slice().iter())
        .zip(eps.as_slice().iter())
        .map(|((&m, &lv), &e)| m + e * (0.5 * lv).exp())
        .collect();
    Tensor::from_vec(mu.shape(), z).expect("shape")
}

/// Generate a smooth synthetic training block (used by tests and examples
/// that need quick, dataset-independent training data).
pub fn synthetic_block(block_len: usize, edge: usize, rank: usize, seed: u64) -> Vec<f32> {
    let mut rng = init::rng(seed);
    let fy: f32 = rng.gen_range(0.5..2.5);
    let fx: f32 = rng.gen_range(0.5..2.5);
    let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
    let mut out = Vec::with_capacity(block_len);
    for i in 0..block_len {
        let (a, b) = match rank {
            2 => (
                (i / edge) as f32 / edge as f32,
                (i % edge) as f32 / edge as f32,
            ),
            _ => (
                ((i / (edge * edge)) as f32 / edge as f32),
                ((i % (edge * edge)) / edge) as f32 / edge as f32,
            ),
        };
        out.push((std::f32::consts::TAU * (fy * a + fx * b) + phase).sin() * 0.8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> AeConfig {
        AeConfig {
            spatial_rank: 2,
            block_size: 8,
            latent_dim: 4,
            channels: vec![4, 8],
            variational: false,
            seed: 3,
        }
    }

    fn training_blocks(count: usize) -> Vec<Vec<f32>> {
        (0..count)
            .map(|i| synthetic_block(64, 8, 2, i as u64))
            .collect()
    }

    #[test]
    fn swae_training_reduces_loss() {
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 8,
            learning_rate: 2e-3,
            variant: AeVariant::aesz_default(),
            seed: 5,
        };
        let mut trainer = Trainer::new(tiny_config(), cfg);
        let stats = trainer.train(&training_blocks(32));
        assert_eq!(stats.len(), 8);
        let first = stats.first().unwrap().loss;
        let last = stats.last().unwrap().loss;
        assert!(
            last < first * 0.8,
            "training should reduce the loss: first {first}, last {last}"
        );
        assert!(last.is_finite());
    }

    #[test]
    fn vanilla_ae_training_reduces_reconstruction_error() {
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 8,
            learning_rate: 2e-3,
            variant: AeVariant::Ae,
            seed: 6,
        };
        let mut trainer = Trainer::new(tiny_config(), cfg);
        let stats = trainer.train(&training_blocks(24));
        assert!(stats.last().unwrap().reconstruction < stats.first().unwrap().reconstruction);
        // No regularizer for the vanilla AE.
        assert!(stats.iter().all(|s| s.regularizer == 0.0));
    }

    #[test]
    fn variational_variants_train_without_nan() {
        for variant in [
            AeVariant::Vae,
            AeVariant::BetaVae { beta: 2.0 },
            AeVariant::InfoVae { lambda_mmd: 2.0 },
        ] {
            let cfg = TrainConfig {
                epochs: 2,
                batch_size: 8,
                learning_rate: 1e-3,
                variant,
                seed: 7,
            };
            let mut trainer = Trainer::new(tiny_config(), cfg);
            let stats = trainer.train(&training_blocks(16));
            assert!(
                stats.iter().all(|s| s.loss.is_finite()),
                "{} produced a non-finite loss",
                variant.name()
            );
        }
    }

    #[test]
    fn prediction_psnr_improves_with_training() {
        let cfg = TrainConfig {
            epochs: 10,
            batch_size: 8,
            learning_rate: 2e-3,
            variant: AeVariant::aesz_default(),
            seed: 8,
        };
        let mut trainer = Trainer::new(tiny_config(), cfg);
        let train: Vec<Vec<f32>> = training_blocks(32);
        let test: Vec<Vec<f32>> = (100..116).map(|i| synthetic_block(64, 8, 2, i)).collect();
        let before = trainer.prediction_psnr(&test);
        trainer.train(&train);
        let after = trainer.prediction_psnr(&test);
        assert!(
            after > before + 1.0,
            "PSNR should improve with training: {before:.2} → {after:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn rejects_malformed_blocks() {
        let mut trainer = Trainer::new(tiny_config(), TrainConfig::default());
        trainer.train(&[vec![0.0; 63]]);
    }
}
