//! N-dimensional convolution layers (2D and 3D spatial).
//!
//! The AE-SZ encoder stacks `Conv(stride 1) → Conv(stride 2) → GDN` blocks;
//! the decoder mirrors them with upsampling + convolution (see
//! [`crate::upsample`]). Kernels are 3×3 (2D) or 3×3×3 (3D) as in the paper.
//! Internally every input is treated as 5-D `(N, C, D, H, W)` with `D = 1`
//! for 2D data, so a single implementation covers both ranks.
//!
//! Padding is always `k/2` ("same"), so stride-1 convolutions preserve the
//! spatial size and stride-2 convolutions halve it (for even sizes).

use crate::gemm::{gemm_into, GemmBias};
use crate::im2col::{im2col_into, ConvGeom};
use crate::infer::{NnScratch, Shape};
use crate::layer::{Layer, NnError, Param};
use aesz_tensor::{init, Tensor};
use rand::rngs::StdRng;

/// Target column count of one im2col panel: bounds the resident column
/// buffer (`k_rows · PANEL_COLS` floats) so it stays cache-friendly while
/// leaving enough width for the GEMM inner loop to vectorize.
const PANEL_COLS: usize = 512;

/// Convolution over 2 or 3 spatial dimensions with cubic kernels.
#[derive(Clone)]
pub struct ConvNd {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    spatial_rank: usize,
    cached_input: Option<Tensor>,
}

/// Shape of an activation viewed as (N, C, D, H, W) with D=1 for 2D data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Act5 {
    pub n: usize,
    pub c: usize,
    pub d: usize,
    pub h: usize,
    pub w: usize,
}

impl Act5 {
    pub(crate) fn from_shape(shape: &[usize], spatial_rank: usize) -> Act5 {
        match Self::try_from_shape(shape, spatial_rank, "Act5") {
            Ok(a) => a,
            Err(_) => {
                panic!("activation shape {shape:?} incompatible with spatial rank {spatial_rank}")
            }
        }
    }

    /// Fallible parse for the error-returning layer entry points.
    pub(crate) fn try_from_shape(
        shape: &[usize],
        spatial_rank: usize,
        layer: &'static str,
    ) -> Result<Act5, NnError> {
        match (shape.len(), spatial_rank) {
            (4, 2) => Ok(Act5 {
                n: shape[0],
                c: shape[1],
                d: 1,
                h: shape[2],
                w: shape[3],
            }),
            (5, 3) => Ok(Act5 {
                n: shape[0],
                c: shape[1],
                d: shape[2],
                h: shape[3],
                w: shape[4],
            }),
            _ => Err(NnError {
                layer,
                problem: "activation rank incompatible with spatial rank",
                expected: spatial_rank + 2,
                got: shape.len(),
            }),
        }
    }

    pub(crate) fn to_shape(self, spatial_rank: usize) -> Vec<usize> {
        match spatial_rank {
            2 => vec![self.n, self.c, self.h, self.w],
            3 => vec![self.n, self.c, self.d, self.h, self.w],
            r => panic!("unsupported spatial rank {r}"),
        }
    }

    /// Shape for the inference path, built without touching the heap.
    pub(crate) fn to_infer_shape(self, spatial_rank: usize) -> Shape {
        match spatial_rank {
            2 => Shape::new(&[self.n, self.c, self.h, self.w]),
            3 => Shape::new(&[self.n, self.c, self.d, self.h, self.w]),
            r => panic!("unsupported spatial rank {r}"),
        }
    }

    pub(crate) fn spatial_len(&self) -> usize {
        self.d * self.h * self.w
    }

    pub(crate) fn sample_len(&self) -> usize {
        self.c * self.spatial_len()
    }
}

impl ConvNd {
    /// New convolution layer. `spatial_rank` must be 2 or 3; `kernel` is the
    /// cubic kernel edge (3 in the paper); `stride` 1 or 2.
    pub fn new(
        spatial_rank: usize,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            spatial_rank == 2 || spatial_rank == 3,
            "spatial rank must be 2 or 3"
        );
        assert!(kernel % 2 == 1, "kernel edge must be odd for same-padding");
        let k_elems = kernel.pow(spatial_rank as u32);
        let fan_in = in_channels * k_elems;
        let weight = init::kaiming(&[out_channels, in_channels * k_elems], fan_in, rng);
        ConvNd {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            spatial_rank,
            cached_input: None,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn kernel_dims(&self) -> (usize, usize, usize) {
        if self.spatial_rank == 2 {
            (1, self.kernel, self.kernel)
        } else {
            (self.kernel, self.kernel, self.kernel)
        }
    }

    fn pads(&self) -> (isize, isize, isize) {
        let p = (self.kernel / 2) as isize;
        if self.spatial_rank == 2 {
            (0, p, p)
        } else {
            (p, p, p)
        }
    }

    fn out_extent(extent: usize, kernel: usize, pad: isize, stride: usize) -> usize {
        (extent as isize + 2 * pad - kernel as isize) as usize / stride + 1
    }

    fn output_act(&self, input: Act5) -> Act5 {
        let (kd, kh, kw) = self.kernel_dims();
        let (pd, ph, pw) = self.pads();
        let sd = if self.spatial_rank == 2 {
            1
        } else {
            self.stride
        };
        Act5 {
            n: input.n,
            c: self.out_channels,
            d: Self::out_extent(input.d, kd, pd, sd),
            h: Self::out_extent(input.h, kh, ph, self.stride),
            w: Self::out_extent(input.w, kw, pw, self.stride),
        }
    }

    /// The im2col lowering geometry for one input sample.
    fn geom(&self, ia: Act5) -> ConvGeom {
        let (kd, kh, kw) = self.kernel_dims();
        let (pd, ph, pw) = self.pads();
        let sd = if self.spatial_rank == 2 {
            1
        } else {
            self.stride
        };
        ConvGeom::new(
            self.in_channels,
            [ia.d, ia.h, ia.w],
            [kd, kh, kw],
            [sd, self.stride, self.stride],
            [pd as usize, ph as usize, pw as usize],
        )
    }

    /// Shape checks shared by both forward entry points.
    fn validate(&self, shape: &[usize]) -> Result<Act5, NnError> {
        let ia = Act5::try_from_shape(shape, self.spatial_rank, "ConvNd")?;
        if ia.c != self.in_channels {
            return Err(NnError {
                layer: "ConvNd",
                problem: "channel count mismatch",
                expected: self.in_channels,
                got: ia.c,
            });
        }
        Ok(ia)
    }

    /// GEMM inference core shared by `try_forward` and `infer_into`: per
    /// sample, unfold cache-sized im2col panels and multiply them against
    /// the weight matrix. Bit-identical to the direct 7-deep loop it
    /// replaced: the column rows follow the weight layout's
    /// `(ci, dk, hk, wk)` order and [`gemm_into`] accumulates ascending-k,
    /// so every output element sums its taps in the original order (padded
    /// taps contribute an explicit `+0.0`; see [`crate::gemm`]).
    fn run(&self, x: &[f32], ia: Act5, oa: Act5, out: &mut [f32], scratch: &mut NnScratch) {
        let g = self.geom(ia);
        debug_assert_eq!([oa.d, oa.h, oa.w], g.out_dhw);
        let w = self.weight.value.as_slice();
        let b = self.bias.value.as_slice();
        let k = g.k_rows();
        let in_sample = ia.sample_len();
        let out_sample = oa.sample_len();
        let spatial = oa.spatial_len();
        let rows_total = g.out_rows();
        let rows_per_panel = (PANEL_COLS / oa.w.max(1)).clamp(1, rows_total.max(1));
        for n in 0..ia.n {
            let x_n = &x[n * in_sample..(n + 1) * in_sample];
            let out_n = &mut out[n * out_sample..(n + 1) * out_sample];
            let mut r0 = 0usize;
            while r0 < rows_total {
                let r1 = (r0 + rows_per_panel).min(rows_total);
                im2col_into(x_n, &g, r0, r1, &mut scratch.col);
                let np = (r1 - r0) * oa.w;
                gemm_into(
                    w,
                    &scratch.col,
                    GemmBias::Row(b),
                    oa.c,
                    k,
                    np,
                    &mut out_n[r0 * oa.w..],
                    spatial,
                );
                r0 = r1;
            }
        }
    }
}

impl Layer for ConvNd {
    fn name(&self) -> &'static str {
        "ConvNd"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn try_forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let ia = self.validate(input.shape())?;
        let oa = self.output_act(ia);
        let mut out = vec![0.0f32; oa.n * oa.sample_len()];
        let mut scratch = NnScratch::new();
        self.run(input.as_slice(), ia, oa, &mut out, &mut scratch);
        self.cached_input = Some(input.clone());
        Ok(Tensor::from_vec(&oa.to_shape(self.spatial_rank), out).expect("consistent shape"))
    }

    fn infer_into(
        &self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        scratch: &mut NnScratch,
    ) -> Result<Shape, NnError> {
        let ia = self.validate(shape.dims())?;
        if input.len() != shape.len() {
            return Err(NnError {
                layer: "ConvNd",
                problem: "input length does not match shape",
                expected: shape.len(),
                got: input.len(),
            });
        }
        let oa = self.output_act(ia);
        out.resize(oa.n * oa.sample_len(), 0.0);
        self.run(input, ia, oa, out, scratch);
        Ok(oa.to_infer_shape(self.spatial_rank))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let ia = Act5::from_shape(input.shape(), self.spatial_rank);
        let oa = self.output_act(ia);
        assert_eq!(grad_output.shape(), &oa.to_shape(self.spatial_rank)[..]);

        let (kd, kh, kw) = self.kernel_dims();
        let (pd, ph, pw) = self.pads();
        let sd = if self.spatial_rank == 2 {
            1
        } else {
            self.stride
        };
        let (sh, sw) = (self.stride, self.stride);
        let k_elems = kd * kh * kw;

        let x = input.as_slice();
        let go = grad_output.as_slice();
        let w = self.weight.value.as_slice();
        let gw = self.weight.grad.as_mut_slice();
        let gb = self.bias.grad.as_mut_slice();
        let mut gx = vec![0.0f32; x.len()];

        let in_sample = ia.sample_len();
        let out_sample = oa.sample_len();
        for n in 0..ia.n {
            let x_n = &x[n * in_sample..(n + 1) * in_sample];
            let go_n = &go[n * out_sample..(n + 1) * out_sample];
            let gx_n = &mut gx[n * in_sample..(n + 1) * in_sample];
            for co in 0..oa.c {
                let w_co =
                    &w[co * self.in_channels * k_elems..(co + 1) * self.in_channels * k_elems];
                let gw_co =
                    &mut gw[co * self.in_channels * k_elems..(co + 1) * self.in_channels * k_elems];
                for od in 0..oa.d {
                    for oh in 0..oa.h {
                        for ow in 0..oa.w {
                            let g = go_n[(co * oa.d + od) * oa.h * oa.w + oh * oa.w + ow];
                            if g == 0.0 {
                                continue;
                            }
                            gb[co] += g;
                            for ci in 0..ia.c {
                                let base_x = ci * ia.spatial_len();
                                let base_w = ci * k_elems;
                                for dk in 0..kd {
                                    let id = od as isize * sd as isize - pd + dk as isize;
                                    if id < 0 || id >= ia.d as isize {
                                        continue;
                                    }
                                    for hk in 0..kh {
                                        let ih = oh as isize * sh as isize - ph + hk as isize;
                                        if ih < 0 || ih >= ia.h as isize {
                                            continue;
                                        }
                                        for wk in 0..kw {
                                            let iw = ow as isize * sw as isize - pw + wk as isize;
                                            if iw < 0 || iw >= ia.w as isize {
                                                continue;
                                            }
                                            let xi = base_x
                                                + (id as usize * ia.h + ih as usize) * ia.w
                                                + iw as usize;
                                            let wi = base_w + (dk * kh + hk) * kw + wk;
                                            gw_co[wi] += g * x_n[xi];
                                            gx_n[xi] += g * w_co[wi];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        Tensor::from_vec(input.shape(), gx).expect("consistent shape")
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }
}

/// Reshape layer: maps `(N, …)` activations to `(N, per_sample_shape…)`.
/// Used to flatten convolutional feature maps before the dense latent layer
/// and to unflatten them again in the decoder.
#[derive(Clone)]
pub struct Reshape {
    per_sample_shape: Vec<usize>,
    cached_in_shape: Option<Vec<usize>>,
}

impl Reshape {
    /// Reshape every sample to `per_sample_shape` (product must match).
    pub fn new(per_sample_shape: Vec<usize>) -> Self {
        Reshape {
            per_sample_shape,
            cached_in_shape: None,
        }
    }
}

impl Layer for Reshape {
    fn name(&self) -> &'static str {
        "Reshape"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn try_forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let n = input.shape()[0];
        let per_sample: usize = input.shape()[1..].iter().product();
        let target: usize = self.per_sample_shape.iter().product();
        if per_sample != target {
            return Err(NnError {
                layer: "Reshape",
                problem: "per-sample element count mismatch",
                expected: target,
                got: per_sample,
            });
        }
        self.cached_in_shape = Some(input.shape().to_vec());
        let mut shape = vec![n];
        shape.extend_from_slice(&self.per_sample_shape);
        Ok(input.reshape(&shape).expect("element count checked"))
    }

    fn infer_into(
        &self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        _scratch: &mut NnScratch,
    ) -> Result<Shape, NnError> {
        let dims = shape.dims();
        let n = dims.first().copied().unwrap_or(0);
        let per_sample: usize = dims.iter().skip(1).product();
        let target: usize = self.per_sample_shape.iter().product();
        if per_sample != target {
            return Err(NnError {
                layer: "Reshape",
                problem: "per-sample element count mismatch",
                expected: target,
                got: per_sample,
            });
        }
        out.clear();
        out.extend_from_slice(input);
        let mut out_dims = [0usize; Shape::MAX_RANK];
        out_dims[0] = n;
        out_dims[1..=self.per_sample_shape.len()].copy_from_slice(&self.per_sample_shape);
        Ok(Shape::new(&out_dims[..self.per_sample_shape.len() + 1]))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let in_shape = self
            .cached_in_shape
            .as_ref()
            .expect("backward called before forward");
        grad_output.reshape(in_shape).expect("same element count")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::grad_check_input;
    use aesz_tensor::init::rng;

    #[test]
    fn identity_kernel_preserves_input() {
        let mut r = rng(1);
        let mut conv = ConvNd::new(2, 1, 1, 3, 1, &mut r);
        // Set the kernel to a centred delta.
        let mut w = vec![0.0f32; 9];
        w[4] = 1.0;
        conv.weight.value = Tensor::from_vec(&[1, 9], w).unwrap();
        conv.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|v| v as f32).collect()).unwrap();
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn stride_two_halves_spatial_size() {
        let mut r = rng(2);
        let mut conv2 = ConvNd::new(2, 3, 8, 3, 2, &mut r);
        let x = init::normal(&[2, 3, 16, 16], 0.0, 1.0, &mut r);
        assert_eq!(conv2.forward(&x).shape(), &[2, 8, 8, 8]);

        let mut conv3 = ConvNd::new(3, 2, 4, 3, 2, &mut r);
        let x3 = init::normal(&[1, 2, 8, 8, 8], 0.0, 1.0, &mut r);
        assert_eq!(conv3.forward(&x3).shape(), &[1, 4, 4, 4, 4]);
    }

    #[test]
    fn averaging_kernel_computes_local_means() {
        let mut r = rng(3);
        let mut conv = ConvNd::new(2, 1, 1, 3, 1, &mut r);
        conv.weight.value = Tensor::full(&[1, 9], 1.0 / 9.0);
        conv.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::ones(&[1, 1, 5, 5]);
        let y = conv.forward(&x);
        // Interior of an all-ones image stays 1 under a mean filter.
        assert!((y.at(&[0, 0, 2, 2]) - 1.0).abs() < 1e-6);
        // Corner sees only 4 of 9 taps.
        assert!((y.at(&[0, 0, 0, 0]) - 4.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_check_2d() {
        let mut r = rng(4);
        let mut conv = ConvNd::new(2, 2, 3, 3, 1, &mut r);
        let x = init::normal(&[1, 2, 5, 5], 0.0, 1.0, &mut r);
        let err = grad_check_input(&mut conv, &x, 1e-2);
        assert!(err < 2e-2, "relative gradient error {err}");
    }

    #[test]
    fn gradient_check_3d_strided() {
        let mut r = rng(5);
        let mut conv = ConvNd::new(3, 2, 2, 3, 2, &mut r);
        let x = init::normal(&[1, 2, 4, 4, 4], 0.0, 1.0, &mut r);
        let err = grad_check_input(&mut conv, &x, 1e-2);
        assert!(err < 2e-2, "relative gradient error {err}");
    }

    #[test]
    fn reshape_roundtrip() {
        let mut flat = Reshape::new(vec![12]);
        let x = Tensor::from_vec(&[2, 3, 2, 2], (0..24).map(|v| v as f32).collect()).unwrap();
        let y = flat.forward(&x);
        assert_eq!(y.shape(), &[2, 12]);
        let g = flat.backward(&y);
        assert_eq!(g.shape(), &[2, 3, 2, 2]);
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut r = rng(6);
        let mut conv = ConvNd::new(2, 3, 4, 3, 1, &mut r);
        let err = conv
            .try_forward(&Tensor::zeros(&[1, 2, 8, 8]))
            .expect_err("mismatched channels must be rejected");
        assert_eq!(err.layer, "ConvNd");
        assert_eq!(err.problem, "channel count mismatch");
        assert_eq!((err.expected, err.got), (3, 2));
        // The inference path rejects the same shape without panicking.
        let mut out = Vec::new();
        let mut scratch = NnScratch::new();
        let x = vec![0.0f32; 2 * 64];
        let err = conv
            .infer_into(&x, Shape::new(&[1, 2, 8, 8]), &mut out, &mut scratch)
            .expect_err("mismatched channels must be rejected");
        assert_eq!(err.problem, "channel count mismatch");
    }

    #[test]
    fn infer_into_matches_forward_bitwise() {
        let mut r = rng(7);
        let mut conv = ConvNd::new(2, 3, 5, 3, 2, &mut r);
        let x = init::normal(&[2, 3, 9, 7], 0.0, 1.0, &mut r);
        let y = conv.forward(&x);
        let mut out = Vec::new();
        let mut scratch = NnScratch::new();
        let shape = conv
            .infer_into(x.as_slice(), Shape::new(x.shape()), &mut out, &mut scratch)
            .expect("valid shape");
        assert_eq!(shape.dims(), y.shape());
        let fwd: Vec<u32> = y.as_slice().iter().map(|v| v.to_bits()).collect();
        let inf: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        assert_eq!(fwd, inf);
    }
}
