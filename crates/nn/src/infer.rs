//! Shared state of the allocation-free inference path.
//!
//! [`Layer::infer_into`](crate::layer::Layer::infer_into) threads two pieces
//! of caller-owned state through the network so a resident compressor fork
//! performs no per-call heap allocation once warm:
//!
//! * [`Shape`] — a fixed-capacity copy type describing the activation layout,
//!   so shape flow itself never touches the heap (a `Vec<usize>` per layer
//!   per call would).
//! * [`NnScratch`] — the ping-pong activation buffers, the `im2col` column
//!   panel, the packed `Wᵀ` panel of the dense layers and the GDN coefficient
//!   buffer. All grow to their high-water mark on the first batch and are
//!   reused verbatim afterwards.
//!
//! `NnScratch` deliberately clones as *empty*: compressors keep one scratch
//! per fork (`AeSz`/`AeA`/`AeB` each own one), and a fork must not drag a
//! sibling's multi-megabyte buffers along — it warms its own on first use,
//! which is exactly the per-worker residency model of `aesz serve`.

/// Activation shape with fixed capacity (rank ≤ 5: `(N, C, D, H, W)` covers
/// every layer in the AE-SZ architecture). `Copy`, so passing shapes around
/// the inference path allocates nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Shape {
    dims: [usize; 5],
    rank: usize,
}

impl Shape {
    /// Maximum representable rank.
    pub const MAX_RANK: usize = 5;

    /// Shape from a dims slice. Panics above rank 5 — the architecture never
    /// produces one, so this is a programming error, not a data error.
    pub fn new(dims: &[usize]) -> Shape {
        assert!(dims.len() <= Self::MAX_RANK, "rank {} > 5", dims.len());
        let mut d = [0usize; Self::MAX_RANK];
        d[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: d,
            rank: dims.len(),
        }
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// True when the shape holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Resident scratch of the inference path: every buffer a forward pass needs,
/// owned by the caller so repeated calls are allocation-free once warm.
#[derive(Default, Debug)]
pub struct NnScratch {
    /// Ping-pong activation buffers of [`Sequential::infer_into`]
    /// (crate::sequential::Sequential::infer_into).
    pub(crate) ping: Vec<f32>,
    pub(crate) pong: Vec<f32>,
    /// `im2col` column panel of the convolution layers.
    pub(crate) col: Vec<f32>,
    /// Packed `Wᵀ` panel of the dense layers.
    pub(crate) packed: Vec<f32>,
    /// GDN effective coefficients and per-position squares.
    pub(crate) coeff: Vec<f32>,
}

impl NnScratch {
    /// Fresh, cold scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total resident capacity in f32 elements (for diagnostics).
    pub fn resident_elems(&self) -> usize {
        self.ping.capacity()
            + self.pong.capacity()
            + self.col.capacity()
            + self.packed.capacity()
            + self.coeff.capacity()
    }
}

/// Forks start cold: cloning a compressor must not duplicate megabytes of
/// scratch, and every fork re-warms its own buffers on first use.
impl Clone for NnScratch {
    fn clone(&self) -> Self {
        NnScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_roundtrips_dims() {
        let s = Shape::new(&[2, 1, 8, 8]);
        assert_eq!(s.dims(), &[2, 1, 8, 8]);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.len(), 128);
        assert!(!s.is_empty());
        assert!(Shape::new(&[3, 0, 2]).is_empty());
    }

    #[test]
    fn scratch_clones_empty() {
        let mut s = NnScratch::new();
        s.ping.resize(1024, 0.0);
        s.col.resize(4096, 0.0);
        assert!(s.resident_elems() >= 5120);
        let c = s.clone();
        assert_eq!(c.resident_elems(), 0);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn shape_rejects_rank_above_five() {
        Shape::new(&[1, 2, 3, 4, 5, 6]);
    }
}
