//! The blockwise convolutional autoencoder used by AE-SZ (Fig. 3/4 of the paper).
//!
//! Encoder: a stack of `Conv(stride 1) → Conv(stride 2) → GDN` blocks followed
//! by a fully-connected layer that resizes the flattened feature map to the
//! latent vector. Decoder: the mirror image — a fully-connected layer, then
//! `Upsample → Conv(stride 1) → iGDN` blocks, a final stride-1 convolution to
//! one channel and a `Tanh` output (inputs are normalised to `[-1, 1]`).
//!
//! The number of blocks and channels is configurable per data field, exactly
//! like Table VI in the paper; this reproduction defaults to smaller channel
//! counts so CPU training stays fast while preserving the architecture shape.

use crate::activation::Tanh;
use crate::conv::{ConvNd, Reshape};
use crate::dense::Dense;
use crate::gdn::Gdn;
use crate::infer::{NnScratch, Shape};
use crate::layer::{Layer, NnError, Param};
use crate::sequential::Sequential;
use aesz_tensor::{init, Tensor};

/// Hyper-parameters of one AE-SZ autoencoder (one per data field, Table VI).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AeConfig {
    /// 2 for 2D fields (CESM, EXAFEL), 3 for 3D fields (NYX, Hurricane, RTM).
    pub spatial_rank: usize,
    /// Input block edge length (32 for 2D, 8 for 3D by default).
    pub block_size: usize,
    /// Latent vector length.
    pub latent_dim: usize,
    /// Channels of each convolutional block (each block halves the spatial size).
    pub channels: Vec<usize>,
    /// When true the encoder outputs `2·latent_dim` values (μ and log σ²) for
    /// the VAE-family variants; when false it outputs `latent_dim` directly.
    pub variational: bool,
    /// Seed for weight initialisation.
    pub seed: u64,
}

impl AeConfig {
    /// Default 2D configuration (scaled-down version of the paper's
    /// 32×32 / latent 16 / channels \[32,64,128,256\] setting).
    pub fn default_2d() -> Self {
        AeConfig {
            spatial_rank: 2,
            block_size: 32,
            latent_dim: 16,
            channels: vec![8, 16],
            variational: false,
            seed: 7,
        }
    }

    /// Default 3D configuration (scaled-down version of the paper's
    /// 8×8×8 / latent 16 / channels \[32,64,128\] setting).
    pub fn default_3d() -> Self {
        AeConfig {
            spatial_rank: 3,
            block_size: 8,
            latent_dim: 16,
            channels: vec![8, 16],
            variational: false,
            seed: 7,
        }
    }

    /// Number of values the encoder emits per sample.
    pub fn encoder_out(&self) -> usize {
        if self.variational {
            2 * self.latent_dim
        } else {
            self.latent_dim
        }
    }

    /// Spatial edge length of the feature map after all strided blocks.
    pub fn feature_edge(&self) -> usize {
        let mut e = self.block_size;
        for _ in &self.channels {
            e = e.div_ceil(2);
        }
        e.max(1)
    }

    /// Number of elements per input block.
    pub fn block_len(&self) -> usize {
        self.block_size.pow(self.spatial_rank as u32)
    }

    /// Flattened feature size at the encoder/decoder junction.
    pub fn feature_len(&self) -> usize {
        let c = *self.channels.last().expect("at least one conv block");
        c * self.feature_edge().pow(self.spatial_rank as u32)
    }

    /// Latent ratio = block elements / latent length (the paper's "latent ratio").
    pub fn latent_ratio(&self) -> f64 {
        self.block_len() as f64 / self.latent_dim as f64
    }
}

/// The AE-SZ convolutional autoencoder: an encoder and decoder stack built
/// from the configuration, with explicit forward/backward entry points so the
/// training objectives (zoo variants) can inject latent-space gradients.
///
/// Cloning produces an independent deep copy (weights included), which is how
/// the archive layer runs one model per in-flight chunk across threads.
#[derive(Clone)]
pub struct ConvAutoencoder {
    config: AeConfig,
    encoder: Sequential,
    decoder: Sequential,
}

impl ConvAutoencoder {
    /// Build a freshly initialised autoencoder from its configuration.
    pub fn new(config: AeConfig) -> Self {
        assert!(
            config.spatial_rank == 2 || config.spatial_rank == 3,
            "spatial rank must be 2 or 3"
        );
        assert!(!config.channels.is_empty(), "need at least one conv block");
        assert!(
            config.block_size.is_multiple_of(1 << config.channels.len()),
            "block size {} must be divisible by 2^{} (one halving per conv block)",
            config.block_size,
            config.channels.len()
        );
        let mut rng = init::rng(config.seed);
        let rank = config.spatial_rank;

        // Encoder: [Conv s1 → Conv s2 → GDN] per block, then flatten + dense.
        let mut encoder = Sequential::new();
        let mut in_c = 1usize;
        for &c in &config.channels {
            encoder.add(Box::new(ConvNd::new(rank, in_c, c, 3, 1, &mut rng)));
            encoder.add(Box::new(ConvNd::new(rank, c, c, 3, 2, &mut rng)));
            encoder.add(Box::new(Gdn::new(rank, c, false)));
            in_c = c;
        }
        encoder.add(Box::new(Reshape::new(vec![config.feature_len()])));
        encoder.add(Box::new(Dense::new(
            config.feature_len(),
            config.encoder_out(),
            &mut rng,
        )));

        // Decoder: dense, unflatten, [Upsample → Conv s1 → iGDN] per block
        // (mirrored), final 1-channel convolution + Tanh.
        let mut decoder = Sequential::new();
        decoder.add(Box::new(Dense::new(
            config.latent_dim,
            config.feature_len(),
            &mut rng,
        )));
        let edge = config.feature_edge();
        let last_c = *config.channels.last().expect("non-empty");
        let mut feat_shape = vec![last_c];
        feat_shape.extend(std::iter::repeat_n(edge, rank));
        decoder.add(Box::new(Reshape::new(feat_shape)));
        let mut in_c = last_c;
        for &c in config.channels.iter().rev() {
            decoder.add(Box::new(crate::upsample::Upsample::new(rank, 2)));
            decoder.add(Box::new(ConvNd::new(rank, in_c, c, 3, 1, &mut rng)));
            decoder.add(Box::new(Gdn::new(rank, c, true)));
            in_c = c;
        }
        decoder.add(Box::new(ConvNd::new(rank, in_c, 1, 3, 1, &mut rng)));
        decoder.add(Box::new(Tanh::new()));

        ConvAutoencoder {
            config,
            encoder,
            decoder,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &AeConfig {
        &self.config
    }

    /// Total number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.encoder.num_params() + self.decoder.num_params()
    }

    /// Shape of one batch of input blocks: `(n, 1, edge, edge[, edge])`.
    pub fn input_shape(&self, n: usize) -> Vec<usize> {
        let mut s = vec![n, 1];
        s.extend(std::iter::repeat_n(
            self.config.block_size,
            self.config.spatial_rank,
        ));
        s
    }

    /// Run the encoder: blocks `(N, 1, …)` → latent codes `(N, encoder_out)`.
    pub fn encode(&mut self, blocks: &Tensor) -> Tensor {
        self.encoder.forward(blocks)
    }

    /// Run the decoder: latent codes `(N, latent_dim)` → blocks `(N, 1, …)`.
    pub fn decode(&mut self, latents: &Tensor) -> Tensor {
        self.decoder.forward(latents)
    }

    /// Backward through the decoder; returns ∂loss/∂latent.
    pub fn decoder_backward(&mut self, grad_recon: &Tensor) -> Tensor {
        self.decoder.backward(grad_recon)
    }

    /// Backward through the encoder; returns ∂loss/∂input (rarely needed).
    pub fn encoder_backward(&mut self, grad_latent: &Tensor) -> Tensor {
        self.encoder.backward(grad_latent)
    }

    /// Deterministic reconstruction of a batch of blocks (uses μ for
    /// variational models), as used at compression time.
    pub fn reconstruct(&mut self, blocks: &Tensor) -> Tensor {
        let latent = self.encode(blocks);
        let z = self.deterministic_latent(&latent);
        self.decode(&z)
    }

    /// Extract the deterministic latent code (μ for variational encoders).
    pub fn deterministic_latent(&self, encoder_out: &Tensor) -> Tensor {
        if !self.config.variational {
            return encoder_out.clone();
        }
        let n = encoder_out.shape()[0];
        let ld = self.config.latent_dim;
        let src = encoder_out.as_slice();
        let mut mu = Vec::with_capacity(n * ld);
        for i in 0..n {
            mu.extend_from_slice(&src[i * 2 * ld..i * 2 * ld + ld]);
        }
        Tensor::from_vec(&[n, ld], mu).expect("consistent shape")
    }

    /// Mutable access to every trainable parameter (encoder then decoder).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.encoder.params_mut();
        p.extend(self.decoder.params_mut());
        p
    }

    /// Immutable access to every trainable parameter (encoder then decoder).
    pub fn params(&self) -> Vec<&Param> {
        let mut p = self.encoder.params();
        p.extend(self.decoder.params());
        p
    }

    /// `input_shape` as a stack-allocated [`Shape`] for the inference path.
    fn infer_input_shape(&self, n: usize) -> Shape {
        let e = self.config.block_size;
        match self.config.spatial_rank {
            2 => Shape::new(&[n, 1, e, e]),
            _ => Shape::new(&[n, 1, e, e, e]),
        }
    }

    /// Encode a set of flat, already-normalised blocks and return their
    /// deterministic latent vectors, row-major `(n, latent_dim)`.
    pub fn encode_blocks(&mut self, blocks: &[f32], n: usize) -> Vec<f32> {
        let mut out = Vec::new();
        let mut scratch = NnScratch::new();
        match self.encode_blocks_into(blocks, n, &mut out, &mut scratch) {
            Ok(()) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Decode flat latent vectors `(n, latent_dim)` back to flat blocks.
    pub fn decode_latents(&mut self, latents: &[f32], n: usize) -> Vec<f32> {
        let mut out = Vec::new();
        let mut scratch = NnScratch::new();
        match self.decode_latents_into(latents, n, &mut out, &mut scratch) {
            Ok(()) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Allocation-free twin of [`Self::encode_blocks`]: run the encoder's
    /// inference path (`&self` — no training caches touched) writing the
    /// deterministic latents into `out`. Variational encoders emit
    /// `(μ, log σ²)` pairs; the μ halves are compacted in place.
    pub fn encode_blocks_into(
        &self,
        blocks: &[f32],
        n: usize,
        out: &mut Vec<f32>,
        scratch: &mut NnScratch,
    ) -> Result<(), NnError> {
        if blocks.len() != n * self.config.block_len() {
            return Err(NnError {
                layer: "ConvAutoencoder",
                problem: "block buffer length mismatch",
                expected: n * self.config.block_len(),
                got: blocks.len(),
            });
        }
        self.encoder
            .infer_into(blocks, self.infer_input_shape(n), out, scratch)?;
        if self.config.variational {
            let ld = self.config.latent_dim;
            for i in 0..n {
                out.copy_within(i * 2 * ld..i * 2 * ld + ld, i * ld);
            }
            out.truncate(n * ld);
        }
        Ok(())
    }

    /// Allocation-free twin of [`Self::decode_latents`]: run the decoder's
    /// inference path writing the reconstructed flat blocks into `out`.
    pub fn decode_latents_into(
        &self,
        latents: &[f32],
        n: usize,
        out: &mut Vec<f32>,
        scratch: &mut NnScratch,
    ) -> Result<(), NnError> {
        if latents.len() != n * self.config.latent_dim {
            return Err(NnError {
                layer: "ConvAutoencoder",
                problem: "latent buffer length mismatch",
                expected: n * self.config.latent_dim,
                got: latents.len(),
            });
        }
        self.decoder.infer_into(
            latents,
            Shape::new(&[n, self.config.latent_dim]),
            out,
            scratch,
        )?;
        Ok(())
    }

    /// The decoder stack (read-only; used by the per-layer benchmarks).
    pub fn decoder_layers(&self) -> &Sequential {
        &self.decoder
    }

    /// The encoder stack (read-only; used by the per-layer benchmarks).
    pub fn encoder_layers(&self) -> &Sequential {
        &self.encoder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_2d() -> AeConfig {
        AeConfig {
            spatial_rank: 2,
            block_size: 8,
            latent_dim: 4,
            channels: vec![4, 8],
            variational: false,
            seed: 1,
        }
    }

    #[test]
    fn config_arithmetic() {
        let c = tiny_2d();
        assert_eq!(c.feature_edge(), 2);
        assert_eq!(c.block_len(), 64);
        assert_eq!(c.feature_len(), 8 * 4);
        assert_eq!(c.encoder_out(), 4);
        assert!((c.latent_ratio() - 16.0).abs() < 1e-12);
        let c3 = AeConfig::default_3d();
        assert_eq!(c3.feature_edge(), 2);
        assert_eq!(c3.block_len(), 512);
    }

    #[test]
    fn shapes_flow_through_encoder_and_decoder_2d() {
        let mut ae = ConvAutoencoder::new(tiny_2d());
        let x = Tensor::zeros(&[3, 1, 8, 8]);
        let z = ae.encode(&x);
        assert_eq!(z.shape(), &[3, 4]);
        let y = ae.decode(&z);
        assert_eq!(y.shape(), &[3, 1, 8, 8]);
        assert!(
            y.as_slice().iter().all(|v| v.abs() <= 1.0),
            "Tanh bounds output"
        );
    }

    #[test]
    fn shapes_flow_through_3d_and_variational() {
        let cfg = AeConfig {
            spatial_rank: 3,
            block_size: 8,
            latent_dim: 6,
            channels: vec![4, 4],
            variational: true,
            seed: 2,
        };
        let mut ae = ConvAutoencoder::new(cfg);
        let x = Tensor::zeros(&[2, 1, 8, 8, 8]);
        let enc = ae.encode(&x);
        assert_eq!(enc.shape(), &[2, 12]); // mu and logvar
        let mu = ae.deterministic_latent(&enc);
        assert_eq!(mu.shape(), &[2, 6]);
        let y = ae.decode(&mu);
        assert_eq!(y.shape(), &[2, 1, 8, 8, 8]);
    }

    #[test]
    fn flat_block_helpers_roundtrip_shapes() {
        let mut ae = ConvAutoencoder::new(tiny_2d());
        let blocks = vec![0.1f32; 2 * 64];
        let latents = ae.encode_blocks(&blocks, 2);
        assert_eq!(latents.len(), 2 * 4);
        let recon = ae.decode_latents(&latents, 2);
        assert_eq!(recon.len(), 2 * 64);
    }

    #[test]
    fn infer_path_matches_training_forward_bitwise() {
        let mut ae = ConvAutoencoder::new(tiny_2d());
        let blocks: Vec<f32> = (0..2 * 64)
            .map(|i| ((i as f32) * 0.13).sin() * 0.8)
            .collect();
        // Training path.
        let x = Tensor::from_vec(&ae.input_shape(2), blocks.clone()).unwrap();
        let z_train = ae.encode(&x);
        let y_train = ae.decode(&z_train);
        // Inference path.
        let mut z = Vec::new();
        let mut y = Vec::new();
        let mut scratch = NnScratch::new();
        ae.encode_blocks_into(&blocks, 2, &mut z, &mut scratch)
            .unwrap();
        ae.decode_latents_into(&z, 2, &mut y, &mut scratch).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(z_train.as_slice()), bits(&z));
        assert_eq!(bits(y_train.as_slice()), bits(&y));
    }

    #[test]
    fn parameter_count_is_nontrivial_and_stable() {
        let ae = ConvAutoencoder::new(tiny_2d());
        let n = ae.num_params();
        assert!(n > 1000, "unexpectedly small model: {n}");
        assert_eq!(ae.params().len(), ae.params().len());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_block_size_not_divisible_by_stride_product() {
        let mut cfg = tiny_2d();
        cfg.block_size = 10;
        ConvAutoencoder::new(cfg);
    }
}
