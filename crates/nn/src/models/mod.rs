//! Autoencoder models: the blockwise convolutional autoencoder of AE-SZ and
//! the eight-variant zoo evaluated in Table I of the paper.

pub mod conv_ae;
pub mod zoo;

pub use conv_ae::{AeConfig, ConvAutoencoder};
pub use zoo::AeVariant;
