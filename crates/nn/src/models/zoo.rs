//! The autoencoder zoo of Table I.
//!
//! The paper trains eight autoencoder types on CESM-CLDHGH blocks and compares
//! their prediction PSNR; SWAE wins and becomes the AE-SZ predictor. All eight
//! share the same convolutional trunk ([`super::conv_ae::ConvAutoencoder`]) and
//! differ only in (a) whether the encoder is deterministic or variational and
//! (b) which regularizer and reconstruction loss the training objective uses.
//! This module encodes exactly those differences.

/// The autoencoder variants evaluated in Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AeVariant {
    /// Vanilla autoencoder: deterministic encoder, MSE loss, no regularizer.
    Ae,
    /// Variational autoencoder: reparameterised sampling + KL divergence.
    Vae,
    /// β-VAE: VAE with the KL term weighted by β > 1.
    BetaVae {
        /// KL weight (β).
        beta: f32,
    },
    /// DIP-VAE: VAE plus a penalty pushing Cov(μ) towards the identity.
    DipVae {
        /// Off-diagonal covariance weight.
        lambda_od: f32,
        /// Diagonal covariance weight.
        lambda_d: f32,
    },
    /// Info-VAE: VAE with a (scaled-down) KL term plus an MMD term.
    InfoVae {
        /// Weight of the MMD term.
        lambda_mmd: f32,
    },
    /// LogCosh-VAE: VAE whose reconstruction loss is log-cosh instead of MSE.
    LogCoshVae,
    /// Wasserstein autoencoder (MMD flavour): deterministic encoder + MMD.
    Wae {
        /// Weight of the MMD term.
        lambda_mmd: f32,
    },
    /// Sliced-Wasserstein autoencoder: deterministic encoder + SWD (AE-SZ's choice).
    Swae {
        /// Weight λ of the sliced-Wasserstein term.
        lambda: f32,
        /// Number of random projections L.
        projections: usize,
    },
}

impl AeVariant {
    /// The eight variants with the hyper-parameters used in this reproduction,
    /// in the order Table I lists them.
    pub fn table1() -> Vec<AeVariant> {
        vec![
            AeVariant::Ae,
            AeVariant::Vae,
            AeVariant::BetaVae { beta: 4.0 },
            AeVariant::DipVae {
                lambda_od: 5.0,
                lambda_d: 1.0,
            },
            AeVariant::InfoVae { lambda_mmd: 10.0 },
            AeVariant::LogCoshVae,
            AeVariant::Wae { lambda_mmd: 1.0 },
            AeVariant::Swae {
                lambda: 1.0,
                projections: 32,
            },
        ]
    }

    /// Display name matching the paper's table.
    pub fn name(&self) -> &'static str {
        match self {
            AeVariant::Ae => "AE",
            AeVariant::Vae => "VAE",
            AeVariant::BetaVae { .. } => "beta-VAE",
            AeVariant::DipVae { .. } => "DIP-VAE",
            AeVariant::InfoVae { .. } => "Info-VAE",
            AeVariant::LogCoshVae => "LogCosh-VAE",
            AeVariant::Wae { .. } => "WAE",
            AeVariant::Swae { .. } => "SWAE",
        }
    }

    /// Whether the encoder must output (μ, log σ²) and sample stochastically.
    pub fn is_variational(&self) -> bool {
        matches!(
            self,
            AeVariant::Vae
                | AeVariant::BetaVae { .. }
                | AeVariant::DipVae { .. }
                | AeVariant::InfoVae { .. }
                | AeVariant::LogCoshVae
        )
    }

    /// Whether encoding is deterministic at inference time *and* training time.
    /// (The paper's stability argument for SWAE/WAE over the VAEs.)
    pub fn is_deterministic(&self) -> bool {
        !self.is_variational()
    }

    /// Default SWAE variant as used by AE-SZ itself.
    pub fn aesz_default() -> AeVariant {
        AeVariant::Swae {
            lambda: 1.0,
            projections: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_eight_variants() {
        let v = AeVariant::table1();
        assert_eq!(v.len(), 8);
        let names: Vec<&str> = v.iter().map(|x| x.name()).collect();
        assert_eq!(
            names,
            vec![
                "AE",
                "VAE",
                "beta-VAE",
                "DIP-VAE",
                "Info-VAE",
                "LogCosh-VAE",
                "WAE",
                "SWAE"
            ]
        );
    }

    #[test]
    fn variational_split_matches_the_paper() {
        // The paper's stability argument: VAEs sample, WAE/SWAE/AE do not.
        assert!(AeVariant::Vae.is_variational());
        assert!(AeVariant::BetaVae { beta: 2.0 }.is_variational());
        assert!(AeVariant::LogCoshVae.is_variational());
        assert!(AeVariant::Ae.is_deterministic());
        assert!(AeVariant::Wae { lambda_mmd: 1.0 }.is_deterministic());
        assert!(AeVariant::aesz_default().is_deterministic());
    }

    #[test]
    fn aesz_default_is_swae() {
        assert_eq!(AeVariant::aesz_default().name(), "SWAE");
    }
}
