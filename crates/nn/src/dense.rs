//! Fully-connected (dense) layer.
//!
//! The AE-SZ encoder ends with a fully-connected layer that resizes the
//! flattened convolutional feature map to the latent vector, and the decoder
//! starts with the mirror layer (latent → feature map). Input is `(N, in)`,
//! output `(N, out)`.
//!
//! Both forward paths are a single [`gemm_into`] call against a packed `Wᵀ`
//! panel: element `(i, o)` seeds from `b[o]` and accumulates
//! `x[i][j]·w[o][j]` in ascending `j`, exactly the original dot-product
//! order, so the GEMM lowering is bit-identical to the loop it replaced.

use crate::gemm::{gemm_into, GemmBias};
use crate::infer::{NnScratch, Shape};
use crate::layer::{Layer, NnError, Param};
use aesz_tensor::{init, Tensor};
use rand::rngs::StdRng;

/// `y = x·Wᵀ + b` with `W: (out, in)`, `b: (out)`.
#[derive(Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// New dense layer with Kaiming-initialised weights.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        let weight = init::kaiming(&[out_features, in_features], in_features, rng);
        Dense {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Shape checks shared by both forward entry points.
    fn validate(&self, shape: &[usize]) -> Result<usize, NnError> {
        if shape.len() != 2 {
            return Err(NnError {
                layer: "Dense",
                problem: "expects rank-2 (N, features) input",
                expected: 2,
                got: shape.len(),
            });
        }
        if shape[1] != self.in_features {
            return Err(NnError {
                layer: "Dense",
                problem: "feature size mismatch",
                expected: self.in_features,
                got: shape[1],
            });
        }
        Ok(shape[0])
    }

    /// GEMM core shared by `try_forward` and `infer_into`: pack `Wᵀ` into
    /// `scratch.packed`, then one `x·Wᵀ ⊕ b` multiply. The transpose pack
    /// turns the per-row dot products into a `p`-vectorizable axpy sweep
    /// without changing any element's accumulation order.
    fn run(&self, x: &[f32], n: usize, out: &mut [f32], scratch: &mut NnScratch) {
        let w = self.weight.value.as_slice();
        let b = self.bias.value.as_slice();
        let (fin, fout) = (self.in_features, self.out_features);
        scratch.packed.clear();
        scratch.packed.resize(fin * fout, 0.0);
        for (o, wrow) in w.chunks_exact(fin).enumerate() {
            for (j, &wv) in wrow.iter().enumerate() {
                scratch.packed[j * fout + o] = wv;
            }
        }
        gemm_into(
            x,
            &scratch.packed,
            GemmBias::Col(b),
            n,
            fin,
            fout,
            out,
            fout,
        );
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "Dense"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn try_forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let n = self.validate(input.shape())?;
        let mut out = vec![0.0f32; n * self.out_features];
        let mut scratch = NnScratch::new();
        self.run(input.as_slice(), n, &mut out, &mut scratch);
        self.cached_input = Some(input.clone());
        Ok(Tensor::from_vec(&[n, self.out_features], out).expect("consistent shape"))
    }

    fn infer_into(
        &self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        scratch: &mut NnScratch,
    ) -> Result<Shape, NnError> {
        let n = self.validate(shape.dims())?;
        if input.len() != shape.len() {
            return Err(NnError {
                layer: "Dense",
                problem: "input length does not match shape",
                expected: shape.len(),
                got: input.len(),
            });
        }
        out.resize(n * self.out_features, 0.0);
        self.run(input, n, out, scratch);
        Ok(Shape::new(&[n, self.out_features]))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let n = input.shape()[0];
        assert_eq!(grad_output.shape(), &[n, self.out_features]);
        let x = input.as_slice();
        let go = grad_output.as_slice();
        let w = self.weight.value.as_slice();
        let gw = self.weight.grad.as_mut_slice();
        let gb = self.bias.grad.as_mut_slice();
        let mut gx = vec![0.0f32; n * self.in_features];
        for i in 0..n {
            let xi = &x[i * self.in_features..(i + 1) * self.in_features];
            let goi = &go[i * self.out_features..(i + 1) * self.out_features];
            let gxi = &mut gx[i * self.in_features..(i + 1) * self.in_features];
            for (o, &g) in goi.iter().enumerate() {
                gb[o] += g;
                let wrow = &w[o * self.in_features..(o + 1) * self.in_features];
                let gwrow = &mut gw[o * self.in_features..(o + 1) * self.in_features];
                for j in 0..self.in_features {
                    gwrow[j] += g * xi[j];
                    gxi[j] += g * wrow[j];
                }
            }
        }
        Tensor::from_vec(&[n, self.in_features], gx).expect("consistent shape")
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::grad_check_input;
    use aesz_tensor::init::rng;

    #[test]
    fn forward_matches_manual_computation() {
        let mut r = rng(1);
        let mut layer = Dense::new(3, 2, &mut r);
        // Overwrite with known weights.
        layer.weight.value =
            Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.0]).unwrap();
        layer.bias.value = Tensor::from_vec(&[2], vec![0.1, -0.2]).unwrap();
        let x = Tensor::from_vec(&[1, 3], vec![1.0, 1.0, 2.0]).unwrap();
        let y = layer.forward(&x);
        assert_eq!(y.shape(), &[1, 2]);
        assert!((y.as_slice()[0] - (1.0 + 2.0 + 6.0 + 0.1)).abs() < 1e-6);
        assert!((y.as_slice()[1] - (-1.0 + 0.5 + 0.0 - 0.2)).abs() < 1e-6);
    }

    #[test]
    fn gradient_check() {
        let mut r = rng(2);
        let mut layer = Dense::new(5, 4, &mut r);
        let input = init::normal(&[3, 5], 0.0, 1.0, &mut r);
        let err = grad_check_input(&mut layer, &input, 1e-3);
        assert!(err < 1e-2, "relative gradient error {err}");
    }

    #[test]
    fn weight_gradients_accumulate() {
        let mut r = rng(3);
        let mut layer = Dense::new(2, 2, &mut r);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 2.0]).unwrap();
        let _ = layer.forward(&x);
        let g = Tensor::from_vec(&[1, 2], vec![1.0, 0.0]).unwrap();
        let _ = layer.backward(&g);
        // dL/dW[0][j] = g[0] * x[j]
        assert_eq!(layer.weight.grad.at(&[0, 0]), 1.0);
        assert_eq!(layer.weight.grad.at(&[0, 1]), 2.0);
        assert_eq!(layer.weight.grad.at(&[1, 0]), 0.0);
        assert_eq!(layer.bias.grad.as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut r = rng(4);
        let mut layer = Dense::new(3, 2, &mut r);
        let err = layer
            .try_forward(&Tensor::zeros(&[1, 4]))
            .expect_err("mismatched width must be rejected");
        assert_eq!(err.problem, "feature size mismatch");
        assert_eq!((err.expected, err.got), (3, 4));
    }

    #[test]
    fn infer_into_matches_forward_bitwise() {
        let mut r = rng(5);
        let mut layer = Dense::new(7, 4, &mut r);
        let x = init::normal(&[3, 7], 0.0, 1.0, &mut r);
        let y = layer.forward(&x);
        let mut out = Vec::new();
        let mut scratch = NnScratch::new();
        let shape = layer
            .infer_into(x.as_slice(), Shape::new(x.shape()), &mut out, &mut scratch)
            .expect("valid shape");
        assert_eq!(shape.dims(), y.shape());
        let fwd: Vec<u32> = y.as_slice().iter().map(|v| v.to_bits()).collect();
        let inf: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        assert_eq!(fwd, inf);
    }
}
