//! Pointwise activation layers: Tanh (the decoder output nonlinearity of the
//! paper's network), ReLU and LeakyReLU (used as ablation alternatives to GDN
//! in the Table I experiments).

use crate::infer::{NnScratch, Shape};
use crate::layer::{Layer, NnError};
use aesz_tensor::Tensor;

/// Pointwise inference core shared by the activation layers: stream `f` over
/// the input into the caller's buffer (same scalar function as the training
/// path, so bit-identity is immediate).
fn pointwise_into(
    input: &[f32],
    shape: Shape,
    out: &mut Vec<f32>,
    layer: &'static str,
    f: impl Fn(f32) -> f32,
) -> Result<Shape, NnError> {
    if input.len() != shape.len() {
        return Err(NnError {
            layer,
            problem: "input length does not match shape",
            expected: shape.len(),
            got: input.len(),
        });
    }
    out.clear();
    out.extend(input.iter().map(|&v| f(v)));
    Ok(shape)
}

/// Hyperbolic tangent activation.
#[derive(Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// New Tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "Tanh"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn try_forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let out = input.map(|v| v.tanh());
        self.cached_output = Some(out.clone());
        Ok(out)
    }

    fn infer_into(
        &self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        _scratch: &mut NnScratch,
    ) -> Result<Shape, NnError> {
        pointwise_into(input, shape, out, "Tanh", |v| v.tanh())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward called before forward");
        grad_output
            .zip(out, |g, y| g * (1.0 - y * y))
            .expect("matching shapes")
    }
}

/// Rectified linear unit.
#[derive(Clone, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// New ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "ReLU"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn try_forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.cached_input = Some(input.clone());
        Ok(input.map(|v| v.max(0.0)))
    }

    fn infer_into(
        &self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        _scratch: &mut NnScratch,
    ) -> Result<Shape, NnError> {
        pointwise_into(input, shape, out, "ReLU", |v| v.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        grad_output
            .zip(x, |g, v| if v > 0.0 { g } else { 0.0 })
            .expect("matching shapes")
    }
}

/// Leaky rectified linear unit with fixed negative slope.
#[derive(Clone)]
pub struct LeakyRelu {
    slope: f32,
    cached_input: Option<Tensor>,
}

impl LeakyRelu {
    /// New LeakyReLU with the given negative-side slope (0.2 in most AE papers).
    pub fn new(slope: f32) -> Self {
        LeakyRelu {
            slope,
            cached_input: None,
        }
    }
}

impl Layer for LeakyRelu {
    fn name(&self) -> &'static str {
        "LeakyReLU"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn try_forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.cached_input = Some(input.clone());
        let s = self.slope;
        Ok(input.map(|v| if v > 0.0 { v } else { s * v }))
    }

    fn infer_into(
        &self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        _scratch: &mut NnScratch,
    ) -> Result<Shape, NnError> {
        let s = self.slope;
        pointwise_into(input, shape, out, "LeakyReLU", |v| {
            if v > 0.0 {
                v
            } else {
                s * v
            }
        })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let s = self.slope;
        grad_output
            .zip(x, |g, v| if v > 0.0 { g } else { s * g })
            .expect("matching shapes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::grad_check_input;
    use aesz_tensor::init::{normal, rng};

    #[test]
    fn tanh_bounds_output() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(&[4], vec![-100.0, -1.0, 1.0, 100.0]).unwrap();
        let y = t.forward(&x);
        assert!(y.as_slice().iter().all(|v| v.abs() <= 1.0));
        assert!((y.as_slice()[1] + 0.7616).abs() < 1e-3);
    }

    #[test]
    fn relu_zeroes_negative_values_and_gradients() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(&[3], vec![-1.0, 0.5, 2.0]).unwrap();
        let y = relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.5, 2.0]);
        let g = relu.backward(&Tensor::ones(&[3]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn leaky_relu_keeps_small_negative_slope() {
        let mut l = LeakyRelu::new(0.2);
        let x = Tensor::from_vec(&[2], vec![-2.0, 3.0]).unwrap();
        let y = l.forward(&x);
        assert!((y.as_slice()[0] + 0.4).abs() < 1e-6);
        assert_eq!(y.as_slice()[1], 3.0);
    }

    #[test]
    fn gradient_checks() {
        let mut r = rng(1);
        let x = normal(&[2, 7], 0.0, 1.0, &mut r);
        assert!(grad_check_input(&mut Tanh::new(), &x, 1e-3) < 1e-2);
        assert!(grad_check_input(&mut LeakyRelu::new(0.2), &x, 1e-3) < 1e-2);
    }
}
