//! Loss functions and distribution-matching regularizers.
//!
//! Reconstruction losses return both the scalar loss and its gradient with
//! respect to the reconstruction; regularizers return the loss and its
//! gradient with respect to the latent codes (and, for VAE-style models, the
//! mean/log-variance heads). The autoencoder zoo of Table I differs almost
//! entirely in which of these terms it combines.

pub mod kl;
pub mod mmd;
pub mod swd;

pub use kl::kl_divergence;
pub use mmd::mmd_rbf;
pub use swd::{sliced_wasserstein, SwdConfig};

use aesz_tensor::Tensor;

/// Mean squared error loss: `L = mean((ŷ − y)²)`, gradient `2(ŷ − y)/n`.
pub fn mse(prediction: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(prediction.shape(), target.shape());
    let n = prediction.len().max(1) as f32;
    let mut loss = 0.0f32;
    let grad: Vec<f32> = prediction
        .as_slice()
        .iter()
        .zip(target.as_slice().iter())
        .map(|(&p, &t)| {
            let d = p - t;
            loss += d * d;
            2.0 * d / n
        })
        .collect();
    (
        loss / n,
        Tensor::from_vec(prediction.shape(), grad).expect("same shape"),
    )
}

/// Mean absolute error loss: `L = mean(|ŷ − y|)`, gradient `sign(ŷ − y)/n`.
pub fn l1(prediction: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(prediction.shape(), target.shape());
    let n = prediction.len().max(1) as f32;
    let mut loss = 0.0f32;
    let grad: Vec<f32> = prediction
        .as_slice()
        .iter()
        .zip(target.as_slice().iter())
        .map(|(&p, &t)| {
            let d = p - t;
            loss += d.abs();
            d.signum() / n
        })
        .collect();
    (
        loss / n,
        Tensor::from_vec(prediction.shape(), grad).expect("same shape"),
    )
}

/// Log-cosh reconstruction loss (used by the LogCosh-VAE variant):
/// `L = mean(log cosh(ŷ − y))`, gradient `tanh(ŷ − y)/n`.
pub fn log_cosh(prediction: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(prediction.shape(), target.shape());
    let n = prediction.len().max(1) as f32;
    let mut loss = 0.0f32;
    let grad: Vec<f32> = prediction
        .as_slice()
        .iter()
        .zip(target.as_slice().iter())
        .map(|(&p, &t)| {
            let d = p - t;
            // Numerically stable log cosh: |d| + ln(1 + e^{-2|d|}) − ln 2.
            loss += d.abs() + (-2.0 * d.abs()).exp().ln_1p() - std::f32::consts::LN_2;
            d.tanh() / n
        })
        .collect();
    (
        loss / n,
        Tensor::from_vec(prediction.shape(), grad).expect("same shape"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(f: impl Fn(&Tensor) -> f32, x: &Tensor, i: usize, eps: f32) -> f32 {
        let mut plus = x.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = x.clone();
        minus.as_mut_slice()[i] -= eps;
        (f(&plus) - f(&minus)) / (2.0 * eps)
    }

    #[test]
    fn mse_value_and_gradient() {
        let p = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let t = Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]).unwrap();
        let (loss, grad) = mse(&p, &t);
        assert!((loss - (0.0 + 1.0 + 4.0) / 3.0).abs() < 1e-6);
        for i in 0..3 {
            let num = numeric_grad(|x| mse(x, &t).0, &p, i, 1e-3);
            assert!((grad.as_slice()[i] - num).abs() < 1e-3);
        }
    }

    #[test]
    fn l1_value_and_gradient_signs() {
        let p = Tensor::from_vec(&[2], vec![2.0, -1.0]).unwrap();
        let t = Tensor::from_vec(&[2], vec![0.0, 0.0]).unwrap();
        let (loss, grad) = l1(&p, &t);
        assert!((loss - 1.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[0.5, -0.5]);
    }

    #[test]
    fn log_cosh_is_between_l1_and_mse_behaviour() {
        let p = Tensor::from_vec(&[1], vec![3.0]).unwrap();
        let t = Tensor::from_vec(&[1], vec![0.0]).unwrap();
        let (lc, grad) = log_cosh(&p, &t);
        // log cosh(3) ≈ 2.3093; gradient saturates to tanh(3) ≈ 0.995.
        assert!((lc - 2.3093).abs() < 1e-3);
        assert!((grad.as_slice()[0] - 0.995).abs() < 1e-2);
        // Near zero it behaves quadratically (value ≈ d²/2).
        let p2 = Tensor::from_vec(&[1], vec![0.01]).unwrap();
        let (lc2, _) = log_cosh(&p2, &t);
        assert!((lc2 - 0.00005).abs() < 1e-6);
    }

    #[test]
    fn log_cosh_gradient_matches_numeric() {
        let p = Tensor::from_vec(&[4], vec![0.3, -0.7, 2.0, -5.0]).unwrap();
        let t = Tensor::from_vec(&[4], vec![0.0, 0.1, 2.5, -4.0]).unwrap();
        let (_, grad) = log_cosh(&p, &t);
        for i in 0..4 {
            let num = numeric_grad(|x| log_cosh(x, &t).0, &p, i, 1e-3);
            assert!((grad.as_slice()[i] - num).abs() < 1e-3);
        }
    }
}
