//! Sliced-Wasserstein distance between encoded latents and a prior.
//!
//! The SWAE (Kolouri et al.) regularizer — Eq. (1) of the AE-SZ paper —
//! projects both the encoded latents and prior samples onto `L` random unit
//! directions, sorts both projected sets, and penalises the squared
//! differences of the order-matched projections:
//!
//! `SW = (1/(L·M)) Σ_l Σ_m (θ_l·z̃_{i[m]} − θ_l·z_{j[m]})²`
//!
//! Its computation is `O(L·M log M)` (versus `O(M²)` for the exact
//! Wasserstein/MMD terms of WAE), which is exactly the efficiency argument
//! the paper makes for choosing SWAE.

use aesz_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration of the sliced-Wasserstein estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwdConfig {
    /// Number of random projection directions `L`.
    pub projections: usize,
    /// Regularization weight λ applied by the caller (stored here so model
    /// configs carry the full SWAE hyper-parameters in one place).
    pub weight: f32,
}

impl Default for SwdConfig {
    fn default() -> Self {
        SwdConfig {
            projections: 32,
            weight: 1.0,
        }
    }
}

/// Sample a unit vector uniformly from the sphere `S^{d−1}`.
fn random_direction(d: usize, rng: &mut StdRng) -> Vec<f32> {
    loop {
        let v: Vec<f32> = (0..d)
            .map(|_| {
                // Box–Muller standard normal.
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
            })
            .collect();
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-6 {
            return v.iter().map(|x| x / norm).collect();
        }
    }
}

/// Sliced-Wasserstein distance between `latent` `(N, d)` and `prior` `(N, d)`
/// samples (the batch sizes must match, as in the SWAE formulation).
///
/// Returns the loss and its gradient with respect to `latent`.
pub fn sliced_wasserstein(
    latent: &Tensor,
    prior: &Tensor,
    projections: usize,
    rng: &mut StdRng,
) -> (f32, Tensor) {
    assert_eq!(
        latent.shape(),
        prior.shape(),
        "SWAE matches equal-sized latent and prior batches"
    );
    let (n, d) = (latent.shape()[0], latent.shape()[1]);
    assert!(n > 0 && d > 0);
    let z = latent.as_slice();
    let p = prior.as_slice();
    let norm = 1.0 / (projections * n) as f32;

    let mut loss = 0.0f32;
    let mut grad = vec![0.0f32; n * d];
    for _ in 0..projections {
        let theta = random_direction(d, rng);
        // Project both sets.
        let mut proj_z: Vec<(f32, usize)> = (0..n)
            .map(|i| {
                (
                    z[i * d..(i + 1) * d]
                        .iter()
                        .zip(theta.iter())
                        .map(|(&a, &t)| a * t)
                        .sum::<f32>(),
                    i,
                )
            })
            .collect();
        let mut proj_p: Vec<f32> = (0..n)
            .map(|i| {
                p[i * d..(i + 1) * d]
                    .iter()
                    .zip(theta.iter())
                    .map(|(&a, &t)| a * t)
                    .sum::<f32>()
            })
            .collect();
        proj_z.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite projections"));
        proj_p.sort_by(|a, b| a.partial_cmp(b).expect("finite projections"));
        // Order-matched quadratic cost.
        for (rank, &(zval, zi)) in proj_z.iter().enumerate() {
            let diff = zval - proj_p[rank];
            loss += norm * diff * diff;
            // d/dz_{zi} = 2·diff·θ (the sorting permutation is locally constant).
            for t in 0..d {
                grad[zi * d + t] += norm * 2.0 * diff * theta[t];
            }
        }
    }
    (
        loss,
        Tensor::from_vec(latent.shape(), grad).expect("same shape"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_tensor::init::{normal, rng};

    #[test]
    fn identical_samples_have_zero_distance() {
        let mut r = rng(1);
        let a = normal(&[32, 4], 0.0, 1.0, &mut r);
        let mut r2 = rng(99);
        let (loss, grad) = sliced_wasserstein(&a, &a, 16, &mut r2);
        assert!(loss.abs() < 1e-10);
        assert!(grad.sq_norm() < 1e-10);
    }

    #[test]
    fn distance_grows_with_distribution_shift() {
        let mut r = rng(2);
        let prior = normal(&[64, 3], 0.0, 1.0, &mut r);
        let near = normal(&[64, 3], 0.2, 1.0, &mut r);
        let far = normal(&[64, 3], 3.0, 1.0, &mut r);
        let mut r2 = rng(7);
        let (l_near, _) = sliced_wasserstein(&near, &prior, 32, &mut r2);
        let mut r3 = rng(7);
        let (l_far, _) = sliced_wasserstein(&far, &prior, 32, &mut r3);
        assert!(l_far > l_near * 3.0, "near {l_near}, far {l_far}");
    }

    #[test]
    fn gradient_matches_numeric_estimate() {
        let mut r = rng(3);
        let z = normal(&[8, 2], 1.0, 0.5, &mut r);
        let p = normal(&[8, 2], 0.0, 1.0, &mut r);
        // Use the same RNG seed for every evaluation so the directions match.
        let eval = |zz: &Tensor| {
            let mut rr = rng(42);
            sliced_wasserstein(zz, &p, 64, &mut rr).0
        };
        let mut rr = rng(42);
        let (_, grad) = sliced_wasserstein(&z, &p, 64, &mut rr);
        let eps = 1e-3;
        for i in [0usize, 3, 7, 12] {
            let mut plus = z.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = z.clone();
            minus.as_mut_slice()[i] -= eps;
            let num = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            assert!(
                (grad.as_slice()[i] - num).abs() < 2e-2,
                "i={i}: analytic {} vs numeric {num}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn directions_are_unit_length() {
        let mut r = rng(5);
        for d in [1usize, 2, 8, 32] {
            let v = random_direction(d, &mut r);
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn default_config_is_sane() {
        let c = SwdConfig::default();
        assert!(c.projections > 0);
        assert!(c.weight > 0.0);
    }
}
