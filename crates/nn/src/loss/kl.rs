//! KL divergence between the encoder posterior and a standard normal prior.
//!
//! The VAE-family variants (vanilla VAE, β-VAE, DIP-VAE, LogCosh-VAE) add
//! `KL(q(z|x) ‖ N(0, I))` to the reconstruction loss. For a diagonal Gaussian
//! posterior with mean `μ` and log-variance `ℓ` the closed form per element is
//! `−½ (1 + ℓ − μ² − e^ℓ)`, averaged over the batch.

use aesz_tensor::Tensor;

/// KL divergence of `N(mu, exp(logvar))` from `N(0, 1)`, averaged over the
/// batch (first axis). Returns the loss and its gradients w.r.t. `mu` and
/// `logvar`.
pub fn kl_divergence(mu: &Tensor, logvar: &Tensor) -> (f32, Tensor, Tensor) {
    assert_eq!(mu.shape(), logvar.shape());
    let batch = mu.shape()[0].max(1) as f32;
    let mut loss = 0.0f32;
    let mut gmu = Vec::with_capacity(mu.len());
    let mut glv = Vec::with_capacity(mu.len());
    for (&m, &lv) in mu.as_slice().iter().zip(logvar.as_slice().iter()) {
        let var = lv.exp();
        loss += -0.5 * (1.0 + lv - m * m - var);
        gmu.push(m / batch);
        glv.push(0.5 * (var - 1.0) / batch);
    }
    (
        loss / batch,
        Tensor::from_vec(mu.shape(), gmu).expect("same shape"),
        Tensor::from_vec(logvar.shape(), glv).expect("same shape"),
    )
}

/// DIP-VAE style moment penalty: pushes the covariance of the posterior means
/// towards the identity. Returns the loss and its gradient w.r.t. `mu`.
///
/// `L = λ_od · Σ_{i≠j} Cov_ij² + λ_d · Σ_i (Cov_ii − 1)²`
pub fn dip_covariance_penalty(mu: &Tensor, lambda_od: f32, lambda_d: f32) -> (f32, Tensor) {
    let (n, d) = (mu.shape()[0], mu.shape()[1]);
    let x = mu.as_slice();
    let nf = n.max(1) as f32;
    // Column means.
    let mut mean = vec![0.0f32; d];
    for row in 0..n {
        for col in 0..d {
            mean[col] += x[row * d + col];
        }
    }
    for m in &mut mean {
        *m /= nf;
    }
    // Covariance matrix.
    let mut cov = vec![0.0f32; d * d];
    for row in 0..n {
        for i in 0..d {
            let xi = x[row * d + i] - mean[i];
            for j in 0..d {
                let xj = x[row * d + j] - mean[j];
                cov[i * d + j] += xi * xj / nf;
            }
        }
    }
    // Loss and dL/dCov.
    let mut loss = 0.0f32;
    let mut dcov = vec![0.0f32; d * d];
    for i in 0..d {
        for j in 0..d {
            let c = cov[i * d + j];
            if i == j {
                loss += lambda_d * (c - 1.0) * (c - 1.0);
                dcov[i * d + j] = 2.0 * lambda_d * (c - 1.0);
            } else {
                loss += lambda_od * c * c;
                dcov[i * d + j] = 2.0 * lambda_od * c;
            }
        }
    }
    // dCov_ij/dmu_{r,k} = δ_ik (x_rj − mean_j)/n + δ_jk (x_ri − mean_i)/n
    // (ignoring the small dependence of the mean, which vanishes as n grows —
    // the standard practical approximation).
    let mut grad = vec![0.0f32; n * d];
    for row in 0..n {
        for k in 0..d {
            let mut g = 0.0f32;
            for j in 0..d {
                g += dcov[k * d + j] * (x[row * d + j] - mean[j]) / nf;
            }
            for i in 0..d {
                g += dcov[i * d + k] * (x[row * d + i] - mean[i]) / nf;
            }
            grad[row * d + k] = g;
        }
    }
    (
        loss,
        Tensor::from_vec(mu.shape(), grad).expect("same shape"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_is_zero_for_standard_normal_posterior() {
        let mu = Tensor::zeros(&[4, 3]);
        let logvar = Tensor::zeros(&[4, 3]);
        let (loss, gmu, glv) = kl_divergence(&mu, &logvar);
        assert!(loss.abs() < 1e-7);
        assert!(gmu.sq_norm() < 1e-12);
        assert!(glv.sq_norm() < 1e-12);
    }

    #[test]
    fn kl_grows_with_mean_offset_and_matches_numeric_gradient() {
        let mu = Tensor::from_vec(&[1, 2], vec![1.0, -2.0]).unwrap();
        let logvar = Tensor::from_vec(&[1, 2], vec![0.5, -0.5]).unwrap();
        let (loss, gmu, glv) = kl_divergence(&mu, &logvar);
        assert!(loss > 0.0);
        let eps = 1e-3;
        for i in 0..2 {
            let mut p = mu.clone();
            p.as_mut_slice()[i] += eps;
            let mut m = mu.clone();
            m.as_mut_slice()[i] -= eps;
            let num = (kl_divergence(&p, &logvar).0 - kl_divergence(&m, &logvar).0) / (2.0 * eps);
            assert!((gmu.as_slice()[i] - num).abs() < 1e-3);
            let mut pl = logvar.clone();
            pl.as_mut_slice()[i] += eps;
            let mut ml = logvar.clone();
            ml.as_mut_slice()[i] -= eps;
            let num_lv = (kl_divergence(&mu, &pl).0 - kl_divergence(&mu, &ml).0) / (2.0 * eps);
            assert!((glv.as_slice()[i] - num_lv).abs() < 1e-3);
        }
    }

    #[test]
    fn dip_penalty_zero_for_identity_covariance() {
        // Two orthogonal ±1 columns give a sample covariance of exactly I.
        let mu =
            Tensor::from_vec(&[4, 2], vec![1.0, 1.0, 1.0, -1.0, -1.0, 1.0, -1.0, -1.0]).unwrap();
        let (loss, _) = dip_covariance_penalty(&mu, 1.0, 1.0);
        assert!(loss.abs() < 1e-6, "loss = {loss}");
    }

    #[test]
    fn dip_penalty_detects_correlated_latents() {
        // Perfectly correlated columns → large off-diagonal penalty.
        let mu =
            Tensor::from_vec(&[4, 2], vec![1.0, 1.0, -1.0, -1.0, 2.0, 2.0, -2.0, -2.0]).unwrap();
        let (loss, grad) = dip_covariance_penalty(&mu, 10.0, 1.0);
        assert!(loss > 1.0);
        assert!(grad.sq_norm() > 0.0);
    }
}
