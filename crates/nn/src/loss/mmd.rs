//! Maximum mean discrepancy (MMD) with an RBF kernel.
//!
//! Info-VAE and WAE-MMD regularize the aggregate posterior towards the prior
//! with the (biased) squared MMD estimate
//!
//! `MMD² = E[k(z, z')] + E[k(p, p')] − 2 E[k(z, p)]`
//!
//! where `z` are encoded latents, `p` samples from the prior, and
//! `k(a, b) = exp(−‖a − b‖² / (2σ²))`.

use aesz_tensor::Tensor;

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

/// Biased MMD² estimate between `latent` `(N, d)` and `prior` `(M, d)` samples
/// with an RBF kernel of bandwidth `sigma`. Returns the loss and its gradient
/// with respect to `latent`.
pub fn mmd_rbf(latent: &Tensor, prior: &Tensor, sigma: f32) -> (f32, Tensor) {
    assert_eq!(latent.shape()[1], prior.shape()[1], "latent dim mismatch");
    let (n, d) = (latent.shape()[0], latent.shape()[1]);
    let m = prior.shape()[0];
    assert!(n > 0 && m > 0);
    let z = latent.as_slice();
    let p = prior.as_slice();
    let gamma = 1.0 / (2.0 * sigma * sigma);

    let mut loss = 0.0f32;
    let mut grad = vec![0.0f32; n * d];

    // E[k(z, z')] term (including the diagonal, i.e. the biased estimator).
    let zz_norm = 1.0 / (n * n) as f32;
    for i in 0..n {
        for j in 0..n {
            let k = (-gamma * sq_dist(&z[i * d..(i + 1) * d], &z[j * d..(j + 1) * d])).exp();
            loss += zz_norm * k;
            if i != j {
                // d/dz_i of k = k * (−2γ)(z_i − z_j); both (i,j) and (j,i) pairs hit z_i.
                for t in 0..d {
                    grad[i * d + t] +=
                        zz_norm * k * (-2.0 * gamma) * (z[i * d + t] - z[j * d + t]) * 2.0;
                }
            }
        }
    }
    // E[k(p, p')] term: constant w.r.t. the latent, contributes to the value only.
    let pp_norm = 1.0 / (m * m) as f32;
    for i in 0..m {
        for j in 0..m {
            loss +=
                pp_norm * (-gamma * sq_dist(&p[i * d..(i + 1) * d], &p[j * d..(j + 1) * d])).exp();
        }
    }
    // −2 E[k(z, p)] term.
    let zp_norm = 2.0 / (n * m) as f32;
    for i in 0..n {
        for j in 0..m {
            let k = (-gamma * sq_dist(&z[i * d..(i + 1) * d], &p[j * d..(j + 1) * d])).exp();
            loss -= zp_norm * k;
            for t in 0..d {
                grad[i * d + t] -= zp_norm * k * (-2.0 * gamma) * (z[i * d + t] - p[j * d + t]);
            }
        }
    }

    (
        loss,
        Tensor::from_vec(latent.shape(), grad).expect("same shape"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_tensor::init::{normal, rng};

    #[test]
    fn identical_distributions_have_near_zero_mmd() {
        let mut r = rng(1);
        let a = normal(&[64, 4], 0.0, 1.0, &mut r);
        let b = normal(&[64, 4], 0.0, 1.0, &mut r);
        let (loss, _) = mmd_rbf(&a, &b, 1.0);
        assert!(loss.abs() < 0.05, "mmd = {loss}");
    }

    #[test]
    fn shifted_distribution_has_larger_mmd() {
        let mut r = rng(2);
        let a = normal(&[64, 4], 0.0, 1.0, &mut r);
        let b = normal(&[64, 4], 3.0, 1.0, &mut r);
        let prior = normal(&[64, 4], 0.0, 1.0, &mut r);
        let (near, _) = mmd_rbf(&a, &prior, 1.0);
        let (far, _) = mmd_rbf(&b, &prior, 1.0);
        assert!(far > near + 0.1, "near {near}, far {far}");
    }

    #[test]
    fn gradient_matches_numeric() {
        let mut r = rng(3);
        let z = normal(&[6, 3], 0.5, 1.0, &mut r);
        let p = normal(&[8, 3], 0.0, 1.0, &mut r);
        let (_, grad) = mmd_rbf(&z, &p, 1.0);
        let eps = 1e-3;
        for i in [0usize, 5, 11, 17] {
            let mut plus = z.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = z.clone();
            minus.as_mut_slice()[i] -= eps;
            let num = (mmd_rbf(&plus, &p, 1.0).0 - mmd_rbf(&minus, &p, 1.0).0) / (2.0 * eps);
            assert!(
                (grad.as_slice()[i] - num).abs() < 1e-2,
                "i={i}: analytic {} vs numeric {num}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn gradient_pulls_latents_towards_prior_mean() {
        let mut r = rng(4);
        // Latents far to the right of a zero-mean prior: the gradient of the
        // loss should be positive (descending moves them left).
        let z = normal(&[16, 2], 4.0, 0.3, &mut r);
        let p = normal(&[32, 2], 0.0, 1.0, &mut r);
        let (_, grad) = mmd_rbf(&z, &p, 2.0);
        let mean_grad: f32 = grad.as_slice().iter().sum::<f32>() / grad.len() as f32;
        assert!(mean_grad > 0.0);
    }
}
