//! # aesz-nn
//!
//! A minimal, CPU-only deep-learning framework built from scratch for the
//! AE-SZ reproduction. The paper trains its autoencoders with PyTorch on
//! V100 GPUs; this crate provides the same building blocks in pure Rust so
//! the full compression pipeline (encode → compress latents → decode →
//! quantize residuals) can be exercised end to end:
//!
//! * [`layer`] — the `Layer` trait (manual forward/backward, plus the
//!   allocation-free `infer_into` inference path) and `Param`.
//! * [`dense`], [`conv`], [`upsample`], [`gdn`], [`activation`] — the layers
//!   used by the paper's architecture: strided convolutions, GDN/iGDN
//!   nonlinearities, fully-connected resize layers, Tanh output.
//! * [`gemm`], [`im2col`], [`infer`] — the inference engine: convolution and
//!   dense forward passes lower to one blocked GEMM micro-kernel with a
//!   pinned accumulation order (bit-identical to the direct loops it
//!   replaced, enforced by reference twins in the differential harness),
//!   fed from caller-owned [`infer::NnScratch`] buffers so a resident
//!   compressor performs no per-call allocation once warm.
//! * [`sequential`] — ordered layer stacks with joint backward.
//! * [`loss`] — reconstruction losses (MSE, L1, log-cosh) and the
//!   distribution-matching regularizers that differentiate the autoencoder
//!   zoo: KL divergence (VAE / β-VAE), MMD (Info-VAE / WAE-MMD), covariance
//!   penalties (DIP-VAE) and the sliced-Wasserstein distance (SWAE).
//! * [`optim`] — Adam and SGD.
//! * [`models`] — the blockwise convolutional autoencoder of AE-SZ
//!   (Fig. 3/4 of the paper) and the eight-variant autoencoder zoo of
//!   Table I.
//! * [`train`] — mini-batch training loops over data blocks.
//! * [`serialize`] — flat binary save/load of model weights (every zoo
//!   variant round-trips through the stable `AESZMDL1` format) plus the
//!   content-addressed [`serialize::model_id`] that streams and archives use
//!   to name the exact network that encoded them, so a trained predictor can
//!   be stored next to the compressed data like the paper's network files.
//!
//! Everything is deterministic given a seed; training parallelises over the
//! mini-batch with rayon.

#![forbid(unsafe_code)]

pub mod activation;
pub mod conv;
pub mod dense;
pub mod gdn;
pub mod gemm;
pub mod im2col;
pub mod infer;
pub mod layer;
pub mod loss;
pub mod models;
pub mod optim;
pub mod sequential;
pub mod serialize;
pub mod train;
pub mod upsample;

pub use infer::{NnScratch, Shape};
pub use layer::{Layer, NnError, Param};
pub use models::conv_ae::{AeConfig, ConvAutoencoder};
pub use models::zoo::AeVariant;
pub use optim::Adam;
pub use sequential::Sequential;
pub use train::{TrainConfig, Trainer};
