//! Ordered stacks of layers with joint forward/backward passes.

use crate::layer::{Layer, Param};
use aesz_tensor::Tensor;

/// A simple feed-forward container: `forward` runs every layer in order,
/// `backward` runs them in reverse. The encoder and decoder of the AE-SZ
/// network are each one `Sequential`.
#[derive(Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Append a layer (builder style).
    pub fn push(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Append a layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the stack.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in order (for summaries and serialization sanity checks).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

impl Layer for Sequential {
    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Tanh;
    use crate::dense::Dense;
    use crate::layer::grad_check_input;
    use aesz_tensor::init::{normal, rng};

    #[test]
    fn composes_layers_in_order() {
        let mut r = rng(1);
        let mut seq = Sequential::new()
            .push(Box::new(Dense::new(4, 8, &mut r)))
            .push(Box::new(Tanh::new()))
            .push(Box::new(Dense::new(8, 2, &mut r)));
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.layer_names(), vec!["Dense", "Tanh", "Dense"]);
        let x = normal(&[5, 4], 0.0, 1.0, &mut r);
        let y = seq.forward(&x);
        assert_eq!(y.shape(), &[5, 2]);
    }

    #[test]
    fn gradient_check_through_the_stack() {
        let mut r = rng(2);
        let mut seq = Sequential::new()
            .push(Box::new(Dense::new(6, 5, &mut r)))
            .push(Box::new(Tanh::new()))
            .push(Box::new(Dense::new(5, 3, &mut r)));
        let x = normal(&[2, 6], 0.0, 1.0, &mut r);
        let err = grad_check_input(&mut seq, &x, 1e-3);
        assert!(err < 1e-2, "relative gradient error {err}");
    }

    #[test]
    fn collects_all_parameters() {
        let mut r = rng(3);
        let mut seq = Sequential::new()
            .push(Box::new(Dense::new(3, 4, &mut r)))
            .push(Box::new(Dense::new(4, 2, &mut r)));
        assert_eq!(seq.params().len(), 4); // two weights + two biases
        assert_eq!(seq.num_params(), 3 * 4 + 4 + 4 * 2 + 2);
        assert_eq!(seq.params_mut().len(), 4);
    }
}
