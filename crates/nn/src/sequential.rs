//! Ordered stacks of layers with joint forward/backward passes.

use crate::infer::{NnScratch, Shape};
use crate::layer::{Layer, NnError, Param};
use aesz_tensor::Tensor;

/// A simple feed-forward container: `forward` runs every layer in order,
/// `backward` runs them in reverse. The encoder and decoder of the AE-SZ
/// network are each one `Sequential`.
#[derive(Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Append a layer (builder style).
    pub fn push(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Append a layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the stack.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in order (for summaries and serialization sanity checks).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// The layers in order (read-only; used by the per-layer benchmarks).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }
}

impl Layer for Sequential {
    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn try_forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.try_forward(&x)?;
        }
        Ok(x)
    }

    /// Thread the activation through the stack with ping-pong buffers: layer
    /// `i` reads from one scratch buffer and writes into the other (the last
    /// layer writes straight into `out`), so a whole forward pass performs no
    /// allocation once the two buffers have warmed to the widest activation.
    ///
    /// Note: the ping-pong buffers are taken out of `scratch` for the
    /// duration of the pass, so a `Sequential` nested *inside* another
    /// `Sequential` would see empty buffers and re-warm its own — the AE-SZ
    /// architecture never nests stacks, so this costs nothing in practice.
    fn infer_into(
        &self,
        input: &[f32],
        shape: Shape,
        out: &mut Vec<f32>,
        scratch: &mut NnScratch,
    ) -> Result<Shape, NnError> {
        let last = match self.layers.len().checked_sub(1) {
            Some(last) => last,
            None => {
                out.clear();
                out.extend_from_slice(input);
                return Ok(shape);
            }
        };
        let mut cur = std::mem::take(&mut scratch.ping);
        let mut next = std::mem::take(&mut scratch.pong);
        let mut run = || -> Result<Shape, NnError> {
            let mut s = shape;
            for (i, layer) in self.layers.iter().enumerate() {
                let src: &[f32] = if i == 0 { input } else { &cur };
                if i == last {
                    s = layer.infer_into(src, s, out, scratch)?;
                } else {
                    s = layer.infer_into(src, s, &mut next, scratch)?;
                    std::mem::swap(&mut cur, &mut next);
                }
            }
            Ok(s)
        };
        let result = run();
        scratch.ping = cur;
        scratch.pong = next;
        result
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Tanh;
    use crate::dense::Dense;
    use crate::layer::grad_check_input;
    use aesz_tensor::init::{normal, rng};

    #[test]
    fn composes_layers_in_order() {
        let mut r = rng(1);
        let mut seq = Sequential::new()
            .push(Box::new(Dense::new(4, 8, &mut r)))
            .push(Box::new(Tanh::new()))
            .push(Box::new(Dense::new(8, 2, &mut r)));
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.layer_names(), vec!["Dense", "Tanh", "Dense"]);
        let x = normal(&[5, 4], 0.0, 1.0, &mut r);
        let y = seq.forward(&x);
        assert_eq!(y.shape(), &[5, 2]);
    }

    #[test]
    fn gradient_check_through_the_stack() {
        let mut r = rng(2);
        let mut seq = Sequential::new()
            .push(Box::new(Dense::new(6, 5, &mut r)))
            .push(Box::new(Tanh::new()))
            .push(Box::new(Dense::new(5, 3, &mut r)));
        let x = normal(&[2, 6], 0.0, 1.0, &mut r);
        let err = grad_check_input(&mut seq, &x, 1e-3);
        assert!(err < 1e-2, "relative gradient error {err}");
    }

    #[test]
    fn infer_into_matches_forward_bitwise() {
        let mut r = rng(4);
        let mut seq = Sequential::new()
            .push(Box::new(Dense::new(4, 8, &mut r)))
            .push(Box::new(Tanh::new()))
            .push(Box::new(Dense::new(8, 2, &mut r)));
        let x = normal(&[5, 4], 0.0, 1.0, &mut r);
        let y = seq.forward(&x);
        let mut out = Vec::new();
        let mut scratch = NnScratch::new();
        let shape = seq
            .infer_into(x.as_slice(), Shape::new(x.shape()), &mut out, &mut scratch)
            .expect("valid shape");
        assert_eq!(shape.dims(), y.shape());
        let fwd: Vec<u32> = y.as_slice().iter().map(|v| v.to_bits()).collect();
        let inf: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        assert_eq!(fwd, inf);
    }

    #[test]
    fn empty_stack_copies_input() {
        let seq = Sequential::new();
        let mut out = Vec::new();
        let mut scratch = NnScratch::new();
        let shape = seq
            .infer_into(&[1.0, 2.0], Shape::new(&[1, 2]), &mut out, &mut scratch)
            .expect("identity");
        assert_eq!(shape.dims(), &[1, 2]);
        assert_eq!(out, vec![1.0, 2.0]);
    }

    #[test]
    fn collects_all_parameters() {
        let mut r = rng(3);
        let mut seq = Sequential::new()
            .push(Box::new(Dense::new(3, 4, &mut r)))
            .push(Box::new(Dense::new(4, 2, &mut r)));
        assert_eq!(seq.params().len(), 4); // two weights + two biases
        assert_eq!(seq.num_params(), 3 * 4 + 4 + 4 * 2 + 2);
        assert_eq!(seq.params_mut().len(), 4);
    }
}
