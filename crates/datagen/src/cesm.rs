//! Synthetic CESM atmosphere fields (2D).
//!
//! The CESM CLDHGH (high-cloud fraction) and FREQSH (shallow-convection
//! frequency) fields are smooth 2D fields bounded in `[0, 1]` with
//! multi-scale structure: planetary-scale bands, regional blobs and mesoscale
//! detail. The generator superimposes latitude bands, drifting Gaussian
//! blobs and a small amount of smooth noise, then clamps to `[0, 1]`.

use aesz_tensor::{Dims, Field};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Smooth pseudo-random blob parameters derived from the seed.
struct Blob {
    cy: f32,
    cx: f32,
    sy: f32,
    sx: f32,
    amp: f32,
    drift_y: f32,
    drift_x: f32,
}

fn blobs(seed: u64, count: usize, amp_scale: f32) -> Vec<Blob> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| Blob {
            cy: rng.gen_range(0.0..1.0),
            cx: rng.gen_range(0.0..1.0),
            sy: rng.gen_range(0.04..0.25),
            sx: rng.gen_range(0.04..0.25),
            amp: rng.gen_range(0.2..1.0) * amp_scale,
            drift_y: rng.gen_range(-0.01..0.01),
            drift_x: rng.gen_range(-0.02..0.02),
        })
        .collect()
}

fn evaluate(dims: Dims, snapshot: u64, seed: u64, band_weight: f32, blob_count: usize) -> Field {
    let (ny, nx) = match dims {
        Dims::D2 { ny, nx } => (ny, nx),
        _ => panic!("CESM fields are 2D"),
    };
    let bl = blobs(seed, blob_count, 0.6);
    let t = snapshot as f32;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15 ^ snapshot);
    // Smooth noise realised as a few random low-frequency cosines.
    let noise_modes: Vec<(f32, f32, f32, f32)> = (0..6)
        .map(|_| {
            (
                rng.gen_range(2.0..9.0),
                rng.gen_range(2.0..9.0),
                rng.gen_range(0.0..std::f32::consts::TAU),
                rng.gen_range(0.01..0.05),
            )
        })
        .collect();

    Field::from_fn(dims, |c| {
        let v = c[0] as f32 / ny.max(1) as f32;
        let u = c[1] as f32 / nx.max(1) as f32;
        // Latitude bands: ITCZ-like maximum near the equator plus mid-latitude storm tracks.
        let lat = (v - 0.5) * 2.0; // -1 (south pole) .. 1 (north pole)
        let band = band_weight
            * (0.55 * (-lat * lat / 0.08).exp() + 0.35 * (-(lat.abs() - 0.6).powi(2) / 0.02).exp());
        // Drifting blobs (weather systems).
        let mut blobby = 0.0f32;
        for b in &bl {
            let dy = v - (b.cy + b.drift_y * t).rem_euclid(1.0);
            let dx = u - (b.cx + b.drift_x * t).rem_euclid(1.0);
            // Periodic in longitude.
            let dx = dx - dx.round();
            blobby +=
                b.amp * (-(dy * dy) / (2.0 * b.sy * b.sy) - (dx * dx) / (2.0 * b.sx * b.sx)).exp();
        }
        // Mesoscale smooth noise.
        let mut noise = 0.0f32;
        for &(ky, kx, phase, amp) in &noise_modes {
            noise += amp * (std::f32::consts::TAU * (ky * v + kx * u) + phase + 0.11 * t).cos();
        }
        (band + blobby + noise).clamp(0.0, 1.0)
    })
}

/// High-cloud fraction (CLDHGH): broad bands plus large blobs.
pub fn generate_cldhgh(dims: Dims, snapshot: u64) -> Field {
    evaluate(dims, snapshot, 0xC1D_6A11, 1.0, 18)
}

/// Shallow-convection frequency (FREQSH): weaker bands, smaller and more numerous blobs.
pub fn generate_freqsh(dims: Dims, snapshot: u64) -> Field {
    evaluate(dims, snapshot, 0xF2E_05EE, 0.6, 40)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_physical_fractions() {
        let f = generate_cldhgh(Dims::d2(90, 180), 0);
        assert!(f.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let g = generate_freqsh(Dims::d2(90, 180), 0);
        assert!(g.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn field_is_smooth() {
        // Neighbouring points should differ far less than the value range.
        let f = generate_cldhgh(Dims::d2(128, 128), 2);
        let s = f.as_slice();
        let mut max_step = 0.0f32;
        for y in 0..128 {
            for x in 1..128 {
                max_step = max_step.max((s[y * 128 + x] - s[y * 128 + x - 1]).abs());
            }
        }
        assert!(max_step < 0.5 * f.value_range(), "max step {max_step}");
    }

    #[test]
    fn fields_differ_between_variables() {
        let a = generate_cldhgh(Dims::d2(64, 64), 0);
        let b = generate_freqsh(Dims::d2(64, 64), 0);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "2D")]
    fn rejects_wrong_rank() {
        generate_cldhgh(Dims::d3(4, 4, 4), 0);
    }
}
