//! Raw binary I/O in the SDRBench on-disk format.
//!
//! SDRBench distributes every field as a flat little-endian `f32` file with
//! the extents documented out of band. These helpers let users of this
//! reproduction drop in the *real* SDRBench files when they have them: load a
//! `.f32`/`.dat` file with known dimensions, or save a generated field so it
//! can be compared against external compressors.

use aesz_tensor::{Dims, Field};
use std::io::{Read, Write};
use std::path::Path;

/// Load a flat little-endian `f32` file as a [`Field`] with the given extents.
///
/// Fails when the file size does not match `dims.len() * 4` bytes.
pub fn load_f32_file(path: &Path, dims: Dims) -> std::io::Result<Field> {
    let mut file = std::fs::File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    Field::from_le_bytes(dims, &bytes).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{path:?}: {e} (expected {} elements)", dims.len()),
        )
    })
}

/// Save a field as a flat little-endian `f32` file (the SDRBench format).
pub fn save_f32_file(path: &Path, field: &Field) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(&field.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Application;

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("aesz_datagen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cesm_test.f32");
        let field = Application::CesmCldhgh.generate(Dims::d2(32, 48), 0);
        save_f32_file(&path, &field).unwrap();
        let loaded = load_f32_file(&path, Dims::d2(32, 48)).unwrap();
        assert_eq!(field, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_dims_is_an_error() {
        let dir = std::env::temp_dir().join("aesz_datagen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrong_dims.f32");
        let field = Application::CesmCldhgh.generate(Dims::d2(16, 16), 0);
        save_f32_file(&path, &field).unwrap();
        assert!(load_f32_file(&path, Dims::d2(16, 17)).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_f32_file(Path::new("/nonexistent/never.f32"), Dims::d1(4)).is_err());
    }
}
