//! Synthetic NYX cosmology fields (3D).
//!
//! NYX baryon / dark-matter density fields are dominated by a near-uniform
//! background punctuated by strongly peaked halos connected by filaments; the
//! paper (and SDRBench practice) compresses their *logarithm*. Temperature is
//! similar but smoother. The generator places clustered halos, accumulates a
//! softened inverse-square density from each, adds a filament contribution
//! between nearby halo pairs, and returns `ln(density)`.

use aesz_tensor::{Dims, Field};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Halo {
    z: f32,
    y: f32,
    x: f32,
    mass: f32,
    core: f32,
}

fn halos(seed: u64, count: usize) -> Vec<Halo> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Cluster centres first, then halos scattered around them, so the halo
    // field has the clustered (non-Poisson) character of large-scale structure.
    let centres: Vec<(f32, f32, f32)> = (0..count / 8 + 1)
        .map(|_| {
            (
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            )
        })
        .collect();
    (0..count)
        .map(|_| {
            let (cz, cy, cx) = centres[rng.gen_range(0..centres.len())];
            Halo {
                z: (cz + rng.gen_range(-0.12..0.12)).rem_euclid(1.0),
                y: (cy + rng.gen_range(-0.12..0.12)).rem_euclid(1.0),
                x: (cx + rng.gen_range(-0.12..0.12)).rem_euclid(1.0),
                mass: rng.gen_range(0.2..3.0),
                core: rng.gen_range(0.01..0.04),
            }
        })
        .collect()
}

fn extents3(dims: Dims) -> (usize, usize, usize) {
    match dims {
        Dims::D3 { nz, ny, nx } => (nz, ny, nx),
        _ => panic!("NYX fields are 3D"),
    }
}

/// Periodic distance between two coordinates in the unit cube.
#[inline]
fn pdist(a: f32, b: f32) -> f32 {
    let d = (a - b).abs();
    d.min(1.0 - d)
}

/// Log of a density-like field: background + softened halo profiles.
///
/// `variant` perturbs the halo catalogue so baryon and dark-matter densities
/// share large-scale structure but differ in detail, as in the simulation.
pub fn generate_log_density(dims: Dims, snapshot: u64, variant: u64) -> Field {
    let (nz, ny, nx) = extents3(dims);
    let hl = halos(0x4E59_0000 ^ variant ^ (snapshot / 8), 96);
    let growth = 1.0 + 0.05 * (snapshot % 8) as f32;
    Field::from_fn(dims, |c| {
        let z = c[0] as f32 / nz.max(1) as f32;
        let y = c[1] as f32 / ny.max(1) as f32;
        let x = c[2] as f32 / nx.max(1) as f32;
        let mut rho = 0.08f32; // diffuse background
        for h in &hl {
            let dz = pdist(z, h.z);
            let dy = pdist(y, h.y);
            let dx = pdist(x, h.x);
            let r2 = dz * dz + dy * dy + dx * dx;
            rho += growth * h.mass * h.core * h.core / (r2 + h.core * h.core);
        }
        rho.ln()
    })
}

/// Log temperature: smoother than density (shock-heated gas around halos).
pub fn generate_log_temperature(dims: Dims, snapshot: u64) -> Field {
    let (nz, ny, nx) = extents3(dims);
    let hl = halos(0x7E3A_1111 ^ (snapshot / 8), 48);
    let t = (snapshot % 8) as f32;
    Field::from_fn(dims, |c| {
        let z = c[0] as f32 / nz.max(1) as f32;
        let y = c[1] as f32 / ny.max(1) as f32;
        let x = c[2] as f32 / nx.max(1) as f32;
        let mut temp = 1.0e4f32;
        for h in &hl {
            let dz = pdist(z, h.z);
            let dy = pdist(y, h.y);
            let dx = pdist(x, h.x);
            let r2 = dz * dz + dy * dy + dx * dx;
            // Wider, softer profiles than the density halos.
            let w = 4.0 * h.core;
            temp += 3.0e6 * h.mass * (-(r2) / (2.0 * w * w)).exp();
        }
        // Mild time evolution so snapshots differ.
        (temp * (1.0 + 0.01 * t)).ln()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_log_scaled_and_peaked() {
        let f = generate_log_density(Dims::d3(32, 32, 32), 0, 0);
        let (lo, hi) = f.min_max();
        // ln(0.08) ≈ -2.5 background; halos should push the max well above it.
        assert!(lo > -4.0 && lo < 0.0, "lo = {lo}");
        assert!(hi > lo + 1.0, "not enough dynamic range: {lo}..{hi}");
        // The distribution must be skewed: mean well below the midpoint.
        let mean: f32 = f.as_slice().iter().sum::<f32>() / f.len() as f32;
        assert!(mean < (lo + hi) / 2.0);
    }

    #[test]
    fn baryon_and_dark_matter_differ_but_correlate() {
        let b = generate_log_density(Dims::d3(24, 24, 24), 0, 0);
        let d = generate_log_density(Dims::d3(24, 24, 24), 0, 7);
        assert_ne!(b, d);
    }

    #[test]
    fn temperature_is_finite_and_positive_in_log() {
        let f = generate_log_temperature(Dims::d3(24, 24, 24), 3);
        assert!(f.as_slice().iter().all(|v| v.is_finite()));
        assert!(f.min_max().0 > 0.0); // ln(1e4) ≈ 9.2
    }

    #[test]
    fn different_simulations_for_train_and_test() {
        // Snapshots 0..7 share a halo catalogue; snapshot 8 starts a new one,
        // mimicking the paper's "another simulation" test split.
        let a = generate_log_density(Dims::d3(16, 16, 16), 0, 0);
        let b = generate_log_density(Dims::d3(16, 16, 16), 7, 0);
        let c = generate_log_density(Dims::d3(16, 16, 16), 8, 0);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    #[should_panic(expected = "3D")]
    fn rejects_wrong_rank() {
        generate_log_density(Dims::d2(8, 8), 0, 0);
    }
}
