//! Synthetic EXAFEL / LCLS detector frames (2D).
//!
//! Serial crystallography detector images are dominated by a noisy, slowly
//! varying background (dark current + diffuse scattering rings) with sparse,
//! very sharp Bragg peaks. In SDRBench the frames are concatenated 185×388
//! panels forming a tall 2D array; here one call generates one such composite
//! frame at whatever extents the caller asks for.

use aesz_tensor::{Dims, Field};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, Poisson};

fn extents2(dims: Dims) -> (usize, usize) {
    match dims {
        Dims::D2 { ny, nx } => (ny, nx),
        _ => panic!("EXAFEL frames are 2D"),
    }
}

/// One detector frame: background + diffuse rings + Poisson-ish noise + Bragg peaks.
pub fn generate_frame(dims: Dims, snapshot: u64) -> Field {
    let (ny, nx) = extents2(dims);
    let mut rng = StdRng::seed_from_u64(0xE8AF_E100 ^ snapshot);
    let normal = Normal::new(0.0f32, 3.0).expect("valid std");
    // Beam centre slightly off-centre, different per frame.
    let cy = 0.5 + rng.gen_range(-0.05..0.05f32);
    let cx = 0.5 + rng.gen_range(-0.05..0.05f32);
    // Bragg peaks: positions on a noisy reciprocal lattice.
    let n_peaks = rng.gen_range(40..120usize);
    let peaks: Vec<(f32, f32, f32, f32)> = (0..n_peaks)
        .map(|_| {
            (
                rng.gen_range(0.0..1.0f32),
                rng.gen_range(0.0..1.0f32),
                rng.gen_range(200.0..4000.0f32), // peak intensity in ADU
                rng.gen_range(0.002..0.006f32),  // peak width
            )
        })
        .collect();
    // Powder/diffuse rings.
    let rings: Vec<(f32, f32, f32)> = (0..4)
        .map(|_| {
            (
                rng.gen_range(0.15..0.55f32),
                rng.gen_range(5.0..25.0f32),
                rng.gen_range(0.01..0.03f32),
            )
        })
        .collect();

    let mut noise_rng = StdRng::seed_from_u64(0xE8AF_E101 ^ snapshot);
    Field::from_fn(dims, |c| {
        let y = c[0] as f32 / ny.max(1) as f32;
        let x = c[1] as f32 / nx.max(1) as f32;
        let r = ((y - cy).powi(2) + (x - cx).powi(2)).sqrt();
        // Background: pedestal + radially decaying diffuse scattering.
        let mut v = 30.0 + 80.0 * (-r / 0.3).exp();
        for &(rr, amp, width) in &rings {
            v += amp * (-(r - rr).powi(2) / (2.0 * width * width)).exp();
        }
        for &(py, px, amp, width) in &peaks {
            let d2 = (y - py).powi(2) + (x - px).powi(2);
            if d2 < 25.0 * width * width {
                v += amp * (-d2 / (2.0 * width * width)).exp();
            }
        }
        // Photon-counting style noise: Poisson for bright pixels is expensive,
        // so use Poisson only for the moderate range and Gaussian elsewhere.
        let noisy = if v < 500.0 {
            let lambda = v.max(0.1) as f64;
            Poisson::new(lambda)
                .map(|p| p.sample(&mut noise_rng) as f32)
                .unwrap_or(v)
        } else {
            v + normal.sample(&mut noise_rng) * v.sqrt() / 3.0
        };
        noisy.max(0.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_is_nonnegative_with_sparse_bright_peaks() {
        let f = generate_frame(Dims::d2(185, 388), 0);
        assert!(f.as_slice().iter().all(|&v| v >= 0.0));
        let (_, hi) = f.min_max();
        let bright = f.as_slice().iter().filter(|&&v| v > 0.5 * hi).count();
        // Bragg peaks occupy a tiny fraction of the pixels.
        assert!(
            bright * 100 < f.len(),
            "bright pixels: {bright}/{}",
            f.len()
        );
        assert!(hi > 300.0, "peaks should reach hundreds of ADU: {hi}");
    }

    #[test]
    fn frames_differ_per_shot() {
        let a = generate_frame(Dims::d2(64, 64), 0);
        let b = generate_frame(Dims::d2(64, 64), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_per_shot() {
        assert_eq!(
            generate_frame(Dims::d2(32, 48), 7),
            generate_frame(Dims::d2(32, 48), 7)
        );
    }

    #[test]
    #[should_panic(expected = "2D")]
    fn rejects_wrong_rank() {
        generate_frame(Dims::d3(2, 2, 2), 0);
    }
}
