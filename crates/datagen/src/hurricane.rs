//! Synthetic Hurricane-Isabel fields (3D).
//!
//! The Hurricane Isabel simulation covers a 100×500×500 domain (height ×
//! latitude × longitude). The U field is the east-west wind component of a
//! rotating vortex embedded in a background flow with vertical shear; QVAPOR
//! is the water-vapour mixing ratio, largest near the surface and inside the
//! moist vortex core. Both are smooth but anisotropic (the vertical axis is
//! much shorter and behaves differently), which is exactly what stresses a
//! blockwise 3D predictor.

use aesz_tensor::{Dims, Field};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn extents3(dims: Dims) -> (usize, usize, usize) {
    match dims {
        Dims::D3 { nz, ny, nx } => (nz, ny, nx),
        _ => panic!("Hurricane fields are 3D"),
    }
}

/// Storm-track parameters shared by both fields, derived from the snapshot.
struct Storm {
    cy: f32,
    cx: f32,
    rmax: f32,
    vmax: f32,
}

fn storm(snapshot: u64) -> Storm {
    // The eye drifts north-west over time like the real storm track.
    let t = snapshot as f32;
    Storm {
        cy: 0.65 - 0.006 * t,
        cx: 0.60 - 0.008 * t,
        rmax: 0.06 + 0.002 * (t * 0.7).sin(),
        vmax: 65.0 + 4.0 * (t * 0.45).cos(),
    }
}

/// East-west wind component U (m/s): Rankine-like vortex + sheared zonal flow.
pub fn generate_u(dims: Dims, snapshot: u64) -> Field {
    let (nz, ny, nx) = extents3(dims);
    let s = storm(snapshot);
    let mut rng = StdRng::seed_from_u64(0x0815_0C0C ^ snapshot);
    let ripples: Vec<(f32, f32, f32, f32)> = (0..8)
        .map(|_| {
            (
                rng.gen_range(3.0..14.0),
                rng.gen_range(3.0..14.0),
                rng.gen_range(0.0..std::f32::consts::TAU),
                rng.gen_range(0.3..1.4),
            )
        })
        .collect();
    Field::from_fn(dims, |c| {
        let z = c[0] as f32 / nz.max(1) as f32;
        let y = c[1] as f32 / ny.max(1) as f32;
        let x = c[2] as f32 / nx.max(1) as f32;
        let dy = y - s.cy;
        let dx = x - s.cx;
        let r = (dy * dy + dx * dx).sqrt().max(1e-4);
        // Tangential wind of a Rankine vortex, decaying with altitude.
        let vt = if r < s.rmax {
            s.vmax * r / s.rmax
        } else {
            s.vmax * (s.rmax / r).powf(0.6)
        };
        let decay = (-z / 0.6).exp();
        // U component of tangential flow = -vt * sin(theta) = -vt * dy / r.
        let u_vortex = -vt * dy / r * decay;
        // Background zonal flow with vertical shear (trade winds → jet).
        let u_background = -8.0 + 30.0 * z + 6.0 * (std::f32::consts::TAU * y).sin();
        let mut ripple = 0.0;
        for &(ky, kx, phase, amp) in &ripples {
            ripple += amp * (std::f32::consts::TAU * (ky * y + kx * x) + phase + z * 3.0).cos();
        }
        u_vortex + u_background + ripple
    })
}

/// Water-vapour mixing ratio QVAPOR (kg/kg): moist boundary layer + vortex core.
pub fn generate_qvapor(dims: Dims, snapshot: u64) -> Field {
    let (nz, ny, nx) = extents3(dims);
    let s = storm(snapshot);
    let mut rng = StdRng::seed_from_u64(0x0A0A_0B0B ^ snapshot);
    let patches: Vec<(f32, f32, f32, f32)> = (0..12)
        .map(|_| {
            (
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.05..0.2),
                rng.gen_range(0.1..0.5),
            )
        })
        .collect();
    Field::from_fn(dims, |c| {
        let z = c[0] as f32 / nz.max(1) as f32;
        let y = c[1] as f32 / ny.max(1) as f32;
        let x = c[2] as f32 / nx.max(1) as f32;
        // Exponential decrease with altitude (scale height ~ 0.25 of the domain).
        let base = 0.02 * (-z / 0.25).exp();
        let dy = y - s.cy;
        let dx = x - s.cx;
        let r2 = dy * dy + dx * dx;
        // Moist core and spiral rainbands.
        let core = 0.008 * (-r2 / (2.0 * (2.5 * s.rmax).powi(2))).exp() * (-z / 0.35).exp();
        let theta = dy.atan2(dx);
        let band = 0.003
            * ((theta * 2.0 - r2.sqrt() * 40.0).cos()).max(0.0)
            * (-r2 / 0.05).exp()
            * (-z / 0.3).exp();
        let mut patchy = 0.0;
        for &(py, px, pw, pa) in &patches {
            let d2 = (y - py).powi(2) + (x - px).powi(2);
            patchy += 0.002 * pa * (-d2 / (2.0 * pw * pw)).exp() * (-z / 0.3).exp();
        }
        (base + core + band + patchy).max(0.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u_has_both_signs_and_vertical_structure() {
        let f = generate_u(Dims::d3(16, 48, 48), 0);
        let (lo, hi) = f.min_max();
        assert!(lo < -5.0, "lo = {lo}");
        assert!(hi > 5.0, "hi = {hi}");
        // Mean wind near the top should exceed the surface mean (shear).
        let s = f.as_slice();
        let layer = 48 * 48;
        let surface: f32 = s[..layer].iter().sum::<f32>() / layer as f32;
        let top: f32 = s[15 * layer..].iter().sum::<f32>() / layer as f32;
        assert!(top > surface + 10.0, "surface {surface}, top {top}");
    }

    #[test]
    fn qvapor_is_nonnegative_and_decays_with_height() {
        let f = generate_qvapor(Dims::d3(20, 32, 32), 5);
        assert!(f.as_slice().iter().all(|&v| v >= 0.0));
        let s = f.as_slice();
        let layer = 32 * 32;
        let surface: f32 = s[..layer].iter().sum::<f32>() / layer as f32;
        let top: f32 = s[19 * layer..].iter().sum::<f32>() / layer as f32;
        assert!(surface > top * 2.0);
    }

    #[test]
    fn storm_moves_between_snapshots() {
        let a = generate_u(Dims::d3(8, 32, 32), 0);
        let b = generate_u(Dims::d3(8, 32, 32), 10);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "3D")]
    fn rejects_wrong_rank() {
        generate_u(Dims::d1(10), 0);
    }
}
