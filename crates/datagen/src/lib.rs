//! # aesz-datagen
//!
//! Synthetic scientific-data generators standing in for the SDRBench datasets
//! used by the AE-SZ paper (CESM, NYX, Hurricane, RTM, EXAFEL), plus raw
//! binary I/O in the SDRBench on-disk format (flat little-endian `f32`).
//!
//! The real datasets are multi-gigabyte downloads; what drives the paper's
//! conclusions is not the exact bytes but the *character* of each field:
//!
//! * **CESM** (2D climate): smooth multi-scale structure with regional fronts,
//!   values bounded in a physical range (cloud fraction 0..1).
//! * **NYX** (3D cosmology): sharply peaked, filamentary log-density fields.
//! * **Hurricane** (3D weather): a rotating vortex with vertical shear.
//! * **RTM** (3D seismic): oscillatory expanding wavefronts over a layered
//!   background.
//! * **EXAFEL** (2D crystallography detector): flat noisy background with
//!   sparse sharp Bragg peaks.
//!
//! Every generator is deterministic in `(seed, snapshot)` so "time steps" for
//! the train/test split of the paper can be produced on demand: the training
//! split uses low snapshot indices, the test split high ones, exactly like the
//! papers' split across simulation time steps.

#![forbid(unsafe_code)]

pub mod cesm;
pub mod exafel;
pub mod hurricane;
pub mod loader;
pub mod nyx;
pub mod rtm;

use aesz_tensor::{Dims, Field};

pub use loader::{load_f32_file, save_f32_file};

/// The scientific applications covered by the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Application {
    /// CESM atmosphere model (2D), CLDHGH field.
    CesmCldhgh,
    /// CESM atmosphere model (2D), FREQSH field.
    CesmFreqsh,
    /// EXAFEL LCLS detector frames (2D).
    Exafel,
    /// NYX cosmology (3D), baryon density (log scale).
    NyxBaryonDensity,
    /// NYX cosmology (3D), temperature (log scale).
    NyxTemperature,
    /// NYX cosmology (3D), dark matter density (log scale).
    NyxDarkMatterDensity,
    /// Hurricane Isabel (3D), U wind component.
    HurricaneU,
    /// Hurricane Isabel (3D), QVAPOR water-vapour mixing ratio.
    HurricaneQvapor,
    /// Reverse-time-migration seismic wavefield snapshots (3D).
    Rtm,
}

impl Application {
    /// All applications, in the order the paper lists them.
    pub fn all() -> Vec<Application> {
        vec![
            Application::CesmCldhgh,
            Application::CesmFreqsh,
            Application::Exafel,
            Application::NyxBaryonDensity,
            Application::NyxTemperature,
            Application::NyxDarkMatterDensity,
            Application::HurricaneU,
            Application::HurricaneQvapor,
            Application::Rtm,
        ]
    }

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Application::CesmCldhgh => "CESM-CLDHGH",
            Application::CesmFreqsh => "CESM-FREQSH",
            Application::Exafel => "EXAFEL",
            Application::NyxBaryonDensity => "NYX-baryon_density",
            Application::NyxTemperature => "NYX-temperature",
            Application::NyxDarkMatterDensity => "NYX-dark_matter_density",
            Application::HurricaneU => "Hurricane-U",
            Application::HurricaneQvapor => "Hurricane-QVAPOR",
            Application::Rtm => "RTM",
        }
    }

    /// Rank of the field (2 or 3), matching Table V of the paper.
    pub fn rank(&self) -> usize {
        match self {
            Application::CesmCldhgh | Application::CesmFreqsh | Application::Exafel => 2,
            _ => 3,
        }
    }

    /// Default block size used by AE-SZ for this field (Table VI).
    pub fn default_block_size(&self) -> usize {
        match self.rank() {
            2 => 32,
            _ => 8,
        }
    }

    /// Generate one snapshot of this application at the given extents.
    ///
    /// `snapshot` plays the role of the simulation time step / file index used
    /// by the paper's train-test split; different snapshots of the same
    /// application share large-scale structure but differ in detail.
    pub fn generate(&self, dims: Dims, snapshot: u64) -> Field {
        match self {
            Application::CesmCldhgh => cesm::generate_cldhgh(dims, snapshot),
            Application::CesmFreqsh => cesm::generate_freqsh(dims, snapshot),
            Application::Exafel => exafel::generate_frame(dims, snapshot),
            Application::NyxBaryonDensity => nyx::generate_log_density(dims, snapshot, 0),
            Application::NyxTemperature => nyx::generate_log_temperature(dims, snapshot),
            Application::NyxDarkMatterDensity => nyx::generate_log_density(dims, snapshot, 7),
            Application::HurricaneU => hurricane::generate_u(dims, snapshot),
            Application::HurricaneQvapor => hurricane::generate_qvapor(dims, snapshot),
            Application::Rtm => rtm::generate_wavefield(dims, snapshot),
        }
    }

    /// Extents used by the test suite and examples (scaled-down stand-ins for
    /// the full SDRBench extents in Table V, keeping the same rank).
    pub fn test_dims(&self) -> Dims {
        match self.rank() {
            2 => Dims::d2(256, 256),
            _ => Dims::d3(64, 64, 64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_applications_generate_finite_fields() {
        for app in Application::all() {
            let dims = match app.rank() {
                2 => Dims::d2(48, 64),
                _ => Dims::d3(24, 24, 24),
            };
            let f = app.generate(dims, 0);
            assert_eq!(f.len(), dims.len(), "{}", app.name());
            assert!(
                f.as_slice().iter().all(|v| v.is_finite()),
                "{} produced non-finite values",
                app.name()
            );
            assert!(f.value_range() > 0.0, "{} is constant", app.name());
        }
    }

    #[test]
    fn snapshots_are_deterministic_and_distinct() {
        let app = Application::CesmCldhgh;
        let dims = Dims::d2(64, 64);
        let a = app.generate(dims, 3);
        let b = app.generate(dims, 3);
        let c = app.generate(dims, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranks_and_block_sizes_match_the_paper() {
        assert_eq!(Application::CesmCldhgh.rank(), 2);
        assert_eq!(Application::CesmCldhgh.default_block_size(), 32);
        assert_eq!(Application::NyxBaryonDensity.rank(), 3);
        assert_eq!(Application::NyxBaryonDensity.default_block_size(), 8);
        assert_eq!(Application::Rtm.rank(), 3);
    }
}
