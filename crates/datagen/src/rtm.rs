//! Synthetic reverse-time-migration (RTM) seismic wavefield snapshots (3D).
//!
//! RTM snapshots are propagating acoustic wavefields: expanding, oscillatory
//! wavefronts emitted by a source, reflected by layered geology. The dominant
//! signal is a band-limited spherical wave packet whose radius grows with the
//! snapshot index (time step), superimposed on weaker reflections from
//! horizontal layers. Values are signed and oscillate around zero, which is
//! the regime where transform-based compressors (ZFP) traditionally do well —
//! making it a good stress test for the AE predictor.

use aesz_tensor::{Dims, Field};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn extents3(dims: Dims) -> (usize, usize, usize) {
    match dims {
        Dims::D3 { nz, ny, nx } => (nz, ny, nx),
        _ => panic!("RTM wavefields are 3D"),
    }
}

/// One snapshot of the propagating wavefield at "time step" `snapshot`.
pub fn generate_wavefield(dims: Dims, snapshot: u64) -> Field {
    let (nz, ny, nx) = extents3(dims);
    let mut rng = StdRng::seed_from_u64(0x5E15_0001);
    // Source position (fixed across snapshots, like a single shot record).
    // Kept near the domain centre so the expanding front stays inside the
    // volume for many time steps: energy at a given distance from the centre
    // then grows monotonically with the snapshot index until the front exits.
    let (sz, sy, sx) = (
        rng.gen_range(0.4..0.6f32),
        rng.gen_range(0.4..0.6f32),
        rng.gen_range(0.4..0.6f32),
    );
    // Layer interfaces (depths) and reflectivities.
    let layers: Vec<(f32, f32)> = (0..6)
        .map(|i| {
            (
                0.15 + 0.13 * i as f32 + rng.gen_range(-0.02..0.02),
                rng.gen_range(-0.4..0.4f32),
            )
        })
        .collect();
    // Wavefront radius grows with the time step; wavelength is fixed.
    let t = snapshot as f32;
    let radius = 0.08 + 0.015 * t;
    let k = 60.0; // wavenumber of the dominant oscillation
    let pulse_width = 0.05f32;

    Field::from_fn(dims, |c| {
        let z = c[0] as f32 / nz.max(1) as f32;
        let y = c[1] as f32 / ny.max(1) as f32;
        let x = c[2] as f32 / nx.max(1) as f32;
        let dz = z - sz;
        let dy = y - sy;
        let dx = x - sx;
        let r = (dz * dz + dy * dy + dx * dx).sqrt();
        // Direct wave: band-limited ricker-like packet around the current radius.
        let arg = (r - radius) / pulse_width;
        let geom = 1.0 / (r + 0.05);
        let direct = geom * (-arg * arg).exp() * (k * (r - radius)).cos();
        // Layer reflections: secondary packets mirrored at each interface.
        let mut reflected = 0.0f32;
        for &(depth, refl) in &layers {
            if radius > (depth - sz).abs() {
                let zz = 2.0 * depth - sz; // image source below the interface
                let dzr = z - zz;
                let rr = (dzr * dzr + dy * dy + dx * dx).sqrt();
                let arg_r = (rr - radius) / pulse_width;
                reflected +=
                    refl * (1.0 / (rr + 0.1)) * (-arg_r * arg_r).exp() * (k * (rr - radius)).cos();
            }
        }
        direct + 0.5 * reflected
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavefield_is_signed_and_oscillatory() {
        let f = generate_wavefield(Dims::d3(48, 48, 48), 10);
        let (lo, hi) = f.min_max();
        assert!(lo < 0.0 && hi > 0.0, "wavefield must oscillate: {lo}..{hi}");
        // Most of the volume is near zero (quiet zone ahead of the front).
        let near_zero = f
            .as_slice()
            .iter()
            .filter(|v| v.abs() < 0.05 * hi.max(-lo))
            .count();
        assert!(near_zero * 2 > f.len(), "wavefield should be sparse");
    }

    #[test]
    fn wavefront_expands_over_time() {
        // Energy far from the source should grow as the snapshot index grows.
        let early = generate_wavefield(Dims::d3(32, 32, 32), 2);
        let late = generate_wavefield(Dims::d3(32, 32, 32), 30);
        let shell_energy = |f: &Field| {
            let s = f.as_slice();
            let n = 32usize;
            let mut e = 0.0f64;
            for z in 0..n {
                for y in 0..n {
                    for x in 0..n {
                        let dz = z as f32 / 32.0 - 0.5;
                        let dy = y as f32 / 32.0 - 0.5;
                        let dx = x as f32 / 32.0 - 0.5;
                        if (dz * dz + dy * dy + dx * dx).sqrt() > 0.35 {
                            e += (s[(z * n + y) * n + x] as f64).powi(2);
                        }
                    }
                }
            }
            e
        };
        assert!(shell_energy(&late) > shell_energy(&early));
    }

    #[test]
    fn deterministic_per_snapshot() {
        assert_eq!(
            generate_wavefield(Dims::d3(16, 16, 16), 5),
            generate_wavefield(Dims::d3(16, 16, 16), 5)
        );
    }

    #[test]
    #[should_panic(expected = "3D")]
    fn rejects_wrong_rank() {
        generate_wavefield(Dims::d2(16, 16), 0);
    }
}
