//! Linear-algebra kernels shared by the NN framework and the regression
//! predictor: dense matrix multiplication, transpose, and small least-squares
//! solves (normal equations with Gaussian elimination).
//!
//! These are deliberately straightforward scalar implementations; the
//! performance-sensitive outer loops (over blocks / batch elements) are
//! parallelised with rayon at the call sites, following the data-parallel
//! style of the workspace guides.

use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// Dense matrix multiply: `a` is `(m, k)`, `b` is `(k, n)`, result is `(m, n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::IncompatibleShapes(
            "matmul expects rank-2 tensors".into(),
        ));
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::IncompatibleShapes(format!(
            "matmul inner dims differ: {k} vs {k2}"
        )));
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.as_slice();
    let bd = b.as_slice();
    for i in 0..m {
        for p in 0..k {
            let aval = ad[i * k + p];
            if aval == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += aval * bv;
            }
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// Transpose of a rank-2 tensor.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::IncompatibleShapes(
            "transpose expects a rank-2 tensor".into(),
        ));
    }
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let ad = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_vec(&[n, m], out)
}

/// Matrix-vector product: `a` is `(m, n)`, `x` has `n` entries.
pub fn matvec(a: &Tensor, x: &[f32]) -> Result<Vec<f32>> {
    if a.rank() != 2 || a.shape()[1] != x.len() {
        return Err(TensorError::IncompatibleShapes(format!(
            "matvec: {:?} vs {}",
            a.shape(),
            x.len()
        )));
    }
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let ad = a.as_slice();
    let mut out = vec![0.0f32; m];
    for i in 0..m {
        let mut acc = 0.0;
        for j in 0..n {
            acc += ad[i * n + j] * x[j];
        }
        out[i] = acc;
    }
    Ok(out)
}

/// Solve the square linear system `A x = b` in place with partial-pivoting
/// Gaussian elimination. `a` is `n*n` row-major. Returns `None` when the
/// system is (numerically) singular.
pub fn solve_linear(a: &mut [f64], b: &mut [f64], n: usize) -> Option<Vec<f64>> {
    if solve_linear_in_place(a, b, n) {
        Some(b.to_vec())
    } else {
        None
    }
}

/// [`solve_linear`] without the output allocation: on success the solution
/// replaces `b`. Bit-identical to the allocating form — the back
/// substitution reads the already-solved entries of `b` exactly where the
/// reference read its freshly-written `x`.
pub fn solve_linear_in_place(a: &mut [f64], b: &mut [f64], n: usize) -> bool {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    for col in 0..n {
        // Pivot: largest magnitude in this column at or below the diagonal.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-12 {
            return false;
        }
        if pivot != col {
            for j in 0..n {
                a.swap(col * n + j, pivot * n + j);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row * n + j] -= factor * a[col * n + j];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution, solving into `b` itself: entries below `row` are
    // still right-hand side, entries above are already solution values —
    // exactly the `x[j]` the allocating form read.
    for row in (0..n).rev() {
        let mut acc = b[row];
        for j in (row + 1)..n {
            acc -= a[row * n + j] * b[j];
        }
        b[row] = acc / a[row * n + row];
    }
    true
}

/// Ordinary least squares: find `beta` minimising `||X beta − y||²` via the
/// normal equations. `x` is `(rows, cols)` row-major. Returns `None` when the
/// normal matrix is singular.
pub fn least_squares(x: &[f32], rows: usize, cols: usize, y: &[f32]) -> Option<Vec<f32>> {
    debug_assert_eq!(x.len(), rows * cols);
    debug_assert_eq!(y.len(), rows);
    let mut xtx = vec![0.0f64; cols * cols];
    let mut xty = vec![0.0f64; cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            xty[i] += row[i] as f64 * y[r] as f64;
            for j in i..cols {
                xtx[i * cols + j] += row[i] as f64 * row[j] as f64;
            }
        }
    }
    for i in 0..cols {
        for j in 0..i {
            xtx[i * cols + j] = xtx[j * cols + i];
        }
    }
    let beta = solve_linear(&mut xtx, &mut xty, cols)?;
    Some(beta.into_iter().map(|v| v as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f32).collect()).unwrap();
        let t = transpose(&a).unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(transpose(&t).unwrap(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = matvec(&a, &[5.0, 6.0]).unwrap();
        assert_eq!(y, vec![17.0, 39.0]);
    }

    #[test]
    fn solve_linear_identity_and_singular() {
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![3.0, 4.0];
        assert_eq!(solve_linear(&mut a, &mut b, 2).unwrap(), vec![3.0, 4.0]);

        let mut s = vec![1.0, 2.0, 2.0, 4.0];
        let mut b2 = vec![1.0, 2.0];
        assert!(solve_linear(&mut s, &mut b2, 2).is_none());
    }

    #[test]
    fn solve_linear_requires_pivoting() {
        // Zero on the first diagonal entry forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 3.0];
        let x = solve_linear(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_recovers_plane() {
        // y = 2*a + 3*b + 1 over a small grid.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                x.extend_from_slice(&[a as f32, b as f32, 1.0]);
                y.push(2.0 * a as f32 + 3.0 * b as f32 + 1.0);
            }
        }
        let beta = least_squares(&x, 16, 3, &y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-4);
        assert!((beta[1] - 3.0).abs() < 1e-4);
        assert!((beta[2] - 1.0).abs() < 1e-4);
    }
}
