//! Scientific data field container and blockwise access.
//!
//! AE-SZ splits every input field into small fixed-size blocks (e.g. 32×32 in
//! 2D, 8×8×8 in 3D), predicts and quantizes each block independently, and
//! writes reconstructed values back block by block. [`Field`] owns the flat
//! `f32` buffer and [`BlockIter`] walks the block grid in row-major order,
//! producing [`BlockSpec`]s describing origin and valid extent (edge blocks
//! are smaller than the nominal block size).

use crate::dims::Dims;
use crate::{Result, TensorError};

/// A scientific data field: a flat row-major `f32` buffer plus its extents.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    dims: Dims,
    data: Vec<f32>,
}

/// Up to three coordinates stored inline (rank is at most 3 everywhere in
/// the workspace), so building a [`BlockSpec`] never touches the heap —
/// block iteration is a hot path and spec construction used to dominate its
/// allocation profile (see `tests/allocation_discipline.rs`).
///
/// Derefs to `[usize]`, so call sites that read `&spec.size` as a slice,
/// index it, or iterate it are unaffected. Unused trailing slots are always
/// zero, which keeps the derived `Eq`/`Hash`-free comparisons honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coords {
    buf: [usize; 3],
    len: u8,
}

impl Coords {
    /// Inline copy of `s`. Panics when `s` has more than three entries —
    /// rank > 3 does not exist in this workspace.
    pub fn from_slice(s: &[usize]) -> Coords {
        assert!(s.len() <= 3, "rank above 3 is unsupported");
        let mut buf = [0usize; 3];
        buf[..s.len()].copy_from_slice(s);
        Coords {
            buf,
            len: s.len() as u8,
        }
    }

    /// The coordinates as a slice (slow-to-fast axis order).
    pub fn as_slice(&self) -> &[usize] {
        &self.buf[..self.len as usize]
    }
}

impl std::ops::Deref for Coords {
    type Target = [usize];
    fn deref(&self) -> &[usize] {
        self.as_slice()
    }
}

impl PartialEq<Vec<usize>> for Coords {
    fn eq(&self, other: &Vec<usize>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Coords> for Vec<usize> {
    fn eq(&self, other: &Coords) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[usize]> for Coords {
    fn eq(&self, other: &[usize]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[usize; N]> for Coords {
    fn eq(&self, other: &[usize; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Location and valid extent of one block inside a field.
///
/// `origin` and `size` always have exactly `dims.rank()` entries, ordered
/// slow-to-fast (`[z, y, x]` for 3D).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSpec {
    /// Linear index of the block in the block grid (row-major over the grid).
    pub index: usize,
    /// Origin of the block in field coordinates.
    pub origin: Coords,
    /// Valid extent of the block along each axis (≤ nominal block size at edges).
    pub size: Coords,
    /// Nominal (requested) block edge length.
    pub nominal: usize,
}

impl BlockSpec {
    /// Build the spec of the `i`-th block (row-major over the block grid) of
    /// a field with extents `dims`, without needing the field itself — the
    /// random-access entry point the archive layer uses to map a chunk index
    /// back to its region. Allocation-free: everything lives in fixed
    /// rank-≤-3 arrays.
    pub fn of(dims: Dims, block: usize, i: usize) -> BlockSpec {
        let block = block.max(1);
        let (rank, ext) = match dims {
            Dims::D1 { n } => (1usize, [n, 1, 1]),
            Dims::D2 { ny, nx } => (2, [ny, nx, 1]),
            Dims::D3 { nz, ny, nx } => (3, [nz, ny, nx]),
        };
        let mut grid = [1usize; 3];
        for ax in 0..rank {
            grid[ax] = ext[ax].div_ceil(block);
        }
        let mut origin = [0usize; 3];
        let mut rem = i;
        for ax in (0..rank).rev() {
            origin[ax] = (rem % grid[ax]) * block;
            rem /= grid[ax];
        }
        let mut size = [0usize; 3];
        for ax in 0..rank {
            size[ax] = block.min(ext[ax] - origin[ax]);
        }
        BlockSpec {
            index: i,
            origin: Coords::from_slice(&origin[..rank]),
            size: Coords::from_slice(&size[..rank]),
            nominal: block,
        }
    }

    /// Number of valid (in-field) elements covered by this block.
    pub fn valid_len(&self) -> usize {
        self.size.iter().product()
    }

    /// Number of elements of the padded, nominal-size cube/square/segment.
    pub fn padded_len(&self, rank: usize) -> usize {
        self.nominal.pow(rank as u32)
    }

    /// True when the block is full-size along every axis (no edge truncation).
    pub fn is_full(&self) -> bool {
        self.size.iter().all(|&s| s == self.nominal)
    }
}

/// A block extracted from a field: the spec plus a padded copy of the values.
///
/// The padded buffer always has `nominal^rank` elements; positions outside the
/// valid extent are filled by edge replication so that the convolutional
/// autoencoder always sees a full-size input, matching the treatment of
/// boundary blocks in the paper.
#[derive(Debug, Clone)]
pub struct Block {
    /// Placement of this block in the parent field.
    pub spec: BlockSpec,
    /// Padded values, row-major over the nominal block shape.
    pub data: Vec<f32>,
}

impl Field {
    /// Create a field filled with zeros.
    pub fn zeros(dims: Dims) -> Self {
        Field {
            dims,
            data: vec![0.0; dims.len()],
        }
    }

    /// Create a field from an existing buffer; the length must match the dims.
    pub fn from_vec(dims: Dims, data: Vec<f32>) -> Result<Self> {
        if data.len() != dims.len() {
            return Err(TensorError::ShapeMismatch {
                expected: dims.len(),
                got: data.len(),
            });
        }
        Ok(Field { dims, data })
    }

    /// Create a field by evaluating `f` at every coordinate (slow-to-fast order).
    pub fn from_fn(dims: Dims, mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let mut data = Vec::with_capacity(dims.len());
        match dims {
            Dims::D1 { n } => {
                for x in 0..n {
                    data.push(f(&[x]));
                }
            }
            Dims::D2 { ny, nx } => {
                for y in 0..ny {
                    for x in 0..nx {
                        data.push(f(&[y, x]));
                    }
                }
            }
            Dims::D3 { nz, ny, nx } => {
                for z in 0..nz {
                    for y in 0..ny {
                        for x in 0..nx {
                            data.push(f(&[z, y, x]));
                        }
                    }
                }
            }
        }
        Field { dims, data }
    }

    /// Extents of the field.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the field holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the field, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Minimum and maximum value (ignoring NaNs). Returns `(0, 0)` for empty fields.
    pub fn min_max(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            if v.is_nan() {
                continue;
            }
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        if lo > hi {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Value range `max − min` of the field (0 for constant or empty fields).
    pub fn value_range(&self) -> f32 {
        let (lo, hi) = self.min_max();
        hi - lo
    }

    /// Linearly map the field into `[-1, 1]` based on its global min/max,
    /// returning the normalized copy together with `(min, max)` needed to undo
    /// the mapping. Constant fields map to all-zero.
    pub fn normalize_pm1(&self) -> (Field, f32, f32) {
        let (lo, hi) = self.min_max();
        let range = hi - lo;
        let data = if range == 0.0 {
            vec![0.0; self.data.len()]
        } else {
            self.data
                .iter()
                .map(|&v| 2.0 * (v - lo) / range - 1.0)
                .collect()
        };
        (
            Field {
                dims: self.dims,
                data,
            },
            lo,
            hi,
        )
    }

    /// Undo [`Field::normalize_pm1`] on a slice of normalized values.
    pub fn denormalize_pm1(values: &mut [f32], lo: f32, hi: f32) {
        let range = hi - lo;
        if range == 0.0 {
            for v in values.iter_mut() {
                *v = lo;
            }
        } else {
            for v in values.iter_mut() {
                *v = (*v + 1.0) * 0.5 * range + lo;
            }
        }
    }

    /// Iterate over the block grid with nominal edge length `block`.
    pub fn blocks(&self, block: usize) -> BlockIter<'_> {
        BlockIter::new(self, block)
    }

    /// Number of blocks produced by [`Field::blocks`] for the given edge length.
    pub fn block_count(&self, block: usize) -> usize {
        self.dims.block_grid(block).iter().product()
    }

    /// Extract one block (padded to nominal size by edge replication).
    pub fn extract_block(&self, spec: &BlockSpec) -> Block {
        let rank = self.dims.rank();
        let b = spec.nominal;
        let mut data = vec![0.0f32; spec.padded_len(rank)];
        match self.dims {
            Dims::D1 { .. } => {
                for (i, slot) in data.iter_mut().enumerate().take(b) {
                    let src = spec.origin[0] + i.min(spec.size[0].saturating_sub(1));
                    *slot = self.data[src];
                }
            }
            Dims::D2 { nx, .. } => {
                for by in 0..b {
                    let sy = spec.origin[0] + by.min(spec.size[0].saturating_sub(1));
                    for bx in 0..b {
                        let sx = spec.origin[1] + bx.min(spec.size[1].saturating_sub(1));
                        data[by * b + bx] = self.data[sy * nx + sx];
                    }
                }
            }
            Dims::D3 { ny, nx, .. } => {
                for bz in 0..b {
                    let sz = spec.origin[0] + bz.min(spec.size[0].saturating_sub(1));
                    for by in 0..b {
                        let sy = spec.origin[1] + by.min(spec.size[1].saturating_sub(1));
                        for bx in 0..b {
                            let sx = spec.origin[2] + bx.min(spec.size[2].saturating_sub(1));
                            data[(bz * b + by) * b + bx] = self.data[(sz * ny + sy) * nx + sx];
                        }
                    }
                }
            }
        }
        Block {
            spec: spec.clone(),
            data,
        }
    }

    /// Write the valid region of a (padded) block buffer back into the field.
    pub fn write_block(&mut self, spec: &BlockSpec, padded: &[f32]) {
        let b = spec.nominal;
        match self.dims {
            Dims::D1 { .. } => {
                let dst = spec.origin[0]..spec.origin[0] + spec.size[0];
                self.data[dst].copy_from_slice(&padded[..spec.size[0]]);
            }
            Dims::D2 { nx, .. } => {
                for by in 0..spec.size[0] {
                    let dy = spec.origin[0] + by;
                    for bx in 0..spec.size[1] {
                        self.data[dy * nx + spec.origin[1] + bx] = padded[by * b + bx];
                    }
                }
            }
            Dims::D3 { ny, nx, .. } => {
                for bz in 0..spec.size[0] {
                    let dz = spec.origin[0] + bz;
                    for by in 0..spec.size[1] {
                        let dy = spec.origin[1] + by;
                        for bx in 0..spec.size[2] {
                            self.data[(dz * ny + dy) * nx + spec.origin[2] + bx] =
                                padded[(bz * b + by) * b + bx];
                        }
                    }
                }
            }
        }
    }

    /// Write a block's valid region back from an *unpadded* buffer (the
    /// inverse of [`Field::read_block_valid`]), row-major over `spec.size`.
    ///
    /// # Panics
    /// Panics when `values` is shorter than `spec.valid_len()` or the spec
    /// lies outside the field.
    pub fn write_block_valid(&mut self, spec: &BlockSpec, values: &[f32]) {
        assert!(
            values.len() >= spec.valid_len(),
            "need {} values for the block, got {}",
            spec.valid_len(),
            values.len()
        );
        let mut src = values.iter();
        match self.dims {
            Dims::D1 { .. } => {
                for i in 0..spec.size[0] {
                    self.data[spec.origin[0] + i] = *src.next().expect("length checked");
                }
            }
            Dims::D2 { nx, .. } => {
                for by in 0..spec.size[0] {
                    let dy = spec.origin[0] + by;
                    for bx in 0..spec.size[1] {
                        self.data[dy * nx + spec.origin[1] + bx] =
                            *src.next().expect("length checked");
                    }
                }
            }
            Dims::D3 { ny, nx, .. } => {
                for bz in 0..spec.size[0] {
                    let dz = spec.origin[0] + bz;
                    for by in 0..spec.size[1] {
                        let dy = spec.origin[1] + by;
                        for bx in 0..spec.size[2] {
                            self.data[(dz * ny + dy) * nx + spec.origin[2] + bx] =
                                *src.next().expect("length checked");
                        }
                    }
                }
            }
        }
    }

    /// Read the valid region of a block (no padding), row-major over `spec.size`.
    pub fn read_block_valid(&self, spec: &BlockSpec) -> Vec<f32> {
        let mut out = Vec::new();
        self.read_block_valid_into(spec, &mut out);
        out
    }

    /// [`Field::read_block_valid`] into a caller-owned buffer (cleared
    /// first), copying whole contiguous rows along the fastest axis so
    /// per-block paths reuse one allocation and skip per-element pushes.
    pub fn read_block_valid_into(&self, spec: &BlockSpec, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(spec.valid_len());
        match self.dims {
            Dims::D1 { .. } => {
                let start = spec.origin[0];
                out.extend_from_slice(&self.data[start..start + spec.size[0]]);
            }
            Dims::D2 { nx, .. } => {
                for by in 0..spec.size[0] {
                    let row = (spec.origin[0] + by) * nx + spec.origin[1];
                    out.extend_from_slice(&self.data[row..row + spec.size[1]]);
                }
            }
            Dims::D3 { ny, nx, .. } => {
                for bz in 0..spec.size[0] {
                    let dz = spec.origin[0] + bz;
                    for by in 0..spec.size[1] {
                        let dy = spec.origin[1] + by;
                        let row = (dz * ny + dy) * nx + spec.origin[2];
                        out.extend_from_slice(&self.data[row..row + spec.size[2]]);
                    }
                }
            }
        }
    }

    /// Serialize the raw values to little-endian bytes (the on-disk format of
    /// SDRBench single-precision fields).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 4);
        for &v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parse a field from little-endian `f32` bytes.
    pub fn from_le_bytes(dims: Dims, bytes: &[u8]) -> Result<Self> {
        if bytes.len() != dims.len() * 4 {
            return Err(TensorError::ShapeMismatch {
                expected: dims.len() * 4,
                got: bytes.len(),
            });
        }
        let data = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(Field { dims, data })
    }
}

impl std::ops::Index<usize> for Field {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for Field {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

/// Iterator over the block grid of a field, yielding [`BlockSpec`]s in
/// row-major order over the grid.
pub struct BlockIter<'a> {
    field: &'a Field,
    block: usize,
    next: usize,
    total: usize,
}

impl<'a> BlockIter<'a> {
    fn new(field: &'a Field, block: usize) -> Self {
        let total = field.dims.block_grid(block).iter().product();
        BlockIter {
            field,
            block: block.max(1),
            next: 0,
            total,
        }
    }

    /// Build the spec for the `i`-th block of the grid without iterating.
    pub fn spec_at(field: &Field, block: usize, i: usize) -> BlockSpec {
        BlockSpec::of(field.dims, block, i)
    }
}

impl Iterator for BlockIter<'_> {
    type Item = BlockSpec;

    fn next(&mut self) -> Option<BlockSpec> {
        if self.next >= self.total {
            return None;
        }
        let spec = BlockIter::spec_at(self.field, self.block, self.next);
        self.next += 1;
        Some(spec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.total - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BlockIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp2d(ny: usize, nx: usize) -> Field {
        Field::from_fn(Dims::d2(ny, nx), |c| (c[0] * nx + c[1]) as f32)
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Field::from_vec(Dims::d2(2, 2), vec![1.0; 4]).is_ok());
        assert!(Field::from_vec(Dims::d2(2, 2), vec![1.0; 5]).is_err());
    }

    #[test]
    fn min_max_and_range() {
        let f = Field::from_vec(Dims::d1(4), vec![-3.0, 1.0, 2.5, 0.0]).unwrap();
        assert_eq!(f.min_max(), (-3.0, 2.5));
        assert_eq!(f.value_range(), 5.5);
    }

    #[test]
    fn min_max_ignores_nan_and_handles_empty() {
        let f = Field::from_vec(Dims::d1(3), vec![f32::NAN, 1.0, -2.0]).unwrap();
        assert_eq!(f.min_max(), (-2.0, 1.0));
        let e = Field::zeros(Dims::d1(0));
        assert_eq!(e.min_max(), (0.0, 0.0));
    }

    #[test]
    fn normalize_roundtrip() {
        let f = Field::from_vec(Dims::d1(5), vec![-2.0, -1.0, 0.0, 1.0, 2.0]).unwrap();
        let (n, lo, hi) = f.normalize_pm1();
        assert!((n[0] + 1.0).abs() < 1e-6);
        assert!((n[4] - 1.0).abs() < 1e-6);
        let mut back = n.as_slice().to_vec();
        Field::denormalize_pm1(&mut back, lo, hi);
        for (a, b) in back.iter().zip(f.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn normalize_constant_field() {
        let f = Field::from_vec(Dims::d1(3), vec![7.0; 3]).unwrap();
        let (n, lo, hi) = f.normalize_pm1();
        assert_eq!(n.as_slice(), &[0.0, 0.0, 0.0]);
        let mut back = n.as_slice().to_vec();
        Field::denormalize_pm1(&mut back, lo, hi);
        assert_eq!(back, vec![7.0; 3]);
    }

    #[test]
    fn block_grid_counts() {
        let f = ramp2d(70, 64);
        assert_eq!(f.block_count(32), 3 * 2);
        let specs: Vec<_> = f.blocks(32).collect();
        assert_eq!(specs.len(), 6);
        // Last block row is truncated to 6 rows.
        assert_eq!(specs[4].size, vec![6, 32]);
        assert!(specs[0].is_full());
        assert!(!specs[4].is_full());
    }

    #[test]
    fn extract_and_write_roundtrip_2d() {
        let f = ramp2d(40, 40);
        let mut g = Field::zeros(Dims::d2(40, 40));
        for spec in f.blocks(16) {
            let blk = f.extract_block(&spec);
            g.write_block(&spec, &blk.data);
        }
        assert_eq!(f.as_slice(), g.as_slice());
    }

    #[test]
    fn extract_and_write_roundtrip_3d() {
        let f = Field::from_fn(Dims::d3(9, 10, 11), |c| {
            (c[0] * 110 + c[1] * 11 + c[2]) as f32
        });
        let mut g = Field::zeros(Dims::d3(9, 10, 11));
        for spec in f.blocks(8) {
            let blk = f.extract_block(&spec);
            g.write_block(&spec, &blk.data);
        }
        assert_eq!(f.as_slice(), g.as_slice());
    }

    #[test]
    fn edge_padding_replicates() {
        // 3-wide 1D field, block size 4: the padded tail must repeat the last value.
        let f = Field::from_vec(Dims::d1(3), vec![1.0, 2.0, 3.0]).unwrap();
        let spec = f.blocks(4).next().unwrap();
        let blk = f.extract_block(&spec);
        assert_eq!(blk.data, vec![1.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn spec_of_matches_iteration_without_a_field() {
        let f = Field::from_fn(Dims::d3(9, 10, 11), |c| c[2] as f32);
        for spec in f.blocks(4) {
            assert_eq!(BlockSpec::of(f.dims(), 4, spec.index), spec);
        }
    }

    #[test]
    fn write_block_valid_roundtrips_read_block_valid() {
        let f = Field::from_fn(Dims::d3(7, 9, 5), |c| (c[0] * 45 + c[1] * 5 + c[2]) as f32);
        let mut g = Field::zeros(f.dims());
        for spec in f.blocks(4) {
            g.write_block_valid(&spec, &f.read_block_valid(&spec));
        }
        assert_eq!(f.as_slice(), g.as_slice());
        let mut h = Field::zeros(Dims::d2(5, 7));
        let f2 = Field::from_fn(Dims::d2(5, 7), |c| (c[0] * 7 + c[1]) as f32);
        for spec in f2.blocks(3) {
            h.write_block_valid(&spec, &f2.read_block_valid(&spec));
        }
        assert_eq!(f2.as_slice(), h.as_slice());
    }

    #[test]
    fn read_block_valid_matches_extract_for_full_blocks() {
        let f = ramp2d(32, 32);
        let spec = f.blocks(32).next().unwrap();
        assert_eq!(f.read_block_valid(&spec), f.extract_block(&spec).data);
    }

    #[test]
    fn le_bytes_roundtrip() {
        let f = ramp2d(3, 5);
        let bytes = f.to_le_bytes();
        let g = Field::from_le_bytes(Dims::d2(3, 5), &bytes).unwrap();
        assert_eq!(f, g);
        assert!(Field::from_le_bytes(Dims::d2(3, 5), &bytes[..8]).is_err());
    }

    #[test]
    fn from_fn_order_is_row_major() {
        let f = Field::from_fn(Dims::d3(2, 2, 2), |c| (c[0] * 4 + c[1] * 2 + c[2]) as f32);
        assert_eq!(f.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }
}
