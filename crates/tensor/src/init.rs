//! Random initialisation helpers for network parameters and synthetic data.
//!
//! All randomness in the workspace is seeded explicitly so experiments are
//! reproducible run-to-run; nothing here touches a global RNG.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG used across the workspace (seeded `StdRng`).
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Tensor with elements drawn uniformly from `[lo, hi)`.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data).expect("shape/product always consistent")
}

/// Tensor with elements drawn from a normal distribution `N(mean, std²)`
/// using the Box–Muller transform (avoids pulling `rand_distr` into this crate).
pub fn normal(shape: &[usize], mean: f32, std: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(shape, data).expect("shape/product always consistent")
}

/// Kaiming/He-style fan-in initialisation for convolution and dense weights:
/// normal with `std = sqrt(2 / fan_in)`.
pub fn kaiming(shape: &[usize], fan_in: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal(shape, 0.0, std, rng)
}

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(shape, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut r1 = rng(42);
        let mut r2 = rng(42);
        let a = uniform(&[16], -1.0, 1.0, &mut r1);
        let b = uniform(&[16], -1.0, 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = rng(7);
        let t = uniform(&[1000], -0.5, 0.5, &mut r);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut r = rng(3);
        let t = normal(&[20_000], 1.0, 2.0, &mut r);
        let mean = t.mean();
        let var = t
            .as_slice()
            .iter()
            .map(|&v| (v - mean).powi(2))
            .sum::<f32>()
            / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn kaiming_scale_shrinks_with_fan_in() {
        let mut r = rng(5);
        let small = kaiming(&[4096], 8, &mut r);
        let large = kaiming(&[4096], 512, &mut r);
        let std_small = (small.sq_norm() / small.len() as f32).sqrt();
        let std_large = (large.sq_norm() / large.len() as f32).sqrt();
        assert!(std_small > std_large * 3.0);
    }

    #[test]
    fn xavier_bounds() {
        let mut r = rng(9);
        let t = xavier(&[1024], 32, 32, &mut r);
        let a = (6.0f32 / 64.0).sqrt();
        assert!(t.as_slice().iter().all(|&v| v.abs() <= a));
    }
}
