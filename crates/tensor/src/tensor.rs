//! General N-dimensional tensor used by the `aesz-nn` framework.
//!
//! Activations in the convolutional autoencoders are stored as `(N, C, H, W)`
//! (2D) or `(N, C, D, H, W)` (3D) tensors; dense layers use `(N, F)`.
//! Everything is `f32` and row-major, mirroring the layout of [`crate::Field`]
//! so that data blocks can flow into the network without copies beyond the
//! batch assembly.

use crate::{Result, TensorError};

/// Row-major N-dimensional `f32` tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![1.0; shape.iter().product()],
        }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; shape.iter().product()],
        }
    }

    /// Build a tensor from an existing buffer.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeMismatch {
                expected,
                got: data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable flat view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret the buffer under a new shape with the same element count.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                expected,
                got: self.data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Flattened row-major offset for an N-dimensional index.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        let mut off = 0;
        for (i, (&x, &dim)) in idx.iter().zip(self.shape.iter()).enumerate() {
            debug_assert!(x < dim, "index {x} out of bounds for axis {i} (dim {dim})");
            off = off * dim + x;
        }
        off
    }

    /// Read one element by N-dimensional index.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Write one element by N-dimensional index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise addition (shapes must match).
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction (shapes must match).
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise multiplication (shapes must match).
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise binary op (shapes must match).
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::IncompatibleShapes(format!(
                "{:?} vs {:?}",
                self.shape, other.shape
            )));
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// In-place scaled add: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::IncompatibleShapes(format!(
                "{:?} vs {:?}",
                self.shape, other.shape
            )));
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiply every element by a scalar, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|v| v * alpha)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Square of the L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// Fill with zeros in place (used to reset gradient accumulators).
    pub fn zero_(&mut self) {
        for v in &mut self.data {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.rank(), 3);
        assert!(Tensor::from_vec(&[2, 3], vec![0.0; 5]).is_err());
    }

    #[test]
    fn indexing_row_major() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f32).collect()).unwrap();
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[0, 2]), 2.0);
        assert_eq!(t.at(&[1, 0]), 3.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
    }

    #[test]
    fn set_and_get() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 1], 9.0);
        assert_eq!(t.at(&[1, 1]), 9.0);
        assert_eq!(t.sum(), 9.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(&[3], vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        let c = Tensor::zeros(&[4]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(&[4], vec![1.0, -1.0, 2.0, 2.0]).unwrap();
        assert_eq!(t.sum(), 4.0);
        assert_eq!(t.mean(), 1.0);
        assert_eq!(t.sq_norm(), 10.0);
        assert_eq!(Tensor::zeros(&[0]).mean(), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f32).collect()).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[7]).is_err());
    }

    #[test]
    fn zero_resets() {
        let mut t = Tensor::ones(&[5]);
        t.zero_();
        assert_eq!(t.sum(), 0.0);
    }
}
