//! Dimension descriptors for scientific data fields.
//!
//! AE-SZ (like SZ2.1) treats 1D, 2D and 3D fields differently: the Lorenzo
//! predictor, the blocking scheme and the convolutional network dimensionality
//! all depend on the rank. [`Dims`] captures the rank and extents in a small
//! copyable value and provides the row-major index arithmetic every other
//! crate relies on.

/// Extents of a scientific data field.
///
/// Row-major (C) layout is assumed everywhere: for `D3 { nz, ny, nx }` the
/// fastest-varying coordinate is `x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dims {
    /// One-dimensional field of length `n`.
    D1 {
        /// Number of elements.
        n: usize,
    },
    /// Two-dimensional field with `ny` rows and `nx` columns.
    D2 {
        /// Number of rows (slow axis).
        ny: usize,
        /// Number of columns (fast axis).
        nx: usize,
    },
    /// Three-dimensional field with extents `nz × ny × nx`.
    D3 {
        /// Slowest axis.
        nz: usize,
        /// Middle axis.
        ny: usize,
        /// Fastest axis.
        nx: usize,
    },
}

impl Dims {
    /// Construct a 1D descriptor.
    pub fn d1(n: usize) -> Self {
        Dims::D1 { n }
    }

    /// Construct a 2D descriptor (`ny` rows × `nx` columns).
    pub fn d2(ny: usize, nx: usize) -> Self {
        Dims::D2 { ny, nx }
    }

    /// Construct a 3D descriptor (`nz × ny × nx`).
    pub fn d3(nz: usize, ny: usize, nx: usize) -> Self {
        Dims::D3 { nz, ny, nx }
    }

    /// Rank of the field (1, 2 or 3).
    pub fn rank(&self) -> usize {
        match self {
            Dims::D1 { .. } => 1,
            Dims::D2 { .. } => 2,
            Dims::D3 { .. } => 3,
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        match *self {
            Dims::D1 { n } => n,
            Dims::D2 { ny, nx } => ny * nx,
            Dims::D3 { nz, ny, nx } => nz * ny * nx,
        }
    }

    /// True when the field holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extents as a `[nz, ny, nx]`-style vector (leading dims dropped for lower rank).
    pub fn extents(&self) -> Vec<usize> {
        match *self {
            Dims::D1 { n } => vec![n],
            Dims::D2 { ny, nx } => vec![ny, nx],
            Dims::D3 { nz, ny, nx } => vec![nz, ny, nx],
        }
    }

    /// Row-major flattened index for a 1D coordinate.
    #[inline]
    pub fn idx1(&self, x: usize) -> usize {
        debug_assert!(matches!(self, Dims::D1 { .. }));
        x
    }

    /// Row-major flattened index for a 2D coordinate.
    #[inline]
    pub fn idx2(&self, y: usize, x: usize) -> usize {
        match *self {
            Dims::D2 { nx, .. } => y * nx + x,
            _ => panic!("idx2 on non-2D dims"),
        }
    }

    /// Row-major flattened index for a 3D coordinate.
    #[inline]
    pub fn idx3(&self, z: usize, y: usize, x: usize) -> usize {
        match *self {
            Dims::D3 { ny, nx, .. } => (z * ny + y) * nx + x,
            _ => panic!("idx3 on non-3D dims"),
        }
    }

    /// Number of blocks of edge `block` needed to tile the field along every
    /// axis (ceiling division per axis).
    pub fn block_grid(&self, block: usize) -> Vec<usize> {
        self.extents()
            .iter()
            .map(|&e| e.div_ceil(block.max(1)))
            .collect()
    }
}

impl std::fmt::Display for Dims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Dims::D1 { n } => write!(f, "{n}"),
            Dims::D2 { ny, nx } => write!(f, "{ny}x{nx}"),
            Dims::D3 { nz, ny, nx } => write!(f, "{nz}x{ny}x{nx}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_and_len() {
        assert_eq!(Dims::d1(10).rank(), 1);
        assert_eq!(Dims::d2(3, 4).rank(), 2);
        assert_eq!(Dims::d3(2, 3, 4).rank(), 3);
        assert_eq!(Dims::d1(10).len(), 10);
        assert_eq!(Dims::d2(3, 4).len(), 12);
        assert_eq!(Dims::d3(2, 3, 4).len(), 24);
    }

    #[test]
    fn row_major_indexing() {
        let d2 = Dims::d2(3, 4);
        assert_eq!(d2.idx2(0, 0), 0);
        assert_eq!(d2.idx2(0, 3), 3);
        assert_eq!(d2.idx2(1, 0), 4);
        assert_eq!(d2.idx2(2, 3), 11);

        let d3 = Dims::d3(2, 3, 4);
        assert_eq!(d3.idx3(0, 0, 0), 0);
        assert_eq!(d3.idx3(0, 1, 0), 4);
        assert_eq!(d3.idx3(1, 0, 0), 12);
        assert_eq!(d3.idx3(1, 2, 3), 23);
    }

    #[test]
    fn block_grid_ceils() {
        assert_eq!(Dims::d2(100, 64).block_grid(32), vec![4, 2]);
        assert_eq!(Dims::d3(9, 8, 7).block_grid(8), vec![2, 1, 1]);
        assert_eq!(Dims::d1(5).block_grid(8), vec![1]);
    }

    #[test]
    fn empty_detection() {
        assert!(Dims::d2(0, 5).is_empty());
        assert!(!Dims::d3(1, 1, 1).is_empty());
    }

    #[test]
    fn display_format() {
        assert_eq!(Dims::d3(2, 3, 4).to_string(), "2x3x4");
        assert_eq!(Dims::d2(1800, 3600).to_string(), "1800x3600");
        assert_eq!(Dims::d1(7).to_string(), "7");
    }
}
