//! # aesz-tensor
//!
//! N-dimensional containers used throughout the AE-SZ reproduction.
//!
//! Two families of types live here:
//!
//! * [`Field`] — a scientific data field (1D/2D/3D, `f32`, row-major) with the
//!   blockwise access patterns the SZ/AE-SZ compressors need: fixed-size block
//!   extraction with edge clamping, block write-back, global min/max and
//!   normalization helpers.
//! * [`Tensor`] — a general N-dimensional tensor used by the `aesz-nn`
//!   mini deep-learning framework (batched activations, convolution kernels,
//!   latent vectors).
//!
//! The crate is dependency-light on purpose; everything else in the workspace
//! builds on top of it.

#![forbid(unsafe_code)]

pub mod dims;
pub mod field;
pub mod init;
pub mod ops;
pub mod tensor;

pub use dims::Dims;
pub use field::{Block, BlockIter, BlockSpec, Field};
pub use tensor::Tensor;

/// Convenience result alias used by fallible constructors in this crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by shape/layout validation in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by the shape does not match the data length.
    ShapeMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        got: usize,
    },
    /// An index was out of bounds for the given dimensions.
    OutOfBounds {
        /// The offending flattened index.
        index: usize,
        /// The number of valid elements.
        len: usize,
    },
    /// An operation received operands with incompatible shapes.
    IncompatibleShapes(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected} elements, got {got}")
            }
            TensorError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            TensorError::IncompatibleShapes(msg) => write!(f, "incompatible shapes: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
