//! SZ2.1-like baseline: blockwise selection between first-order Lorenzo and
//! linear regression, followed by SZ quantization and Huffman + zlite.
//!
//! This mirrors the structure of Liang et al.'s SZ2.1 (the paper's main
//! traditional comparison point): the field is split into small blocks
//! (6×6 / 6×6×6 in the original; 8 here for alignment with the rest of the
//! workspace), a regression plane is fitted per block, and whichever of
//! {Lorenzo, regression} predicts the sampled block better is used. The
//! regression coefficients are stored (lossily quantized to f32) per
//! regression block, exactly the overhead the AE latents replace in AE-SZ.

use aesz_codec::varint::write_uvarint;
use aesz_codec::{compress_bytes, decompress_bytes_capped};
use aesz_metrics::{CodecId, CompressError, Compressor, DecompressError, ErrorBound};
use aesz_predictors::regression::{self, RegressionCoeffs};
use aesz_predictors::{lorenzo, QuantizedBlock, Quantizer, DEFAULT_QUANT_BINS};
use aesz_tensor::{BlockSpec, Field};

use crate::common::{assemble, parse, read_len, resolve_bound, take, BaseHeader};

/// SZ2.1-like compressor.
#[derive(Clone)]
pub struct Sz2 {
    /// Block edge length used for the regression/Lorenzo selection.
    pub block_size: usize,
}

impl Default for Sz2 {
    fn default() -> Self {
        Sz2 { block_size: 8 }
    }
}

impl Sz2 {
    /// New compressor with the default block size.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-call scratch buffers reused across every block of one payload, so the
/// per-block loop performs no heap allocation after the first block warms the
/// buffers up (see `tests/allocation_discipline.rs`).
#[derive(Default)]
struct BlockScratch {
    valid: Vec<f32>,
    codes: Vec<u32>,
    unpredictable: Vec<f32>,
    recon: Vec<f32>,
    coeffs: RegressionCoeffs,
}

impl Compressor for Sz2 {
    fn codec_id(&self) -> CodecId {
        CodecId::Sz2
    }

    fn fork(&self) -> Box<dyn Compressor> {
        Box::new(self.clone())
    }

    fn compress_payload(
        &mut self,
        field: &Field,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, CompressError> {
        let (abs_eb, _, _) = resolve_bound(field, bound)?;
        let quantizer = Quantizer::new(abs_eb, DEFAULT_QUANT_BINS);
        let specs: Vec<BlockSpec> = field.blocks(self.block_size).collect();

        let mut all = QuantizedBlock {
            codes: Vec::with_capacity(field.len()),
            unpredictable: Vec::new(),
        };
        // Extra section: per-block flag (1 bit per block, packed) + coefficients.
        let mut flags = vec![0u8; specs.len().div_ceil(8)];
        let mut coeff_bytes: Vec<u8> = Vec::new();
        let mut scratch = BlockScratch::default();
        for (bi, spec) in specs.iter().enumerate() {
            field.read_block_valid_into(spec, &mut scratch.valid);
            let valid = &scratch.valid;
            // Choose by comparing l1 losses of ideal predictions. The fit
            // is computed once into scratch and reused for compression —
            // `l1_loss` / `compress_into` would each refit identically.
            let lorenzo_loss = lorenzo::l1_loss(valid, &spec.size);
            regression::fit_into(valid, &spec.size, &mut scratch.coeffs);
            let reg_loss = regression::l1_loss_with(&scratch.coeffs, valid, &spec.size);
            let use_regression = reg_loss < lorenzo_loss && spec.valid_len() > spec.size.len() + 1;
            if use_regression {
                if let Some(byte) = flags.get_mut(bi / 8) {
                    *byte |= 1 << (bi % 8);
                }
                regression::compress_with_coeffs_into(
                    &scratch.coeffs,
                    valid,
                    &spec.size,
                    &quantizer,
                    &mut scratch.codes,
                    &mut scratch.unpredictable,
                    &mut scratch.recon,
                );
                let coeffs = &scratch.coeffs;
                for &v in coeffs
                    .slopes
                    .iter()
                    .chain(std::iter::once(&coeffs.intercept))
                {
                    coeff_bytes.extend_from_slice(&v.to_le_bytes());
                }
            } else {
                lorenzo::compress_into(
                    valid,
                    &spec.size,
                    &quantizer,
                    &mut scratch.codes,
                    &mut scratch.unpredictable,
                    &mut scratch.recon,
                );
            }
            all.codes.extend_from_slice(&scratch.codes);
            all.unpredictable.extend_from_slice(&scratch.unpredictable);
        }

        let mut extra = Vec::new();
        write_uvarint(&mut extra, self.block_size as u64);
        write_uvarint(&mut extra, flags.len() as u64);
        extra.extend_from_slice(&flags);
        let coeff_payload = compress_bytes(&coeff_bytes);
        write_uvarint(&mut extra, coeff_payload.len() as u64);
        extra.extend_from_slice(&coeff_payload);

        assemble(
            BaseHeader {
                dims: field.dims(),
                abs_eb,
            },
            &all,
            &extra,
        )
    }

    fn decompress_payload(&mut self, bytes: &[u8]) -> Result<Field, DecompressError> {
        // The blocks of any block size partition the field, so the code
        // count always equals the element count.
        let (header, all, extra) = parse(bytes, |h| h.dims.len())?;
        let mut pos = 0usize;
        let block_size = read_len(&extra, &mut pos, "block size")?;
        // Reconstruction allocates padded block_size^rank buffers; cap that
        // volume like the field itself so a tiny hostile stream cannot abort
        // on allocation.
        if block_size == 0
            || (block_size as u64)
                .checked_pow(u32::try_from(header.dims.rank()).unwrap_or(u32::MAX))
                .is_none_or(|v| v > crate::common::MAX_FIELD_ELEMS as u64)
        {
            return Err(DecompressError::InvalidHeader("block size"));
        }
        let flags_len = read_len(&extra, &mut pos, "flag length")?;
        let flags = take(&extra, &mut pos, flags_len, "flag section")?;
        let coeff_len = read_len(&extra, &mut pos, "coeff length")?;
        let coeff_section = take(&extra, &mut pos, coeff_len, "coeff section")?;
        if pos != extra.len() {
            return Err(DecompressError::Inconsistent("trailing extra bytes"));
        }

        let mut field = Field::zeros(header.dims);
        let rank = header.dims.rank();
        let specs: Vec<BlockSpec> = field.blocks(block_size).collect();
        if flags.len() != specs.len().div_ceil(8) {
            return Err(DecompressError::Inconsistent(
                "flag count does not match block grid",
            ));
        }
        let n_regression: usize = (0..specs.len())
            .filter(|bi| flags.get(bi / 8).is_some_and(|b| b >> (bi % 8) & 1 == 1))
            .count();
        let expected_coeffs = n_regression * (rank + 1) * 4;
        let coeff_bytes = decompress_bytes_capped(coeff_section, expected_coeffs)?;
        if coeff_bytes.len() != expected_coeffs {
            return Err(DecompressError::Inconsistent(
                "coefficient count does not match regression blocks",
            ));
        }
        let coeffs: Vec<f32> = coeff_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();

        let quantizer = Quantizer::new(header.abs_eb, DEFAULT_QUANT_BINS);
        let mut code_pos = 0usize;
        let mut unpred_pos = 0usize;
        let mut coeff_pos = 0usize;
        let mut valid: Vec<f32> = Vec::new();
        let mut block_coeffs = RegressionCoeffs::default();
        for (bi, spec) in specs.iter().enumerate() {
            let n = spec.valid_len();
            let codes = all
                .codes
                .get(code_pos..code_pos + n)
                .ok_or(DecompressError::Inconsistent("codes underrun"))?;
            code_pos += n;
            let escapes = codes.iter().filter(|&&c| c == 0).count();
            let unpredictable = all
                .unpredictable
                .get(unpred_pos..unpred_pos + escapes)
                .ok_or(DecompressError::Inconsistent("unpredictable underrun"))?;
            unpred_pos += escapes;
            let use_regression = flags.get(bi / 8).is_some_and(|b| b >> (bi % 8) & 1 == 1);
            if use_regression {
                // Sized exactly by the `expected_coeffs` check above, but read
                // through `get` so the invariant is local, not load-bearing.
                let section = coeffs
                    .get(coeff_pos..coeff_pos + rank + 1)
                    .ok_or(DecompressError::Inconsistent("coefficient underrun"))?;
                block_coeffs.copy_from_slice(section);
                coeff_pos += rank + 1;
                regression::decompress_into(
                    &block_coeffs,
                    codes,
                    unpredictable,
                    &spec.size,
                    &quantizer,
                    &mut valid,
                );
            } else {
                lorenzo::decompress_into(codes, unpredictable, &spec.size, &quantizer, &mut valid);
            }
            // Write back the valid region directly; blocks partition the
            // field, so no padded staging buffer is needed.
            field.write_block_valid(spec, &valid);
        }
        Ok(field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_datagen::Application;
    use aesz_metrics::verify_error_bound;
    use aesz_tensor::Dims;

    #[test]
    fn roundtrip_respects_bound_2d_and_3d() {
        for (app, dims) in [
            (Application::CesmCldhgh, Dims::d2(64, 80)),
            (Application::NyxBaryonDensity, Dims::d3(24, 24, 24)),
        ] {
            let field = app.generate(dims, 50);
            let mut sz = Sz2::new();
            for rel_eb in [1e-2, 1e-3, 1e-4] {
                let bytes = sz.compress(&field, ErrorBound::rel(rel_eb)).unwrap();
                let recon = sz.decompress(&bytes).unwrap();
                let abs = rel_eb * field.value_range() as f64;
                verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3)
                    .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
                assert!(bytes.len() < field.len() * 4);
            }
        }
    }

    #[test]
    fn smooth_data_compresses_much_better_than_raw() {
        let field = Application::CesmCldhgh.generate(Dims::d2(128, 128), 10);
        let mut sz = Sz2::new();
        let bytes = sz.compress(&field, ErrorBound::rel(1e-2)).unwrap();
        assert!(
            bytes.len() * 8 < field.len() * 4,
            "expected >8x compression, got {} bytes for {} values",
            bytes.len(),
            field.len()
        );
    }

    #[test]
    fn regression_blocks_are_used_on_planar_data() {
        // A smooth gradient field strongly favours the regression predictor.
        let field = Field::from_fn(Dims::d2(64, 64), |c| {
            0.31 * c[0] as f32 + 0.17 * c[1] as f32
        });
        let mut sz = Sz2::new();
        let bytes = sz.compress(&field, ErrorBound::rel(1e-3)).unwrap();
        let recon = sz.decompress(&bytes).unwrap();
        let abs = 1e-3 * field.value_range() as f64;
        verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3).unwrap();
    }

    #[test]
    fn finer_bound_costs_more() {
        let field = Application::HurricaneU.generate(Dims::d3(16, 32, 32), 5);
        let mut sz = Sz2::new();
        assert!(
            sz.compress(&field, ErrorBound::rel(1e-4)).unwrap().len()
                > sz.compress(&field, ErrorBound::rel(1e-2)).unwrap().len()
        );
    }

    #[test]
    fn absolute_bounds_are_honoured() {
        let field = Application::CesmFreqsh.generate(Dims::d2(48, 48), 3);
        let abs = 0.5e-2 * field.value_range() as f64;
        let mut sz = Sz2::new();
        let bytes = sz.compress(&field, ErrorBound::abs(abs)).unwrap();
        let recon = sz.decompress(&bytes).unwrap();
        verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3).unwrap();
    }

    #[test]
    fn truncated_streams_are_rejected_not_panicking() {
        let field = Application::CesmCldhgh.generate(Dims::d2(32, 32), 2);
        let mut sz = Sz2::new();
        let bytes = sz.compress(&field, ErrorBound::rel(1e-3)).unwrap();
        for len in 0..bytes.len() {
            assert!(sz.decompress(&bytes[..len]).is_err());
        }
    }
}
