//! SZauto-like baseline: second-order Lorenzo prediction with automatic
//! (sampling-based) selection between first and second order.
//!
//! SZauto (Zhao et al., HPDC'20) extends SZ with second-order
//! regression/Lorenzo predictors and automatic parameter tuning. This
//! reimplementation keeps the part that matters for the rate-distortion
//! comparison: whole-field streaming prediction with the second-order Lorenzo
//! stencil, falling back to first order when a sampled estimate says the
//! higher order does not pay off (noisy fields amplify noise under
//! higher-order extrapolation).

use aesz_metrics::{CodecId, CompressError, Compressor, DecompressError, ErrorBound};
use aesz_predictors::{lorenzo, lorenzo2, Quantizer, DEFAULT_QUANT_BINS};
use aesz_tensor::Field;

use crate::common::{assemble, parse, resolve_bound, BaseHeader};

/// SZauto-like compressor.
#[derive(Default, Clone)]
pub struct SzAuto;

impl SzAuto {
    /// New instance.
    pub fn new() -> Self {
        SzAuto
    }

    /// Decide the predictor order by comparing sampled ideal-prediction errors.
    fn pick_second_order(data: &[f32], extents: &[usize]) -> bool {
        let p1 = lorenzo::ideal_predictions(data, extents);
        let p2 = lorenzo2::ideal_predictions(data, extents);
        let stride = (data.len() / 1024).max(1);
        let mut e1 = 0.0f64;
        let mut e2 = 0.0f64;
        for i in (0..data.len()).step_by(stride) {
            e1 += (data[i] as f64 - p1[i] as f64).abs();
            e2 += (data[i] as f64 - p2[i] as f64).abs();
        }
        e2 < e1
    }
}

impl Compressor for SzAuto {
    fn codec_id(&self) -> CodecId {
        CodecId::SzAuto
    }

    fn fork(&self) -> Box<dyn Compressor> {
        Box::new(self.clone())
    }

    fn compress_payload(
        &mut self,
        field: &Field,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, CompressError> {
        let (abs_eb, _, _) = resolve_bound(field, bound)?;
        let quantizer = Quantizer::new(abs_eb, DEFAULT_QUANT_BINS);
        let extents = field.dims().extents();
        let second = Self::pick_second_order(field.as_slice(), &extents);
        let (blk, _) = if second {
            lorenzo2::compress(field.as_slice(), &extents, &quantizer)
        } else {
            lorenzo::compress(field.as_slice(), &extents, &quantizer)
        };
        assemble(
            BaseHeader {
                dims: field.dims(),
                abs_eb,
            },
            &blk,
            &[u8::from(second)],
        )
    }

    fn decompress_payload(&mut self, bytes: &[u8]) -> Result<Field, DecompressError> {
        let (header, blk, extra) = parse(bytes, |h| h.dims.len())?;
        if extra.len() != 1 {
            return Err(DecompressError::Inconsistent("predictor-order flag"));
        }
        let quantizer = Quantizer::new(header.abs_eb, DEFAULT_QUANT_BINS);
        let extents = header.dims.extents();
        let second = extra[0] != 0;
        let data = if second {
            lorenzo2::decompress(&blk, &extents, &quantizer)
        } else {
            lorenzo::decompress(&blk, &extents, &quantizer)
        };
        Field::from_vec(header.dims, data)
            .map_err(|_| DecompressError::Inconsistent("payload does not match dims"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_datagen::Application;
    use aesz_metrics::verify_error_bound;
    use aesz_tensor::Dims;

    #[test]
    fn roundtrip_respects_bound() {
        let field = Application::NyxTemperature.generate(Dims::d3(24, 24, 24), 2);
        let mut sz = SzAuto::new();
        for rel_eb in [1e-2, 1e-4] {
            let bytes = sz.compress(&field, ErrorBound::rel(rel_eb)).unwrap();
            let recon = sz.decompress(&bytes).unwrap();
            let abs = rel_eb * field.value_range() as f64;
            verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3).unwrap();
        }
    }

    #[test]
    fn picks_second_order_on_smooth_quadratic_data() {
        let n = 32usize;
        let data: Vec<f32> = (0..n * n)
            .map(|i| {
                let y = (i / n) as f32;
                let x = (i % n) as f32;
                0.02 * y * y + 0.01 * x * x
            })
            .collect();
        assert!(SzAuto::pick_second_order(&data, &[n, n]));
    }

    #[test]
    fn picks_first_order_on_noisy_data() {
        // White noise: higher-order extrapolation amplifies it.
        let data: Vec<f32> = (0..4096)
            .map(|i| ((i as f32 * 12.9898).sin() * 43_758.547).fract())
            .collect();
        assert!(!SzAuto::pick_second_order(&data, &[64, 64]));
    }

    #[test]
    fn compresses_smooth_fields_well() {
        let field = Application::HurricaneQvapor.generate(Dims::d3(16, 32, 32), 1);
        let mut sz = SzAuto::new();
        let bytes = sz.compress(&field, ErrorBound::rel(1e-3)).unwrap();
        assert!(bytes.len() * 4 < field.len() * 4);
    }

    #[test]
    fn truncated_streams_are_rejected_not_panicking() {
        let field = Application::NyxTemperature.generate(Dims::d3(12, 12, 12), 1);
        let mut sz = SzAuto::new();
        let bytes = sz.compress(&field, ErrorBound::rel(1e-3)).unwrap();
        for len in 0..bytes.len() {
            assert!(sz.decompress(&bytes[..len]).is_err());
        }
    }
}
