//! ZFP-like baseline: blockwise decorrelating transform + uniform coefficient
//! quantization (the "transform-based" family of Section II).
//!
//! Real ZFP partitions the field into 4^d blocks, applies a fixed lifting
//! transform along each dimension, and encodes coefficient bit planes. This
//! reimplementation keeps the essential behaviour — block-local orthogonal-ish
//! decorrelation followed by coefficient-domain quantization and entropy
//! coding — using ZFP's own lifting kernel and a uniform quantization step
//! derived from the error bound. The characteristic consequence the paper
//! relies on (at large error bounds few coefficients survive, so quality
//! collapses earlier than prediction-based compressors) is preserved.

use aesz_metrics::{CodecId, CompressError, Compressor, DecompressError, ErrorBound};
use aesz_predictors::{QuantizedBlock, Quantizer, DEFAULT_QUANT_BINS};
use aesz_tensor::{BlockSpec, Dims, Field};

use crate::common::{assemble, parse, resolve_bound, BaseHeader};

/// Edge length of a ZFP block.
const BLOCK: usize = 4;

/// ZFP's forward lifting transform on 4 values.
fn fwd_lift(v: &mut [f32; 4]) {
    let [mut x, mut y, mut z, mut w] = *v;
    x += w;
    x *= 0.5;
    w -= x;
    z += y;
    z *= 0.5;
    y -= z;
    x += z;
    x *= 0.5;
    z -= x;
    w += y;
    w *= 0.5;
    y -= w;
    w += y * 0.5;
    y -= w * 0.5;
    *v = [x, y, z, w];
}

/// Inverse of [`fwd_lift`].
fn inv_lift(v: &mut [f32; 4]) {
    let [mut x, mut y, mut z, mut w] = *v;
    y += w * 0.5;
    w -= y * 0.5;
    y += w;
    w *= 2.0;
    w -= y;
    z += x;
    x *= 2.0;
    x -= z;
    y += z;
    z *= 2.0;
    z -= y;
    w += x;
    x *= 2.0;
    x -= w;
    *v = [x, y, z, w];
}

/// Apply the lifting transform along each axis of a padded 4^rank block.
fn transform_block(data: &mut [f32], rank: usize, inverse: bool) {
    let lift = if inverse { inv_lift } else { fwd_lift };
    match rank {
        1 => {
            let mut v = [data[0], data[1], data[2], data[3]];
            lift(&mut v);
            data.copy_from_slice(&v);
        }
        2 => {
            // Rows then columns (order does not matter for separable lifting).
            for y in 0..BLOCK {
                let mut v = [0.0f32; 4];
                v.copy_from_slice(&data[y * BLOCK..(y + 1) * BLOCK]);
                lift(&mut v);
                data[y * BLOCK..(y + 1) * BLOCK].copy_from_slice(&v);
            }
            for x in 0..BLOCK {
                let mut v = [
                    data[x],
                    data[BLOCK + x],
                    data[2 * BLOCK + x],
                    data[3 * BLOCK + x],
                ];
                lift(&mut v);
                for (i, &val) in v.iter().enumerate() {
                    data[i * BLOCK + x] = val;
                }
            }
        }
        _ => {
            let idx = |z: usize, y: usize, x: usize| (z * BLOCK + y) * BLOCK + x;
            for z in 0..BLOCK {
                for y in 0..BLOCK {
                    let mut v = [
                        data[idx(z, y, 0)],
                        data[idx(z, y, 1)],
                        data[idx(z, y, 2)],
                        data[idx(z, y, 3)],
                    ];
                    lift(&mut v);
                    for (x, &val) in v.iter().enumerate() {
                        data[idx(z, y, x)] = val;
                    }
                }
            }
            for z in 0..BLOCK {
                for x in 0..BLOCK {
                    let mut v = [
                        data[idx(z, 0, x)],
                        data[idx(z, 1, x)],
                        data[idx(z, 2, x)],
                        data[idx(z, 3, x)],
                    ];
                    lift(&mut v);
                    for (y, &val) in v.iter().enumerate() {
                        data[idx(z, y, x)] = val;
                    }
                }
            }
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    let mut v = [
                        data[idx(0, y, x)],
                        data[idx(1, y, x)],
                        data[idx(2, y, x)],
                        data[idx(3, y, x)],
                    ];
                    lift(&mut v);
                    for (z, &val) in v.iter().enumerate() {
                        data[idx(z, y, x)] = val;
                    }
                }
            }
        }
    }
}

/// ZFP-like transform-based compressor (fixed-accuracy mode).
#[derive(Default, Clone)]
pub struct Zfp;

impl Zfp {
    /// New instance.
    pub fn new() -> Self {
        Zfp
    }

    /// Quantization step used in the coefficient domain. The inverse lifting
    /// pass amplifies coefficient errors by up to 3.75× per dimension (the
    /// L∞ operator norm of the inverse lifting matrix — its rows are
    /// [1, ±1.5, ±1, ±0.25]), so the step is abs_eb / 3.75^rank to keep the
    /// pointwise error within the bound (more conservative than real ZFP's
    /// bit-plane coding, see DESIGN.md).
    fn coeff_step(abs_eb: f64, rank: usize) -> f64 {
        abs_eb / 3.75f64.powi(rank as i32)
    }

    /// Number of quantization codes a ZFP stream over `dims` carries: one per
    /// element of every padded 4^rank block.
    fn code_count(dims: Dims) -> usize {
        let n_blocks: usize = dims.block_grid(BLOCK).iter().product();
        n_blocks * BLOCK.pow(dims.rank() as u32)
    }
}

impl Compressor for Zfp {
    fn codec_id(&self) -> CodecId {
        CodecId::Zfp
    }

    fn fork(&self) -> Box<dyn Compressor> {
        Box::new(self.clone())
    }

    fn compress_payload(
        &mut self,
        field: &Field,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, CompressError> {
        let (abs_eb, _, _) = resolve_bound(field, bound)?;
        let rank = field.dims().rank();
        let step = Self::coeff_step(abs_eb, rank);
        let quantizer = Quantizer::new(step, DEFAULT_QUANT_BINS);
        let specs: Vec<BlockSpec> = field.blocks(BLOCK).collect();
        let mut all = QuantizedBlock {
            codes: Vec::with_capacity(field.len()),
            unpredictable: Vec::new(),
        };
        for spec in &specs {
            let mut block = field.extract_block(spec).data;
            transform_block(&mut block, rank, false);
            // Quantize the coefficients against zero predictions.
            let preds = vec![0.0f32; block.len()];
            let (blk, _) = quantizer.quantize_buffer(&block, &preds);
            all.codes.extend_from_slice(&blk.codes);
            all.unpredictable.extend_from_slice(&blk.unpredictable);
        }
        assemble(
            BaseHeader {
                dims: field.dims(),
                abs_eb,
            },
            &all,
            &[],
        )
    }

    fn decompress_payload(&mut self, bytes: &[u8]) -> Result<Field, DecompressError> {
        // The padded code count can exceed the element count by up to 4x per
        // dimension (each extent rounds up to a multiple of 4), so degenerate
        // hostile dims like (1, 1, 2^31) would pass the element cap yet
        // declare 2^35 codes. Clamp the decode-side allocation to the same
        // ceiling as everything else before handing it to the codec.
        let (header, all, extra) = parse(bytes, |h| {
            Self::code_count(h.dims).min(crate::common::MAX_FIELD_ELEMS)
        })?;
        if !extra.is_empty() {
            return Err(DecompressError::Inconsistent("unexpected extra section"));
        }
        let rank = header.dims.rank();
        let step = Self::coeff_step(header.abs_eb, rank);
        let quantizer = Quantizer::new(step, DEFAULT_QUANT_BINS);
        let mut field = Field::zeros(header.dims);
        let specs: Vec<BlockSpec> = field.blocks(BLOCK).collect();
        let block_len = BLOCK.pow(rank as u32);
        let mut code_pos = 0usize;
        let mut unpred_pos = 0usize;
        for spec in &specs {
            let codes = all
                .codes
                .get(code_pos..code_pos + block_len)
                .ok_or(DecompressError::Inconsistent("codes underrun"))?
                .to_vec();
            code_pos += block_len;
            let escapes = codes.iter().filter(|&&c| c == 0).count();
            let unpredictable = all
                .unpredictable
                .get(unpred_pos..unpred_pos + escapes)
                .ok_or(DecompressError::Inconsistent("unpredictable underrun"))?
                .to_vec();
            unpred_pos += escapes;
            let blk = QuantizedBlock {
                codes,
                unpredictable,
            };
            let preds = vec![0.0f32; block_len];
            let mut coeffs = quantizer.dequantize_buffer(&blk, &preds);
            transform_block(&mut coeffs, rank, true);
            field.write_block(spec, &coeffs);
        }
        Ok(field)
    }

    fn is_error_bounded(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_datagen::Application;
    use aesz_tensor::Dims;

    #[test]
    fn lifting_transform_is_invertible() {
        let mut v = [1.0f32, -2.0, 3.5, 0.25];
        let orig = v;
        fwd_lift(&mut v);
        inv_lift(&mut v);
        for (a, b) in v.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-5, "{v:?} vs {orig:?}");
        }
    }

    #[test]
    fn block_transform_roundtrips_in_all_ranks() {
        for rank in 1..=3usize {
            let n = BLOCK.pow(rank as u32);
            let orig: Vec<f32> = (0..n).map(|i| (i as f32 * 0.73).sin() * 5.0).collect();
            let mut data = orig.clone();
            transform_block(&mut data, rank, false);
            transform_block(&mut data, rank, true);
            for (a, b) in data.iter().zip(orig.iter()) {
                assert!((a - b).abs() < 1e-4, "rank {rank}");
            }
        }
    }

    #[test]
    fn transform_concentrates_energy_on_smooth_blocks() {
        // A linear ramp should put most energy in the first (DC/low) coefficients.
        let mut data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        transform_block(&mut data, 2, false);
        let total: f32 = data.iter().map(|v| v * v).sum();
        let low: f32 = data[..4].iter().map(|v| v * v).sum();
        assert!(
            low > 0.6 * total,
            "low-frequency energy fraction {}",
            low / total
        );
    }

    #[test]
    fn roundtrip_error_stays_near_the_bound() {
        for (app, dims) in [
            (Application::CesmCldhgh, Dims::d2(64, 64)),
            (Application::Rtm, Dims::d3(32, 32, 32)),
        ] {
            let field = app.generate(dims, 5);
            let mut zfp = Zfp::new();
            let rel_eb = 1e-3;
            let bytes = zfp.compress(&field, ErrorBound::rel(rel_eb)).unwrap();
            let recon = zfp.decompress(&bytes).unwrap();
            let abs = rel_eb * field.value_range() as f64;
            let max_err = aesz_metrics::max_abs_error(field.as_slice(), recon.as_slice());
            assert!(
                max_err <= 1.1 * abs,
                "{}: max error {max_err} vs bound {abs}",
                app.name()
            );
            assert!(bytes.len() < field.len() * 4);
        }
    }

    #[test]
    fn compresses_smooth_fields_substantially() {
        let field = Application::CesmCldhgh.generate(Dims::d2(128, 128), 1);
        let mut zfp = Zfp::new();
        let bytes = zfp.compress(&field, ErrorBound::rel(1e-2)).unwrap();
        assert!(bytes.len() * 4 < field.len() * 4, "{} bytes", bytes.len());
    }

    #[test]
    fn truncated_streams_are_rejected_not_panicking() {
        let field = Application::CesmCldhgh.generate(Dims::d2(24, 24), 4);
        let mut zfp = Zfp::new();
        let bytes = zfp.compress(&field, ErrorBound::rel(1e-3)).unwrap();
        for len in 0..bytes.len() {
            assert!(zfp.decompress(&bytes[..len]).is_err());
        }
    }
}
