//! AE-B baseline: the convolutional autoencoder of Glaws et al. ("Deep
//! learning for in situ data compression of large turbulent flow
//! simulations", reference \[40\] of the paper).
//!
//! AE-B compresses 3D blocks through a convolutional autoencoder at a *fixed*
//! 64:1 ratio and is **not error bounded** — both properties are called out in
//! the paper (Fig. 1 shows its pointwise error reaching ~20 % of the value
//! range). The compressed stream is simply the latent vectors (plus a small
//! header); reconstruction quality is whatever the network delivers.
//!
//! The payload leads with the 16-byte content-addressed [`ModelId`] of the
//! trained network (pre-model-id AE-B payloads are not decodable by this
//! version — like AE-A, such streams were never usable outside the training
//! process, so nothing compatible is lost).

use aesz_codec::varint::{read_f32, write_f32, write_uvarint};
use aesz_metrics::container::MODEL_ID_LEN;
use aesz_metrics::{
    CodecId, CompressError, Compressor, DecompressError, EmbeddedModel, ErrorBound, ModelId,
};
use aesz_nn::models::conv_ae::{AeConfig, ConvAutoencoder};
use aesz_nn::models::zoo::AeVariant;
use aesz_nn::serialize::{load_model, model_id, save_model, ModelError};
use aesz_nn::train::{TrainConfig, Trainer};
use aesz_nn::NnScratch;
use aesz_tensor::{BlockSpec, Dims, Field};

use crate::common::{read_dims, read_len, write_dims};

/// Block edge length (16³ = 4096 values per block).
pub const BLOCK: usize = 16;
/// Latent length per block: 4096 / 64 = 64 → the fixed 64:1 reduction.
pub const LATENT: usize = 64;

/// The AE-B compressor. Must be trained (or fine-tuned) before use.
#[derive(Clone)]
pub struct AeB {
    model: ConvAutoencoder,
    trained: bool,
    /// Content-addressed id of the trained weights; `None` until trained.
    model_id: Option<ModelId>,
    /// Resident inference buffers; warm after the first batch, clone cold.
    scratch: AeBScratch,
}

/// Per-instance buffers of the blockwise inference path (clone cold — each
/// [`Compressor::fork`] warms its own, the per-worker residency model of
/// `aesz serve`).
#[derive(Default)]
struct AeBScratch {
    nn: NnScratch,
    batch: Vec<f32>,
    latents: Vec<f32>,
    decoded: Vec<f32>,
}

impl Clone for AeBScratch {
    fn clone(&self) -> Self {
        AeBScratch::default()
    }
}

impl Default for AeB {
    fn default() -> Self {
        Self::new(13)
    }
}

impl AeB {
    /// Fresh, untrained model with the given initialisation seed.
    pub fn new(seed: u64) -> Self {
        let model = ConvAutoencoder::new(AeConfig {
            spatial_rank: 3,
            block_size: BLOCK,
            latent_dim: LATENT,
            channels: vec![8, 8],
            variational: false,
            seed,
        });
        AeB {
            model,
            trained: false,
            model_id: None,
            scratch: AeBScratch::default(),
        }
    }

    /// Whether [`AeB::train`] has been called.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Content-addressed id of the trained weights (`None` while untrained).
    pub fn model_id(&self) -> Option<ModelId> {
        self.model_id
    }

    /// Serialize the trained model (the standard `AESZMDL1` format — AE-B's
    /// network is a [`ConvAutoencoder`] like AE-SZ's).
    pub fn to_model_bytes(&self) -> Vec<u8> {
        save_model(&self.model)
    }

    /// Rebuild a trained AE-B from bytes written by [`AeB::to_model_bytes`].
    /// The model must describe exactly AE-B's fixed geometry (rank 3, block
    /// 16, latent 64, deterministic encoder); anything else is rejected —
    /// AE-B's wire format hard-codes that reduction.
    pub fn from_model_bytes(bytes: &[u8]) -> Result<AeB, ModelError> {
        let model = load_model(bytes)?;
        let cfg = model.config();
        if cfg.spatial_rank != 3
            || cfg.block_size != BLOCK
            || cfg.latent_dim != LATENT
            || cfg.variational
        {
            return Err(ModelError::InvalidConfig(
                "model geometry does not match AE-B's fixed 16^3 -> 64 reduction",
            ));
        }
        let id = model_id(&model);
        Ok(AeB {
            model,
            trained: true,
            model_id: Some(id),
            scratch: AeBScratch::default(),
        })
    }

    /// Train (the paper fine-tunes a pre-trained network; we train from
    /// scratch for a few epochs) on blocks drawn from 3D training fields.
    pub fn train(&mut self, training_fields: &[Field], epochs: usize, seed: u64) {
        let mut blocks = Vec::new();
        for field in training_fields {
            assert_eq!(field.dims().rank(), 3, "AE-B is defined for 3D data only");
            let (lo, hi) = field.min_max();
            let range = hi - lo;
            for spec in field.blocks(BLOCK) {
                let blk = field.extract_block(&spec);
                blocks.push(if range > 0.0 {
                    blk.data
                        .iter()
                        .map(|&v| 2.0 * (v - lo) / range - 1.0)
                        .collect()
                } else {
                    vec![0.0; blk.data.len()]
                });
            }
        }
        // Cap the training set so fine-tuning stays quick.
        blocks.truncate(128);
        let config = self.model.config().clone();
        let trainer_cfg = TrainConfig {
            epochs,
            batch_size: 8,
            learning_rate: 2e-3,
            variant: AeVariant::Ae,
            seed,
        };
        // Re-create the model inside a trainer (keeps the Trainer API uniform),
        // then adopt the trained weights.
        let mut trainer = Trainer::with_model(
            std::mem::replace(&mut self.model, ConvAutoencoder::new(config)),
            trainer_cfg,
        );
        trainer.train(&blocks);
        self.model = trainer.into_model();
        self.trained = true;
        self.model_id = Some(model_id(&self.model));
    }
}

impl Compressor for AeB {
    fn codec_id(&self) -> CodecId {
        CodecId::AeB
    }

    fn fork(&self) -> Box<dyn Compressor> {
        Box::new(self.clone())
    }

    fn embedded_model(&self) -> Option<EmbeddedModel> {
        self.trained
            .then(|| EmbeddedModel::new(CodecId::AeB, &self.to_model_bytes()))
    }

    fn embedded_model_id(&self) -> Option<ModelId> {
        self.model_id.filter(|_| self.trained)
    }

    fn compress_payload(
        &mut self,
        field: &Field,
        _bound: ErrorBound,
    ) -> Result<Vec<u8>, CompressError> {
        let Some(model_id) = self.model_id.filter(|_| self.trained) else {
            return Err(CompressError::Untrained(
                "AeB::train must be called before compressing",
            ));
        };
        if field.dims().rank() != 3 {
            return Err(CompressError::UnsupportedField(
                "AE-B is defined for 3D data only",
            ));
        }
        let (lo, hi) = field.min_max();
        if !lo.is_finite() || !hi.is_finite() {
            return Err(CompressError::UnsupportedField(
                "field contains non-finite values",
            ));
        }
        let range = hi - lo;
        let specs: Vec<BlockSpec> = field.blocks(BLOCK).collect();
        let mut out = Vec::new();
        // The model id leads the payload (like AE-A) so dispatchers can
        // resolve the model without parsing the stream.
        out.extend_from_slice(model_id.as_bytes());
        write_dims(&mut out, field.dims());
        write_f32(&mut out, lo);
        write_f32(&mut out, hi);
        write_uvarint(&mut out, specs.len() as u64);
        let sc = &mut self.scratch;
        for chunk in specs.chunks(16) {
            sc.batch.clear();
            for spec in chunk {
                let blk = field.extract_block(spec);
                sc.batch.extend(blk.data.iter().map(|&v| {
                    if range > 0.0 {
                        2.0 * (v - lo) / range - 1.0
                    } else {
                        0.0
                    }
                }));
            }
            self.model
                .encode_blocks_into(&sc.batch, chunk.len(), &mut sc.latents, &mut sc.nn)
                .expect("batch shaped by the block loop");
            for &v in &sc.latents {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Ok(out)
    }

    fn decompress_payload(&mut self, bytes: &[u8]) -> Result<Field, DecompressError> {
        let stream_id =
            ModelId::from_prefix(bytes).ok_or(DecompressError::Truncated("model id"))?;
        if !self.trained || self.model_id != Some(stream_id) {
            return Err(DecompressError::MissingModel {
                codec: CodecId::AeB,
                model_id: stream_id,
            });
        }
        let mut pos = MODEL_ID_LEN;
        let dims: Dims = read_dims(bytes, &mut pos)?;
        if dims.rank() != 3 {
            return Err(DecompressError::InvalidHeader("AE-B streams are 3D only"));
        }
        let lo = read_f32(bytes, &mut pos).ok_or(DecompressError::Truncated("lo"))?;
        let hi = read_f32(bytes, &mut pos).ok_or(DecompressError::Truncated("hi"))?;
        if !lo.is_finite() || !hi.is_finite() {
            return Err(DecompressError::InvalidHeader("data range"));
        }
        let n_blocks = read_len(bytes, &mut pos, "block count")?;
        let range = (hi - lo) as f64;
        let mut field = Field::zeros(dims);
        let specs: Vec<BlockSpec> = field.blocks(BLOCK).collect();
        if specs.len() != n_blocks {
            return Err(DecompressError::Inconsistent(
                "block count does not match dims",
            ));
        }
        // The latent payload is exactly one LATENT-vector per block; any
        // shortfall or surplus is corruption.
        let expected_latent_bytes = n_blocks
            .checked_mul(LATENT * 4)
            .ok_or(DecompressError::InvalidHeader("latent payload overflow"))?;
        if bytes.len() - pos != expected_latent_bytes {
            return Err(if bytes.len() - pos < expected_latent_bytes {
                DecompressError::Truncated("latent payload")
            } else {
                DecompressError::Inconsistent("trailing bytes")
            });
        }
        let latents: Vec<f32> = bytes[pos..]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let block_len = BLOCK * BLOCK * BLOCK;
        // Batched decode through the resident inference path: one
        // `decode_latents_into` per 16-block chunk, reusing the network
        // scratch and both staging buffers across the whole field (the
        // old per-chunk tensor allocation and training-cache churn made
        // AE-B's decode pathologically slow).
        let sc = &mut self.scratch;
        let mut pred = Vec::with_capacity(block_len);
        for (chunk_no, chunk) in specs.chunks(16).enumerate() {
            let start = chunk_no * 16 * LATENT;
            let z = &latents[start..start + chunk.len() * LATENT];
            self.model
                .decode_latents_into(z, chunk.len(), &mut sc.decoded, &mut sc.nn)
                .expect("latent payload length checked above");
            for (k, spec) in chunk.iter().enumerate() {
                pred.clear();
                pred.extend(
                    sc.decoded[k * block_len..(k + 1) * block_len]
                        .iter()
                        .map(|&v| ((v as f64 + 1.0) * 0.5 * range + lo as f64) as f32),
                );
                field.write_block(spec, &pred);
            }
        }
        Ok(field)
    }

    fn is_error_bounded(&self) -> bool {
        false
    }
}

/// Read the model id leading an AE-B payload (container frame already
/// stripped) without parsing the rest of the stream.
pub fn peek_model_id(payload: &[u8]) -> Option<ModelId> {
    ModelId::from_prefix(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_datagen::Application;

    #[test]
    fn fixed_ratio_is_about_64x() {
        let field = Application::Rtm.generate(Dims::d3(32, 32, 32), 10);
        let mut ae = AeB::new(1);
        ae.train(std::slice::from_ref(&field), 1, 2);
        let bytes = ae.compress(&field, ErrorBound::rel(1e-3)).unwrap();
        let ratio = (field.len() * 4) as f64 / bytes.len() as f64;
        assert!(
            (50.0..70.0).contains(&ratio),
            "expected ~64:1 fixed ratio, got {ratio:.1}"
        );
    }

    #[test]
    fn not_error_bounded_but_reconstruction_is_sane() {
        let field = Application::HurricaneQvapor.generate(Dims::d3(16, 32, 32), 3);
        let mut ae = AeB::new(2);
        ae.train(std::slice::from_ref(&field), 2, 3);
        let bytes = ae.compress(&field, ErrorBound::rel(1e-4)).unwrap();
        let recon = ae.decompress(&bytes).unwrap();
        assert!(!ae.is_error_bounded());
        assert_eq!(recon.dims(), field.dims());
        // Reconstruction must stay within the (denormalised) data range envelope.
        let (lo, hi) = field.min_max();
        let slack = (hi - lo) * 0.2;
        assert!(recon
            .as_slice()
            .iter()
            .all(|&v| v >= lo - slack && v <= hi + slack));
    }

    #[test]
    #[should_panic(expected = "3D data only")]
    fn training_rejects_2d_fields() {
        let field = Application::CesmCldhgh.generate(Dims::d2(32, 32), 0);
        let mut ae = AeB::new(3);
        ae.train(std::slice::from_ref(&field), 1, 1);
    }

    #[test]
    fn compress_rejects_2d_fields_and_untrained_models() {
        let field3 = Application::Rtm.generate(Dims::d3(16, 16, 16), 1);
        let mut ae = AeB::new(4);
        assert!(matches!(
            ae.compress(&field3, ErrorBound::rel(1e-3)),
            Err(CompressError::Untrained(_))
        ));
        ae.train(std::slice::from_ref(&field3), 1, 5);
        let field2 = Application::CesmCldhgh.generate(Dims::d2(32, 32), 0);
        assert!(matches!(
            ae.compress(&field2, ErrorBound::rel(1e-3)),
            Err(CompressError::UnsupportedField(_))
        ));
    }

    #[test]
    fn truncated_streams_are_rejected_not_panicking() {
        let field = Application::Rtm.generate(Dims::d3(16, 16, 16), 2);
        let mut ae = AeB::new(5);
        ae.train(std::slice::from_ref(&field), 1, 6);
        let bytes = ae.compress(&field, ErrorBound::rel(1e-3)).unwrap();
        for len in 0..bytes.len() {
            assert!(ae.decompress(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn model_bytes_roundtrip_and_streams_carry_the_id() {
        let field = Application::Rtm.generate(Dims::d3(16, 16, 16), 8);
        let mut ae = AeB::new(6);
        ae.train(std::slice::from_ref(&field), 1, 7);
        let id = ae.model_id().expect("trained");
        let bytes = ae.to_model_bytes();
        assert_eq!(ModelId::of(&bytes), id);

        let stream = ae.compress(&field, ErrorBound::rel(1e-3)).unwrap();
        let (_, payload) = aesz_metrics::container::read_frame(&stream).unwrap();
        assert_eq!(peek_model_id(payload), Some(id));

        let mut rebuilt = AeB::from_model_bytes(&bytes).expect("reload");
        assert_eq!(rebuilt.model_id(), Some(id));
        let a = ae.decompress(&stream).unwrap();
        let b = rebuilt.decompress(&stream).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());

        // Wrong weights → the dedicated missing-model error naming the id.
        let mut other = AeB::new(44);
        other.train(std::slice::from_ref(&field), 1, 45);
        assert_eq!(
            other.decompress(&stream),
            Err(DecompressError::MissingModel {
                codec: CodecId::AeB,
                model_id: id,
            })
        );
        assert!(matches!(
            AeB::new(1).decompress(&stream),
            Err(DecompressError::MissingModel { .. })
        ));

        // A model file with the wrong geometry is rejected up front.
        let foreign = save_model(&ConvAutoencoder::new(AeConfig {
            spatial_rank: 2,
            block_size: 16,
            latent_dim: 8,
            channels: vec![4],
            variational: false,
            seed: 0,
        }));
        assert!(matches!(
            AeB::from_model_bytes(&foreign),
            Err(ModelError::InvalidConfig(_))
        ));
    }
}
