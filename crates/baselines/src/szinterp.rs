//! SZinterp-like baseline: multi-level cubic spline-interpolation prediction.
//!
//! SZinterp (Zhao et al., ICDE'21) is the strongest traditional comparison
//! point in the paper's evaluation — AE-SZ only matches it in the low-bit-rate
//! regime. The algorithmic core is level-by-level interpolation prediction
//! over the whole field, implemented in [`aesz_predictors::interp`]; this
//! wrapper adds the SZ quantization framing and entropy coding.

use aesz_metrics::Compressor;
use aesz_predictors::{interp, Quantizer, DEFAULT_QUANT_BINS};
use aesz_tensor::Field;

use crate::common::{absolute_bound, assemble, parse, BaseHeader};

/// SZinterp-like compressor.
#[derive(Default)]
pub struct SzInterp;

impl SzInterp {
    /// New instance.
    pub fn new() -> Self {
        SzInterp
    }
}

impl Compressor for SzInterp {
    fn name(&self) -> &'static str {
        "SZinterp"
    }

    fn compress(&mut self, field: &Field, rel_eb: f64) -> Vec<u8> {
        let (lo, hi) = field.min_max();
        let abs_eb = absolute_bound(rel_eb, lo, hi);
        let quantizer = Quantizer::new(abs_eb, DEFAULT_QUANT_BINS);
        let extents = field.dims().extents();
        let (blk, _) = interp::compress(field.as_slice(), &extents, &quantizer);
        assemble(
            BaseHeader {
                dims: field.dims(),
                abs_eb,
            },
            &blk,
            &[],
        )
    }

    fn decompress(&mut self, bytes: &[u8]) -> Field {
        let (header, blk, _) = parse(bytes);
        let quantizer = Quantizer::new(header.abs_eb, DEFAULT_QUANT_BINS);
        let extents = header.dims.extents();
        let data = interp::decompress(&blk, &extents, &quantizer);
        Field::from_vec(header.dims, data).expect("dims match payload")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_datagen::Application;
    use aesz_metrics::verify_error_bound;
    use aesz_tensor::Dims;

    #[test]
    fn roundtrip_respects_bound_2d_and_3d() {
        for (app, dims) in [
            (Application::CesmFreqsh, Dims::d2(80, 64)),
            (Application::HurricaneU, Dims::d3(16, 24, 24)),
        ] {
            let field = app.generate(dims, 41);
            let mut sz = SzInterp::new();
            for rel_eb in [1e-2, 1e-3] {
                let bytes = sz.compress(&field, rel_eb);
                let recon = sz.decompress(&bytes);
                let abs = rel_eb * field.value_range() as f64;
                verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3).unwrap();
            }
        }
    }

    #[test]
    fn beats_or_matches_sz2_on_smooth_3d_data() {
        // The paper's headline for SZinterp: better prediction on smooth 3D
        // fields than blockwise Lorenzo/regression, hence better ratios.
        let field = Application::HurricaneQvapor.generate(Dims::d3(16, 32, 32), 7);
        let mut si = SzInterp::new();
        let mut s2 = crate::sz2::Sz2::new();
        let interp_size = si.compress(&field, 1e-3).len();
        let sz2_size = s2.compress(&field, 1e-3).len();
        assert!(
            (interp_size as f64) < 1.2 * sz2_size as f64,
            "SZinterp {interp_size} should be competitive with SZ2 {sz2_size}"
        );
    }

    #[test]
    fn odd_extents_are_handled() {
        let field = Application::Rtm.generate(Dims::d3(13, 17, 11), 3);
        let mut sz = SzInterp::new();
        let bytes = sz.compress(&field, 1e-3);
        let recon = sz.decompress(&bytes);
        assert_eq!(recon.dims(), field.dims());
    }
}
