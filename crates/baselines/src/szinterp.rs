//! SZinterp-like baseline: multi-level cubic spline-interpolation prediction.
//!
//! SZinterp (Zhao et al., ICDE'21) is the strongest traditional comparison
//! point in the paper's evaluation — AE-SZ only matches it in the low-bit-rate
//! regime. The algorithmic core is level-by-level interpolation prediction
//! over the whole field, implemented in [`aesz_predictors::interp`]; this
//! wrapper adds the SZ quantization framing and entropy coding.

use aesz_metrics::{CodecId, CompressError, Compressor, DecompressError, ErrorBound};
use aesz_predictors::{interp, Quantizer, DEFAULT_QUANT_BINS};
use aesz_tensor::Field;

use crate::common::{assemble, parse, resolve_bound, BaseHeader};

/// SZinterp-like compressor.
#[derive(Default, Clone)]
pub struct SzInterp;

impl SzInterp {
    /// New instance.
    pub fn new() -> Self {
        SzInterp
    }
}

impl Compressor for SzInterp {
    fn codec_id(&self) -> CodecId {
        CodecId::SzInterp
    }

    fn fork(&self) -> Box<dyn Compressor> {
        Box::new(self.clone())
    }

    fn compress_payload(
        &mut self,
        field: &Field,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, CompressError> {
        let (abs_eb, _, _) = resolve_bound(field, bound)?;
        let quantizer = Quantizer::new(abs_eb, DEFAULT_QUANT_BINS);
        let extents = field.dims().extents();
        let (blk, _) = interp::compress(field.as_slice(), &extents, &quantizer);
        assemble(
            BaseHeader {
                dims: field.dims(),
                abs_eb,
            },
            &blk,
            &[],
        )
    }

    fn decompress_payload(&mut self, bytes: &[u8]) -> Result<Field, DecompressError> {
        let (header, blk, extra) = parse(bytes, |h| h.dims.len())?;
        if !extra.is_empty() {
            return Err(DecompressError::Inconsistent("unexpected extra section"));
        }
        let quantizer = Quantizer::new(header.abs_eb, DEFAULT_QUANT_BINS);
        let extents = header.dims.extents();
        let data = interp::decompress(&blk, &extents, &quantizer);
        Field::from_vec(header.dims, data)
            .map_err(|_| DecompressError::Inconsistent("payload does not match dims"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_datagen::Application;
    use aesz_metrics::verify_error_bound;
    use aesz_tensor::Dims;

    #[test]
    fn roundtrip_respects_bound_2d_and_3d() {
        for (app, dims) in [
            (Application::CesmFreqsh, Dims::d2(80, 64)),
            (Application::HurricaneU, Dims::d3(16, 24, 24)),
        ] {
            let field = app.generate(dims, 41);
            let mut sz = SzInterp::new();
            for rel_eb in [1e-2, 1e-3] {
                let bytes = sz.compress(&field, ErrorBound::rel(rel_eb)).unwrap();
                let recon = sz.decompress(&bytes).unwrap();
                let abs = rel_eb * field.value_range() as f64;
                verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3).unwrap();
            }
        }
    }

    #[test]
    fn beats_or_matches_sz2_on_smooth_3d_data() {
        // The paper's headline for SZinterp: better prediction on smooth 3D
        // fields than blockwise Lorenzo/regression, hence better ratios.
        let field = Application::HurricaneQvapor.generate(Dims::d3(16, 32, 32), 7);
        let mut si = SzInterp::new();
        let mut s2 = crate::sz2::Sz2::new();
        let interp_size = si.compress(&field, ErrorBound::rel(1e-3)).unwrap().len();
        let sz2_size = s2.compress(&field, ErrorBound::rel(1e-3)).unwrap().len();
        assert!(
            (interp_size as f64) < 1.2 * sz2_size as f64,
            "SZinterp {interp_size} should be competitive with SZ2 {sz2_size}"
        );
    }

    #[test]
    fn odd_extents_are_handled() {
        let field = Application::Rtm.generate(Dims::d3(13, 17, 11), 3);
        let mut sz = SzInterp::new();
        let bytes = sz.compress(&field, ErrorBound::rel(1e-3)).unwrap();
        let recon = sz.decompress(&bytes).unwrap();
        assert_eq!(recon.dims(), field.dims());
    }

    #[test]
    fn truncated_streams_are_rejected_not_panicking() {
        let field = Application::CesmFreqsh.generate(Dims::d2(24, 24), 2);
        let mut sz = SzInterp::new();
        let bytes = sz.compress(&field, ErrorBound::rel(1e-3)).unwrap();
        for len in 0..bytes.len() {
            assert!(sz.decompress(&bytes[..len]).is_err());
        }
    }
}
