//! AE-A baseline: the fully-connected autoencoder compressor of Liu et al.
//! ("High-ratio lossy compression: exploring the autoencoder to compress
//! scientific data", reference \[43\] of the paper).
//!
//! AE-A treats the field as a 1D stream, cuts it into fixed-length windows,
//! and pushes each window through a small stack of fully-connected layers
//! whose sizes shrink by 8× per layer (512× total reduction to the latent).
//! The latent values are stored in the compressed stream, and the residual
//! between the autoencoder reconstruction and the original data is compressed
//! with an SZ-style quantization stage (the ".dvalue" file of the original
//! code), which is what restores the error bound. Its weaknesses relative to
//! AE-SZ — no spatial awareness, slow dense layers, heavy residual volume —
//! are exactly what the paper's comparison shows.
//!
//! # Payload format
//!
//! The payload leads with the 16-byte content-addressed [`ModelId`] of the
//! trained network, followed by the shared baseline stream
//! ([`crate::common::assemble`]). Pre-model-id AE-A payloads (which carried
//! no version marker) are **not** decodable by this version — unlike AE-SZ,
//! whose magic distinguishes stream versions, AE-A streams were never
//! decodable outside the process that trained the exact instance, so there
//! is no compatible installed base to preserve.

use aesz_codec::varint::{read_f32, write_f32, write_uvarint};
use aesz_codec::{compress_bytes, decompress_bytes_capped};
use aesz_metrics::container::MODEL_ID_LEN;
use aesz_metrics::{
    CodecId, CompressError, Compressor, DecompressError, EmbeddedModel, ErrorBound, ModelId,
};
use aesz_nn::activation::Tanh;
use aesz_nn::dense::Dense;
use aesz_nn::layer::Layer;
use aesz_nn::loss;
use aesz_nn::optim::Adam;
use aesz_nn::sequential::Sequential;
use aesz_nn::serialize::{read_params_into, write_params, ModelError};
use aesz_nn::{NnScratch, Shape};
use aesz_predictors::{Quantizer, DEFAULT_QUANT_BINS};
use aesz_tensor::{init, Field, Tensor};

use crate::common::{assemble, parse, read_len, resolve_bound, take, BaseHeader};

/// Window length of the 1D fully-connected autoencoder.
pub const WINDOW: usize = 512;
/// Latent length per window (512× reduction, as in the original design).
pub const LATENT: usize = 1;

/// Magic bytes identifying a serialized AE-A model (the fixed dense
/// architecture needs no config fields — just the parameter stream).
const MODEL_MAGIC: &[u8; 8] = b"AEAMODL1";

/// The AE-A compressor. Must be trained ([`AeA::train`]) or rebuilt from a
/// trained model file ([`AeA::from_model_bytes`]) before use.
#[derive(Clone)]
pub struct AeA {
    encoder: Sequential,
    decoder: Sequential,
    trained: bool,
    /// Content-addressed id of the trained weights; `None` until trained.
    model_id: Option<ModelId>,
    /// Resident inference buffers; warm after the first call, clone cold.
    scratch: AeAScratch,
}

/// Per-instance buffers of the window codec's inference path: the network
/// scratch plus the flattened-window and prediction staging vectors. Clones
/// are cold so [`Compressor::fork`] stays cheap and every fork warms its own
/// buffers (the per-worker residency model of `aesz serve`).
#[derive(Default)]
struct AeAScratch {
    nn: NnScratch,
    flat: Vec<f32>,
    pred: Vec<f32>,
}

impl Clone for AeAScratch {
    fn clone(&self) -> Self {
        AeAScratch::default()
    }
}

impl Default for AeA {
    fn default() -> Self {
        Self::new(9)
    }
}

impl AeA {
    /// Fresh, untrained model with the given initialisation seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = init::rng(seed);
        // Encoder 512 → 64 → 8 → 1, decoder mirror; Tanh in between.
        let encoder = Sequential::new()
            .push(Box::new(Dense::new(WINDOW, 64, &mut rng)))
            .push(Box::new(Tanh::new()))
            .push(Box::new(Dense::new(64, 8, &mut rng)))
            .push(Box::new(Tanh::new()))
            .push(Box::new(Dense::new(8, LATENT, &mut rng)));
        let decoder = Sequential::new()
            .push(Box::new(Dense::new(LATENT, 8, &mut rng)))
            .push(Box::new(Tanh::new()))
            .push(Box::new(Dense::new(8, 64, &mut rng)))
            .push(Box::new(Tanh::new()))
            .push(Box::new(Dense::new(64, WINDOW, &mut rng)))
            .push(Box::new(Tanh::new()));
        AeA {
            encoder,
            decoder,
            trained: false,
            model_id: None,
            scratch: AeAScratch::default(),
        }
    }

    /// Whether [`AeA::train`] has been called.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Content-addressed id of the trained weights (`None` while untrained).
    pub fn model_id(&self) -> Option<ModelId> {
        self.model_id
    }

    /// Serialize the trained weights: magic + the encoder-then-decoder
    /// parameter stream ([`aesz_nn::serialize::write_params`]). This byte
    /// sequence is what the [`ModelId`] hashes.
    pub fn to_model_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MODEL_MAGIC);
        let mut params = self.encoder.params();
        params.extend(self.decoder.params());
        write_params(&mut out, &params);
        out
    }

    /// Rebuild a trained AE-A from bytes written by [`AeA::to_model_bytes`]
    /// — the decode path of the sidecar / embedded-model lifecycle. The
    /// loaded instance is trained by definition and carries the id of the
    /// given bytes.
    pub fn from_model_bytes(bytes: &[u8]) -> Result<AeA, ModelError> {
        if bytes.len() < MODEL_MAGIC.len() {
            return Err(ModelError::Truncated);
        }
        if &bytes[..MODEL_MAGIC.len()] != MODEL_MAGIC {
            return Err(ModelError::BadMagic);
        }
        let mut ae = AeA::new(0);
        let mut pos = MODEL_MAGIC.len();
        let mut params = ae.encoder.params_mut();
        params.extend(ae.decoder.params_mut());
        read_params_into(bytes, &mut pos, params)?;
        if pos != bytes.len() {
            return Err(ModelError::TrailingBytes);
        }
        ae.trained = true;
        ae.model_id = Some(ModelId::of(bytes));
        Ok(ae)
    }

    /// Cut a normalised field into fixed-length windows (zero-padded tail).
    fn windows(data: &[f32]) -> Vec<Vec<f32>> {
        data.chunks(WINDOW)
            .map(|c| {
                let mut w = c.to_vec();
                w.resize(WINDOW, 0.0);
                w
            })
            .collect()
    }

    /// Train the dense autoencoder on windows drawn from the training fields
    /// (plain MSE objective, as in the original work).
    pub fn train(&mut self, training_fields: &[Field], epochs: usize, seed: u64) {
        let mut rng = init::rng(seed);
        let mut windows: Vec<Vec<f32>> = Vec::new();
        for field in training_fields {
            let (norm, _, _) = field.normalize_pm1();
            windows.extend(Self::windows(norm.as_slice()));
        }
        assert!(!windows.is_empty(), "no training windows");
        let mut adam = Adam::new(1e-3);
        let batch = 32usize;
        for _ in 0..epochs {
            use rand::seq::SliceRandom;
            windows.shuffle(&mut rng);
            for chunk in windows.chunks(batch) {
                let flat: Vec<f32> = chunk.iter().flatten().copied().collect();
                let x = Tensor::from_vec(&[chunk.len(), WINDOW], flat).expect("shape");
                let z = self.encoder.forward(&x);
                let y = self.decoder.forward(&z);
                let (_, grad) = loss::mse(&y, &x);
                let gz = self.decoder.backward(&grad);
                let _ = self.encoder.backward(&gz);
                let mut params = self.encoder.params_mut();
                params.extend(self.decoder.params_mut());
                adam.step(&mut params);
            }
        }
        self.trained = true;
        self.model_id = Some(ModelId::of(&self.to_model_bytes()));
    }

    /// Encode a normalised field into one latent vector per window, through
    /// the allocation-free inference path: the windows are packed (with the
    /// zero-padded tail) straight into a resident flat buffer — no
    /// per-window `Vec`s, no input clone, no training caches touched.
    fn encode_latents(&mut self, norm: &[f32]) -> Vec<f32> {
        let n = norm.len().div_ceil(WINDOW);
        let sc = &mut self.scratch;
        sc.flat.clear();
        sc.flat.resize(n * WINDOW, 0.0);
        for (dst, src) in sc.flat.chunks_mut(WINDOW).zip(norm.chunks(WINDOW)) {
            dst[..src.len()].copy_from_slice(src);
        }
        let mut latents = Vec::new();
        self.encoder
            .infer_into(&sc.flat, Shape::new(&[n, WINDOW]), &mut latents, &mut sc.nn)
            .expect("windows shaped by the packing loop");
        latents
    }

    /// Decode latents back to a flat normalised signal of length `len`,
    /// through the allocation-free inference path.
    fn decode_latents(&mut self, latents: &[f32], len: usize) -> Vec<f32> {
        let n = latents.len() / LATENT;
        let sc = &mut self.scratch;
        self.decoder
            .infer_into(latents, Shape::new(&[n, LATENT]), &mut sc.pred, &mut sc.nn)
            .expect("latent count is a multiple of LATENT");
        sc.pred[..len.min(sc.pred.len())].to_vec()
    }

    /// Denormalise a prediction signal back to the data domain.
    fn denormalise(norm: &[f32], lo: f32, hi: f32) -> Vec<f32> {
        let range = (hi - lo) as f64;
        norm.iter()
            .map(|&v| ((v as f64 + 1.0) * 0.5 * range + lo as f64) as f32)
            .collect()
    }
}

impl Compressor for AeA {
    fn codec_id(&self) -> CodecId {
        CodecId::AeA
    }

    fn fork(&self) -> Box<dyn Compressor> {
        Box::new(self.clone())
    }

    fn embedded_model(&self) -> Option<EmbeddedModel> {
        self.trained
            .then(|| EmbeddedModel::new(CodecId::AeA, &self.to_model_bytes()))
    }

    fn embedded_model_id(&self) -> Option<ModelId> {
        self.model_id.filter(|_| self.trained)
    }

    fn compress_payload(
        &mut self,
        field: &Field,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, CompressError> {
        let Some(model_id) = self.model_id.filter(|_| self.trained) else {
            return Err(CompressError::Untrained(
                "AeA::train must be called before compressing",
            ));
        };
        let (abs_eb, lo, hi) = resolve_bound(field, bound)?;
        let (norm, _, _) = field.normalize_pm1();
        // Latents are stored; predictions come from decoding the *stored*
        // latents so the decompressor reproduces them exactly.
        let latents = self.encode_latents(norm.as_slice());
        let pred_norm = self.decode_latents(&latents, field.len());
        let preds = Self::denormalise(&pred_norm, lo, hi);
        let quantizer = Quantizer::new(abs_eb, DEFAULT_QUANT_BINS);
        let (blk, _) = quantizer.quantize_buffer(field.as_slice(), &preds);

        let mut extra = Vec::new();
        write_f32(&mut extra, lo);
        write_f32(&mut extra, hi);
        let latent_bytes: Vec<u8> = latents.iter().flat_map(|v| v.to_le_bytes()).collect();
        let latent_payload = compress_bytes(&latent_bytes);
        write_uvarint(&mut extra, latent_payload.len() as u64);
        extra.extend_from_slice(&latent_payload);

        let body = assemble(
            BaseHeader {
                dims: field.dims(),
                abs_eb,
            },
            &blk,
            &extra,
        )?;
        // The model id leads the payload (before the shared baseline header)
        // so dispatchers can resolve the model without parsing anything.
        let mut out = Vec::with_capacity(MODEL_ID_LEN + body.len());
        out.extend_from_slice(model_id.as_bytes());
        out.extend_from_slice(&body);
        Ok(out)
    }

    fn decompress_payload(&mut self, bytes: &[u8]) -> Result<Field, DecompressError> {
        let stream_id =
            ModelId::from_prefix(bytes).ok_or(DecompressError::Truncated("model id"))?;
        // Provenance check before anything else: an untrained instance or
        // one holding different weights cannot reconstruct this stream, and
        // the stream itself names the model that can.
        if !self.trained || self.model_id != Some(stream_id) {
            return Err(DecompressError::MissingModel {
                codec: CodecId::AeA,
                model_id: stream_id,
            });
        }
        let (header, blk, extra) = parse(&bytes[MODEL_ID_LEN..], |h| h.dims.len())?;
        let mut pos = 0usize;
        let lo = read_f32(&extra, &mut pos).ok_or(DecompressError::Truncated("data range"))?;
        let hi = read_f32(&extra, &mut pos).ok_or(DecompressError::Truncated("data range"))?;
        if !lo.is_finite() || !hi.is_finite() {
            return Err(DecompressError::InvalidHeader("data range"));
        }
        let latent_len = read_len(&extra, &mut pos, "latent length")?;
        let latent_section = take(&extra, &mut pos, latent_len, "latent section")?;
        if pos != extra.len() {
            return Err(DecompressError::Inconsistent("trailing extra bytes"));
        }
        let n = header.dims.len();
        // One LATENT-sized vector per 512-value window, exactly.
        let expected_latent_bytes = n.div_ceil(WINDOW) * LATENT * 4;
        let latent_bytes = decompress_bytes_capped(latent_section, expected_latent_bytes)?;
        if latent_bytes.len() != expected_latent_bytes {
            return Err(DecompressError::Inconsistent(
                "latent count does not match window count",
            ));
        }
        let latents: Vec<f32> = latent_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let pred_norm = self.decode_latents(&latents, n);
        let preds = Self::denormalise(&pred_norm, lo, hi);
        let quantizer = Quantizer::new(header.abs_eb, DEFAULT_QUANT_BINS);
        let data = quantizer.dequantize_buffer(&blk, &preds);
        Field::from_vec(header.dims, data)
            .map_err(|_| DecompressError::Inconsistent("payload does not match dims"))
    }

    fn is_error_bounded(&self) -> bool {
        true
    }
}

/// Read the model id leading an AE-A payload (container frame already
/// stripped) without parsing the rest of the stream.
pub fn peek_model_id(payload: &[u8]) -> Option<ModelId> {
    ModelId::from_prefix(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_datagen::Application;
    use aesz_metrics::verify_error_bound;
    use aesz_tensor::Dims;

    #[test]
    fn windows_pad_the_tail() {
        let w = AeA::windows(&vec![1.0; WINDOW + 10]);
        assert_eq!(w.len(), 2);
        assert_eq!(w[1][10], 0.0);
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 64), 0);
        let mut ae = AeA::new(1);
        let (norm, _, _) = field.normalize_pm1();
        let recon_err = |ae: &mut AeA| -> f64 {
            let latents = ae.encode_latents(norm.as_slice());
            ae.decode_latents(&latents, norm.len())
                .iter()
                .zip(norm.as_slice())
                .map(|(a, b)| (a - b).abs() as f64)
                .sum()
        };
        let before = recon_err(&mut ae);
        ae.train(std::slice::from_ref(&field), 3, 2);
        let after = recon_err(&mut ae);
        assert!(after < before, "training must help: {before} -> {after}");
    }

    #[test]
    fn roundtrip_respects_the_error_bound() {
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 64), 51);
        let mut ae = AeA::new(3);
        ae.train(std::slice::from_ref(&field), 2, 4);
        for rel_eb in [1e-2, 1e-3] {
            let bytes = ae.compress(&field, ErrorBound::rel(rel_eb)).unwrap();
            let recon = ae.decompress(&bytes).unwrap();
            let abs = rel_eb * field.value_range() as f64;
            verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3).unwrap();
        }
    }

    #[test]
    fn latent_overhead_is_small() {
        // One latent per 512 values: the stream must be dominated by residuals,
        // not latents, and still smaller than the raw data at a coarse bound.
        let field = Application::CesmFreqsh.generate(Dims::d2(64, 64), 1);
        let mut ae = AeA::new(6);
        ae.train(std::slice::from_ref(&field), 2, 7);
        let bytes = ae.compress(&field, ErrorBound::rel(1e-2)).unwrap();
        assert!(bytes.len() < field.len() * 4);
    }

    #[test]
    fn untrained_model_refuses_to_compress() {
        let field = Application::CesmCldhgh.generate(Dims::d2(32, 32), 0);
        let mut ae = AeA::new(5);
        assert!(matches!(
            ae.compress(&field, ErrorBound::rel(1e-2)),
            Err(CompressError::Untrained(_))
        ));
        assert!(matches!(
            ae.decompress(b"not a stream"),
            Err(DecompressError::BadMagic)
        ));
    }

    #[test]
    fn model_bytes_roundtrip_and_streams_carry_the_id() {
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 64), 12);
        let mut ae = AeA::new(4);
        assert_eq!(ae.model_id(), None);
        ae.train(std::slice::from_ref(&field), 1, 5);
        let id = ae.model_id().expect("trained");
        let bytes = ae.to_model_bytes();
        assert_eq!(ModelId::of(&bytes), id);

        // A fresh instance rebuilt from the bytes decodes the stream the
        // trainer's instance wrote, bit-identically.
        let stream = ae.compress(&field, ErrorBound::rel(1e-2)).unwrap();
        let mut rebuilt = AeA::from_model_bytes(&bytes).expect("reload");
        assert_eq!(rebuilt.model_id(), Some(id));
        assert_eq!(rebuilt.to_model_bytes(), bytes, "canonical serialization");
        let a = ae.decompress(&stream).unwrap();
        let b = rebuilt.decompress(&stream).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());

        // The payload leads with the id; a differently trained instance
        // refuses with the dedicated missing-model error naming it.
        let (_, payload) = aesz_metrics::container::read_frame(&stream).unwrap();
        assert_eq!(peek_model_id(payload), Some(id));
        let mut other = AeA::new(99);
        other.train(std::slice::from_ref(&field), 1, 100);
        assert_eq!(
            other.decompress(&stream),
            Err(DecompressError::MissingModel {
                codec: CodecId::AeA,
                model_id: id,
            })
        );
        // An untrained instance reports the same missing model.
        assert!(matches!(
            AeA::new(1).decompress(&stream),
            Err(DecompressError::MissingModel { .. })
        ));

        // Corrupt model files are rejected, never panicking.
        assert!(matches!(
            AeA::from_model_bytes(b"AEAMODL1"),
            Err(ModelError::Truncated)
        ));
        assert!(matches!(
            AeA::from_model_bytes(b"XXXXXXXXrest"),
            Err(ModelError::BadMagic)
        ));
        for len in 0..bytes.len().min(64) {
            assert!(AeA::from_model_bytes(&bytes[..len]).is_err());
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            AeA::from_model_bytes(&padded),
            Err(ModelError::TrailingBytes)
        ));
    }

    #[test]
    fn truncated_streams_are_rejected_not_panicking() {
        let field = Application::CesmCldhgh.generate(Dims::d2(32, 32), 9);
        let mut ae = AeA::new(7);
        ae.train(std::slice::from_ref(&field), 1, 8);
        let bytes = ae.compress(&field, ErrorBound::rel(1e-2)).unwrap();
        for len in 0..bytes.len() {
            assert!(ae.decompress(&bytes[..len]).is_err());
        }
    }
}
