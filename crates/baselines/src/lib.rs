//! # aesz-baselines
//!
//! From-scratch reimplementations of the six comparison compressors of the
//! AE-SZ paper's evaluation (Section V):
//!
//! * [`sz2`] — SZ2.1-like: blockwise selection between first-order Lorenzo and
//!   linear regression, SZ quantization, Huffman + zlite.
//! * [`zfp`] — ZFP-like: 4^d block decorrelating lifting transform with
//!   uniform coefficient quantization (fixed-accuracy style).
//! * [`szauto`] — SZauto-like: second-order Lorenzo prediction with a sampled
//!   choice between first and second order.
//! * [`szinterp`] — SZinterp-like: multi-level cubic spline interpolation
//!   prediction.
//! * [`ae_a`] — the fully-connected autoencoder compressor of Liu et al. \[43\]:
//!   1D windows, ~512× reduction through dense layers, residuals compressed
//!   with an SZ-style stage to restore error bounding.
//! * [`ae_b`] — the convolutional autoencoder of Glaws et al. \[40\]: fixed 64×
//!   reduction, *not* error bounded.
//!
//! Each implements [`aesz_metrics::Compressor`], so the benchmark harness can
//! sweep all of them uniformly. These are simplified reimplementations — the
//! goal is to reproduce each algorithm's characteristic rate-distortion
//! behaviour, not its exact bitstream.

#![forbid(unsafe_code)]

pub mod ae_a;
pub mod ae_b;
// Wire-parsing modules (the `aesz-lint` deny-set, see the repo-root
// lint.toml) must not panic on attacker-shaped bytes; the clippy headers
// below enforce the same contract (rule R1) at the compiler level. Tests
// are exempt via clippy.toml's allow-*-in-tests keys.
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod common;
pub mod sz2;
pub mod szauto;
pub mod szinterp;
pub mod zfp;

pub use ae_a::AeA;
pub use ae_b::AeB;
pub use sz2::Sz2;
pub use szauto::SzAuto;
pub use szinterp::SzInterp;
pub use zfp::Zfp;
