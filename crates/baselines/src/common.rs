//! Shared stream plumbing for the baseline compressors.
//!
//! Every SZ-family baseline produces the same three ingredients: a small
//! header (dims + error bound), a stream of quantization codes, and the
//! escaped unpredictable values. This module owns that common framing so the
//! individual baselines only implement their prediction scheme.
//!
//! [`parse`] is the trust boundary of the baseline decoders: it validates the
//! header (rank, extent caps, finite positive bound), checks every section
//! length against the remaining input, decodes the entropy-coded sections
//! through the capped codec variants (`decode_codes_capped` /
//! `decompress_bytes_capped`, the same ones `aesz_core` uses), and
//! cross-checks the escape count against the unpredictable payload — so a
//! hostile stream yields a [`DecompressError`] instead of a panic or an
//! attacker-sized allocation.

use aesz_codec::varint::{read_f64, read_uvarint, write_f64, write_uvarint};
use aesz_codec::{compress_bytes, decode_codes_capped, decompress_bytes_capped, encode_codes};
use aesz_metrics::{CompressError, DecompressError, ErrorBound};
use aesz_predictors::QuantizedBlock;
use aesz_tensor::{Dims, Field};

pub use aesz_metrics::container::MAX_FIELD_ELEMS;

/// Header shared by the whole-field baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaseHeader {
    /// Extents of the original field.
    pub dims: Dims,
    /// Absolute error bound used for quantization.
    pub abs_eb: f64,
}

/// Resolve an error-bound request against a field, validating that the data
/// admits one (finite range). Returns the absolute bound with the field's
/// min/max, the inputs every baseline needs.
pub fn resolve_bound(field: &Field, bound: ErrorBound) -> Result<(f64, f32, f32), CompressError> {
    let (lo, hi) = field.min_max();
    if !lo.is_finite() || !hi.is_finite() {
        return Err(CompressError::UnsupportedField(
            "field contains non-finite values; the error bound is undefined",
        ));
    }
    Ok((bound.absolute(lo, hi), lo, hi))
}

/// Serialize dims (rank + extents) into a byte buffer.
pub fn write_dims(out: &mut Vec<u8>, dims: Dims) {
    let e = dims.extents();
    out.push(e.len() as u8);
    for &d in &e {
        write_uvarint(out, d as u64);
    }
}

/// Parse and validate dims written by [`write_dims`]: rank 1–3, every extent
/// non-zero, and a total element count that neither overflows nor exceeds
/// [`MAX_FIELD_ELEMS`].
pub fn read_dims(buf: &[u8], pos: &mut usize) -> Result<Dims, DecompressError> {
    let rank = usize::from(
        *buf.get(*pos)
            .ok_or(DecompressError::Truncated("rank byte"))?,
    );
    *pos += 1;
    if !(1..=3).contains(&rank) {
        return Err(DecompressError::InvalidHeader("rank must be 1-3"));
    }
    let mut e = Vec::with_capacity(rank);
    for _ in 0..rank {
        let ext = read_uvarint(buf, pos).ok_or(DecompressError::Truncated("extent"))?;
        if ext == 0 {
            return Err(DecompressError::InvalidHeader("zero extent"));
        }
        if ext > MAX_FIELD_ELEMS as u64 {
            return Err(DecompressError::InvalidHeader("extent too large"));
        }
        // Capped above, but keep the conversion checked so a 32-bit target
        // can never truncate a large extent into a small plausible one.
        let ext = usize::try_from(ext)
            .map_err(|_| DecompressError::InvalidHeader("extent exceeds this platform"))?;
        e.push(ext);
    }
    e.iter()
        .try_fold(1usize, |acc, &ext| acc.checked_mul(ext))
        .filter(|&n| n <= MAX_FIELD_ELEMS)
        .ok_or(DecompressError::InvalidHeader("field too large"))?;
    match rank {
        1 => Ok(Dims::d1(e[0])),
        2 => Ok(Dims::d2(e[0], e[1])),
        _ => Ok(Dims::d3(e[0], e[1], e[2])),
    }
}

/// Read a `u64` varint, mapping truncation to a named error.
pub fn read_len(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<usize, DecompressError> {
    let v = read_uvarint(buf, pos).ok_or(DecompressError::Truncated(what))?;
    usize::try_from(v).map_err(|_| DecompressError::InvalidHeader(what))
}

/// Borrow the next `len` bytes, rejecting length prefixes that overrun the
/// remaining input instead of slicing unchecked.
pub fn take<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    len: usize,
    what: &'static str,
) -> Result<&'a [u8], DecompressError> {
    let end = pos
        .checked_add(len)
        .ok_or(DecompressError::InvalidHeader(what))?;
    let bytes = buf.get(*pos..end).ok_or(DecompressError::Truncated(what))?;
    *pos = end;
    Ok(bytes)
}

/// Assemble a whole-field baseline stream: header + entropy-coded codes +
/// zlite-compressed unpredictable values (+ an optional extra section the
/// caller can use for coefficients, flags, …). Fails on a header no valid
/// stream could carry (a non-finite or non-positive bound, e.g. from a field
/// whose range overflows `f32`).
pub fn assemble(
    header: BaseHeader,
    block: &QuantizedBlock,
    extra: &[u8],
) -> Result<Vec<u8>, CompressError> {
    if !header.abs_eb.is_finite() || header.abs_eb <= 0.0 {
        return Err(CompressError::InvalidBound(
            "absolute bound must be finite and positive",
        ));
    }
    if header.dims.is_empty() {
        return Err(CompressError::UnsupportedField("field has no elements"));
    }
    let mut out = Vec::new();
    write_dims(&mut out, header.dims);
    write_f64(&mut out, header.abs_eb);
    let codes = encode_codes(&block.codes);
    write_uvarint(&mut out, codes.len() as u64);
    out.extend_from_slice(&codes);
    let unpred: Vec<u8> = block
        .unpredictable
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    let unpred = compress_bytes(&unpred);
    write_uvarint(&mut out, unpred.len() as u64);
    out.extend_from_slice(&unpred);
    write_uvarint(&mut out, extra.len() as u64);
    out.extend_from_slice(extra);
    Ok(out)
}

/// Parse a stream produced by [`assemble`]; returns the header, the quantized
/// representation and the extra section.
///
/// `expected_codes` maps the validated header to the exact number of
/// quantization codes the stream must carry (the callers know their block
/// geometry; e.g. `|h| h.dims.len()` for whole-field prediction). The code
/// count, the escape/unpredictable cross-check, the section lengths and the
/// total stream length are all enforced here.
pub fn parse(
    bytes: &[u8],
    expected_codes: impl FnOnce(&BaseHeader) -> usize,
) -> Result<(BaseHeader, QuantizedBlock, Vec<u8>), DecompressError> {
    let mut pos = 0usize;
    let dims = read_dims(bytes, &mut pos)?;
    let abs_eb = read_f64(bytes, &mut pos).ok_or(DecompressError::Truncated("abs_eb"))?;
    if !abs_eb.is_finite() || abs_eb <= 0.0 {
        return Err(DecompressError::InvalidHeader("abs_eb"));
    }
    let header = BaseHeader { dims, abs_eb };
    let n_codes = expected_codes(&header);

    let codes_len = read_len(bytes, &mut pos, "codes length")?;
    let codes_bytes = take(bytes, &mut pos, codes_len, "codes section")?;
    let codes = decode_codes_capped(codes_bytes, n_codes)?;
    if codes.len() != n_codes {
        return Err(DecompressError::Inconsistent(
            "code count does not match dims",
        ));
    }
    let escapes = codes.iter().filter(|&&c| c == 0).count();

    let unpred_len = read_len(bytes, &mut pos, "unpredictable length")?;
    let unpred_section = take(bytes, &mut pos, unpred_len, "unpredictable section")?;
    let unpred_bytes = decompress_bytes_capped(unpred_section, escapes * 4)?;
    if unpred_bytes.len() != escapes * 4 {
        return Err(DecompressError::Inconsistent(
            "unpredictable count does not match escape codes",
        ));
    }
    let unpredictable: Vec<f32> = unpred_bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();

    let extra_len = read_len(bytes, &mut pos, "extra length")?;
    let extra = take(bytes, &mut pos, extra_len, "extra section")?.to_vec();
    if pos != bytes.len() {
        return Err(DecompressError::Inconsistent("trailing bytes"));
    }
    Ok((
        header,
        QuantizedBlock {
            codes,
            unpredictable,
        },
        extra,
    ))
}

/// Absolute error bound for a value-range-relative bound on a field.
pub fn absolute_bound(rel_eb: f64, lo: f32, hi: f32) -> f64 {
    ErrorBound::rel(rel_eb).absolute(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (BaseHeader, QuantizedBlock, Vec<u8>) {
        let header = BaseHeader {
            dims: Dims::d3(4, 5, 6),
            abs_eb: 2.5e-3,
        };
        let blk = QuantizedBlock {
            codes: (0..120)
                .map(|i| if i % 9 == 0 { 0 } else { 32768 })
                .collect(),
            unpredictable: vec![1.5; 14],
        };
        let bytes = assemble(header, &blk, b"extra!").expect("valid header");
        (header, blk, bytes)
    }

    #[test]
    fn assemble_parse_roundtrip() {
        let (header, blk, bytes) = sample();
        let (h2, b2, extra) = parse(&bytes, |h| h.dims.len()).expect("own stream");
        assert_eq!(h2, header);
        assert_eq!(b2, blk);
        assert_eq!(extra, b"extra!");
    }

    #[test]
    fn assemble_rejects_unusable_headers() {
        let blk = QuantizedBlock {
            codes: vec![1],
            unpredictable: vec![],
        };
        for abs_eb in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let header = BaseHeader {
                dims: Dims::d1(1),
                abs_eb,
            };
            assert!(matches!(
                assemble(header, &blk, &[]),
                Err(CompressError::InvalidBound(_))
            ));
        }
        let header = BaseHeader {
            dims: Dims::d1(0),
            abs_eb: 1e-3,
        };
        assert!(matches!(
            assemble(header, &blk, &[]),
            Err(CompressError::UnsupportedField(_))
        ));
    }

    #[test]
    fn every_truncated_prefix_is_rejected() {
        let (_, _, bytes) = sample();
        for len in 0..bytes.len() {
            assert!(
                parse(&bytes[..len], |h| h.dims.len()).is_err(),
                "prefix of {len}/{} bytes parsed as a complete stream",
                bytes.len()
            );
        }
    }

    #[test]
    fn trailing_bytes_and_wrong_code_counts_are_rejected() {
        let (_, _, mut bytes) = sample();
        bytes.push(0);
        assert_eq!(
            parse(&bytes, |h| h.dims.len()),
            Err(DecompressError::Inconsistent("trailing bytes"))
        );
        bytes.pop();
        assert_eq!(
            parse(&bytes, |h| h.dims.len() + 1),
            Err(DecompressError::Inconsistent(
                "code count does not match dims"
            ))
        );
    }

    #[test]
    fn hostile_headers_are_rejected() {
        // Rank outside 1–3.
        let mut bytes = vec![4u8];
        write_uvarint(&mut bytes, 2);
        assert!(matches!(
            parse(&bytes, |h| h.dims.len()),
            Err(DecompressError::InvalidHeader("rank must be 1-3"))
        ));
        // Extents whose product overflows the cap.
        let mut bytes = vec![3u8];
        for _ in 0..3 {
            write_uvarint(&mut bytes, (MAX_FIELD_ELEMS as u64) - 1);
        }
        bytes.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            parse(&bytes, |h| h.dims.len()),
            Err(DecompressError::InvalidHeader("field too large"))
        ));
        // A section length prefix far beyond the remaining input.
        let (_, blk, _) = sample();
        let header = BaseHeader {
            dims: Dims::d3(4, 5, 6),
            abs_eb: 2.5e-3,
        };
        let good = assemble(header, &blk, b"").expect("valid header");
        // Rewrite the codes length varint (directly after dims + abs_eb) to a
        // huge value.
        let mut hostile = good[..4 + 8].to_vec();
        write_uvarint(&mut hostile, u64::MAX / 2);
        assert!(parse(&hostile, |h| h.dims.len()).is_err());
    }

    #[test]
    fn corrupt_unpredictable_counts_are_rejected() {
        // One escape code but no unpredictable payload.
        let header = BaseHeader {
            dims: Dims::d1(4),
            abs_eb: 1e-3,
        };
        let blk = QuantizedBlock {
            codes: vec![0, 1, 1, 1],
            unpredictable: vec![],
        };
        let bytes = assemble(header, &blk, &[]).expect("valid header");
        assert_eq!(
            parse(&bytes, |h| h.dims.len()),
            Err(DecompressError::Inconsistent(
                "unpredictable count does not match escape codes"
            ))
        );
    }

    #[test]
    fn absolute_bound_handles_constant_fields() {
        assert!((absolute_bound(1e-3, 0.0, 10.0) - 1e-2).abs() < 1e-15);
        assert!(absolute_bound(1e-3, 5.0, 5.0) > 0.0);
    }
}
