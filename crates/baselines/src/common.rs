//! Shared stream plumbing for the baseline compressors.
//!
//! Every SZ-family baseline produces the same three ingredients: a small
//! header (dims + error bound), a stream of quantization codes, and the
//! escaped unpredictable values. This module owns that common framing so the
//! individual baselines only implement their prediction scheme.

use aesz_codec::varint::{read_f64, read_uvarint, write_f64, write_uvarint};
use aesz_codec::{compress_bytes, decode_codes, decompress_bytes, encode_codes};
use aesz_predictors::QuantizedBlock;
use aesz_tensor::Dims;

/// Header shared by the whole-field baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaseHeader {
    /// Extents of the original field.
    pub dims: Dims,
    /// Absolute error bound used for quantization.
    pub abs_eb: f64,
}

/// Serialize dims (rank + extents) into a byte buffer.
pub fn write_dims(out: &mut Vec<u8>, dims: Dims) {
    let e = dims.extents();
    out.push(e.len() as u8);
    for &d in &e {
        write_uvarint(out, d as u64);
    }
}

/// Parse dims written by [`write_dims`].
pub fn read_dims(buf: &[u8], pos: &mut usize) -> Option<Dims> {
    let rank = *buf.get(*pos)? as usize;
    *pos += 1;
    let mut e = Vec::with_capacity(rank);
    for _ in 0..rank {
        e.push(read_uvarint(buf, pos)? as usize);
    }
    match rank {
        1 => Some(Dims::d1(e[0])),
        2 => Some(Dims::d2(e[0], e[1])),
        3 => Some(Dims::d3(e[0], e[1], e[2])),
        _ => None,
    }
}

/// Assemble a whole-field baseline stream: header + entropy-coded codes +
/// zlite-compressed unpredictable values (+ an optional extra section the
/// caller can use for coefficients, flags, …).
pub fn assemble(header: BaseHeader, block: &QuantizedBlock, extra: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    write_dims(&mut out, header.dims);
    write_f64(&mut out, header.abs_eb);
    let codes = encode_codes(&block.codes);
    write_uvarint(&mut out, codes.len() as u64);
    out.extend_from_slice(&codes);
    let unpred: Vec<u8> = block
        .unpredictable
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    let unpred = compress_bytes(&unpred);
    write_uvarint(&mut out, unpred.len() as u64);
    out.extend_from_slice(&unpred);
    write_uvarint(&mut out, extra.len() as u64);
    out.extend_from_slice(extra);
    out
}

/// Parse a stream produced by [`assemble`]; returns the header, the quantized
/// representation and the extra section.
pub fn parse(bytes: &[u8]) -> (BaseHeader, QuantizedBlock, Vec<u8>) {
    let mut pos = 0usize;
    let dims = read_dims(bytes, &mut pos).expect("dims");
    let abs_eb = read_f64(bytes, &mut pos).expect("abs_eb");
    let codes_len = read_uvarint(bytes, &mut pos).expect("codes length") as usize;
    let codes = decode_codes(&bytes[pos..pos + codes_len]).expect("codes payload");
    pos += codes_len;
    let unpred_len = read_uvarint(bytes, &mut pos).expect("unpredictable length") as usize;
    let unpred_bytes = decompress_bytes(&bytes[pos..pos + unpred_len]).expect("unpredictable");
    pos += unpred_len;
    let unpredictable: Vec<f32> = unpred_bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let extra_len = read_uvarint(bytes, &mut pos).expect("extra length") as usize;
    let extra = bytes[pos..pos + extra_len].to_vec();
    (
        BaseHeader { dims, abs_eb },
        QuantizedBlock {
            codes,
            unpredictable,
        },
        extra,
    )
}

/// Absolute error bound for a value-range-relative bound on a field.
pub fn absolute_bound(rel_eb: f64, lo: f32, hi: f32) -> f64 {
    let range = (hi - lo) as f64;
    if range > 0.0 {
        rel_eb * range
    } else {
        rel_eb.max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_parse_roundtrip() {
        let header = BaseHeader {
            dims: Dims::d3(4, 5, 6),
            abs_eb: 2.5e-3,
        };
        let blk = QuantizedBlock {
            codes: (0..120)
                .map(|i| if i % 9 == 0 { 0 } else { 32768 })
                .collect(),
            unpredictable: vec![1.5; 14],
        };
        let bytes = assemble(header, &blk, b"extra!");
        let (h2, b2, extra) = parse(&bytes);
        assert_eq!(h2, header);
        assert_eq!(b2, blk);
        assert_eq!(extra, b"extra!");
    }

    #[test]
    fn absolute_bound_handles_constant_fields() {
        assert!((absolute_bound(1e-3, 0.0, 10.0) - 1e-2).abs() < 1e-15);
        assert!(absolute_bound(1e-3, 5.0, 5.0) > 0.0);
    }
}
