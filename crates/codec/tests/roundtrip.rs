//! Round-trip tests for the lossless coding substrate across the degenerate
//! shapes entropy coders historically get wrong: empty input, a single
//! distinct symbol (zero-entropy alphabet), and large random payloads.

use aesz_codec::{
    decode_codes, decompress_bytes, encode_codes, huffman_decode, huffman_encode, varint,
    zlite_compress, zlite_decompress, BitReader, BitWriter,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn huffman_roundtrips_empty_single_symbol_and_large_random() {
    let empty: Vec<u32> = vec![];
    assert_eq!(huffman_decode(&huffman_encode(&empty)), Some(empty));

    // Zero-entropy alphabet: every code word would be 0 bits long without a
    // degenerate-tree guard.
    let single = vec![42u32; 10_000];
    assert_eq!(huffman_decode(&huffman_encode(&single)), Some(single));

    let one = vec![7u32];
    assert_eq!(huffman_decode(&huffman_encode(&one)), Some(one));

    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    let large: Vec<u32> = (0..200_000).map(|_| rng.gen_range(0..65_536u32)).collect();
    assert_eq!(huffman_decode(&huffman_encode(&large)), Some(large));
}

#[test]
fn pipeline_roundtrips_empty_single_symbol_and_large_random() {
    let empty: Vec<u32> = vec![];
    assert_eq!(decode_codes(&encode_codes(&empty)).unwrap(), empty);

    let single = vec![32_768u32; 4096];
    assert_eq!(decode_codes(&encode_codes(&single)).unwrap(), single);

    // Quantization-code-like data: a dominant symbol with sparse outliers,
    // plus a fully random tail.
    let mut rng = StdRng::seed_from_u64(0x919E11);
    let mixed: Vec<u32> = (0..100_000)
        .map(|i| {
            if i % 31 == 0 {
                rng.gen_range(0..65_536u32)
            } else {
                32_768
            }
        })
        .collect();
    assert_eq!(decode_codes(&encode_codes(&mixed)).unwrap(), mixed);
}

#[test]
fn zlite_roundtrips_empty_single_byte_and_large_random() {
    assert_eq!(zlite_decompress(&zlite_compress(&[])).unwrap(), vec![]);
    assert_eq!(
        zlite_decompress(&zlite_compress(&[0xAB])).unwrap(),
        vec![0xAB]
    );

    let runs = vec![0x5Au8; 100_000];
    assert_eq!(zlite_decompress(&zlite_compress(&runs)).unwrap(), runs);

    // Incompressible input must still round-trip (stored/literal path).
    let mut rng = StdRng::seed_from_u64(0x217E);
    let random: Vec<u8> = (0..150_000).map(|_| rng.gen()).collect();
    assert_eq!(zlite_decompress(&zlite_compress(&random)).unwrap(), random);

    let compressed = compressible_then_random(&mut rng);
    assert_eq!(
        decompress_bytes(&aesz_codec::compress_bytes(&compressed)).unwrap(),
        compressed
    );
}

fn compressible_then_random(rng: &mut StdRng) -> Vec<u8> {
    let mut v = b"abcabcabcabc".repeat(2000);
    v.extend((0..20_000).map(|_| rng.gen::<u8>()));
    v
}

#[test]
fn varint_roundtrips_boundary_and_random_values() {
    let mut buf = Vec::new();
    let boundary = [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX];
    for &v in &boundary {
        varint::write_uvarint(&mut buf, v);
    }
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    let random: Vec<u64> = (0..10_000).map(|_| rng.gen()).collect();
    for &v in &random {
        varint::write_uvarint(&mut buf, v);
    }
    let signed = [i64::MIN, -1, 0, 1, i64::MAX];
    for &v in &signed {
        varint::write_ivarint(&mut buf, v);
    }

    let mut pos = 0usize;
    for &v in &boundary {
        assert_eq!(varint::read_uvarint(&buf, &mut pos), Some(v));
    }
    for &v in &random {
        assert_eq!(varint::read_uvarint(&buf, &mut pos), Some(v));
    }
    for &v in &signed {
        assert_eq!(varint::read_ivarint(&buf, &mut pos), Some(v));
    }
    assert_eq!(pos, buf.len());
    assert_eq!(
        varint::read_uvarint(&buf, &mut pos),
        None,
        "buffer exhausted"
    );
}

#[test]
fn bitio_roundtrips_unaligned_widths() {
    let mut w = BitWriter::new();
    let mut rng = StdRng::seed_from_u64(0xB17);
    let mut expected = Vec::new();
    // Empty writer → empty buffer.
    assert!(BitWriter::new().into_bytes().is_empty());
    for _ in 0..50_000 {
        let width = rng.gen_range(1..=57u8);
        let value = rng.gen::<u64>() & ((1u64 << width) - 1);
        w.write_bits(value, width);
        expected.push((value, width));
    }
    let bytes = w.into_bytes();
    let mut r = BitReader::new(&bytes);
    for (value, width) in expected {
        assert_eq!(r.read_bits(width), Some(value));
    }
}
