//! Bit-granular I/O over in-memory byte buffers.
//!
//! Both the Huffman coder and the ZFP-like embedded bit-plane coder need to
//! emit codes whose lengths are not multiples of eight. Bits are packed
//! LSB-first within each byte, which keeps the write/read loops branch-light.

/// Accumulates bits into a byte vector (LSB-first within each byte).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of bits already used in the final byte (0..8); 0 means the
    /// buffer ends on a byte boundary.
    bit_pos: u8,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with pre-allocated capacity (in bytes).
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            // lint:allow(R3): encoder-side hint sized by the caller's own
            // data, never by a wire-read length
            buf: Vec::with_capacity(bytes),
            bit_pos: 0,
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.bit_pos == 0 {
            self.buf.push(0);
        }
        if bit {
            if let Some(last) = self.buf.last_mut() {
                *last |= 1 << self.bit_pos;
            }
        }
        self.bit_pos = (self.bit_pos + 1) & 7;
    }

    /// Append the `n` low bits of `value`, LSB first. `n` must be ≤ 64.
    ///
    /// Batched form of [`BitWriter::write_bits_reference`]: the partial
    /// final byte is topped up with one masked OR, whole bytes are pushed
    /// directly, and at most one trailing partial byte remains. Bit-identity
    /// with the per-bit reference is locked by `tests/kernel_differential.rs`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        let mut v = value;
        let mut rem = n;
        // Top up the partial final byte so the byte loop starts aligned.
        if self.bit_pos != 0 && rem > 0 {
            let take = (8 - self.bit_pos).min(rem);
            let mask = (1u16 << take) - 1;
            if let Some(last) = self.buf.last_mut() {
                *last |= (((v as u16) & mask) as u8) << self.bit_pos;
            }
            v = v.wrapping_shr(u32::from(take));
            rem -= take;
            self.bit_pos = (self.bit_pos + take) & 7;
        }
        // Whole bytes straight into the buffer.
        while rem >= 8 {
            self.buf.push((v & 0xFF) as u8);
            v >>= 8;
            rem -= 8;
        }
        // Trailing partial byte.
        if rem > 0 {
            let mask = (1u16 << rem) - 1;
            self.buf.push(((v as u16) & mask) as u8);
            self.bit_pos = rem;
        }
    }

    /// Scalar per-bit twin of [`BitWriter::write_bits`]; the differential
    /// harness drives both on identical inputs.
    #[inline]
    pub fn write_bits_reference(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        for i in 0..n {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + usize::from(self.bit_pos)
        }
    }

    /// Finish writing and return the packed bytes (final partial byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Reads bits from a byte slice in the order [`BitWriter`] wrote them.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    byte_pos: usize,
    bit_pos: u8,
}

impl<'a> BitReader<'a> {
    /// Reader positioned at the first bit of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader {
            buf,
            byte_pos: 0,
            bit_pos: 0,
        }
    }

    /// Read one bit; returns `None` past the end of the buffer.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.buf.get(self.byte_pos)?;
        let bit = (byte >> self.bit_pos) & 1 == 1;
        self.bit_pos += 1;
        if self.bit_pos == 8 {
            self.bit_pos = 0;
            self.byte_pos += 1;
        }
        Some(bit)
    }

    /// Read `n` bits (LSB first); returns `None` if the buffer runs out.
    ///
    /// Batched form of [`BitReader::read_bits_reference`]: up to eight bits
    /// are extracted per byte with one shift-and-mask. On exhaustion it
    /// reproduces the reference failure state exactly (every remaining bit
    /// consumed: `byte_pos == buf.len()`, `bit_pos == 0`, returns `None`).
    #[inline]
    pub fn read_bits(&mut self, n: u8) -> Option<u64> {
        debug_assert!(n <= 64);
        if usize::from(n) > self.bits_remaining() {
            // The per-bit reference consumes all remaining bits before
            // reporting None; mirror that state.
            self.byte_pos = self.buf.len();
            self.bit_pos = 0;
            return None;
        }
        let mut value = 0u64;
        let mut got = 0u8;
        while got < n {
            let byte = u64::from(*self.buf.get(self.byte_pos)?);
            let take = (8 - self.bit_pos).min(n - got);
            let chunk = (byte >> self.bit_pos) & ((1u64 << take) - 1);
            value |= chunk << got;
            got += take;
            self.bit_pos += take;
            if self.bit_pos == 8 {
                self.bit_pos = 0;
                self.byte_pos += 1;
            }
        }
        Some(value)
    }

    /// Scalar per-bit twin of [`BitReader::read_bits`]; the differential
    /// harness drives both on identical inputs.
    #[inline]
    pub fn read_bits_reference(&mut self, n: u8) -> Option<u64> {
        debug_assert!(n <= 64);
        let mut value = 0u64;
        for i in 0..n {
            if self.read_bit()? {
                value |= 1 << i;
            }
        }
        Some(value)
    }

    /// Look at the next `n` bits (LSB first) without consuming them. Bits
    /// past the end of the buffer read as zero — callers gate on
    /// [`BitReader::bits_remaining`] before trusting the full window.
    /// `n` must be ≤ 57 so one eight-byte load covers any `bit_pos`.
    #[inline]
    pub fn peek_bits(&self, n: u8) -> u64 {
        debug_assert!(n <= 57);
        let mut word = [0u8; 8];
        for (dst, src) in word.iter_mut().zip(self.buf.iter().skip(self.byte_pos)) {
            *dst = *src;
        }
        let raw = u64::from_le_bytes(word) >> self.bit_pos;
        raw & ((1u64 << n) - 1)
    }

    /// Advance the cursor by `n` bits (the consuming half of a
    /// peek-then-commit decode step). `n` must not exceed
    /// [`BitReader::bits_remaining`].
    #[inline]
    pub fn consume(&mut self, n: u8) {
        debug_assert!(usize::from(n) <= self.bits_remaining());
        let total = usize::from(self.bit_pos) + usize::from(n);
        self.byte_pos = (self.byte_pos + total / 8).min(self.buf.len());
        self.bit_pos = (total % 8) as u8;
    }

    /// Number of whole bits remaining (counting padding in the final byte).
    pub fn bits_remaining(&self) -> usize {
        (self.buf.len() - self.byte_pos) * 8 - usize::from(self.bit_pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xABCD, 16);
        w.write_bits(1, 1);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(16), Some(0xABCD));
        assert_eq!(r.read_bits(1), Some(1));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn reading_past_end_returns_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0b101)); // padding bits are zero
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(4), None);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 8);
        assert_eq!(w.bit_len(), 8);
        w.write_bit(true);
        assert_eq!(w.bit_len(), 9);
    }

    #[test]
    fn batched_writer_matches_reference() {
        let values = [
            (0u64, 0u8),
            (1, 1),
            (0b101, 3),
            (0xABCD, 16),
            (0xDEAD_BEEF, 37),
            (u64::MAX, 64),
            (u64::MAX, 57),
        ];
        let mut fast = BitWriter::new();
        let mut slow = BitWriter::new();
        for &(v, n) in &values {
            fast.write_bits(v, n);
            slow.write_bits_reference(v, n);
            assert_eq!(fast.as_bytes(), slow.as_bytes());
            assert_eq!(fast.bit_len(), slow.bit_len());
        }
    }

    #[test]
    fn batched_reader_matches_reference_including_failure_state() {
        let bytes = [0xA5u8, 0x3C, 0xFF];
        let mut fast = BitReader::new(&bytes);
        let mut slow = BitReader::new(&bytes);
        for n in [3u8, 7, 1, 8, 6] {
            assert_eq!(fast.read_bits(n), slow.read_bits_reference(n));
            assert_eq!(fast.bits_remaining(), slow.bits_remaining());
        }
        // One bit left; asking for more must fail identically and leave
        // both readers fully drained.
        assert_eq!(fast.read_bits(4), slow.read_bits_reference(4));
        assert_eq!(fast.bits_remaining(), 0);
        assert_eq!(slow.bits_remaining(), 0);
    }

    #[test]
    fn peek_then_consume_matches_read_bits() {
        let bytes = [0xA5u8, 0x3C, 0xFF, 0x01];
        let mut peeker = BitReader::new(&bytes);
        let mut reader = BitReader::new(&bytes);
        for n in [5u8, 11, 3, 9] {
            let peeked = peeker.peek_bits(n);
            peeker.consume(n);
            assert_eq!(Some(peeked), reader.read_bits(n));
            assert_eq!(peeker.bits_remaining(), reader.bits_remaining());
        }
        // Peeking past the end pads with zeros.
        assert_eq!(peeker.peek_bits(16), reader.read_bits(4).unwrap_or(0));
    }

    #[test]
    fn bits_remaining_counts_down() {
        let bytes = [0xFFu8, 0x00];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits_remaining(), 16);
        r.read_bits(5);
        assert_eq!(r.bits_remaining(), 11);
    }
}
