//! Bit-granular I/O over in-memory byte buffers.
//!
//! Both the Huffman coder and the ZFP-like embedded bit-plane coder need to
//! emit codes whose lengths are not multiples of eight. Bits are packed
//! LSB-first within each byte, which keeps the write/read loops branch-light.

/// Accumulates bits into a byte vector (LSB-first within each byte).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of bits already used in the final byte (0..8); 0 means the
    /// buffer ends on a byte boundary.
    bit_pos: u8,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with pre-allocated capacity (in bytes).
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            // lint:allow(R3): encoder-side hint sized by the caller's own
            // data, never by a wire-read length
            buf: Vec::with_capacity(bytes),
            bit_pos: 0,
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.bit_pos == 0 {
            self.buf.push(0);
        }
        if bit {
            if let Some(last) = self.buf.last_mut() {
                *last |= 1 << self.bit_pos;
            }
        }
        self.bit_pos = (self.bit_pos + 1) & 7;
    }

    /// Append the `n` low bits of `value`, LSB first. `n` must be ≤ 64.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        for i in 0..n {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + usize::from(self.bit_pos)
        }
    }

    /// Finish writing and return the packed bytes (final partial byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Reads bits from a byte slice in the order [`BitWriter`] wrote them.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    byte_pos: usize,
    bit_pos: u8,
}

impl<'a> BitReader<'a> {
    /// Reader positioned at the first bit of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader {
            buf,
            byte_pos: 0,
            bit_pos: 0,
        }
    }

    /// Read one bit; returns `None` past the end of the buffer.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.buf.get(self.byte_pos)?;
        let bit = (byte >> self.bit_pos) & 1 == 1;
        self.bit_pos += 1;
        if self.bit_pos == 8 {
            self.bit_pos = 0;
            self.byte_pos += 1;
        }
        Some(bit)
    }

    /// Read `n` bits (LSB first); returns `None` if the buffer runs out.
    #[inline]
    pub fn read_bits(&mut self, n: u8) -> Option<u64> {
        debug_assert!(n <= 64);
        let mut value = 0u64;
        for i in 0..n {
            if self.read_bit()? {
                value |= 1 << i;
            }
        }
        Some(value)
    }

    /// Number of whole bits remaining (counting padding in the final byte).
    pub fn bits_remaining(&self) -> usize {
        (self.buf.len() - self.byte_pos) * 8 - usize::from(self.bit_pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xABCD, 16);
        w.write_bits(1, 1);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(16), Some(0xABCD));
        assert_eq!(r.read_bits(1), Some(1));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn reading_past_end_returns_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0b101)); // padding bits are zero
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(4), None);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 8);
        assert_eq!(w.bit_len(), 8);
        w.write_bit(true);
        assert_eq!(w.bit_len(), 9);
    }

    #[test]
    fn bits_remaining_counts_down() {
        let bytes = [0xFFu8, 0x00];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits_remaining(), 16);
        r.read_bits(5);
        assert_eq!(r.bits_remaining(), 11);
    }
}
