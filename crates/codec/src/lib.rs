//! # aesz-codec
//!
//! Lossless coding substrate for the AE-SZ reproduction.
//!
//! The paper's pipeline finishes every compressor with *Huffman encoding of
//! the quantization codes followed by Zstd*. This crate provides that stage
//! built from scratch:
//!
//! * [`bitio`] — bit-granular writer/reader over byte buffers.
//! * [`varint`] — LEB128 variable-length integers and zigzag mapping.
//! * [`huffman`] — canonical Huffman coding over arbitrary `u32` alphabets
//!   (the quantization-bin alphabet has up to 65,536 symbols).
//! * [`lz`] — `zlite`, a greedy LZ77 match coder with hash-chain search that
//!   stands in for Zstd as the final byte-oriented squeeze.
//! * [`pipeline`] — the composed stages used by the compressors:
//!   `encode_codes` (Huffman + zlite over quantization codes) and
//!   `compress_bytes` (zlite over arbitrary byte payloads).
//! * [`hash`] — a self-contained SHA-256 and the content-addressed
//!   [`ModelId`] that names trained models across streams and archives.

#![forbid(unsafe_code)]

// Wire-parsing modules (the `aesz-lint` deny-set, see the repo-root
// lint.toml) must not panic on attacker-shaped bytes; the clippy headers
// below enforce the same contract (rule R1) at the compiler level. Tests
// are exempt via clippy.toml's allow-*-in-tests keys.
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod bitio;
pub mod hash;
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod huffman;
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod lz;
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod pipeline;
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod varint;

pub use bitio::{BitReader, BitWriter};
pub use hash::{sha256, ModelId, MODEL_ID_LEN};
pub use huffman::{huffman_decode, huffman_decode_capped, huffman_encode};
pub use lz::{zlite_compress, zlite_decompress, zlite_decompress_capped};
pub use pipeline::{
    compress_bytes, decode_codes, decode_codes_capped, decompress_bytes, decompress_bytes_capped,
    encode_codes, CodecError,
};
