//! Canonical Huffman coding over `u32` alphabets.
//!
//! The SZ-style quantization stage produces a stream of bin indices drawn from
//! an alphabet of up to 65,536 symbols whose distribution is sharply peaked
//! around the zero-error bin; Huffman coding is the first entropy stage the
//! paper applies to them. Codes are canonical so only the code *lengths* per
//! symbol need to be stored in the header.

use crate::bitio::{BitReader, BitWriter};
use crate::varint::{read_uvarint, write_uvarint};
use std::collections::HashMap;

/// Maximum code length we allow before rescaling frequencies.
const MAX_CODE_LEN: u8 = 56;

/// Upper bound (exclusive) on symbol values served by the dense encode
/// tables. Covers the full quantizer alphabet (65,536 bins plus escape)
/// with headroom; wider alphabets take the hash-map reference path.
const DENSE_SYMBOL_LIMIT: usize = 1 << 17;

/// Window width (bits) of the flattened decode LUT: one peek of this many
/// bits resolves any code of length ≤ `LUT_BITS` in a single table probe.
const LUT_BITS: u8 = 12;
const LUT_SIZE: usize = 1 << 12;
/// Sentinel for unclaimed LUT slots (impossible entry: the length byte of a
/// real entry is 1..=56, never 0xFF).
const LUT_EMPTY: u64 = u64::MAX;
/// Streams with fewer symbols than this decode straight through the
/// reference loop — building the LUT would cost more than it saves.
const LUT_MIN_SYMBOLS: usize = 512;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapNode {
    weight: u64,
    /// Tie-break so the heap ordering is deterministic across runs.
    order: u32,
    index: usize,
}

impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on (weight, order).
        other
            .weight
            .cmp(&self.weight)
            .then(other.order.cmp(&self.order))
    }
}

impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Compute Huffman code lengths for the given (symbol, frequency) pairs.
fn code_lengths(freqs: &[(u32, u64)]) -> Vec<(u32, u8)> {
    let n = freqs.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![(freqs[0].0, 1)];
    }
    // Tree nodes: leaves 0..n, internal nodes appended after.
    let mut weights: Vec<u64> = freqs.iter().map(|&(_, w)| w.max(1)).collect();
    let mut parent: Vec<usize> = vec![usize::MAX; freqs.len()];
    let mut heap: std::collections::BinaryHeap<HeapNode> = freqs
        .iter()
        .enumerate()
        .map(|(i, &(_, w))| HeapNode {
            weight: w.max(1),
            // Tie-break order saturates far beyond any real alphabet (the
            // symbol space itself is only u32).
            order: u32::try_from(i).unwrap_or(u32::MAX),
            index: i,
        })
        .collect();
    let mut next_order = u32::try_from(n).unwrap_or(u32::MAX);
    while heap.len() > 1 {
        let (Some(a), Some(b)) = (heap.pop(), heap.pop()) else {
            break;
        };
        let idx = weights.len();
        weights.push(a.weight + b.weight);
        parent.push(usize::MAX);
        if let Some(p) = parent.get_mut(a.index) {
            *p = idx;
        }
        if let Some(p) = parent.get_mut(b.index) {
            *p = idx;
        }
        heap.push(HeapNode {
            weight: a.weight + b.weight,
            order: next_order,
            index: idx,
        });
        next_order += 1;
    }
    // Depth of each leaf = number of parent hops to the root.
    let mut lengths = Vec::with_capacity(freqs.len());
    for (i, &(sym, _)) in freqs.iter().enumerate() {
        let mut depth = 0u8;
        let mut node = i;
        while let Some(&up) = parent.get(node) {
            if up == usize::MAX {
                break;
            }
            node = up;
            depth = depth.saturating_add(1);
        }
        lengths.push((sym, depth.max(1)));
    }
    lengths
}

/// Assign canonical codes from (symbol, length) pairs.
/// Returns symbol → (code, length).
fn canonical_codes(lengths: &[(u32, u8)]) -> HashMap<u32, (u64, u8)> {
    let mut sorted: Vec<(u32, u8)> = lengths.to_vec();
    sorted.sort_by_key(|&(sym, len)| (len, sym));
    let mut codes = HashMap::with_capacity(sorted.len());
    let mut code: u64 = 0;
    let mut prev_len = 0u8;
    for &(sym, len) in &sorted {
        code <<= len - prev_len;
        codes.insert(sym, (code, len));
        code += 1;
        prev_len = len;
    }
    codes
}

/// Encode a slice of symbols. The output is self-describing (header with the
/// canonical table plus the packed code stream) and decodable with
/// [`huffman_decode`].
///
/// Fast path for compact alphabets (symbols < [`DENSE_SYMBOL_LIMIT`], which
/// covers every quantizer stream): frequencies are counted into a dense
/// array instead of a hash map, and emission goes through a dense
/// symbol-indexed table of pre-reversed codes so each symbol is one batched
/// [`BitWriter::write_bits`] call instead of a per-bit loop. Output bytes
/// are identical to [`huffman_encode_reference`] — scanning the dense count
/// array in index order yields exactly the sorted `(symbol, weight)` list
/// the reference builds, and writing the bit-reversed code LSB-first equals
/// writing the code MSB-first. `tests/kernel_differential.rs` locks this.
pub fn huffman_encode(symbols: &[u32]) -> Vec<u8> {
    let Some(&max_sym) = symbols.iter().max() else {
        return huffman_encode_reference(symbols);
    };
    let dense_len = match usize::try_from(max_sym) {
        Ok(max_idx) if max_idx < DENSE_SYMBOL_LIMIT => (max_idx + 1).min(DENSE_SYMBOL_LIMIT),
        _ => return huffman_encode_reference(symbols),
    };
    let mut counts = vec![0u64; dense_len];
    for &s in symbols {
        if let Some(slot) = usize::try_from(s).ok().and_then(|i| counts.get_mut(i)) {
            *slot += 1;
        }
    }
    let mut freqs: Vec<(u32, u64)> = Vec::new();
    for (i, &w) in counts.iter().enumerate() {
        if w != 0 {
            freqs.push((u32::try_from(i).unwrap_or(u32::MAX), w));
        }
    }

    let mut lengths = code_lengths(&freqs);
    if lengths.iter().any(|&(_, l)| l > MAX_CODE_LEN) {
        let rescaled: Vec<(u32, u64)> = freqs
            .iter()
            .map(|&(s, w)| (s, (w as f64).sqrt().ceil() as u64))
            .collect();
        lengths = code_lengths(&rescaled);
    }
    let codes = canonical_codes(&lengths);

    let mut out = Vec::new();
    write_uvarint(&mut out, symbols.len() as u64);
    write_uvarint(&mut out, lengths.len() as u64);
    let mut sorted = lengths.clone();
    sorted.sort_unstable_by_key(|&(sym, _)| sym);
    let mut prev = 0u64;
    for &(sym, len) in &sorted {
        write_uvarint(&mut out, sym as u64 - prev);
        out.push(len);
        prev = sym as u64;
    }

    if lengths.len() <= 1 {
        write_uvarint(&mut out, 0);
        return out;
    }

    // Dense emission table: entry = (bit-reversed code << 8) | length, so
    // the hot loop is one lookup plus one batched write per symbol. A
    // length byte of zero marks "no code" and is unreachable for any input
    // symbol (the table was built from them).
    let mut emit = vec![0u64; dense_len.min(DENSE_SYMBOL_LIMIT)];
    for (&sym, &(code, len)) in &codes {
        let rev = code.reverse_bits() >> (64 - u32::from(len.max(1)));
        if let Some(slot) = usize::try_from(sym).ok().and_then(|i| emit.get_mut(i)) {
            *slot = (rev << 8) | u64::from(len);
        }
    }
    let mut bits = BitWriter::with_capacity(symbols.len() / 2 + 16);
    for &s in symbols {
        let entry = usize::try_from(s)
            .ok()
            .and_then(|i| emit.get(i))
            .copied()
            .unwrap_or(0);
        debug_assert!(entry != 0, "every input symbol has a code");
        bits.write_bits(entry >> 8, (entry & 0xFF) as u8);
    }
    let payload = bits.into_bytes();
    write_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Scalar twin of [`huffman_encode`]: hash-map frequency counting and
/// per-bit MSB-first emission. Also serves as the fallback for alphabets
/// too wide for the dense tables. The differential harness asserts both
/// paths produce identical bytes.
pub fn huffman_encode_reference(symbols: &[u32]) -> Vec<u8> {
    let mut freq: HashMap<u32, u64> = HashMap::new();
    for &s in symbols {
        *freq.entry(s).or_insert(0) += 1;
    }
    let mut freqs: Vec<(u32, u64)> = freq.into_iter().collect();
    freqs.sort_unstable();

    let mut lengths = code_lengths(&freqs);
    // Extremely skewed distributions on huge inputs could exceed the writer's
    // 64-bit code limit; flatten the tail by rescaling frequencies if so.
    if lengths.iter().any(|&(_, l)| l > MAX_CODE_LEN) {
        let rescaled: Vec<(u32, u64)> = freqs
            .iter()
            .map(|&(s, w)| (s, (w as f64).sqrt().ceil() as u64))
            .collect();
        lengths = code_lengths(&rescaled);
    }
    let codes = canonical_codes(&lengths);

    let mut out = Vec::new();
    write_uvarint(&mut out, symbols.len() as u64);
    write_uvarint(&mut out, lengths.len() as u64);
    // Delta-encode the sorted symbol values to keep the table small.
    let mut sorted = lengths.clone();
    sorted.sort_unstable_by_key(|&(sym, _)| sym);
    let mut prev = 0u64;
    for &(sym, len) in &sorted {
        write_uvarint(&mut out, sym as u64 - prev);
        out.push(len);
        prev = sym as u64;
    }

    if lengths.len() <= 1 {
        // Degenerate alphabet: the count and the single table entry say it all.
        write_uvarint(&mut out, 0);
        return out;
    }

    let mut bits = BitWriter::with_capacity(symbols.len() / 2 + 16);
    for &s in symbols {
        let Some(&(code, len)) = codes.get(&s) else {
            // Impossible by construction (the table was built from these
            // symbols); skipping would still yield a stream the decoder
            // rejects by count, not a panic.
            debug_assert!(false, "every input symbol has a code");
            continue;
        };
        // Canonical codes are MSB-first; emit them that way so the decoder can
        // grow the prefix bit by bit.
        for i in (0..len).rev() {
            bits.write_bit((code >> i) & 1 == 1);
        }
    }
    let payload = bits.into_bytes();
    write_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Decode a buffer produced by [`huffman_encode`].
/// Returns `None` if the buffer is malformed or truncated.
///
/// The declared symbol count is trusted for the degenerate single-symbol
/// layout, whose output size a tiny input can inflate arbitrarily — decode
/// untrusted bytes with [`huffman_decode_capped`] instead.
pub fn huffman_decode(buf: &[u8]) -> Option<Vec<u32>> {
    huffman_decode_capped(buf, usize::MAX)
}

/// [`huffman_decode`] with an upper bound on the declared symbol count.
///
/// Returns `None` when the stream is malformed *or* declares more than
/// `max_symbols` symbols, so a corrupt count prefix on untrusted input is
/// rejected before any symbol-count-sized allocation happens.
pub fn huffman_decode_capped(buf: &[u8], max_symbols: usize) -> Option<Vec<u32>> {
    let mut pos = 0usize;
    let count = read_uvarint(buf, &mut pos)?;
    if count > max_symbols as u64 {
        return None;
    }
    let count = usize::try_from(count).ok()?;
    let table_len = usize::try_from(read_uvarint(buf, &mut pos)?).ok()?;
    if count == 0 {
        return Some(Vec::new());
    }
    // Every table entry occupies at least two bytes (delta varint + length),
    // so a table longer than the remaining input is malformed.
    if table_len.checked_mul(2)? > buf.len().saturating_sub(pos) {
        return None;
    }
    let mut lengths = Vec::with_capacity(table_len);
    let mut prev = 0u64;
    for _ in 0..table_len {
        let delta = read_uvarint(buf, &mut pos)?;
        let len = *buf.get(pos)?;
        pos += 1;
        // The encoder only emits code lengths 1..=MAX_CODE_LEN; anything else
        // would overflow the canonical-code shifts below.
        if len == 0 || len > MAX_CODE_LEN {
            return None;
        }
        let sym = prev.checked_add(delta)?;
        lengths.push((u32::try_from(sym).ok()?, len));
        prev = sym;
    }
    let payload_len = usize::try_from(read_uvarint(buf, &mut pos)?).ok()?;
    let payload = buf.get(pos..pos.checked_add(payload_len)?)?;

    if table_len == 1 {
        // Degenerate alphabet: the payload carries `count` copies of one symbol.
        return Some(vec![lengths[0].0; count]);
    }

    let codes = canonical_codes(&lengths);
    // Invert to (length, code) → symbol for prefix matching.
    let mut decode: HashMap<(u8, u64), u32> = HashMap::with_capacity(codes.len());
    let mut max_len = 0u8;
    for (&sym, &(code, len)) in &codes {
        decode.insert((len, code), sym);
        max_len = max_len.max(len);
    }
    // Flattened LUT: peeking LUT_BITS bits resolves any code of length
    // ≤ LUT_BITS in one probe. Short streams skip the build cost.
    let lut = if count >= LUT_MIN_SYMBOLS {
        Some(build_decode_lut(&codes))
    } else {
        None
    };

    // Each symbol consumes at least one payload bit; clamp the hint so a
    // corrupt count cannot force a huge allocation before the bit reader
    // runs out of input.
    let mut out = Vec::with_capacity(count.min(payload.len().saturating_mul(8)));
    let mut reader = BitReader::new(payload);
    'symbols: while out.len() < count {
        if let Some(lut) = &lut {
            if reader.bits_remaining() >= usize::from(LUT_BITS) {
                let window = reader.peek_bits(LUT_BITS);
                let entry = usize::try_from(window)
                    .ok()
                    .and_then(|i| lut.get(i))
                    .copied()
                    .unwrap_or(LUT_EMPTY);
                if entry != LUT_EMPTY {
                    reader.consume((entry & 0xFF) as u8);
                    out.push(u32::try_from(entry >> 8).ok()?);
                    continue 'symbols;
                }
            }
        }
        // Long-code / stream-tail fallback: the scalar reference loop, one
        // bit at a time against the (length, code) map. A LUT miss leaves
        // the reader untouched, so this re-reads the same bits the peek saw.
        let mut code: u64 = 0;
        let mut len: u8 = 0;
        loop {
            let bit = reader.read_bit()?;
            code = (code << 1) | u64::from(bit);
            len += 1;
            if len > max_len {
                return None;
            }
            if let Some(&sym) = decode.get(&(len, code)) {
                out.push(sym);
                continue 'symbols;
            }
        }
    }
    Some(out)
}

/// Build the flattened decode LUT: for every window value whose leading
/// bits spell a code of length ≤ [`LUT_BITS`] (MSB-first in code space,
/// which is LSB-first in the reader's peek window), store
/// `(symbol << 8) | length`. Slots are claimed in ascending
/// `(length, code)` order and never overwritten, so the shortest matching
/// code wins — exactly the reference loop's first-match semantics. Entries
/// whose code value overflows its own length (possible only for hostile
/// over-full tables) are unreachable in the reference and are skipped here.
fn build_decode_lut(codes: &HashMap<u32, (u64, u8)>) -> Vec<u64> {
    let mut entries: Vec<(u8, u64, u32)> = codes
        .iter()
        .filter(|&(_, &(code, len))| len <= LUT_BITS && code >> len == 0)
        .map(|(&sym, &(code, len))| (len, code, sym))
        .collect();
    entries.sort_unstable();
    let mut lut = vec![LUT_EMPTY; LUT_SIZE];
    for &(len, code, sym) in &entries {
        let rev = code.reverse_bits() >> (64 - u32::from(len.max(1)));
        let step = 1usize << len.min(LUT_BITS);
        let mut idx = usize::try_from(rev).unwrap_or(LUT_SIZE);
        while idx < LUT_SIZE {
            if let Some(slot) = lut.get_mut(idx) {
                if *slot == LUT_EMPTY {
                    *slot = (u64::from(sym) << 8) | u64::from(len);
                }
            }
            idx += step;
        }
    }
    lut
}

/// Scalar twin of [`huffman_decode_capped`]: identical header parsing and
/// validation, but the symbol loop reads one bit at a time against the
/// `(length, code)` map with no LUT. The differential harness asserts both
/// decoders agree on every stream, hostile inputs included.
pub fn huffman_decode_capped_reference(buf: &[u8], max_symbols: usize) -> Option<Vec<u32>> {
    let mut pos = 0usize;
    let count = read_uvarint(buf, &mut pos)?;
    if count > max_symbols as u64 {
        return None;
    }
    let count = usize::try_from(count).ok()?;
    let table_len = usize::try_from(read_uvarint(buf, &mut pos)?).ok()?;
    if count == 0 {
        return Some(Vec::new());
    }
    if table_len.checked_mul(2)? > buf.len().saturating_sub(pos) {
        return None;
    }
    let mut lengths = Vec::with_capacity(table_len);
    let mut prev = 0u64;
    for _ in 0..table_len {
        let delta = read_uvarint(buf, &mut pos)?;
        let len = *buf.get(pos)?;
        pos += 1;
        if len == 0 || len > MAX_CODE_LEN {
            return None;
        }
        let sym = prev.checked_add(delta)?;
        lengths.push((u32::try_from(sym).ok()?, len));
        prev = sym;
    }
    let payload_len = usize::try_from(read_uvarint(buf, &mut pos)?).ok()?;
    let payload = buf.get(pos..pos.checked_add(payload_len)?)?;

    if table_len == 1 {
        return Some(vec![lengths[0].0; count]);
    }

    let codes = canonical_codes(&lengths);
    let mut decode: HashMap<(u8, u64), u32> = HashMap::with_capacity(codes.len());
    let mut max_len = 0u8;
    for (&sym, &(code, len)) in &codes {
        decode.insert((len, code), sym);
        max_len = max_len.max(len);
    }

    let mut out = Vec::with_capacity(count.min(payload.len().saturating_mul(8)));
    let mut reader = BitReader::new(payload);
    let mut code: u64 = 0;
    let mut len: u8 = 0;
    while out.len() < count {
        let bit = reader.read_bit()?;
        code = (code << 1) | u64::from(bit);
        len += 1;
        if len > max_len {
            return None;
        }
        if let Some(&sym) = decode.get(&(len, code)) {
            out.push(sym);
            code = 0;
            len = 0;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let enc = huffman_encode(&[]);
        assert_eq!(huffman_decode(&enc), Some(vec![]));
    }

    #[test]
    fn single_symbol_alphabet() {
        let data = vec![7u32; 1000];
        let enc = huffman_encode(&data);
        assert!(
            enc.len() < 40,
            "degenerate stream should be tiny: {}",
            enc.len()
        );
        assert_eq!(huffman_decode(&enc), Some(data));
    }

    #[test]
    fn two_symbols_roundtrip() {
        let data: Vec<u32> = (0..257).map(|i| if i % 3 == 0 { 5 } else { 9 }).collect();
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc), Some(data));
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 95% of symbols are the centre bin, like real quantization codes.
        let mut data = Vec::new();
        for i in 0..10_000u32 {
            data.push(if i % 20 == 0 { 32768 + (i % 7) } else { 32768 });
        }
        let enc = huffman_encode(&data);
        assert!(
            enc.len() < data.len(), // ≪ 4 bytes/symbol
            "skewed stream should compress well: {} bytes for {} symbols",
            enc.len(),
            data.len()
        );
        assert_eq!(huffman_decode(&enc), Some(data));
    }

    #[test]
    fn wide_alphabet_roundtrip() {
        let data: Vec<u32> = (0..5000)
            .map(|i| (i * 2654435761u64 % 60000) as u32)
            .collect();
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc), Some(data));
    }

    #[test]
    fn capped_decode_rejects_oversized_counts() {
        let data: Vec<u32> = (0..500).map(|i| i % 7).collect();
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode_capped(&enc, 500), Some(data));
        assert_eq!(huffman_decode_capped(&enc, 499), None);
        // Degenerate single-symbol streams are the cheapest amplification
        // vector: a few bytes can declare billions of symbols.
        let degenerate = huffman_encode(&vec![42u32; 100]);
        assert_eq!(huffman_decode_capped(&degenerate, 99), None);
        let mut hostile = Vec::new();
        write_uvarint(&mut hostile, u64::MAX); // count
        write_uvarint(&mut hostile, 1); // table_len
        assert_eq!(huffman_decode_capped(&hostile, 1 << 20), None);
    }

    #[test]
    fn table_longer_than_input_is_rejected() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 10); // count
        write_uvarint(&mut buf, u32::MAX as u64); // table_len ≫ input
        buf.extend_from_slice(&[0u8; 16]);
        assert_eq!(huffman_decode(&buf), None);
    }

    #[test]
    fn truncated_stream_fails_cleanly() {
        let data: Vec<u32> = (0..100).map(|i| i % 17).collect();
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc[..enc.len() - 3]), None);
        assert_eq!(huffman_decode(&enc[..2]), None);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let lengths = vec![(0u32, 2u8), (1, 2), (2, 3), (3, 3), (4, 3), (5, 3)];
        let codes = canonical_codes(&lengths);
        let items: Vec<(u64, u8)> = codes.values().copied().collect();
        for (i, &(ca, la)) in items.iter().enumerate() {
            for (j, &(cb, lb)) in items.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (short, slen, long, llen) = if la <= lb {
                    (ca, la, cb, lb)
                } else {
                    (cb, lb, ca, la)
                };
                assert_ne!(
                    short,
                    long >> (llen - slen),
                    "code {short:b} is a prefix of {long:b}"
                );
            }
        }
    }

    #[test]
    fn determinism() {
        let data: Vec<u32> = (0..4096).map(|i| i % 97).collect();
        assert_eq!(huffman_encode(&data), huffman_encode(&data));
    }

    #[test]
    fn dense_encode_matches_reference() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![7; 1000],
            (0..257).map(|i| if i % 3 == 0 { 5 } else { 9 }).collect(),
            (0..10_000u32)
                .map(|i| if i % 20 == 0 { 32768 + (i % 7) } else { 32768 })
                .collect(),
            (0..5000)
                .map(|i| (i * 2654435761u64 % 60000) as u32)
                .collect(),
            // Beyond the dense limit: both sides take the hash-map path.
            vec![u32::MAX, 0, u32::MAX, 1],
        ];
        for data in cases {
            assert_eq!(huffman_encode(&data), huffman_encode_reference(&data));
        }
    }

    #[test]
    fn lut_decode_matches_reference() {
        // Large enough that the LUT path is active (count ≥ 512) with a
        // wide alphabet so both short and long codes occur.
        let data: Vec<u32> = (0..20_000u64)
            .map(|i| {
                if i % 3 == 0 {
                    100
                } else {
                    (i * 2654435761 % 60000) as u32
                }
            })
            .collect();
        let enc = huffman_encode(&data);
        assert_eq!(
            huffman_decode_capped(&enc, usize::MAX),
            huffman_decode_capped_reference(&enc, usize::MAX)
        );
        assert_eq!(huffman_decode(&enc), Some(data));
        // Truncated streams must fail identically.
        let cut = &enc[..enc.len() - 4];
        assert_eq!(
            huffman_decode_capped(cut, usize::MAX),
            huffman_decode_capped_reference(cut, usize::MAX)
        );
    }

    #[test]
    fn hostile_overfull_table_decodes_identically() {
        // Hand-built header: 3 symbols all claiming length 1 (violates
        // Kraft). The canonical assignment gives the third symbol a code
        // value that overflows its length; both decoders must treat it as
        // unreachable and agree bit for bit.
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 600); // count (LUT path active)
        write_uvarint(&mut buf, 3); // table_len
        for delta in [0u64, 1, 1] {
            write_uvarint(&mut buf, delta);
            buf.push(1); // length 1 for every symbol
        }
        let payload = vec![0b0101_0101u8; 80];
        write_uvarint(&mut buf, payload.len() as u64);
        buf.extend_from_slice(&payload);
        assert_eq!(
            huffman_decode_capped(&buf, usize::MAX),
            huffman_decode_capped_reference(&buf, usize::MAX)
        );
    }
}
