//! LEB128 variable-length integers and zigzag mapping.
//!
//! Headers, block metadata and token streams store lengths and signed
//! residuals compactly with these helpers.

/// Append `value` as an unsigned LEB128 varint.
pub fn write_uvarint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint starting at `pos`; advances `pos`.
/// Returns `None` on truncated input or overlong (>10 byte) encodings.
pub fn read_uvarint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift >= 70 {
            return None;
        }
    }
}

/// Map a signed integer to an unsigned one with small magnitudes staying small.
#[inline]
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Append a signed varint (zigzag + LEB128).
pub fn write_ivarint(buf: &mut Vec<u8>, value: i64) {
    write_uvarint(buf, zigzag(value));
}

/// Read a signed varint written by [`write_ivarint`].
pub fn read_ivarint(buf: &[u8], pos: &mut usize) -> Option<i64> {
    read_uvarint(buf, pos).map(unzigzag)
}

/// Append a `f32` as 4 little-endian bytes.
pub fn write_f32(buf: &mut Vec<u8>, value: f32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Read a `f32` written by [`write_f32`].
pub fn read_f32(buf: &[u8], pos: &mut usize) -> Option<f32> {
    let bytes = buf.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
}

/// Append a `f64` as 8 little-endian bytes.
pub fn write_f64(buf: &mut Vec<u8>, value: f64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Read a `f64` written by [`write_f64`].
pub fn read_f64(buf: &[u8], pos: &mut usize) -> Option<f64> {
    let bytes = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(f64::from_le_bytes([
        bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_roundtrip_edge_values() {
        for &v in &[0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn uvarint_truncated_returns_none() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 1 << 20);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_is_involutive_and_compact() {
        for &v in &[0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -12345, 99999] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn ivarint_roundtrip() {
        let values = [-1_000_000i64, -1, 0, 1, 65_535, i64::MIN, i64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            write_ivarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_ivarint(&buf, &mut pos), Some(v));
        }
    }

    #[test]
    fn float_roundtrip() {
        let mut buf = Vec::new();
        write_f32(&mut buf, -3.25);
        write_f64(&mut buf, 1e-300);
        let mut pos = 0;
        assert_eq!(read_f32(&buf, &mut pos), Some(-3.25));
        assert_eq!(read_f64(&buf, &mut pos), Some(1e-300));
        assert_eq!(read_f32(&buf, &mut pos), None);
    }
}
