//! Content hashing for stable artifact identity.
//!
//! The model lifecycle stores trained networks *separately* from the
//! compressed data (the paper's Fig. 2 split), so streams and archives need a
//! way to name the exact network that produced them. [`ModelId`] is that
//! name: the first 16 bytes of the SHA-256 digest of the model's serialized
//! bytes. Content addressing makes the id stable across machines, processes
//! and re-serialization — two byte-identical model files always share one id,
//! and any corruption of the bytes changes it.
//!
//! The SHA-256 implementation is self-contained (the build environment is
//! offline, so no hashing crate is available) and matches FIPS 180-4; the
//! test vectors below pin the empty-string and `"abc"` digests.

/// First 32 bits of the fractional parts of the cube roots of the first 64
/// primes (the SHA-256 round constants).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

fn compress_block(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (i, c) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.wrapping_add(v);
    }
}

/// SHA-256 digest of `bytes` (FIPS 180-4).
pub fn sha256(bytes: &[u8]) -> [u8; 32] {
    // Initial state: fractional parts of the square roots of the first 8 primes.
    let mut state: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut chunks = bytes.chunks_exact(64);
    for block in chunks.by_ref() {
        compress_block(&mut state, block);
    }
    // Padding: 0x80, zeros, and the bit length as a big-endian u64.
    let rem = chunks.remainder();
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_len = if rem.len() < 56 { 64 } else { 128 };
    let bit_len = (bytes.len() as u64).wrapping_mul(8);
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    for block in tail[..tail_len].chunks_exact(64) {
        compress_block(&mut state, block);
    }
    let mut out = [0u8; 32];
    for (i, s) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&s.to_be_bytes());
    }
    out
}

/// Content-addressed identity of a serialized model: the first 16 bytes of
/// the SHA-256 digest of the model's serialized bytes.
///
/// The id is part of the wire formats that carry model provenance (the
/// AE-SZ `AESZ0003` stream header, the AE-A/AE-B payload headers, the `AESM`
/// model frame and the `AESA` v2 archive model section), so its derivation
/// must never change. Displayed as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId([u8; 16]);

/// Encoded size of a [`ModelId`] in every wire format that carries one.
pub const MODEL_ID_LEN: usize = 16;

impl ModelId {
    /// The id of a serialized model: truncated SHA-256 of its bytes.
    pub fn of(serialized: &[u8]) -> ModelId {
        let digest = sha256(serialized);
        let mut id = [0u8; MODEL_ID_LEN];
        id.copy_from_slice(&digest[..MODEL_ID_LEN]);
        ModelId(id)
    }

    /// Wrap raw id bytes read from a stream.
    pub fn from_bytes(bytes: [u8; MODEL_ID_LEN]) -> ModelId {
        ModelId(bytes)
    }

    /// Read an id from the first [`MODEL_ID_LEN`] bytes of a buffer —
    /// the shape every wire format stores ids in. `None` when the buffer is
    /// too short.
    pub fn from_prefix(bytes: &[u8]) -> Option<ModelId> {
        let prefix = bytes.get(..MODEL_ID_LEN)?;
        let mut raw = [0u8; MODEL_ID_LEN];
        raw.copy_from_slice(prefix);
        Some(ModelId(raw))
    }

    /// The raw id bytes, as written into stream headers.
    pub fn as_bytes(&self) -> &[u8; MODEL_ID_LEN] {
        &self.0
    }

    /// Parse the 32-hex-digit form produced by `Display` (how sidecar model
    /// files are named).
    pub fn from_hex(s: &str) -> Option<ModelId> {
        let s = s.as_bytes();
        if s.len() != 2 * MODEL_ID_LEN {
            return None;
        }
        let nibble = |c: u8| -> Option<u8> {
            match c {
                b'0'..=b'9' => Some(c - b'0'),
                b'a'..=b'f' => Some(c - b'a' + 10),
                b'A'..=b'F' => Some(c - b'A' + 10),
                _ => None,
            }
        };
        let mut id = [0u8; MODEL_ID_LEN];
        for (i, pair) in s.chunks_exact(2).enumerate() {
            id[i] = nibble(pair[0])? << 4 | nibble(pair[1])?;
        }
        Some(ModelId(id))
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_handles_every_padding_boundary() {
        // Lengths straddling the 55/56 and 63/64 byte padding cases must not
        // panic and must all be distinct.
        let mut seen = std::collections::HashSet::new();
        for len in 0..200 {
            let digest = sha256(&vec![0xabu8; len]);
            assert!(seen.insert(digest), "digest collision at length {len}");
        }
    }

    #[test]
    fn model_id_roundtrips_through_hex() {
        let id = ModelId::of(b"some serialized model");
        let hexed = id.to_string();
        assert_eq!(hexed.len(), 32);
        assert_eq!(ModelId::from_hex(&hexed), Some(id));
        assert_eq!(ModelId::from_hex(&hexed.to_uppercase()), Some(id));
        assert_eq!(ModelId::from_hex("tooshort"), None);
        assert_eq!(ModelId::from_hex(&"g".repeat(32)), None);
        assert_eq!(ModelId::from_bytes(*id.as_bytes()), id);
    }

    #[test]
    fn distinct_content_gets_distinct_ids() {
        assert_ne!(ModelId::of(b"model a"), ModelId::of(b"model b"));
        assert_eq!(ModelId::of(b"model a"), ModelId::of(b"model a"));
    }
}
