//! `zlite`: a greedy LZ77 match coder with hash-chain search.
//!
//! AE-SZ finishes its pipeline with Zstd on top of the Huffman-coded
//! quantization bins. Zstd itself is out of scope to rebuild faithfully, so
//! `zlite` plays the same role: a byte-oriented dictionary coder that removes
//! the repetitiveness Huffman cannot see (runs of identical codes, repeated
//! block headers, …). The format is:
//!
//! ```text
//! uvarint original_len
//! tokens*:
//!   literal run:  0x00, uvarint len, len raw bytes
//!   match:        0x01, uvarint len (>= MIN_MATCH), uvarint distance (>= 1)
//! ```
//!
//! Matching uses a 4-byte hash chained over previous positions, with a bounded
//! chain walk so worst-case inputs stay linear in practice.

use crate::varint::{read_uvarint, write_uvarint};

/// Minimum match length worth emitting (shorter matches cost more than literals).
const MIN_MATCH: usize = 4;
/// Maximum match length (keeps token lengths bounded; longer repeats split).
const MAX_MATCH: usize = 1 << 16;
/// Window size: how far back matches may reach.
const WINDOW: usize = 1 << 20;
/// Maximum number of chain links examined per position.
const MAX_CHAIN: usize = 32;

const HASH_BITS: u32 = 16;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash4(data: &[u8], pos: usize) -> usize {
    let w = data
        .get(pos..pos + 4)
        .map_or([0; 4], |w| [w[0], w[1], w[2], w[3]]);
    // The fold keeps HASH_BITS (= 16) significant bits, so the hash fits a
    // u16 and widens losslessly.
    let folded = (u32::from_le_bytes(w).wrapping_mul(2654435761) >> (32 - HASH_BITS)) as u16;
    usize::from(folded)
}

/// Widen a stored chain stamp to an index. `u32` always fits `usize` on the
/// platforms we build for; the fallback is the empty-chain sentinel.
#[inline]
fn stamp_to_index(v: u32) -> usize {
    usize::try_from(v).unwrap_or(0)
}

/// Record position `p` in the hash chain. Positions past `u32::MAX - 1` are
/// silently not indexed (matches are simply not found there) rather than
/// wrapping into a bogus chain entry.
#[inline]
fn chain_insert(head: &mut [u32], prev: &mut [u32], h: usize, p: usize) {
    let Ok(stamp) = u32::try_from(p + 1) else {
        return;
    };
    let old = head.get(h).copied().unwrap_or(0);
    if let Some(slot) = prev.get_mut(p % prev.len().max(1)) {
        *slot = old;
    }
    if let Some(slot) = head.get_mut(h) {
        *slot = stamp;
    }
}

/// Compress a byte buffer with greedy LZ77.
pub fn zlite_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    write_uvarint(&mut out, data.len() as u64);
    if data.is_empty() {
        return out;
    }

    // head[h] = most recent position with hash h (+1, 0 = empty);
    // prev[i % WINDOW] = previous position with the same hash as i.
    let mut head = vec![0u32; HASH_SIZE];
    let mut prev = vec![0u32; data.len().min(WINDOW)];

    let mut literals: Vec<u8> = Vec::new();
    let mut pos = 0usize;

    let flush_literals = |out: &mut Vec<u8>, literals: &mut Vec<u8>| {
        if !literals.is_empty() {
            out.push(0x00);
            write_uvarint(out, literals.len() as u64);
            out.extend_from_slice(literals);
            literals.clear();
        }
    };

    let prev_len = prev.len();
    while pos < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if pos + MIN_MATCH <= data.len() {
            let h = hash4(data, pos);
            let mut candidate = stamp_to_index(head.get(h).copied().unwrap_or(0));
            let mut chain = 0;
            while candidate > 0 && chain < MAX_CHAIN {
                let cand_pos = candidate - 1;
                if cand_pos >= pos || pos - cand_pos > WINDOW.min(pos) {
                    break;
                }
                // Extend the match: both windows end before `data.len()`
                // because `cand_pos < pos`, so the `get`s always succeed.
                let limit = (data.len() - pos).min(MAX_MATCH);
                let len = match (
                    data.get(cand_pos..cand_pos + limit),
                    data.get(pos..pos + limit),
                ) {
                    (Some(cand), Some(cur)) => {
                        cand.iter().zip(cur).take_while(|(a, b)| a == b).count()
                    }
                    _ => 0,
                };
                if len > best_len {
                    best_len = len;
                    best_dist = pos - cand_pos;
                    if len >= limit {
                        break;
                    }
                }
                candidate = stamp_to_index(prev.get(cand_pos % prev_len).copied().unwrap_or(0));
                chain += 1;
            }
        }

        if best_len >= MIN_MATCH {
            flush_literals(&mut out, &mut literals);
            out.push(0x01);
            write_uvarint(&mut out, best_len as u64);
            write_uvarint(&mut out, best_dist as u64);
            // Insert hash entries for the skipped positions so later matches
            // can still reference them.
            let end = pos + best_len;
            while pos < end && pos + MIN_MATCH <= data.len() {
                chain_insert(&mut head, &mut prev, hash4(data, pos), pos);
                pos += 1;
            }
            pos = end;
        } else {
            if pos + MIN_MATCH <= data.len() {
                chain_insert(&mut head, &mut prev, hash4(data, pos), pos);
            }
            if let Some(&b) = data.get(pos) {
                literals.push(b);
            }
            pos += 1;
        }
    }
    flush_literals(&mut out, &mut literals);
    out
}

/// Decompress a buffer produced by [`zlite_compress`].
/// Returns `None` on malformed input.
pub fn zlite_decompress(buf: &[u8]) -> Option<Vec<u8>> {
    zlite_decompress_capped(buf, usize::MAX)
}

/// [`zlite_decompress`] with an upper bound on the declared output size.
///
/// Returns `None` when the stream is malformed *or* declares more than
/// `max_len` output bytes. Decoders of untrusted input should pass the
/// largest size a valid payload could have, so a corrupt length prefix is
/// rejected up front instead of driving a huge allocation.
pub fn zlite_decompress_capped(buf: &[u8], max_len: usize) -> Option<Vec<u8>> {
    let mut pos = 0usize;
    let original_len = read_uvarint(buf, &mut pos)?;
    if original_len > max_len as u64 {
        return None;
    }
    // Checked above against `max_len: usize`, so this conversion cannot fail;
    // `try_from` still guards 32-bit targets where the cap itself is smaller.
    let original_len = usize::try_from(original_len).ok()?;
    // The capacity is only a hint: clamp it so a corrupt prefix that slipped
    // past a permissive cap still cannot abort the process on allocation.
    let mut out = Vec::with_capacity(original_len.min(buf.len().saturating_mul(8).max(4096)));
    while out.len() < original_len {
        let tag = *buf.get(pos)?;
        pos += 1;
        match tag {
            0x00 => {
                let len = usize::try_from(read_uvarint(buf, &mut pos)?).ok()?;
                let bytes = buf.get(pos..pos.checked_add(len)?)?;
                pos += len;
                out.extend_from_slice(bytes);
            }
            0x01 => {
                let len = usize::try_from(read_uvarint(buf, &mut pos)?).ok()?;
                let dist = usize::try_from(read_uvarint(buf, &mut pos)?).ok()?;
                if dist == 0 || dist > out.len() || !(MIN_MATCH..=MAX_MATCH).contains(&len) {
                    return None;
                }
                let start = out.len() - dist;
                if dist >= len {
                    // Disjoint source: one bulk copy. The range is in
                    // bounds by the validation above (start + len ≤
                    // out.len() exactly when len ≤ dist).
                    out.extend_from_within(start..start + len);
                } else {
                    // Overlapping copy (common for runs): the source grows
                    // as we append, so copy in doubling chunks — each
                    // chunk's source range ends at the pre-chunk length.
                    let mut src = start;
                    let mut remaining = len;
                    while remaining > 0 {
                        let chunk = (out.len() - src).min(remaining);
                        out.extend_from_within(src..src + chunk);
                        src += chunk;
                        remaining -= chunk;
                    }
                }
            }
            _ => return None,
        }
    }
    if out.len() == original_len {
        Some(out)
    } else {
        None
    }
}

/// Scalar twin of [`zlite_decompress_capped`]: identical parsing and
/// validation, with matches copied one byte at a time. The differential
/// harness asserts both decoders agree on every stream.
pub fn zlite_decompress_capped_reference(buf: &[u8], max_len: usize) -> Option<Vec<u8>> {
    let mut pos = 0usize;
    let original_len = read_uvarint(buf, &mut pos)?;
    if original_len > max_len as u64 {
        return None;
    }
    let original_len = usize::try_from(original_len).ok()?;
    let mut out = Vec::with_capacity(original_len.min(buf.len().saturating_mul(8).max(4096)));
    while out.len() < original_len {
        let tag = *buf.get(pos)?;
        pos += 1;
        match tag {
            0x00 => {
                let len = usize::try_from(read_uvarint(buf, &mut pos)?).ok()?;
                let bytes = buf.get(pos..pos.checked_add(len)?)?;
                pos += len;
                out.extend_from_slice(bytes);
            }
            0x01 => {
                let len = usize::try_from(read_uvarint(buf, &mut pos)?).ok()?;
                let dist = usize::try_from(read_uvarint(buf, &mut pos)?).ok()?;
                if dist == 0 || dist > out.len() || !(MIN_MATCH..=MAX_MATCH).contains(&len) {
                    return None;
                }
                let start = out.len() - dist;
                // Overlapping copies are valid (and common for runs).
                for i in 0..len {
                    let b = *out.get(start + i)?;
                    out.push(b);
                }
            }
            _ => return None,
        }
    }
    if out.len() == original_len {
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8]) {
        let enc = zlite_compress(data);
        let dec = zlite_decompress(&enc).expect("roundtrip must decode");
        assert_eq!(dec, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(&[]);
        roundtrip(&[42]);
        roundtrip(&[1, 2, 3]);
    }

    #[test]
    fn run_of_identical_bytes_compresses_hard() {
        let data = vec![7u8; 100_000];
        let enc = zlite_compress(&data);
        assert!(enc.len() < 100, "run should collapse: {} bytes", enc.len());
        roundtrip(&data);
    }

    #[test]
    fn repeating_pattern_compresses() {
        let pattern: Vec<u8> = (0..64u8).collect();
        let data: Vec<u8> = pattern.iter().cycle().take(64 * 200).copied().collect();
        let enc = zlite_compress(&data);
        assert!(enc.len() < data.len() / 10);
        roundtrip(&data);
    }

    #[test]
    fn incompressible_random_data_roundtrips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let data: Vec<u8> = (0..50_000).map(|_| rng.gen()).collect();
        let enc = zlite_compress(&data);
        // Random bytes should expand only slightly (literal-run overhead).
        assert!(enc.len() < data.len() + data.len() / 16 + 64);
        roundtrip(&data);
    }

    #[test]
    fn overlapping_match_is_handled() {
        // "abcabcabc..." forces matches with distance 3 < length.
        let data: Vec<u8> = b"abc".iter().cycle().take(3000).copied().collect();
        roundtrip(&data);
    }

    #[test]
    fn mixed_structured_payload() {
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(&(i / 7).to_le_bytes());
        }
        let enc = zlite_compress(&data);
        assert!(enc.len() < data.len() / 2);
        roundtrip(&data);
    }

    #[test]
    fn capped_decode_rejects_oversized_declarations() {
        let data = vec![3u8; 4096];
        let enc = zlite_compress(&data);
        // Honest size passes, one byte less fails.
        assert_eq!(zlite_decompress_capped(&enc, 4096), Some(data));
        assert_eq!(zlite_decompress_capped(&enc, 4095), None);
        // A stream declaring an absurd length must fail fast, not allocate.
        let mut hostile = Vec::new();
        crate::varint::write_uvarint(&mut hostile, u64::MAX);
        assert_eq!(zlite_decompress_capped(&hostile, 1 << 20), None);
        assert_eq!(zlite_decompress(&hostile), None);
    }

    #[test]
    fn match_length_beyond_format_limit_is_rejected() {
        // original_len 8, one literal byte, then a match claiming a length
        // far above MAX_MATCH — the decoder must refuse it.
        let mut buf = Vec::new();
        crate::varint::write_uvarint(&mut buf, 8);
        buf.extend_from_slice(&[0x00, 0x01, 0xAA]); // literal run of 1
        buf.push(0x01);
        crate::varint::write_uvarint(&mut buf, (MAX_MATCH + 1) as u64);
        crate::varint::write_uvarint(&mut buf, 1);
        assert_eq!(zlite_decompress(&buf), None);
    }

    #[test]
    fn bulk_copy_decoder_matches_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut cases: Vec<Vec<u8>> = vec![
            Vec::new(),
            vec![7u8; 100_000],
            b"abc".iter().cycle().take(3000).copied().collect(),
            (0..64u8).cycle().take(64 * 200).collect(),
            (0..50_000).map(|_| rng.gen()).collect(),
        ];
        // Structured payload with long aligned repeats.
        let mut structured = Vec::new();
        for i in 0..2000u32 {
            structured.extend_from_slice(&(i / 7).to_le_bytes());
        }
        cases.push(structured);
        for data in &cases {
            let enc = zlite_compress(data);
            assert_eq!(
                zlite_decompress_capped(&enc, usize::MAX),
                zlite_decompress_capped_reference(&enc, usize::MAX)
            );
            // Truncations must fail identically.
            if enc.len() > 3 {
                let cut = &enc[..enc.len() - 3];
                assert_eq!(
                    zlite_decompress_capped(cut, usize::MAX),
                    zlite_decompress_capped_reference(cut, usize::MAX)
                );
            }
        }
    }

    #[test]
    fn corrupt_input_fails_cleanly() {
        let data = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let mut enc = zlite_compress(&data);
        // Truncate.
        assert_eq!(zlite_decompress(&enc[..enc.len() - 2]), None);
        // Invalid tag.
        let last = enc.len() - 1;
        enc[last.min(2)] = 0xFF;
        let _ = zlite_decompress(&enc); // must not panic
    }
}
