//! Composed lossless stages used by every compressor in the workspace.
//!
//! * [`encode_codes`] / [`decode_codes`] — the paper's "Huffman + Zstd" stage
//!   applied to quantization-bin indices (Huffman over the `u32` alphabet,
//!   then `zlite` over the Huffman bytes).
//! * [`compress_bytes`] / [`decompress_bytes`] — `zlite` over raw byte
//!   payloads (unpredictable values, latent headers, block means).

use crate::huffman::{huffman_decode, huffman_decode_capped, huffman_encode};
use crate::lz::{zlite_compress, zlite_decompress, zlite_decompress_capped};

/// Errors surfaced while decoding compressed payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The zlite layer could not reconstruct the byte stream.
    CorruptLz,
    /// The Huffman layer could not reconstruct the symbol stream.
    CorruptHuffman,
    /// A structured payload (header, varint field) was malformed.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::CorruptLz => write!(f, "corrupt zlite stream"),
            CodecError::CorruptHuffman => write!(f, "corrupt Huffman stream"),
            CodecError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Entropy-encode quantization codes: canonical Huffman, then zlite.
pub fn encode_codes(codes: &[u32]) -> Vec<u8> {
    zlite_compress(&huffman_encode(codes))
}

/// Inverse of [`encode_codes`].
pub fn decode_codes(buf: &[u8]) -> Result<Vec<u32>, CodecError> {
    let huff = zlite_decompress(buf).ok_or(CodecError::CorruptLz)?;
    huffman_decode(&huff).ok_or(CodecError::CorruptHuffman)
}

/// [`decode_codes`] with an upper bound on the declared symbol count.
///
/// Use on untrusted input when the caller knows how many codes a valid
/// stream can hold: corrupt length prefixes in either lossless stage are
/// rejected instead of trusted into large allocations. A Huffman code spends
/// at most [`crate::huffman`]'s 56 bits (7 bytes) per symbol, so the inner
/// zlite output is capped at `8 · max_symbols` bytes plus table headroom.
pub fn decode_codes_capped(buf: &[u8], max_symbols: usize) -> Result<Vec<u32>, CodecError> {
    let huff_cap = max_symbols.saturating_mul(8).saturating_add(1 << 16);
    let huff = zlite_decompress_capped(buf, huff_cap).ok_or(CodecError::CorruptLz)?;
    huffman_decode_capped(&huff, max_symbols).ok_or(CodecError::CorruptHuffman)
}

/// Losslessly compress an arbitrary byte payload with zlite.
pub fn compress_bytes(bytes: &[u8]) -> Vec<u8> {
    zlite_compress(bytes)
}

/// Inverse of [`compress_bytes`].
pub fn decompress_bytes(buf: &[u8]) -> Result<Vec<u8>, CodecError> {
    zlite_decompress(buf).ok_or(CodecError::CorruptLz)
}

/// [`decompress_bytes`] with an upper bound on the declared output size, for
/// untrusted input whose valid maximum size the caller knows.
pub fn decompress_bytes_capped(buf: &[u8], max_len: usize) -> Result<Vec<u8>, CodecError> {
    zlite_decompress_capped(buf, max_len).ok_or(CodecError::CorruptLz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_compress() {
        // Typical quantization codes: nearly all in the centre bin.
        let codes: Vec<u32> = (0..50_000)
            .map(|i| if i % 50 == 0 { 32768 + (i % 9) } else { 32768 })
            .collect();
        let enc = encode_codes(&codes);
        assert!(
            enc.len() * 20 < codes.len() * 4,
            "centre-heavy codes should compress >20x, got {} bytes",
            enc.len()
        );
        assert_eq!(decode_codes(&enc).unwrap(), codes);
    }

    #[test]
    fn bytes_roundtrip() {
        let bytes: Vec<u8> = (0..10_000u32).flat_map(|i| (i / 3).to_le_bytes()).collect();
        let enc = compress_bytes(&bytes);
        assert_eq!(decompress_bytes(&enc).unwrap(), bytes);
    }

    #[test]
    fn empty_streams() {
        assert_eq!(decode_codes(&encode_codes(&[])).unwrap(), Vec::<u32>::new());
        assert_eq!(
            decompress_bytes(&compress_bytes(&[])).unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn corrupt_streams_return_errors() {
        let enc = encode_codes(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert!(decode_codes(&enc[..1]).is_err());
        assert!(decompress_bytes(&[0xFF, 0xFF, 0xFF]).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        assert_eq!(CodecError::CorruptLz.to_string(), "corrupt zlite stream");
        assert!(CodecError::Malformed("header")
            .to_string()
            .contains("header"));
    }
}
