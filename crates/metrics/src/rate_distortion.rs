//! Bit rate, compression ratio, and rate-distortion curve containers.
//!
//! Figure 8, Figure 11 and the zoomed inserts of the paper are all
//! rate-distortion plots: PSNR (dB) on the y-axis against bit rate
//! (bits per data point) on the x-axis. [`RdCurve`] accumulates the sweep
//! points produced by the benchmark harness and renders them as aligned text
//! tables so the harness binaries can print paper-style series.

/// Bit rate in bits per data point for a compressed payload.
pub fn bit_rate(compressed_bytes: usize, num_points: usize) -> f64 {
    if num_points == 0 {
        return 0.0;
    }
    compressed_bytes as f64 * 8.0 / num_points as f64
}

/// Compression ratio `original bytes / compressed bytes`.
pub fn compression_ratio(original_bytes: usize, compressed_bytes: usize) -> f64 {
    if compressed_bytes == 0 {
        return f64::INFINITY;
    }
    original_bytes as f64 / compressed_bytes as f64
}

/// One point of a rate-distortion sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RdPoint {
    /// Value-range-relative error bound used for this point.
    pub error_bound: f64,
    /// Bits per data point.
    pub bit_rate: f64,
    /// PSNR in dB.
    pub psnr: f64,
    /// Compression ratio.
    pub compression_ratio: f64,
}

/// A named rate-distortion curve (one compressor on one field).
#[derive(Debug, Clone, PartialEq)]
pub struct RdCurve {
    /// Label shown in tables/plots (e.g. "AE-SZ", "SZ2.1").
    pub name: String,
    /// Sweep points in the order they were added.
    pub points: Vec<RdPoint>,
}

impl RdCurve {
    /// Empty curve with the given label.
    pub fn new(name: impl Into<String>) -> Self {
        RdCurve {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append one sweep point.
    pub fn push(&mut self, point: RdPoint) {
        self.points.push(point);
    }

    /// Interpolated bit rate at a target PSNR (linear interpolation on the
    /// curve sorted by PSNR); `None` when the target lies outside the sweep.
    pub fn bit_rate_at_psnr(&self, target_psnr: f64) -> Option<f64> {
        let mut pts: Vec<&RdPoint> = self.points.iter().filter(|p| p.psnr.is_finite()).collect();
        if pts.len() < 2 {
            return None;
        }
        pts.sort_by(|a, b| a.psnr.partial_cmp(&b.psnr).expect("finite PSNRs"));
        if target_psnr < pts[0].psnr || target_psnr > pts[pts.len() - 1].psnr {
            return None;
        }
        for w in pts.windows(2) {
            let (a, b) = (w[0], w[1]);
            if (a.psnr..=b.psnr).contains(&target_psnr) {
                let t = if b.psnr == a.psnr {
                    0.0
                } else {
                    (target_psnr - a.psnr) / (b.psnr - a.psnr)
                };
                return Some(a.bit_rate + t * (b.bit_rate - a.bit_rate));
            }
        }
        None
    }

    /// Interpolated compression ratio at a target PSNR.
    pub fn cr_at_psnr(&self, target_psnr: f64) -> Option<f64> {
        self.bit_rate_at_psnr(target_psnr).map(
            |br| {
                if br <= 0.0 {
                    f64::INFINITY
                } else {
                    32.0 / br
                }
            },
        )
    }

    /// Render the curve as an aligned text table (error bound, bit rate, PSNR, CR).
    pub fn to_table(&self) -> String {
        let mut s = format!(
            "{:<12} {:>12} {:>10} {:>10} {:>10}\n",
            self.name, "err_bound", "bit_rate", "PSNR", "CR"
        );
        for p in &self.points {
            s.push_str(&format!(
                "{:<12} {:>12.2e} {:>10.4} {:>10.2} {:>10.2}\n",
                "", p.error_bound, p.bit_rate, p.psnr, p.compression_ratio
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_rate_and_cr_basics() {
        // 1000 f32 points compressed to 500 bytes → 4 bits/point, CR 8.
        assert!((bit_rate(500, 1000) - 4.0).abs() < 1e-12);
        assert!((compression_ratio(4000, 500) - 8.0).abs() < 1e-12);
        assert_eq!(bit_rate(10, 0), 0.0);
        assert!(compression_ratio(100, 0).is_infinite());
    }

    #[test]
    fn curve_interpolation() {
        let mut c = RdCurve::new("test");
        c.push(RdPoint {
            error_bound: 1e-2,
            bit_rate: 0.5,
            psnr: 40.0,
            compression_ratio: 64.0,
        });
        c.push(RdPoint {
            error_bound: 1e-3,
            bit_rate: 1.5,
            psnr: 60.0,
            compression_ratio: 21.3,
        });
        let br = c.bit_rate_at_psnr(50.0).unwrap();
        assert!((br - 1.0).abs() < 1e-12);
        assert!((c.cr_at_psnr(50.0).unwrap() - 32.0).abs() < 1e-9);
        assert!(c.bit_rate_at_psnr(10.0).is_none());
        assert!(c.bit_rate_at_psnr(90.0).is_none());
    }

    #[test]
    fn interpolation_needs_two_points() {
        let mut c = RdCurve::new("one");
        assert!(c.bit_rate_at_psnr(40.0).is_none());
        c.push(RdPoint {
            error_bound: 1e-2,
            bit_rate: 1.0,
            psnr: 40.0,
            compression_ratio: 32.0,
        });
        assert!(c.bit_rate_at_psnr(40.0).is_none());
    }

    #[test]
    fn table_contains_all_points() {
        let mut c = RdCurve::new("AE-SZ");
        for i in 1..=3 {
            c.push(RdPoint {
                error_bound: 10f64.powi(-i),
                bit_rate: i as f64,
                psnr: 30.0 + i as f64,
                compression_ratio: 32.0 / i as f64,
            });
        }
        let table = c.to_table();
        assert!(table.starts_with("AE-SZ"));
        assert_eq!(table.lines().count(), 4);
    }
}
