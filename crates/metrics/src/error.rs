//! The unified error hierarchy of the workspace-wide compressor API.
//!
//! Every compressor reports failures through two enums: [`CompressError`]
//! for rejected inputs on the way in, and [`DecompressError`] for malformed,
//! truncated or hostile streams on the way out. `aesz_core`'s own
//! `DecompressError` and the baseline parsers fold into this hierarchy (via
//! `From` impls in their crates), so callers that drive compressors through
//! the [`Compressor`](crate::Compressor) trait handle one error surface.

use crate::container::{CodecId, ModelId};
use aesz_codec::CodecError;

/// Why a field could not be compressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The requested error bound is unusable (non-finite or non-positive).
    InvalidBound(&'static str),
    /// The input field cannot be handled by this compressor (empty, wrong
    /// rank, or containing non-finite values a relative bound is undefined
    /// for).
    UnsupportedField(&'static str),
    /// A learned compressor was used before its model was trained.
    Untrained(&'static str),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::InvalidBound(what) => write!(f, "invalid error bound: {what}"),
            CompressError::UnsupportedField(what) => write!(f, "unsupported field: {what}"),
            CompressError::Untrained(what) => write!(f, "model not trained: {what}"),
        }
    }
}

impl std::error::Error for CompressError {}

/// Why a compressed stream could not be decompressed.
///
/// Container-frame problems ([`DecompressError::BadMagic`],
/// [`DecompressError::UnknownCodec`], …) are reported by the shared frame
/// parser; everything after the frame comes from the dispatched codec's own
/// validated decode path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The input does not start with the container magic bytes.
    BadMagic,
    /// The container frame names a codec id this build does not know.
    UnknownCodec(u8),
    /// The container frame version is newer than this build understands.
    UnsupportedVersion(u8),
    /// The stream is framed for a different codec than the one asked to
    /// decode it (use `decompress_any` to dispatch by codec id instead).
    WrongCodec {
        /// Codec id of the compressor that was asked to decode.
        expected: CodecId,
        /// Codec id recorded in the stream's container frame.
        found: CodecId,
    },
    /// The input ended before the named field or section was complete.
    Truncated(&'static str),
    /// A header field holds a value no valid stream can contain.
    InvalidHeader(&'static str),
    /// Header fields and payload sections disagree with each other.
    Inconsistent(&'static str),
    /// An archive chunk-index entry is malformed: its extent overlaps a
    /// neighbour, leaves a gap, points past the data section into the model
    /// tail, or (for reserved capacity slots) is not zero-filled. Carries the
    /// zero-based index of the offending entry so multi-thousand-chunk
    /// archives can be triaged without a hex dump.
    BadChunkIndex {
        /// Zero-based position of the offending index entry.
        chunk: usize,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// The stream is well-formed but this decoder instance cannot honour it
    /// (e.g. a learned codec whose model is not trained).
    Unsupported(&'static str),
    /// The stream names a trained model (by content-addressed id) that this
    /// decoder does not hold and cannot resolve — the dedicated "missing
    /// model" failure of the model lifecycle, distinct from both
    /// [`DecompressError::UnknownCodec`] (the *codec* is not registered) and
    /// [`DecompressError::ModelMismatch`] (a model is present but its
    /// geometry disagrees with the stream).
    MissingModel {
        /// Codec whose stream references the model.
        codec: CodecId,
        /// Content-addressed id of the model the stream was encoded with.
        model_id: ModelId,
    },
    /// A dispatched codec failed to decode its stream — the wrapper
    /// `decompress_any` uses so multi-codec callers always learn *which*
    /// codec rejected the bytes.
    CodecFailed {
        /// Codec that was dispatched and failed.
        codec: CodecId,
        /// The codec's own error.
        error: Box<DecompressError>,
    },
    /// The stream was produced with a different model geometry than the
    /// compressor trying to decode it.
    ModelMismatch {
        /// Block edge length recorded in the stream header.
        stream_block_size: usize,
        /// Latent vector length recorded in the stream header.
        stream_latent_dim: usize,
        /// Block edge length of the decoding model.
        model_block_size: usize,
        /// Latent vector length of the decoding model.
        model_latent_dim: usize,
    },
    /// An entropy-coded payload section failed to decode.
    Codec(CodecError),
}

impl From<CodecError> for DecompressError {
    fn from(e: CodecError) -> Self {
        DecompressError::Codec(e)
    }
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::BadMagic => write!(f, "not a compressed container (bad magic)"),
            DecompressError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            DecompressError::UnsupportedVersion(v) => {
                write!(f, "unsupported container version {v}")
            }
            DecompressError::WrongCodec { expected, found } => write!(
                f,
                "stream is framed for codec {} but {} was asked to decode it",
                found.name(),
                expected.name()
            ),
            DecompressError::Truncated(what) => write!(f, "truncated stream: {what}"),
            DecompressError::InvalidHeader(what) => write!(f, "invalid header field: {what}"),
            DecompressError::Inconsistent(what) => write!(f, "inconsistent stream: {what}"),
            DecompressError::BadChunkIndex { chunk, reason } => {
                write!(f, "bad chunk index entry {chunk}: {reason}")
            }
            DecompressError::Unsupported(what) => write!(f, "decoder cannot serve stream: {what}"),
            DecompressError::MissingModel { codec, model_id } => write!(
                f,
                "no trained model {model_id} available for {} (register one or add it to the \
                 model store)",
                codec.name()
            ),
            DecompressError::CodecFailed { codec, error } => {
                write!(f, "{} failed to decode: {error}", codec.name())
            }
            DecompressError::ModelMismatch {
                stream_block_size,
                stream_latent_dim,
                model_block_size,
                model_latent_dim,
            } => write!(
                f,
                "stream was written with block size {stream_block_size} / latent dim \
                 {stream_latent_dim}, but the model expects block size {model_block_size} / \
                 latent dim {model_latent_dim}"
            ),
            DecompressError::Codec(e) => write!(f, "payload section failed to decode: {e}"),
        }
    }
}

impl std::error::Error for DecompressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecompressError::Codec(e) => Some(e),
            DecompressError::CodecFailed { error, .. } => Some(error.as_ref()),
            _ => None,
        }
    }
}

/// Either side of a compress→decompress roundtrip failing, as reported by
/// [`measure`](crate::measure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressorError {
    /// The compression leg failed.
    Compress(CompressError),
    /// The decompression leg failed.
    Decompress(DecompressError),
}

impl From<CompressError> for CompressorError {
    fn from(e: CompressError) -> Self {
        CompressorError::Compress(e)
    }
}

impl From<DecompressError> for CompressorError {
    fn from(e: DecompressError) -> Self {
        CompressorError::Decompress(e)
    }
}

impl std::fmt::Display for CompressorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressorError::Compress(e) => write!(f, "compression failed: {e}"),
            CompressorError::Decompress(e) => write!(f, "decompression failed: {e}"),
        }
    }
}

impl std::error::Error for CompressorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompressorError::Compress(e) => Some(e),
            CompressorError::Decompress(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CompressError::InvalidBound("x").to_string().contains("x"));
        assert!(DecompressError::UnknownCodec(42).to_string().contains("42"));
        let wrong = DecompressError::WrongCodec {
            expected: CodecId::Zfp,
            found: CodecId::Sz2,
        };
        assert!(wrong.to_string().contains("ZFP"));
        assert!(wrong.to_string().contains("SZ2.1"));
        let bad = DecompressError::BadChunkIndex {
            chunk: 7,
            reason: "entries overlap",
        };
        assert!(bad.to_string().contains('7'));
        assert!(bad.to_string().contains("overlap"));
    }

    #[test]
    fn model_errors_are_distinct_and_informative() {
        let id = ModelId::of(b"weights");
        let missing = DecompressError::MissingModel {
            codec: CodecId::AeSz,
            model_id: id,
        };
        assert!(missing.to_string().contains("AE-SZ"));
        assert!(missing.to_string().contains(&id.to_string()));
        let failed = DecompressError::CodecFailed {
            codec: CodecId::AeA,
            error: Box::new(DecompressError::Truncated("latent section")),
        };
        assert!(failed.to_string().contains("AE-A"));
        assert!(failed.to_string().contains("latent section"));
        use std::error::Error;
        assert!(failed.source().is_some());
    }

    #[test]
    fn codec_errors_carry_their_source() {
        use std::error::Error;
        let e = DecompressError::from(CodecError::Malformed("header"));
        assert!(e.source().is_some());
        let m: CompressorError = e.into();
        assert!(m.source().is_some());
        let c: CompressorError = CompressError::Untrained("AE-A").into();
        assert!(c.to_string().contains("AE-A"));
    }
}
