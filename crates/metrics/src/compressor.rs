//! The common interface every lossy compressor in the workspace implements.
//!
//! The benchmark harness sweeps error bounds across AE-SZ and the six
//! comparison compressors of the paper; this trait is the only thing it needs
//! to know about them. Error bounds are *value-range-relative* (ε in the
//! paper): the absolute bound is `ε · (max − min)` of the input field.

use aesz_tensor::Field;

/// A lossy field compressor with (optionally) bounded pointwise error.
pub trait Compressor {
    /// Display name matching the paper's figures ("AE-SZ", "SZ2.1", "ZFP", …).
    fn name(&self) -> &'static str;

    /// Compress `field` under the value-range-relative error bound `rel_eb`.
    fn compress(&mut self, field: &Field, rel_eb: f64) -> Vec<u8>;

    /// Reconstruct a field from bytes produced by [`Compressor::compress`].
    fn decompress(&mut self, bytes: &[u8]) -> Field;

    /// Fallible reconstruction for untrusted input.
    ///
    /// Compressors with a hardened decode path (AE-SZ) override this to
    /// report malformed streams as errors; the default delegates to
    /// [`Compressor::decompress`] and therefore inherits its panics.
    fn try_decompress(
        &mut self,
        bytes: &[u8],
    ) -> Result<Field, Box<dyn std::error::Error + Send + Sync>> {
        Ok(self.decompress(bytes))
    }

    /// Whether the compressor guarantees `|dᵢ − d'ᵢ| ≤ rel_eb·range` pointwise.
    /// (AE-B in the paper is the one comparison compressor that does not.)
    fn is_error_bounded(&self) -> bool {
        true
    }
}

/// One measured operating point of a compressor on a field, as used by the
/// rate-distortion sweeps of Fig. 8/11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Relative error bound requested.
    pub rel_eb: f64,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// PSNR of the reconstruction (dB).
    pub psnr: f64,
    /// Maximum absolute pointwise error of the reconstruction.
    pub max_abs_error: f64,
    /// Compression ratio.
    pub compression_ratio: f64,
    /// Bit rate (bits per data point).
    pub bit_rate: f64,
}

/// Run one compressor over a field at one error bound and measure everything
/// the evaluation needs.
pub fn measure(compressor: &mut dyn Compressor, field: &Field, rel_eb: f64) -> SweepPoint {
    let bytes = compressor.compress(field, rel_eb);
    let recon = compressor.decompress(&bytes);
    let stats = crate::error_stats::ErrorStats::compute(field.as_slice(), recon.as_slice());
    let original_bytes = field.len() * std::mem::size_of::<f32>();
    SweepPoint {
        rel_eb,
        compressed_bytes: bytes.len(),
        psnr: stats.psnr,
        max_abs_error: stats.max_abs_error,
        compression_ratio: crate::rate_distortion::compression_ratio(original_bytes, bytes.len()),
        bit_rate: crate::rate_distortion::bit_rate(bytes.len(), field.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_tensor::Dims;

    /// A trivial "compressor" that stores the raw bytes, used to test `measure`.
    struct Identity;

    impl Compressor for Identity {
        fn name(&self) -> &'static str {
            "identity"
        }
        fn compress(&mut self, field: &Field, _rel_eb: f64) -> Vec<u8> {
            let mut out = Vec::new();
            let e = field.dims().extents();
            out.push(e.len() as u8);
            for &d in &e {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            out.extend_from_slice(&field.to_le_bytes());
            out
        }
        fn decompress(&mut self, bytes: &[u8]) -> Field {
            let rank = bytes[0] as usize;
            let mut pos = 1;
            let mut ext = Vec::new();
            for _ in 0..rank {
                let mut b = [0u8; 8];
                b.copy_from_slice(&bytes[pos..pos + 8]);
                ext.push(u64::from_le_bytes(b) as usize);
                pos += 8;
            }
            let dims = match rank {
                1 => Dims::d1(ext[0]),
                2 => Dims::d2(ext[0], ext[1]),
                _ => Dims::d3(ext[0], ext[1], ext[2]),
            };
            Field::from_le_bytes(dims, &bytes[pos..]).unwrap()
        }
    }

    #[test]
    fn measure_reports_lossless_roundtrip() {
        let field = Field::from_fn(Dims::d2(16, 16), |c| (c[0] + c[1]) as f32);
        let mut ident = Identity;
        let p = measure(&mut ident, &field, 1e-3);
        assert!(p.psnr.is_infinite());
        assert_eq!(p.max_abs_error, 0.0);
        assert!(p.compression_ratio < 1.01);
        assert!(p.bit_rate > 31.9);
    }

    #[test]
    fn default_try_decompress_delegates_to_decompress() {
        let field = Field::from_fn(Dims::d1(8), |c| c[0] as f32);
        let mut ident = Identity;
        let bytes = ident.compress(&field, 1e-3);
        let recon = ident.try_decompress(&bytes).expect("identity roundtrip");
        assert_eq!(recon.as_slice(), field.as_slice());
    }
}
