//! The common interface every lossy compressor in the workspace implements.
//!
//! The benchmark harness sweeps error bounds across AE-SZ and the six
//! comparison compressors of the paper through this trait, and a service
//! front-end can decode untrusted streams through it: both directions are
//! fallible, the error-bound mode is explicit ([`ErrorBound`]), and every
//! stream is wrapped in the self-describing container frame of
//! [`crate::container`] so `decompress_any` can dispatch by codec id.
//!
//! Implementors provide the codec-specific payload methods
//! ([`Compressor::compress_payload`] / [`Compressor::decompress_payload`]);
//! the primary entry points [`Compressor::compress`] and
//! [`Compressor::decompress`] add the shared input validation and container
//! framing so no codec can forget them.

use crate::bound::ErrorBound;
use crate::container::{self, CodecId, EmbeddedModel};
use crate::error::{CompressError, CompressorError, DecompressError};
use aesz_tensor::Field;

/// A lossy field compressor with (optionally) bounded pointwise error.
///
/// Compressors are `Send + Sync` and can produce independent deep copies of
/// themselves ([`Compressor::fork`]), which is what lets the archive layer
/// ([`crate::archive`]) fan per-chunk compression and decompression out
/// across threads without sharing one `&mut` instance. The `Sync` bound is
/// what lets a server hold a registry of trained instances behind an
/// `RwLock` and fork per-request copies under a shared read lock.
pub trait Compressor: Send + Sync {
    /// Which codec this compressor implements (the container dispatch key).
    fn codec_id(&self) -> CodecId;

    /// An independent deep copy of this compressor (trained weights and
    /// configuration included) behind the trait object.
    ///
    /// Forked instances must produce byte-identical streams to the original
    /// and decode anything the original encodes. The archive layer forks one
    /// compressor per in-flight chunk so a window of chunks can be processed
    /// in parallel; implementors that derive [`Clone`] just return
    /// `Box::new(self.clone())`.
    fn fork(&self) -> Box<dyn Compressor>;

    /// Display name matching the paper's figures ("AE-SZ", "SZ2.1", "ZFP", …).
    fn name(&self) -> &'static str {
        self.codec_id().name()
    }

    /// Whether the compressor guarantees `|dᵢ − d'ᵢ| ≤ bound` pointwise.
    /// (AE-B in the paper is the one comparison compressor that does not.)
    fn is_error_bounded(&self) -> bool {
        true
    }

    /// The trained model this compressor stamps into its streams, serialized
    /// as a content-addressed `AESM` frame — the provenance hook the archive
    /// layer uses to embed models next to the data they decode
    /// ([`crate::archive::write_archive_embedding`]).
    ///
    /// Model-free codecs (the default) and untrained learned codecs return
    /// `None`.
    fn embedded_model(&self) -> Option<EmbeddedModel> {
        None
    }

    /// The content-addressed id of [`Compressor::embedded_model`] without
    /// serializing the model — implementors cache the id, so callers that
    /// only need to *compare* identities (the archive writer's dedup, the
    /// decode-side "is the registered instance already right?" check) avoid
    /// a full weight serialization + hash per query.
    ///
    /// Must equal `self.embedded_model().map(|m| m.id)`.
    fn embedded_model_id(&self) -> Option<crate::container::ModelId> {
        None
    }

    /// Produce the codec-specific payload for `field` under `bound`.
    ///
    /// Called by [`Compressor::compress`] after the shared validation
    /// (usable bound, non-empty field); implementations may assume both and
    /// must not add the container frame themselves.
    fn compress_payload(
        &mut self,
        field: &Field,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, CompressError>;

    /// Reconstruct a field from a codec-specific payload (the container
    /// frame already stripped by [`Compressor::decompress`]).
    ///
    /// Must return an error — never panic, never allocate unboundedly — on
    /// any malformed, truncated or hostile input.
    fn decompress_payload(&mut self, payload: &[u8]) -> Result<Field, DecompressError>;

    /// Compress `field` under `bound` into a framed, self-describing stream.
    fn compress(&mut self, field: &Field, bound: ErrorBound) -> Result<Vec<u8>, CompressError> {
        bound.validate()?;
        if field.is_empty() {
            return Err(CompressError::UnsupportedField("field has no elements"));
        }
        let payload = self.compress_payload(field, bound)?;
        Ok(container::write_frame(self.codec_id(), &payload))
    }

    /// Reconstruct a field from a framed stream produced by
    /// [`Compressor::compress`]. Streams framed for a different codec are
    /// rejected with [`DecompressError::WrongCodec`] (dispatch across codecs
    /// with `decompress_any` instead).
    fn decompress(&mut self, bytes: &[u8]) -> Result<Field, DecompressError> {
        let (codec, payload) = container::read_frame(bytes)?;
        if codec != self.codec_id() {
            return Err(DecompressError::WrongCodec {
                expected: self.codec_id(),
                found: codec,
            });
        }
        self.decompress_payload(payload)
    }
}

/// One measured operating point of a compressor on a field, as used by the
/// rate-distortion sweeps of Fig. 8/11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Error bound requested.
    pub bound: ErrorBound,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// PSNR of the reconstruction (dB).
    pub psnr: f64,
    /// Maximum absolute pointwise error of the reconstruction.
    pub max_abs_error: f64,
    /// Compression ratio.
    pub compression_ratio: f64,
    /// Bit rate (bits per data point).
    pub bit_rate: f64,
}

/// Run one compressor over a field at one error bound and measure everything
/// the evaluation needs, reporting failures on either leg instead of
/// panicking.
pub fn measure(
    compressor: &mut dyn Compressor,
    field: &Field,
    bound: ErrorBound,
) -> Result<SweepPoint, CompressorError> {
    let bytes = compressor.compress(field, bound)?;
    let recon = compressor.decompress(&bytes)?;
    let stats = crate::error_stats::ErrorStats::compute(field.as_slice(), recon.as_slice());
    let original_bytes = field.len() * std::mem::size_of::<f32>();
    Ok(SweepPoint {
        bound,
        compressed_bytes: bytes.len(),
        psnr: stats.psnr,
        max_abs_error: stats.max_abs_error,
        compression_ratio: crate::rate_distortion::compression_ratio(original_bytes, bytes.len()),
        bit_rate: crate::rate_distortion::bit_rate(bytes.len(), field.len()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_tensor::Dims;

    /// A trivial "compressor" that stores the raw bytes, used to test the
    /// trait plumbing and `measure`. It borrows the ZFP codec id purely for
    /// framing; it is not registered anywhere.
    #[derive(Clone)]
    struct Identity;

    impl Compressor for Identity {
        fn codec_id(&self) -> CodecId {
            CodecId::Zfp
        }
        fn fork(&self) -> Box<dyn Compressor> {
            Box::new(self.clone())
        }
        fn compress_payload(
            &mut self,
            field: &Field,
            _bound: ErrorBound,
        ) -> Result<Vec<u8>, CompressError> {
            let mut out = Vec::new();
            let e = field.dims().extents();
            out.push(e.len() as u8);
            for &d in &e {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            out.extend_from_slice(&field.to_le_bytes());
            Ok(out)
        }
        fn decompress_payload(&mut self, bytes: &[u8]) -> Result<Field, DecompressError> {
            let rank = *bytes.first().ok_or(DecompressError::Truncated("rank"))? as usize;
            if !(1..=3).contains(&rank) {
                return Err(DecompressError::InvalidHeader("rank"));
            }
            let mut pos = 1;
            let mut ext = Vec::new();
            for _ in 0..rank {
                let mut b = [0u8; 8];
                b.copy_from_slice(
                    bytes
                        .get(pos..pos + 8)
                        .ok_or(DecompressError::Truncated("extent"))?,
                );
                ext.push(u64::from_le_bytes(b) as usize);
                pos += 8;
            }
            let dims = match rank {
                1 => Dims::d1(ext[0]),
                2 => Dims::d2(ext[0], ext[1]),
                _ => Dims::d3(ext[0], ext[1], ext[2]),
            };
            Field::from_le_bytes(dims, &bytes[pos..])
                .map_err(|_| DecompressError::Inconsistent("payload does not match dims"))
        }
    }

    #[test]
    fn measure_reports_lossless_roundtrip() {
        let field = Field::from_fn(Dims::d2(16, 16), |c| (c[0] + c[1]) as f32);
        let mut ident = Identity;
        let p = measure(&mut ident, &field, ErrorBound::rel(1e-3)).expect("identity roundtrip");
        assert!(p.psnr.is_infinite());
        assert_eq!(p.max_abs_error, 0.0);
        assert!(p.compression_ratio < 1.01);
        assert!(p.bit_rate > 31.9);
    }

    #[test]
    fn compress_validates_bound_and_field() {
        let field = Field::from_fn(Dims::d1(8), |c| c[0] as f32);
        let mut ident = Identity;
        assert!(matches!(
            ident.compress(&field, ErrorBound::rel(0.0)),
            Err(CompressError::InvalidBound(_))
        ));
        let empty = Field::zeros(Dims::d1(0));
        assert!(matches!(
            ident.compress(&empty, ErrorBound::rel(1e-3)),
            Err(CompressError::UnsupportedField(_))
        ));
    }

    #[test]
    fn streams_are_framed_and_self_describing() {
        let field = Field::from_fn(Dims::d1(8), |c| c[0] as f32);
        let mut ident = Identity;
        let bytes = ident.compress(&field, ErrorBound::abs(1e-3)).unwrap();
        assert_eq!(container::peek(&bytes).unwrap().codec, CodecId::Zfp);
        let recon = ident.decompress(&bytes).expect("identity roundtrip");
        assert_eq!(recon.as_slice(), field.as_slice());
        for len in 0..bytes.len() {
            assert!(ident.decompress(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn name_defaults_to_the_codec_name() {
        assert_eq!(Identity.name(), "ZFP");
    }
}
