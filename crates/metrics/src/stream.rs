//! Push-based incremental parsing of `AESC` frames and `AESA` archives.
//!
//! [`StreamDecoder`] is a state machine fed bytes as they arrive — from a
//! pipe, a socket, a chunked download — and polled for parse events. The
//! same machine drives both stream shapes: a single [`container`] frame
//! (detected by its `AESC` magic) and a multi-chunk archive (`AESA`, any
//! version including the inline v3 layout a seekless writer emits). Every
//! hostile-input check of the buffered parsers ([`container::read_frame`],
//! [`ArchiveHeader::read`], [`container::read_chunk_index`],
//! [`container::read_model_section`]) is applied at the equivalent state
//! transition, so feeding a malformed input incrementally surfaces the same
//! error class as handing the whole buffer to the one-shot API.
//!
//! ```text
//!            feed()/poll()
//!   Detect ──"AESC"──► FrameHeader ──► FramePayload ──────────────┐
//!     │                                                           ▼
//!     └──"AESA"──► ArchiveHead ──► Index ──► ChunkHead ─► ChunkBody
//!                      (v3 cap=0       ▲          │          │
//!                       skips Index)   └──────────┴──(next)──┘
//!                                                 │ (all chunks)
//!                                                 ▼
//!                              Models ──► Epilogue ──finish()──► done
//! ```
//!
//! Buffering is bounded by the largest single section the machine must see
//! at once — the fixed header, one 17-byte index entry, one chunk frame, or
//! one model record — never the whole field: consumed bytes are dropped
//! eagerly and nothing is preallocated from header-declared lengths, so a
//! lying length cannot force an allocation larger than the bytes actually
//! fed.
//!
//! Known, deliberate divergence from the buffered path: an index entry that
//! points past the data section into the model tail is
//! [`DecompressError::BadChunkIndex`] when the whole archive is in hand, but
//! a streaming consumer cannot see the end of its input in advance, so the
//! same corruption surfaces as [`DecompressError::Truncated`] when the bytes
//! run out early.

use crate::container::{
    self, validate_chunk_entry, ArchiveHeader, ChunkEntry, CodecId, FrameInfo, ModelId,
    ARCHIVE_MAGIC, ARCHIVE_VERSION_APPEND, ARCHIVE_VERSION_MODELS, CHUNK_ENTRY_LEN,
    CONTAINER_MAGIC, CONTAINER_VERSION, FRAME_LEN, MODEL_ID_LEN,
};
use crate::error::DecompressError;

/// One parse event produced by [`StreamDecoder::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// The archive's fixed-size header parsed and validated (`AESA` inputs
    /// only; emitted exactly once, before any other event).
    ArchiveHeader(ArchiveHeader),
    /// One chunk-index entry parsed and validated. For indexed archives
    /// these arrive in order before the first chunk; for inline v3 archives
    /// each entry is reconstructed from its chunk's frame header and arrives
    /// immediately before that chunk's [`StreamEvent::ChunkFrame`].
    IndexEntry {
        /// Zero-based chunk number.
        index: usize,
        /// The validated entry.
        entry: ChunkEntry,
    },
    /// A container frame header parsed and validated — for a single `AESC`
    /// input the stream's only frame, for an archive each chunk's frame.
    FrameHeader(FrameInfo),
    /// A complete container frame: header plus full payload. `frame` is the
    /// exact bytes a buffered reader would slice, ready for
    /// [`crate::Compressor::decompress`].
    ChunkFrame {
        /// Zero-based chunk number (0 for a single-frame stream).
        index: usize,
        /// Codec that owns the chunk (the index entry's codec for indexed
        /// archives, the frame header's for everything else).
        codec: CodecId,
        /// The complete `AESC` frame.
        frame: Vec<u8>,
    },
    /// One embedded model record from a v2/v3 archive tail, hash-verified.
    Model {
        /// Content-addressed id the record stores (verified against the
        /// frame payload's recomputed hash).
        id: ModelId,
        /// The complete `AESM` frame.
        frame: Vec<u8>,
    },
}

/// What the machine is waiting for next.
#[derive(Debug)]
enum State {
    /// Sniffing the 4-byte magic to pick a mode.
    Detect,
    /// Single-frame mode: waiting for the fixed `AESC` header.
    FrameHeader,
    /// Single-frame mode: accumulating the declared payload.
    FramePayload {
        info: FrameInfo,
        head: [u8; FRAME_LEN],
    },
    /// Archive mode: waiting for the fixed `AESA` header (length depends on
    /// rank and version, learned from the first 8 bytes).
    ArchiveHead,
    /// Archive mode: consuming index slots one 17-byte entry at a time.
    Index { slot: usize },
    /// Archive mode: waiting for chunk `index`'s frame header. `expect`
    /// holds the index entry in indexed mode (frame length known up front),
    /// `None` in inline mode (length learned from the frame itself).
    ChunkHead {
        index: usize,
        expect: Option<ChunkEntry>,
    },
    /// Archive mode: accumulating chunk `index`'s payload.
    ChunkBody {
        index: usize,
        codec: CodecId,
        head: [u8; FRAME_LEN],
        payload_len: usize,
    },
    /// Archive mode: consuming the model section record by record.
    Models { remaining: usize },
    /// All sections consumed; any further byte is trailing garbage.
    Epilogue { trailing: &'static str },
    /// Input complete and validated.
    Done,
}

/// A push-based incremental decoder for `AESC` frames and `AESA` archives.
///
/// Feed bytes with [`feed`](Self::feed) as they arrive, drain events with
/// [`poll`](Self::poll), and signal end-of-input with
/// [`finish`](Self::finish) (truncation can only be diagnosed once the
/// caller declares the input over). After an error, every subsequent poll
/// repeats the same error — a failed stream cannot be resumed.
#[derive(Debug)]
pub struct StreamDecoder {
    /// Unconsumed input. `pos` is the read cursor; consumed bytes are
    /// compacted away so residency tracks the current section, not the
    /// stream.
    buf: Vec<u8>,
    pos: usize,
    /// Absolute stream offset of `buf[pos]` — the tiling cursor the archive
    /// index is validated against.
    offset: u64,
    state: State,
    /// Parsed archive header (archive mode only).
    header: Option<ArchiveHeader>,
    /// Tiling cursor for index validation.
    expected_offset: u64,
    /// Validated index entries awaiting their chunk frames (indexed mode).
    entries: Vec<ChunkEntry>,
    /// Ids seen in the model section (duplicate rejection).
    model_ids: Vec<ModelId>,
    /// An event produced alongside the previous poll's return value (a
    /// state transition can surface at most two events: the reconstructed
    /// index entry of an inline chunk plus its frame header).
    pending: Option<StreamEvent>,
    /// Caller declared end-of-input.
    eof: bool,
    /// Sticky failure: every poll after an error repeats it.
    failed: Option<DecompressError>,
    /// High-water mark of `buf.len()` (observability for residency tests).
    peak_buffered: usize,
}

impl Default for StreamDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamDecoder {
    /// A fresh decoder that will auto-detect the stream shape from its
    /// magic.
    pub fn new() -> StreamDecoder {
        StreamDecoder {
            buf: Vec::new(),
            pos: 0,
            offset: 0,
            state: State::Detect,
            header: None,
            expected_offset: 0,
            entries: Vec::new(),
            model_ids: Vec::new(),
            pending: None,
            eof: false,
            failed: None,
            peak_buffered: 0,
        }
    }

    /// Append arriving bytes. Never parses and never fails; all validation
    /// happens in [`poll`](Self::poll).
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing so residency tracks unconsumed bytes only.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
        self.peak_buffered = self.peak_buffered.max(self.buf.len());
    }

    /// Declare the input complete. Idempotent; bytes must not be fed
    /// afterwards (they would be reported as trailing garbage).
    pub fn finish(&mut self) {
        self.eof = true;
    }

    /// Bytes currently buffered and not yet consumed.
    pub fn buffered_len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Largest number of bytes the decoder ever held at once.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// The parsed archive header, once [`StreamEvent::ArchiveHeader`] has
    /// been emitted.
    pub fn archive_header(&self) -> Option<&ArchiveHeader> {
        self.header.as_ref()
    }

    /// True once the whole input parsed cleanly: [`finish`](Self::finish)
    /// was called, every section was consumed and no error occurred.
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    fn avail(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Vec<u8> {
        // lint:allow(R2): every caller checks `avail() >= n` in the same
        // state transition before taking; the machine never consumes
        // unbuffered bytes
        let out = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        self.offset += n as u64;
        out
    }

    fn fail(&mut self, e: DecompressError) -> DecompressError {
        self.failed = Some(e.clone());
        e
    }

    /// Advance the machine. `Ok(Some(event))` hands out the next parse
    /// event; `Ok(None)` means either "need more input" (before
    /// [`finish`](Self::finish)) or "stream complete" (after). Errors are
    /// sticky.
    pub fn poll(&mut self) -> Result<Option<StreamEvent>, DecompressError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if let Some(ev) = self.pending.take() {
            return Ok(Some(ev));
        }
        match self.step() {
            Ok(ev) => Ok(ev),
            Err(e) => Err(self.fail(e)),
        }
    }

    /// Drive one state transition. Loops internally over transitions that
    /// produce no event (e.g. skipping the index in inline mode).
    fn step(&mut self) -> Result<Option<StreamEvent>, DecompressError> {
        loop {
            match &self.state {
                State::Detect => {
                    if self.avail() < ARCHIVE_MAGIC.len() {
                        if self.eof {
                            let seen = self.buf.get(self.pos..).unwrap_or(&[]);
                            return Err(if ARCHIVE_MAGIC.starts_with(seen) && !seen.is_empty() {
                                DecompressError::Truncated("archive magic")
                            } else {
                                DecompressError::Truncated("container magic")
                            });
                        }
                        return Ok(None);
                    }
                    let magic = self.buf.get(self.pos..self.pos + 4).unwrap_or(&[]);
                    if magic == CONTAINER_MAGIC {
                        self.state = State::FrameHeader;
                    } else if magic == ARCHIVE_MAGIC {
                        self.state = State::ArchiveHead;
                    } else {
                        return Err(DecompressError::BadMagic);
                    }
                }
                State::FrameHeader => {
                    if self.avail() < FRAME_LEN {
                        if self.eof {
                            return Err(DecompressError::Truncated("container frame"));
                        }
                        return Ok(None);
                    }
                    let info = container::peek(self.buf.get(self.pos..).unwrap_or(&[]))?;
                    let mut head = [0u8; FRAME_LEN];
                    head.copy_from_slice(&self.take(FRAME_LEN));
                    self.state = State::FramePayload { info, head };
                    return Ok(Some(StreamEvent::FrameHeader(info)));
                }
                State::FramePayload { info, head } => {
                    // u64 → usize must be checked: on a 32-bit target a
                    // declared length of 2^32 + k would otherwise wrap to k.
                    let need = usize::try_from(info.payload_len).map_err(|_| {
                        DecompressError::InvalidHeader("container payload exceeds this platform")
                    })?;
                    if self.avail() < need {
                        if self.eof {
                            return Err(DecompressError::Truncated("container payload"));
                        }
                        return Ok(None);
                    }
                    let (info, head) = (*info, *head);
                    let mut frame = head.to_vec();
                    frame.extend_from_slice(&self.take(need));
                    self.state = State::Epilogue {
                        trailing: "trailing bytes after container payload",
                    };
                    return Ok(Some(StreamEvent::ChunkFrame {
                        index: 0,
                        codec: info.codec,
                        frame,
                    }));
                }
                State::ArchiveHead => {
                    // The fixed header's length depends on rank and version,
                    // both in the first 8 bytes.
                    if self.avail() < 8 {
                        if self.eof {
                            return Err(DecompressError::Truncated("archive header"));
                        }
                        return Ok(None);
                    }
                    let probe = self.buf.get(self.pos..).unwrap_or(&[]);
                    let version = probe[4];
                    let rank = usize::from(probe[6]);
                    // Out-of-range version/rank are caught by `read_prefix`
                    // below with the right error; clamp only to size the
                    // wait.
                    let fixed = 8
                        + 8 * rank.clamp(1, 3)
                        + 16
                        + if version >= ARCHIVE_VERSION_MODELS {
                            8
                        } else {
                            0
                        }
                        + if version >= ARCHIVE_VERSION_APPEND {
                            8
                        } else {
                            0
                        };
                    if self.avail() < fixed {
                        if self.eof {
                            // Let the buffered parser name the missing piece
                            // (magic/version checks come first there too).
                            return Err(ArchiveHeader::read_prefix(
                                self.buf.get(self.pos..).unwrap_or(&[]),
                            )
                            .err()
                            .unwrap_or(DecompressError::Truncated("archive header")));
                        }
                        return Ok(None);
                    }
                    let header =
                        ArchiveHeader::read_prefix(self.buf.get(self.pos..).unwrap_or(&[]))?;
                    self.take(header.encoded_len());
                    self.expected_offset = (header.encoded_len() + header.index_len()) as u64;
                    let indexed = header.index_slots() > 0;
                    self.header = Some(header);
                    self.state = if indexed {
                        State::Index { slot: 0 }
                    } else {
                        State::ChunkHead {
                            index: 0,
                            expect: None,
                        }
                    };
                    return Ok(Some(StreamEvent::ArchiveHeader(header)));
                }
                State::Index { slot } => {
                    let slot = *slot;
                    let Some(header) = self.header else {
                        return Err(DecompressError::Inconsistent(
                            "internal: Index state without an archive header",
                        ));
                    };
                    if slot == header.index_slots() {
                        self.state = State::ChunkHead {
                            index: 0,
                            expect: self.entries.first().copied(),
                        };
                        continue;
                    }
                    if self.avail() < CHUNK_ENTRY_LEN {
                        if self.eof {
                            return Err(DecompressError::Truncated("archive chunk index"));
                        }
                        return Ok(None);
                    }
                    let raw = self.take(CHUNK_ENTRY_LEN);
                    if slot >= header.chunk_count() {
                        // Reserved capacity slot: must be zero-filled.
                        if raw.iter().any(|&b| b != 0) {
                            return Err(DecompressError::BadChunkIndex {
                                chunk: slot,
                                reason: "reserved index slot is not zero-filled",
                            });
                        }
                        self.state = State::Index { slot: slot + 1 };
                        continue;
                    }
                    let entry = container::decode_chunk_entry(&raw)?;
                    // The stream's end is unknown here, so the
                    // "points past the data section" check is deferred to
                    // EOF (it surfaces as Truncated); everything else is
                    // identical to the buffered index reader.
                    self.expected_offset = validate_chunk_entry(
                        &entry,
                        slot,
                        self.expected_offset,
                        u64::MAX,
                        header.model_len,
                    )?;
                    self.entries.push(entry);
                    self.state = State::Index { slot: slot + 1 };
                    return Ok(Some(StreamEvent::IndexEntry { index: slot, entry }));
                }
                State::ChunkHead { index, expect } => {
                    let (index, expect) = (*index, *expect);
                    let Some(header) = self.header else {
                        return Err(DecompressError::Inconsistent(
                            "internal: ChunkHead state without an archive header",
                        ));
                    };
                    if self.avail() < FRAME_LEN {
                        if self.eof {
                            return Err(DecompressError::Truncated("archive chunk data"));
                        }
                        return Ok(None);
                    }
                    let head_slice = self
                        .buf
                        .get(self.pos..self.pos + FRAME_LEN)
                        .ok_or(DecompressError::Truncated("archive chunk data"))?;
                    if head_slice[..CONTAINER_MAGIC.len()] != CONTAINER_MAGIC {
                        return Err(DecompressError::BadMagic);
                    }
                    if head_slice[4] != CONTAINER_VERSION {
                        return Err(DecompressError::UnsupportedVersion(head_slice[4]));
                    }
                    let codec_byte = head_slice[5];
                    let frame_codec = CodecId::from_byte(codec_byte)
                        .ok_or(DecompressError::UnknownCodec(codec_byte))?;
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&head_slice[6..14]);
                    let payload_len = u64::from_le_bytes(b);
                    let codec = match expect {
                        Some(entry) => {
                            // The index promised this frame's exact extent;
                            // the frame's own declared length must agree
                            // (the buffered path reports the same pair of
                            // errors when `read_frame` slices by the entry).
                            let body = entry.len - FRAME_LEN as u64;
                            if payload_len > body {
                                return Err(DecompressError::Truncated("container payload"));
                            }
                            if payload_len < body {
                                return Err(DecompressError::Inconsistent(
                                    "trailing bytes after container payload",
                                ));
                            }
                            // A codec the index claims but the frame denies
                            // fails the buffered path at decode time (the
                            // forked compressor rejects the foreign frame);
                            // the parser can see the lie right here.
                            if entry.codec != frame_codec {
                                return Err(DecompressError::Inconsistent(
                                    "index entry codec disagrees with the chunk frame",
                                ));
                            }
                            entry.codec
                        }
                        None => frame_codec,
                    };
                    if payload_len > u64::MAX - FRAME_LEN as u64 {
                        return Err(DecompressError::BadChunkIndex {
                            chunk: index,
                            reason: "frame length overflows the archive",
                        });
                    }
                    let mut head = [0u8; FRAME_LEN];
                    let frame_offset = self.offset;
                    head.copy_from_slice(&self.take(FRAME_LEN));
                    let info = FrameInfo {
                        codec: frame_codec,
                        version: CONTAINER_VERSION,
                        payload_len,
                        model_id: None,
                    };
                    self.state = State::ChunkBody {
                        index,
                        codec,
                        head,
                        payload_len: usize::try_from(payload_len).map_err(|_| {
                            DecompressError::InvalidHeader(
                                "container payload exceeds this platform",
                            )
                        })?,
                    };
                    if expect.is_none() {
                        // Inline mode: the reconstructed index entry is only
                        // knowable now. Emit it before the frame header so
                        // consumers see the same event order as an indexed
                        // archive (entry, then frame).
                        let entry = ChunkEntry {
                            codec: frame_codec,
                            offset: frame_offset,
                            len: FRAME_LEN as u64 + payload_len,
                        };
                        self.expected_offset = validate_chunk_entry(
                            &entry,
                            index,
                            self.expected_offset,
                            u64::MAX,
                            header.model_len,
                        )?;
                        self.entries.push(entry);
                        self.pending = Some(StreamEvent::FrameHeader(info));
                        return Ok(Some(StreamEvent::IndexEntry { index, entry }));
                    }
                    return Ok(Some(StreamEvent::FrameHeader(info)));
                }
                State::ChunkBody {
                    index,
                    codec,
                    head,
                    payload_len,
                } => {
                    let (index, codec, head, payload_len) = (*index, *codec, *head, *payload_len);
                    if self.avail() < payload_len {
                        if self.eof {
                            return Err(DecompressError::Truncated("archive chunk data"));
                        }
                        return Ok(None);
                    }
                    let Some(header) = self.header else {
                        return Err(DecompressError::Inconsistent(
                            "internal: ChunkBody state without an archive header",
                        ));
                    };
                    let mut frame = head.to_vec();
                    frame.extend_from_slice(&self.take(payload_len));
                    let next = index + 1;
                    self.state = if next < header.chunk_count() {
                        State::ChunkHead {
                            index: next,
                            expect: if header.index_slots() > 0 {
                                self.entries.get(next).copied()
                            } else {
                                None
                            },
                        }
                    } else if header.model_len > 0 {
                        State::Models {
                            remaining: header.model_len,
                        }
                    } else {
                        State::Epilogue {
                            trailing: "trailing bytes after the last chunk frame",
                        }
                    };
                    return Ok(Some(StreamEvent::ChunkFrame {
                        index,
                        codec,
                        frame,
                    }));
                }
                State::Models { remaining } => {
                    let remaining = *remaining;
                    if remaining == 0 {
                        self.state = State::Epilogue {
                            trailing: "trailing bytes after the last chunk frame",
                        };
                        continue;
                    }
                    const RECORD_HEAD: usize = MODEL_ID_LEN + 8;
                    if remaining < RECORD_HEAD {
                        return Err(DecompressError::Truncated("archive model entry"));
                    }
                    if self.avail() < RECORD_HEAD {
                        if self.eof {
                            return Err(DecompressError::Truncated("archive model section"));
                        }
                        return Ok(None);
                    }
                    let head = self
                        .buf
                        .get(self.pos..self.pos + RECORD_HEAD)
                        .ok_or(DecompressError::Truncated("archive model section"))?;
                    let id = ModelId::from_prefix(head)
                        .ok_or(DecompressError::Truncated("archive model entry"))?;
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&head[MODEL_ID_LEN..]);
                    let len = u64::from_le_bytes(b);
                    if len > (remaining - RECORD_HEAD) as u64 {
                        return Err(DecompressError::Truncated("archive model frame"));
                    }
                    let len = usize::try_from(len)
                        .map_err(|_| DecompressError::Truncated("archive model frame"))?;
                    if self.avail() < RECORD_HEAD + len {
                        if self.eof {
                            return Err(DecompressError::Truncated("archive model section"));
                        }
                        return Ok(None);
                    }
                    self.take(RECORD_HEAD);
                    let frame = self.take(len);
                    let (_, payload) = container::read_model_frame(&frame)?;
                    if ModelId::of(payload) != id {
                        return Err(DecompressError::Inconsistent(
                            "embedded model bytes do not hash to their stored id",
                        ));
                    }
                    if self.model_ids.contains(&id) {
                        return Err(DecompressError::Inconsistent(
                            "model embedded more than once",
                        ));
                    }
                    self.model_ids.push(id);
                    self.state = State::Models {
                        remaining: remaining - RECORD_HEAD - len,
                    };
                    return Ok(Some(StreamEvent::Model { id, frame }));
                }
                State::Epilogue { trailing } => {
                    if self.avail() > 0 {
                        return Err(DecompressError::Inconsistent(trailing));
                    }
                    if self.eof {
                        self.state = State::Done;
                        continue;
                    }
                    return Ok(None);
                }
                State::Done => return Ok(None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{write_chunk_entry, write_frame, EmbeddedModel, ARCHIVE_VERSION};
    use aesz_tensor::Dims;

    /// Feed `bytes` in `step`-sized increments, collecting every event.
    fn run(bytes: &[u8], step: usize) -> Result<Vec<StreamEvent>, DecompressError> {
        let mut dec = StreamDecoder::new();
        let mut events = Vec::new();
        for piece in bytes.chunks(step.max(1)) {
            dec.feed(piece);
            while let Some(ev) = dec.poll()? {
                events.push(ev);
            }
        }
        dec.finish();
        while let Some(ev) = dec.poll()? {
            events.push(ev);
        }
        assert!(dec.is_done());
        Ok(events)
    }

    #[test]
    fn single_frames_stream_at_any_granularity() {
        let payload = b"a payload of some size".repeat(7);
        let framed = write_frame(CodecId::SzAuto, &payload);
        for step in [1, 2, 3, 7, framed.len()] {
            let events = run(&framed, step).unwrap();
            assert_eq!(events.len(), 2);
            assert!(matches!(
                events[0],
                StreamEvent::FrameHeader(FrameInfo {
                    codec: CodecId::SzAuto,
                    ..
                })
            ));
            match &events[1] {
                StreamEvent::ChunkFrame {
                    index: 0,
                    codec: CodecId::SzAuto,
                    frame,
                } => assert_eq!(frame, &framed),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn single_frame_errors_match_the_buffered_classes() {
        let framed = write_frame(CodecId::Zfp, b"abc");
        // Truncation at every prefix mirrors `read_frame`.
        for cut in 0..framed.len() {
            let err = run(&framed[..cut], 1).unwrap_err();
            assert!(
                matches!(err, DecompressError::Truncated(_)),
                "cut {cut} gave {err:?}"
            );
        }
        // Trailing garbage.
        let mut padded = framed.clone();
        padded.push(0);
        assert_eq!(
            run(&padded, 1).unwrap_err(),
            DecompressError::Inconsistent("trailing bytes after container payload")
        );
        // Bad magic, version, codec.
        let mut evil = framed.clone();
        evil[0] = b'X';
        assert_eq!(run(&evil, 1).unwrap_err(), DecompressError::BadMagic);
        let mut evil = framed.clone();
        evil[4] = 9;
        assert_eq!(
            run(&evil, 3).unwrap_err(),
            DecompressError::UnsupportedVersion(9)
        );
        let mut evil = framed;
        evil[5] = 200;
        assert_eq!(
            run(&evil, 2).unwrap_err(),
            DecompressError::UnknownCodec(200)
        );
    }

    /// A synthetic v1 archive with two raw chunks over `d1(8)`/chunk 4.
    fn v1_archive() -> Vec<u8> {
        let frames = [
            write_frame(CodecId::Zfp, b"chunk zero"),
            write_frame(CodecId::Sz2, b"chunk one!"),
        ];
        let header = ArchiveHeader::v1(Dims::d1(8), 4);
        let mut bytes = Vec::new();
        header.write(&mut bytes);
        let mut offset = header.data_start() as u64;
        for (f, codec) in frames.iter().zip([CodecId::Zfp, CodecId::Sz2]) {
            write_chunk_entry(
                &mut bytes,
                &ChunkEntry {
                    codec,
                    offset,
                    len: f.len() as u64,
                },
            );
            offset += f.len() as u64;
        }
        for f in &frames {
            bytes.extend_from_slice(f);
        }
        bytes
    }

    #[test]
    fn index_codec_lie_is_rejected_at_the_frame_header() {
        // Entry 1 claims ZFP, but its frame's own header says SZ2: the
        // buffered path fails this at decode time (the forked ZFP rejects
        // the foreign frame); the parser must not hand the lie downstream.
        let mut evil = v1_archive();
        let header = ArchiveHeader::read(&evil).unwrap();
        let codec_at = header.encoded_len() + CHUNK_ENTRY_LEN;
        assert_eq!(evil[codec_at], CodecId::Sz2 as u8);
        evil[codec_at] = CodecId::Zfp as u8;
        assert_eq!(
            run(&evil, 1).unwrap_err(),
            DecompressError::Inconsistent("index entry codec disagrees with the chunk frame")
        );
    }

    /// The same two chunks as an inline v3 archive with a one-model tail.
    fn v3_inline_archive_with_model() -> (Vec<u8>, EmbeddedModel) {
        let frames = [
            write_frame(CodecId::Zfp, b"chunk zero"),
            write_frame(CodecId::Sz2, b"chunk one!"),
        ];
        let model = EmbeddedModel::new(CodecId::AeSz, b"tail weights");
        let mut section = Vec::new();
        section.extend_from_slice(model.id.as_bytes());
        section.extend_from_slice(&(model.frame.len() as u64).to_le_bytes());
        section.extend_from_slice(&model.frame);
        let header = ArchiveHeader {
            dims: Dims::d1(8),
            chunk: 4,
            version: ARCHIVE_VERSION_APPEND,
            model_len: section.len(),
            index_cap: 0,
        };
        let mut bytes = Vec::new();
        header.write(&mut bytes);
        for f in &frames {
            bytes.extend_from_slice(f);
        }
        bytes.extend_from_slice(&section);
        (bytes, model)
    }

    #[test]
    fn archives_stream_with_event_parity_across_granularities() {
        let bytes = v1_archive();
        let whole = run(&bytes, bytes.len()).unwrap();
        for step in [1, 2, 5, 13] {
            assert_eq!(run(&bytes, step).unwrap(), whole, "step {step} diverged");
        }
        // Events: header, two index entries, then (frame header, chunk) × 2.
        assert!(matches!(whole[0], StreamEvent::ArchiveHeader(h) if h.version == ARCHIVE_VERSION));
        assert!(matches!(whole[1], StreamEvent::IndexEntry { index: 0, .. }));
        assert!(matches!(whole[2], StreamEvent::IndexEntry { index: 1, .. }));
        let frames: Vec<_> = whole
            .iter()
            .filter_map(|e| match e {
                StreamEvent::ChunkFrame { index, codec, .. } => Some((*index, *codec)),
                _ => None,
            })
            .collect();
        assert_eq!(frames, vec![(0, CodecId::Zfp), (1, CodecId::Sz2)]);

        // The reconstructed entries match the buffered index reader.
        let header = ArchiveHeader::read(&bytes).unwrap();
        let buffered = container::read_chunk_index(&bytes, &header).unwrap();
        let streamed: Vec<_> = whole
            .iter()
            .filter_map(|e| match e {
                StreamEvent::IndexEntry { entry, .. } => Some(*entry),
                _ => None,
            })
            .collect();
        assert_eq!(streamed, buffered);
    }

    #[test]
    fn hostile_frame_lengths_error_cleanly_in_every_stream_mode() {
        // Single-frame mode, u64::MAX declared payload: the decoder buffers
        // only what was actually fed (no length-proportional reservation)
        // and reports truncation at finish.
        let mut framed = write_frame(CodecId::Zfp, b"tiny");
        framed[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            run(&framed, 3).unwrap_err(),
            DecompressError::Truncated("container payload")
        );

        // The 32-bit wraparound value 2^32, which an unchecked `as usize`
        // cast would turn into a successfully-parsed 0-byte payload on a
        // 32-bit target: same clean truncation error.
        framed[6..14].copy_from_slice(&(1u64 << 32).to_le_bytes());
        assert_eq!(
            run(&framed, 3).unwrap_err(),
            DecompressError::Truncated("container payload")
        );

        // Indexed archive mode: the frame's own declared length must agree
        // with the index entry's extent, so a u64::MAX lie dies right at
        // the chunk frame header.
        let mut evil = v1_archive();
        let header = ArchiveHeader::read(&evil).unwrap();
        let len_at = header.data_start() + 6;
        evil[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            run(&evil, 1).unwrap_err(),
            DecompressError::Truncated("container payload")
        );

        // Inline (index-free) archive mode has no entry to cross-check, but
        // a length that would overflow the archive's own u64 addressing is
        // rejected before any buffering begins.
        let (mut evil, _) = v3_inline_archive_with_model();
        let header = ArchiveHeader::read(&evil).unwrap();
        let len_at = header.data_start() + 6;
        evil[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            run(&evil, 1).unwrap_err(),
            DecompressError::BadChunkIndex {
                chunk: 0,
                reason: "frame length overflows the archive",
            }
        );
    }

    #[test]
    fn inline_v3_archives_stream_and_verify_their_model_tail() {
        let (bytes, model) = v3_inline_archive_with_model();
        for step in [1, 3, bytes.len()] {
            let events = run(&bytes, step).unwrap();
            // Inline order: header, then per chunk (reconstructed entry,
            // frame header, frame), then the model tail.
            assert!(matches!(events[0], StreamEvent::ArchiveHeader(_)));
            assert!(matches!(
                events[1],
                StreamEvent::IndexEntry { index: 0, .. }
            ));
            assert!(matches!(events[2], StreamEvent::FrameHeader(_)));
            assert!(matches!(
                events[3],
                StreamEvent::ChunkFrame { index: 0, .. }
            ));
            assert!(matches!(
                events[4],
                StreamEvent::IndexEntry { index: 1, .. }
            ));
            assert!(matches!(events[5], StreamEvent::FrameHeader(_)));
            assert!(matches!(
                events[6],
                StreamEvent::ChunkFrame { index: 1, .. }
            ));
            match &events[7] {
                StreamEvent::Model { id, frame } => {
                    assert_eq!(*id, model.id);
                    assert_eq!(*frame, model.frame);
                }
                other => panic!("unexpected event {other:?}"),
            }
            assert_eq!(events.len(), 8);
        }
        // A flipped bit in the model payload is caught with the buffered
        // path's error.
        let mut evil = bytes.clone();
        let last = evil.len() - 1;
        evil[last] ^= 1;
        assert_eq!(
            run(&evil, 1).unwrap_err(),
            DecompressError::Inconsistent("embedded model bytes do not hash to their stored id")
        );
        // Truncation anywhere inside the archive is Truncated.
        for cut in [5, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                run(&bytes[..cut], 1).unwrap_err(),
                DecompressError::Truncated(_)
            ));
        }
    }

    #[test]
    fn residency_stays_bounded_by_one_section() {
        let bytes = v1_archive();
        let mut dec = StreamDecoder::new();
        for b in &bytes {
            dec.feed(std::slice::from_ref(b));
            while dec.poll().unwrap().is_some() {}
        }
        dec.finish();
        while dec.poll().unwrap().is_some() {}
        assert!(dec.is_done());
        // Largest section in this archive: the fixed header (32 bytes for
        // rank 1 v1) — every chunk frame is smaller than 32 bytes here, so
        // the high-water mark must stay tiny and, crucially, far below the
        // whole input.
        assert!(
            dec.peak_buffered() <= 40,
            "peak {} exceeds one section",
            dec.peak_buffered()
        );
        assert!(dec.peak_buffered() < bytes.len());
    }

    #[test]
    fn sticky_failure_repeats_and_garbage_is_rejected() {
        let mut dec = StreamDecoder::new();
        dec.feed(b"GARBAGE!");
        assert_eq!(dec.poll().unwrap_err(), DecompressError::BadMagic);
        assert_eq!(dec.poll().unwrap_err(), DecompressError::BadMagic);
        dec.feed(b"more");
        assert_eq!(dec.poll().unwrap_err(), DecompressError::BadMagic);
    }
}
