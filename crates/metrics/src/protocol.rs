//! `AESP` — the length-prefixed request/response protocol of `aesz serve`.
//!
//! The daemon speaks a binary protocol over plain TCP: every message is a
//! fixed 16-byte header followed by a typed body. Compressed payloads are
//! carried verbatim as the existing `AESC`/`AESA` container bytes, so the
//! wire format layers on (never re-encodes) the formats the rest of the
//! workspace already parses with hostile-input discipline.
//!
//! ```text
//! offset  size  field
//! 0       4     magic "AESP"
//! 4       1     protocol version (1)
//! 5       1     message type
//! 6       2     reserved, must be zero
//! 8       8     body length, u64 LE
//! 16      ...   body (type-specific)
//! ```
//!
//! Parsing follows the same rules as the container/archive/stream formats
//! (rules R1–R4 of the repo-root `lint.toml`): the declared body length is
//! checked against a caller-supplied cap *before* any allocation, every
//! multi-byte read goes through `.get()`, sizes are `checked_mul`-guarded,
//! and truncation or bit flips surface as [`DecompressError`] values — never
//! panics. Raw fields travel as `[rank u8][3 zero bytes][extents u64 LE ×
//! rank][f32 LE × product]`, with the extent product capped by
//! [`MAX_FIELD_ELEMS`] and the caller's element limit.

use crate::bound::ErrorBound;
use crate::container::{CodecId, ModelId, MAX_FIELD_ELEMS, MODEL_ID_LEN};
use crate::error::DecompressError;
use aesz_tensor::{Dims, Field};

/// Magic bytes opening every `AESP` message.
pub const PROTOCOL_MAGIC: [u8; 4] = *b"AESP";

/// Protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed message header length in bytes.
pub const HEADER_LEN: usize = 16;

/// Longest error message the `Error` response will carry (bytes of UTF-8).
pub const MAX_ERROR_MSG: usize = 512;

/// Encoded size of one [`ModelEntry`] in a `ModelList` body.
pub const MODEL_ENTRY_LEN: usize = MODEL_ID_LEN + 1 + 1 + 6 + 8;

/// Number of `u64` counters in a [`ServerStats`] body.
const STATS_FIELDS: usize = 13 + CODEC_SLOTS + CODEC_SLOTS;

/// Exact body length of a `StatsOk` response.
pub const STATS_BODY_LEN: usize = 8 * STATS_FIELDS;

/// Per-codec counter slots (one per [`CodecId`] discriminant).
pub const CODEC_SLOTS: usize = 7;

/// Every message type of the protocol. Requests occupy `0x01..=0x06`,
/// responses `0x81..=0x86` plus the two failure responses `0xE0`/`0xE1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgType {
    /// Compress a raw field under an error bound; answered by `CompressOk`.
    Compress = 0x01,
    /// Decompress `AESC`/`AESA` bytes; answered by `DecompressOk`.
    Decompress = 0x02,
    /// Train a learned codec on a raw field; answered by `TrainOk`.
    Train = 0x03,
    /// Liveness probe; answered by `HealthOk`.
    Health = 0x04,
    /// Counter snapshot; answered by `StatsOk`.
    Stats = 0x05,
    /// Resident/sidecar model inventory; answered by `ModelList`.
    ListModels = 0x06,
    /// Successful compress: body is the `AESC` stream.
    CompressOk = 0x81,
    /// Successful decompress: body is the raw field encoding.
    DecompressOk = 0x82,
    /// Successful train: body is the model id plus its `AESM` frame.
    TrainOk = 0x83,
    /// Liveness answer: uptime and queue depth.
    HealthOk = 0x84,
    /// Counter snapshot answer ([`ServerStats`]).
    StatsOk = 0x85,
    /// Model inventory answer ([`ModelEntry`] list).
    ModelList = 0x86,
    /// Typed failure: an error code plus a short UTF-8 message.
    Error = 0xE0,
    /// Typed backpressure rejection: the server is at its queue or
    /// connection cap; retry later. Carries the queue depth observed.
    Busy = 0xE1,
}

impl MsgType {
    /// Decode a message-type byte; `None` for bytes no message uses.
    pub fn from_byte(b: u8) -> Option<MsgType> {
        match b {
            0x01 => Some(MsgType::Compress),
            0x02 => Some(MsgType::Decompress),
            0x03 => Some(MsgType::Train),
            0x04 => Some(MsgType::Health),
            0x05 => Some(MsgType::Stats),
            0x06 => Some(MsgType::ListModels),
            0x81 => Some(MsgType::CompressOk),
            0x82 => Some(MsgType::DecompressOk),
            0x83 => Some(MsgType::TrainOk),
            0x84 => Some(MsgType::HealthOk),
            0x85 => Some(MsgType::StatsOk),
            0x86 => Some(MsgType::ModelList),
            0xE0 => Some(MsgType::Error),
            0xE1 => Some(MsgType::Busy),
            _ => None,
        }
    }

    /// The wire byte of this message type.
    pub fn byte(self) -> u8 {
        self as u8
    }

    /// Whether this type travels client → server.
    pub fn is_request(self) -> bool {
        (self as u8) < 0x80
    }
}

/// A parsed message header: the type and the declared body length. The body
/// length is *declared*, not validated — callers must cap it against their
/// own limit before allocating or reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgHeader {
    /// Message type.
    pub msg: MsgType,
    /// Declared body length in bytes (attacker-controlled; cap before use).
    pub body_len: u64,
}

impl MsgHeader {
    /// Parse the fixed 16-byte header at the front of `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<MsgHeader, DecompressError> {
        if bytes.len() < HEADER_LEN {
            return Err(DecompressError::Truncated("message header"));
        }
        if bytes[..4] != PROTOCOL_MAGIC {
            return Err(DecompressError::BadMagic);
        }
        if bytes[4] != PROTOCOL_VERSION {
            return Err(DecompressError::UnsupportedVersion(bytes[4]));
        }
        let msg =
            MsgType::from_byte(bytes[5]).ok_or(DecompressError::InvalidHeader("message type"))?;
        if bytes[6] != 0 || bytes[7] != 0 {
            return Err(DecompressError::InvalidHeader(
                "reserved header bytes must be zero",
            ));
        }
        let mut len = [0u8; 8];
        len.copy_from_slice(&bytes[8..16]);
        Ok(MsgHeader {
            msg,
            body_len: u64::from_le_bytes(len),
        })
    }
}

/// Serialize a message header.
pub fn header_bytes(msg: MsgType, body_len: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&PROTOCOL_MAGIC);
    h[4] = PROTOCOL_VERSION;
    h[5] = msg.byte();
    h[8..16].copy_from_slice(&body_len.to_le_bytes());
    h
}

/// Decode-side caps. Both are checked *before* any length-derived
/// allocation, so a hostile header cannot drive memory.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest declared body length accepted, in bytes.
    pub max_body: u64,
    /// Largest raw-field element count accepted.
    pub max_elems: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_body: 1 << 30,
            max_elems: MAX_FIELD_ELEMS,
        }
    }
}

/// Machine-readable reason of an `Error` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request could not be parsed.
    Malformed = 1,
    /// The request exceeded a size limit.
    TooLarge = 2,
    /// The request names a codec or operation this server cannot serve.
    Unsupported = 3,
    /// The compression leg failed.
    CompressFailed = 4,
    /// The decompression leg failed.
    DecompressFailed = 5,
    /// The training leg failed.
    TrainFailed = 6,
    /// An internal server failure.
    Internal = 7,
}

impl ErrorCode {
    /// Decode an error-code byte; `None` for unknown codes.
    pub fn from_byte(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::TooLarge),
            3 => Some(ErrorCode::Unsupported),
            4 => Some(ErrorCode::CompressFailed),
            5 => Some(ErrorCode::DecompressFailed),
            6 => Some(ErrorCode::TrainFailed),
            7 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// Training knobs carried by a `Train` request; `0` means "codec default"
/// for every field except `seed` (where 0 is itself a valid seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrainKnobs {
    /// Training epochs (0 = default).
    pub epochs: u32,
    /// Block edge length (0 = default).
    pub block: u32,
    /// Latent dimension (0 = default).
    pub latent: u32,
    /// Training block budget (0 = default).
    pub max_blocks: u32,
    /// RNG seed.
    pub seed: u64,
}

/// A parsed client → server request.
#[derive(Debug)]
pub enum Request {
    /// Compress `field` with `codec` under `bound`.
    Compress {
        /// Codec to compress with.
        codec: CodecId,
        /// Error bound to compress under.
        bound: ErrorBound,
        /// The raw field.
        field: Field,
    },
    /// Decompress opaque `AESC`/`AESA` bytes.
    Decompress {
        /// The framed stream, carried verbatim.
        bytes: Vec<u8>,
    },
    /// Train `codec` on `field` and keep the model resident.
    Train {
        /// Learned codec to train.
        codec: CodecId,
        /// Training knobs (zeros mean defaults).
        knobs: TrainKnobs,
        /// The training field.
        field: Field,
    },
    /// Liveness probe.
    Health,
    /// Counter snapshot.
    Stats,
    /// Model inventory.
    ListModels,
}

/// A parsed server → client response.
#[derive(Debug)]
pub enum Response {
    /// The compressed `AESC` stream.
    CompressOk {
        /// Framed stream bytes.
        stream: Vec<u8>,
    },
    /// The reconstruction of a `Decompress` request.
    DecompressOk {
        /// Decoded field.
        field: Field,
    },
    /// A freshly trained, now-resident model.
    TrainOk {
        /// Content-addressed id of the trained model.
        id: ModelId,
        /// Its serialized `AESM` frame.
        frame: Vec<u8>,
    },
    /// Liveness answer.
    HealthOk {
        /// Milliseconds since the daemon started.
        uptime_ms: u64,
        /// Jobs currently queued behind the workers.
        queue_depth: u64,
    },
    /// Counter snapshot.
    StatsOk(ServerStats),
    /// Model inventory.
    ModelList {
        /// One entry per resident or sidecar model.
        entries: Vec<ModelEntry>,
    },
    /// Typed failure.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Short human-readable message.
        message: String,
    },
    /// Typed backpressure rejection (queue or connection cap reached).
    Busy {
        /// Jobs queued when the request was rejected.
        queue_depth: u64,
    },
}

/// One model in a `ModelList` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelEntry {
    /// Content-addressed model id (the claimed id for unverified sidecars).
    pub id: ModelId,
    /// Codec the model belongs to, when its frame parsed.
    pub codec: Option<CodecId>,
    /// Whether the frame parsed and its payload hashes to `id`.
    pub verified: bool,
    /// Serialized parameter bytes (the `AESM` payload length).
    pub param_bytes: u64,
}

/// The daemon's counter snapshot, serialized as [`STATS_BODY_LEN`] bytes of
/// little-endian `u64` values in declaration order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Requests received (including rejected ones).
    pub requests: u64,
    /// Requests answered with a success response.
    pub ok: u64,
    /// Requests answered with an `Error` response.
    pub errors: u64,
    /// Requests rejected with `Busy`.
    pub busy_rejections: u64,
    /// Total request-body bytes received.
    pub bytes_in: u64,
    /// Total response bytes sent.
    pub bytes_out: u64,
    /// Jobs currently queued behind the workers.
    pub queue_depth: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Connections accepted since start.
    pub connections_total: u64,
    /// Decodes served by an already-resident trained model.
    pub model_cache_hits: u64,
    /// Trained models built from the store on demand.
    pub model_resolutions: u64,
    /// Models currently resident in the store.
    pub models_resident: u64,
    /// Compress requests per codec (slot = discriminant − 1).
    pub compress_by_codec: [u64; CODEC_SLOTS],
    /// Decompress requests per codec (slot = discriminant − 1).
    pub decompress_by_codec: [u64; CODEC_SLOTS],
}

impl ServerStats {
    /// The counter slot of `codec` in the per-codec arrays.
    pub fn codec_slot(codec: CodecId) -> usize {
        usize::from(codec as u8).saturating_sub(1)
    }

    /// Append the fixed binary encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let head = [
            self.uptime_ms,
            self.requests,
            self.ok,
            self.errors,
            self.busy_rejections,
            self.bytes_in,
            self.bytes_out,
            self.queue_depth,
            self.connections_active,
            self.connections_total,
            self.model_cache_hits,
            self.model_resolutions,
            self.models_resident,
        ];
        for v in head
            .iter()
            .chain(self.compress_by_codec.iter())
            .chain(self.decompress_by_codec.iter())
        {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Parse a `StatsOk` body (must be exactly [`STATS_BODY_LEN`] bytes).
    pub fn decode(body: &[u8]) -> Result<ServerStats, DecompressError> {
        if body.len() != STATS_BODY_LEN {
            return Err(DecompressError::Inconsistent("stats body length"));
        }
        let mut pos = 0usize;
        let mut stats = ServerStats::default();
        {
            let head: [&mut u64; 13] = [
                &mut stats.uptime_ms,
                &mut stats.requests,
                &mut stats.ok,
                &mut stats.errors,
                &mut stats.busy_rejections,
                &mut stats.bytes_in,
                &mut stats.bytes_out,
                &mut stats.queue_depth,
                &mut stats.connections_active,
                &mut stats.connections_total,
                &mut stats.model_cache_hits,
                &mut stats.model_resolutions,
                &mut stats.models_resident,
            ];
            for slot in head {
                *slot = take_u64(body, &mut pos)?;
            }
        }
        for slot in stats.compress_by_codec.iter_mut() {
            *slot = take_u64(body, &mut pos)?;
        }
        for slot in stats.decompress_by_codec.iter_mut() {
            *slot = take_u64(body, &mut pos)?;
        }
        Ok(stats)
    }
}

// ------------------------------------------------------------ body helpers

fn take_u64(body: &[u8], pos: &mut usize) -> Result<u64, DecompressError> {
    let end = pos
        .checked_add(8)
        .ok_or(DecompressError::Truncated("u64 field"))?;
    let chunk = body
        .get(*pos..end)
        .ok_or(DecompressError::Truncated("u64 field"))?;
    let mut b = [0u8; 8];
    b.copy_from_slice(chunk);
    *pos = end;
    Ok(u64::from_le_bytes(b))
}

fn take_u32(body: &[u8], pos: &mut usize) -> Result<u32, DecompressError> {
    let end = pos
        .checked_add(4)
        .ok_or(DecompressError::Truncated("u32 field"))?;
    let chunk = body
        .get(*pos..end)
        .ok_or(DecompressError::Truncated("u32 field"))?;
    let mut b = [0u8; 4];
    b.copy_from_slice(chunk);
    *pos = end;
    Ok(u32::from_le_bytes(b))
}

/// Append the raw-field encoding (`[rank][0;3][extents u64][f32 data]`).
fn encode_field_into(out: &mut Vec<u8>, field: &Field) {
    let extents = field.dims().extents();
    out.push(extents.len() as u8);
    out.extend_from_slice(&[0u8; 3]);
    for &e in &extents {
        out.extend_from_slice(&(e as u64).to_le_bytes());
    }
    out.extend_from_slice(&field.to_le_bytes());
}

/// Parse a raw-field encoding at the front of `body`, returning the field
/// and how many bytes it consumed. The extent product is capped by
/// `max_elems` and [`MAX_FIELD_ELEMS`] *before* the data is touched.
fn decode_field(body: &[u8], max_elems: usize) -> Result<(Field, usize), DecompressError> {
    let rank = usize::from(
        *body
            .first()
            .ok_or(DecompressError::Truncated("field rank"))?,
    );
    if !(1..=3).contains(&rank) {
        return Err(DecompressError::InvalidHeader("field rank must be 1..=3"));
    }
    if body.get(1..4) != Some(&[0u8; 3][..]) {
        return Err(DecompressError::InvalidHeader(
            "reserved field bytes must be zero",
        ));
    }
    let mut pos = 4usize;
    let mut extents = [0usize; 3];
    let mut elems = 1usize;
    let cap = MAX_FIELD_ELEMS.min(max_elems);
    for slot in extents.iter_mut().take(rank) {
        let raw = take_u64(body, &mut pos)?;
        let e = usize::try_from(raw)
            .map_err(|_| DecompressError::InvalidHeader("field extent overflows"))?;
        if e == 0 {
            return Err(DecompressError::InvalidHeader("zero field extent"));
        }
        elems = elems
            .checked_mul(e)
            .ok_or(DecompressError::InvalidHeader("field element overflow"))?;
        if elems > cap {
            return Err(DecompressError::Unsupported(
                "field exceeds the element cap",
            ));
        }
        *slot = e;
    }
    let data_len = elems
        .checked_mul(4)
        .ok_or(DecompressError::InvalidHeader("field byte overflow"))?;
    let end = pos
        .checked_add(data_len)
        .ok_or(DecompressError::Truncated("field data"))?;
    let data = body
        .get(pos..end)
        .ok_or(DecompressError::Truncated("field data"))?;
    let values: Vec<f32> = data
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let dims = match rank {
        1 => Dims::d1(extents[0]),
        2 => Dims::d2(extents[0], extents[1]),
        _ => Dims::d3(extents[0], extents[1], extents[2]),
    };
    let field = Field::from_vec(dims, values)
        .map_err(|_| DecompressError::Inconsistent("field data does not match its extents"))?;
    Ok((field, end))
}

fn require_consumed(body: &[u8], consumed: usize) -> Result<(), DecompressError> {
    if consumed == body.len() {
        Ok(())
    } else {
        Err(DecompressError::Inconsistent(
            "trailing bytes after message body",
        ))
    }
}

fn require_empty(body: &[u8]) -> Result<(), DecompressError> {
    if body.is_empty() {
        Ok(())
    } else {
        Err(DecompressError::Inconsistent(
            "unexpected body on a bodyless message",
        ))
    }
}

fn framed(msg: MsgType, body: Vec<u8>) -> Vec<u8> {
    // HEADER_LEN is a const and body is already in memory, so the capacity
    // is len-proportional.
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&header_bytes(msg, body.len() as u64));
    out.extend_from_slice(&body);
    out
}

// -------------------------------------------------------------- Request

impl Request {
    /// The message type this request serializes as.
    pub fn msg_type(&self) -> MsgType {
        match self {
            Request::Compress { .. } => MsgType::Compress,
            Request::Decompress { .. } => MsgType::Decompress,
            Request::Train { .. } => MsgType::Train,
            Request::Health => MsgType::Health,
            Request::Stats => MsgType::Stats,
            Request::ListModels => MsgType::ListModels,
        }
    }

    /// Serialize into a complete message (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Request::Compress {
                codec,
                bound,
                field,
            } => {
                body.push(*codec as u8);
                let (mode, e) = match bound {
                    ErrorBound::Abs(e) => (1u8, *e),
                    ErrorBound::RangeRel(e) => (2u8, *e),
                };
                body.push(mode);
                body.extend_from_slice(&[0u8; 2]);
                body.extend_from_slice(&e.to_le_bytes());
                encode_field_into(&mut body, field);
            }
            Request::Decompress { bytes } => body.extend_from_slice(bytes),
            Request::Train {
                codec,
                knobs,
                field,
            } => {
                body.push(*codec as u8);
                body.extend_from_slice(&[0u8; 3]);
                body.extend_from_slice(&knobs.epochs.to_le_bytes());
                body.extend_from_slice(&knobs.block.to_le_bytes());
                body.extend_from_slice(&knobs.latent.to_le_bytes());
                body.extend_from_slice(&knobs.max_blocks.to_le_bytes());
                body.extend_from_slice(&knobs.seed.to_le_bytes());
                encode_field_into(&mut body, field);
            }
            Request::Health | Request::Stats | Request::ListModels => {}
        }
        framed(self.msg_type(), body)
    }

    /// Parse a request body of type `msg`. `max_elems` caps the raw-field
    /// element count (checked before the data is read).
    pub fn decode_body(
        msg: MsgType,
        body: &[u8],
        max_elems: usize,
    ) -> Result<Request, DecompressError> {
        match msg {
            MsgType::Compress => {
                let raw = *body
                    .first()
                    .ok_or(DecompressError::Truncated("compress codec"))?;
                let codec = CodecId::from_byte(raw).ok_or(DecompressError::UnknownCodec(raw))?;
                let mode = *body
                    .get(1)
                    .ok_or(DecompressError::Truncated("bound mode"))?;
                if body.get(2..4) != Some(&[0u8; 2][..]) {
                    return Err(DecompressError::InvalidHeader(
                        "reserved compress bytes must be zero",
                    ));
                }
                let mut eb = [0u8; 8];
                eb.copy_from_slice(
                    body.get(4..12)
                        .ok_or(DecompressError::Truncated("error bound"))?,
                );
                let e = f64::from_le_bytes(eb);
                let bound = match mode {
                    1 => ErrorBound::abs(e),
                    2 => ErrorBound::rel(e),
                    _ => return Err(DecompressError::InvalidHeader("unknown bound mode")),
                };
                bound
                    .validate()
                    .map_err(|_| DecompressError::InvalidHeader("unusable error bound"))?;
                let rest = body
                    .get(12..)
                    .ok_or(DecompressError::Truncated("compress field"))?;
                let (field, consumed) = decode_field(rest, max_elems)?;
                require_consumed(rest, consumed)?;
                Ok(Request::Compress {
                    codec,
                    bound,
                    field,
                })
            }
            MsgType::Decompress => Ok(Request::Decompress {
                bytes: body.to_vec(),
            }),
            MsgType::Train => {
                let raw = *body
                    .first()
                    .ok_or(DecompressError::Truncated("train codec"))?;
                let codec = CodecId::from_byte(raw).ok_or(DecompressError::UnknownCodec(raw))?;
                if body.get(1..4) != Some(&[0u8; 3][..]) {
                    return Err(DecompressError::InvalidHeader(
                        "reserved train bytes must be zero",
                    ));
                }
                let mut pos = 4usize;
                let knobs = TrainKnobs {
                    epochs: take_u32(body, &mut pos)?,
                    block: take_u32(body, &mut pos)?,
                    latent: take_u32(body, &mut pos)?,
                    max_blocks: take_u32(body, &mut pos)?,
                    seed: take_u64(body, &mut pos)?,
                };
                let rest = body
                    .get(pos..)
                    .ok_or(DecompressError::Truncated("train field"))?;
                let (field, consumed) = decode_field(rest, max_elems)?;
                require_consumed(rest, consumed)?;
                Ok(Request::Train {
                    codec,
                    knobs,
                    field,
                })
            }
            MsgType::Health => require_empty(body).map(|()| Request::Health),
            MsgType::Stats => require_empty(body).map(|()| Request::Stats),
            MsgType::ListModels => require_empty(body).map(|()| Request::ListModels),
            _ => Err(DecompressError::InvalidHeader(
                "response type where a request was expected",
            )),
        }
    }
}

// -------------------------------------------------------------- Response

impl Response {
    /// The message type this response serializes as.
    pub fn msg_type(&self) -> MsgType {
        match self {
            Response::CompressOk { .. } => MsgType::CompressOk,
            Response::DecompressOk { .. } => MsgType::DecompressOk,
            Response::TrainOk { .. } => MsgType::TrainOk,
            Response::HealthOk { .. } => MsgType::HealthOk,
            Response::StatsOk(_) => MsgType::StatsOk,
            Response::ModelList { .. } => MsgType::ModelList,
            Response::Error { .. } => MsgType::Error,
            Response::Busy { .. } => MsgType::Busy,
        }
    }

    /// Serialize into a complete message (header + body). Error messages are
    /// truncated to [`MAX_ERROR_MSG`] bytes on a character boundary.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Response::CompressOk { stream } => body.extend_from_slice(stream),
            Response::DecompressOk { field } => encode_field_into(&mut body, field),
            Response::TrainOk { id, frame } => {
                body.extend_from_slice(id.as_bytes());
                body.extend_from_slice(frame);
            }
            Response::HealthOk {
                uptime_ms,
                queue_depth,
            } => {
                body.extend_from_slice(&uptime_ms.to_le_bytes());
                body.extend_from_slice(&queue_depth.to_le_bytes());
            }
            Response::StatsOk(stats) => stats.encode_into(&mut body),
            Response::ModelList { entries } => {
                body.extend_from_slice(&(entries.len() as u64).to_le_bytes());
                for entry in entries {
                    body.extend_from_slice(entry.id.as_bytes());
                    body.push(entry.codec.map(|c| c as u8).unwrap_or(0));
                    body.push(u8::from(entry.verified));
                    body.extend_from_slice(&[0u8; 6]);
                    body.extend_from_slice(&entry.param_bytes.to_le_bytes());
                }
            }
            Response::Error { code, message } => {
                body.push(*code as u8);
                let mut cut = message.len().min(MAX_ERROR_MSG);
                while cut > 0 && !message.is_char_boundary(cut) {
                    cut -= 1;
                }
                let msg_bytes = message.as_bytes();
                body.extend_from_slice(msg_bytes.get(..cut).unwrap_or(msg_bytes));
            }
            Response::Busy { queue_depth } => {
                body.extend_from_slice(&queue_depth.to_le_bytes());
            }
        }
        framed(self.msg_type(), body)
    }

    /// Parse a response body of type `msg`. `max_elems` caps the raw-field
    /// element count of `DecompressOk` bodies.
    pub fn decode_body(
        msg: MsgType,
        body: &[u8],
        max_elems: usize,
    ) -> Result<Response, DecompressError> {
        match msg {
            MsgType::CompressOk => Ok(Response::CompressOk {
                stream: body.to_vec(),
            }),
            MsgType::DecompressOk => {
                let (field, consumed) = decode_field(body, max_elems)?;
                require_consumed(body, consumed)?;
                Ok(Response::DecompressOk { field })
            }
            MsgType::TrainOk => {
                let id = ModelId::from_prefix(body)
                    .ok_or(DecompressError::Truncated("trained model id"))?;
                let frame = body
                    .get(MODEL_ID_LEN..)
                    .ok_or(DecompressError::Truncated("trained model frame"))?;
                if frame.is_empty() {
                    return Err(DecompressError::Truncated("trained model frame"));
                }
                Ok(Response::TrainOk {
                    id,
                    frame: frame.to_vec(),
                })
            }
            MsgType::HealthOk => {
                let mut pos = 0usize;
                let uptime_ms = take_u64(body, &mut pos)?;
                let queue_depth = take_u64(body, &mut pos)?;
                require_consumed(body, pos)?;
                Ok(Response::HealthOk {
                    uptime_ms,
                    queue_depth,
                })
            }
            MsgType::StatsOk => Ok(Response::StatsOk(ServerStats::decode(body)?)),
            MsgType::ModelList => {
                let mut pos = 0usize;
                let count = take_u64(body, &mut pos)?;
                let declared = usize::try_from(count)
                    .map_err(|_| DecompressError::InvalidHeader("model count overflows"))?;
                let expect = declared
                    .checked_mul(MODEL_ENTRY_LEN)
                    .and_then(|n| n.checked_add(8))
                    .ok_or(DecompressError::InvalidHeader("model count overflows"))?;
                if expect != body.len() {
                    return Err(DecompressError::Inconsistent(
                        "model list length disagrees with its count",
                    ));
                }
                // Bounded by the body length just validated above.
                let mut entries = Vec::with_capacity(declared);
                for _ in 0..declared {
                    let id_end = pos
                        .checked_add(MODEL_ID_LEN)
                        .ok_or(DecompressError::Truncated("model id"))?;
                    let id = body
                        .get(pos..id_end)
                        .and_then(ModelId::from_prefix)
                        .ok_or(DecompressError::Truncated("model id"))?;
                    pos = id_end;
                    let codec_raw = *body
                        .get(pos)
                        .ok_or(DecompressError::Truncated("model codec"))?;
                    let codec = CodecId::from_byte(codec_raw);
                    if codec.is_none() && codec_raw != 0 {
                        return Err(DecompressError::UnknownCodec(codec_raw));
                    }
                    let verified_raw = *body
                        .get(pos + 1)
                        .ok_or(DecompressError::Truncated("model flags"))?;
                    let verified = match verified_raw {
                        0 => false,
                        1 => true,
                        _ => {
                            return Err(DecompressError::InvalidHeader(
                                "model verified flag must be 0 or 1",
                            ))
                        }
                    };
                    let zeros_end = pos
                        .checked_add(8)
                        .ok_or(DecompressError::Truncated("model entry"))?;
                    if body.get(pos + 2..zeros_end) != Some(&[0u8; 6][..]) {
                        return Err(DecompressError::InvalidHeader(
                            "reserved model bytes must be zero",
                        ));
                    }
                    pos = zeros_end;
                    let param_bytes = take_u64(body, &mut pos)?;
                    entries.push(ModelEntry {
                        id,
                        codec,
                        verified,
                        param_bytes,
                    });
                }
                require_consumed(body, pos)?;
                Ok(Response::ModelList { entries })
            }
            MsgType::Error => {
                let raw = *body
                    .first()
                    .ok_or(DecompressError::Truncated("error code"))?;
                let code = ErrorCode::from_byte(raw)
                    .ok_or(DecompressError::InvalidHeader("unknown error code"))?;
                let rest = body
                    .get(1..)
                    .ok_or(DecompressError::Truncated("error message"))?;
                Ok(Response::Error {
                    code,
                    message: String::from_utf8_lossy(rest).into_owned(),
                })
            }
            MsgType::Busy => {
                let mut pos = 0usize;
                let queue_depth = take_u64(body, &mut pos)?;
                require_consumed(body, pos)?;
                Ok(Response::Busy { queue_depth })
            }
            _ => Err(DecompressError::InvalidHeader(
                "request type where a response was expected",
            )),
        }
    }
}

// --------------------------------------------------- buffer conveniences

fn checked_body<'a>(
    header: &MsgHeader,
    bytes: &'a [u8],
    limits: &Limits,
) -> Result<(&'a [u8], usize), DecompressError> {
    if header.body_len > limits.max_body {
        return Err(DecompressError::Unsupported(
            "message body exceeds the size limit",
        ));
    }
    let body_len = usize::try_from(header.body_len)
        .map_err(|_| DecompressError::Unsupported("message body exceeds addressable size"))?;
    let end = HEADER_LEN
        .checked_add(body_len)
        .ok_or(DecompressError::Truncated("message body"))?;
    let body = bytes
        .get(HEADER_LEN..end)
        .ok_or(DecompressError::Truncated("message body"))?;
    Ok((body, end))
}

/// Parse one complete request message from the front of `bytes`, returning
/// it and the number of bytes consumed. Caps are enforced before any
/// allocation.
pub fn decode_request(bytes: &[u8], limits: &Limits) -> Result<(Request, usize), DecompressError> {
    let header = MsgHeader::parse(bytes)?;
    if !header.msg.is_request() {
        return Err(DecompressError::InvalidHeader(
            "response type where a request was expected",
        ));
    }
    let (body, end) = checked_body(&header, bytes, limits)?;
    Ok((
        Request::decode_body(header.msg, body, limits.max_elems)?,
        end,
    ))
}

/// Parse one complete response message from the front of `bytes`, returning
/// it and the number of bytes consumed. Caps are enforced before any
/// allocation.
pub fn decode_response(
    bytes: &[u8],
    limits: &Limits,
) -> Result<(Response, usize), DecompressError> {
    let header = MsgHeader::parse(bytes)?;
    if header.msg.is_request() {
        return Err(DecompressError::InvalidHeader(
            "request type where a response was expected",
        ));
    }
    let (body, end) = checked_body(&header, bytes, limits)?;
    Ok((
        Response::decode_body(header.msg, body, limits.max_elems)?,
        end,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_field() -> Field {
        Field::from_fn(Dims::d2(4, 6), |c| (c[0] * 7 + c[1]) as f32)
    }

    #[test]
    fn requests_roundtrip() {
        let limits = Limits::default();
        let reqs = [
            Request::Compress {
                codec: CodecId::Zfp,
                bound: ErrorBound::abs(1e-3),
                field: small_field(),
            },
            Request::Decompress {
                bytes: vec![1, 2, 3, 4],
            },
            Request::Train {
                codec: CodecId::AeSz,
                knobs: TrainKnobs {
                    epochs: 2,
                    block: 8,
                    latent: 4,
                    max_blocks: 6,
                    seed: 42,
                },
                field: small_field(),
            },
            Request::Health,
            Request::Stats,
            Request::ListModels,
        ];
        for req in reqs {
            let bytes = req.encode();
            let (back, used) = decode_request(&bytes, &limits).expect("roundtrip");
            assert_eq!(used, bytes.len());
            assert_eq!(back.msg_type(), req.msg_type());
            if let (
                Request::Compress { field: a, .. },
                Request::Compress {
                    field: b,
                    bound,
                    codec,
                },
            ) = (&req, &back)
            {
                assert_eq!(a.as_slice(), b.as_slice());
                assert_eq!(*bound, ErrorBound::abs(1e-3));
                assert_eq!(*codec, CodecId::Zfp);
            }
        }
    }

    #[test]
    fn responses_roundtrip() {
        let limits = Limits::default();
        let mut stats = ServerStats {
            uptime_ms: 1234,
            requests: 10,
            ok: 8,
            errors: 1,
            busy_rejections: 1,
            bytes_in: 4096,
            bytes_out: 2048,
            queue_depth: 3,
            connections_active: 2,
            connections_total: 7,
            model_cache_hits: 5,
            model_resolutions: 2,
            models_resident: 1,
            ..ServerStats::default()
        };
        stats.compress_by_codec[ServerStats::codec_slot(CodecId::Zfp)] = 4;
        stats.decompress_by_codec[ServerStats::codec_slot(CodecId::AeSz)] = 6;
        let resps = [
            Response::CompressOk {
                stream: vec![9; 40],
            },
            Response::DecompressOk {
                field: small_field(),
            },
            Response::TrainOk {
                id: ModelId::of(b"weights"),
                frame: vec![1, 2, 3],
            },
            Response::HealthOk {
                uptime_ms: 99,
                queue_depth: 1,
            },
            Response::StatsOk(stats),
            Response::ModelList {
                entries: vec![ModelEntry {
                    id: ModelId::of(b"m"),
                    codec: Some(CodecId::AeA),
                    verified: true,
                    param_bytes: 512,
                }],
            },
            Response::Error {
                code: ErrorCode::TooLarge,
                message: "nope".into(),
            },
            Response::Busy { queue_depth: 12 },
        ];
        for resp in resps {
            let bytes = resp.encode();
            let (back, used) = decode_response(&bytes, &limits).expect("roundtrip");
            assert_eq!(used, bytes.len());
            assert_eq!(back.msg_type(), resp.msg_type());
            if let Response::StatsOk(s) = &back {
                assert_eq!(*s, stats);
            }
        }
    }

    #[test]
    fn hostile_lengths_are_rejected_before_allocation() {
        let limits = Limits::default();
        for len in [u64::MAX, u64::MAX - 15, (1u64 << 32) + 7, (1 << 30) + 1] {
            let mut msg = header_bytes(MsgType::Health, len).to_vec();
            msg.extend_from_slice(&[0u8; 32]);
            assert!(decode_request(&msg, &limits).is_err(), "len {len}");
        }
    }

    #[test]
    fn element_caps_bound_field_decode() {
        let req = Request::Compress {
            codec: CodecId::Zfp,
            bound: ErrorBound::abs(1e-3),
            field: small_field(),
        };
        let bytes = req.encode();
        let tight = Limits {
            max_body: 1 << 30,
            max_elems: 5,
        };
        assert!(matches!(
            decode_request(&bytes, &tight),
            Err(DecompressError::Unsupported(_))
        ));
    }

    #[test]
    fn error_messages_are_truncated_on_char_boundaries() {
        let long = "é".repeat(MAX_ERROR_MSG);
        let bytes = Response::Error {
            code: ErrorCode::Internal,
            message: long,
        }
        .encode();
        let (back, _) = decode_response(&bytes, &Limits::default()).expect("decodes");
        if let Response::Error { message, .. } = back {
            assert!(message.len() <= MAX_ERROR_MSG);
            assert!(message.chars().all(|c| c == 'é'));
        } else {
            panic!("expected Error");
        }
    }
}
