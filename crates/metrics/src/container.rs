//! The self-describing outer container every compressed stream is wrapped in.
//!
//! Each codec keeps its own payload format, but every stream produced through
//! the [`Compressor`](crate::Compressor) trait starts with one tiny frame so
//! a service front-end can dispatch untrusted bytes to the right decoder
//! without trusting anything beyond the frame itself:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"AESC"
//! 4       1     container version (currently 1)
//! 5       1     codec id (see CodecId)
//! 6       8     payload length, u64 little-endian
//! 14      n     codec-specific payload (exactly `payload length` bytes)
//! ```
//!
//! [`read_frame`] rejects bad magic, unknown codec ids, unknown versions and
//! any disagreement between the declared payload length and the actual input
//! length, so truncated or padded streams fail before a single payload byte
//! is interpreted.

use crate::error::DecompressError;

/// Magic bytes opening every container frame ("AE-SZ container").
pub const CONTAINER_MAGIC: [u8; 4] = *b"AESC";

/// Current container frame version.
pub const CONTAINER_VERSION: u8 = 1;

/// Size of the fixed-length frame preceding the payload.
pub const FRAME_LEN: usize = 4 + 1 + 1 + 8;

/// Upper bound on the element count any stream header may declare (2³¹
/// points, an 8 GiB `f32` field). Every decode-side allocation in the
/// workspace is proportional to a header-declared size, so this single cap
/// bounds what hostile headers can request from any codec.
pub const MAX_FIELD_ELEMS: usize = 1 << 31;

/// Identifies which compressor produced a stream — the dispatch key of
/// `decompress_any`. The discriminants are part of the on-disk format and
/// must never be reused for a different codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecId {
    /// The AE-SZ compressor of the paper (`aesz_core::AeSz`).
    AeSz = 1,
    /// SZ2.1-like blockwise Lorenzo/regression baseline.
    Sz2 = 2,
    /// ZFP-like transform baseline.
    Zfp = 3,
    /// SZauto-like second-order Lorenzo baseline.
    SzAuto = 4,
    /// SZinterp-like spline-interpolation baseline.
    SzInterp = 5,
    /// AE-A: the fully-connected autoencoder of Liu et al. \[43\].
    AeA = 6,
    /// AE-B: the convolutional autoencoder of Glaws et al. \[40\] (fixed-rate,
    /// not error-bounded).
    AeB = 7,
}

impl CodecId {
    /// All codec ids this build knows, in discriminant order.
    pub fn all() -> [CodecId; 7] {
        [
            CodecId::AeSz,
            CodecId::Sz2,
            CodecId::Zfp,
            CodecId::SzAuto,
            CodecId::SzInterp,
            CodecId::AeA,
            CodecId::AeB,
        ]
    }

    /// Decode a codec id byte from a frame.
    pub fn from_byte(b: u8) -> Option<CodecId> {
        match b {
            1 => Some(CodecId::AeSz),
            2 => Some(CodecId::Sz2),
            3 => Some(CodecId::Zfp),
            4 => Some(CodecId::SzAuto),
            5 => Some(CodecId::SzInterp),
            6 => Some(CodecId::AeA),
            7 => Some(CodecId::AeB),
            _ => None,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            CodecId::AeSz => "AE-SZ",
            CodecId::Sz2 => "SZ2.1",
            CodecId::Zfp => "ZFP",
            CodecId::SzAuto => "SZauto",
            CodecId::SzInterp => "SZinterp",
            CodecId::AeA => "AE-A",
            CodecId::AeB => "AE-B",
        }
    }
}

impl std::fmt::Display for CodecId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Wrap a codec payload in a container frame.
pub fn write_frame(codec: CodecId, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_LEN + payload.len());
    out.extend_from_slice(&CONTAINER_MAGIC);
    out.push(CONTAINER_VERSION);
    out.push(codec as u8);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse and validate a container frame, returning the codec id and the
/// borrowed payload. The declared payload length must match the remaining
/// input exactly; any shortfall or surplus is an error.
pub fn read_frame(bytes: &[u8]) -> Result<(CodecId, &[u8]), DecompressError> {
    if bytes.len() < CONTAINER_MAGIC.len() {
        return Err(DecompressError::Truncated("container magic"));
    }
    if bytes[..CONTAINER_MAGIC.len()] != CONTAINER_MAGIC {
        return Err(DecompressError::BadMagic);
    }
    if bytes.len() < FRAME_LEN {
        return Err(DecompressError::Truncated("container frame"));
    }
    let version = bytes[4];
    if version != CONTAINER_VERSION {
        return Err(DecompressError::UnsupportedVersion(version));
    }
    let codec = CodecId::from_byte(bytes[5]).ok_or(DecompressError::UnknownCodec(bytes[5]))?;
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&bytes[6..14]);
    let declared = u64::from_le_bytes(len_bytes);
    let actual = (bytes.len() - FRAME_LEN) as u64;
    if declared > actual {
        return Err(DecompressError::Truncated("container payload"));
    }
    if declared < actual {
        return Err(DecompressError::Inconsistent(
            "trailing bytes after container payload",
        ));
    }
    Ok((codec, &bytes[FRAME_LEN..]))
}

/// Read only the codec id of a frame (for dispatch or inspection), without
/// requiring the payload to be complete.
pub fn peek_codec(bytes: &[u8]) -> Result<CodecId, DecompressError> {
    if bytes.len() < CONTAINER_MAGIC.len() {
        return Err(DecompressError::Truncated("container magic"));
    }
    if bytes[..CONTAINER_MAGIC.len()] != CONTAINER_MAGIC {
        return Err(DecompressError::BadMagic);
    }
    let version = *bytes
        .get(4)
        .ok_or(DecompressError::Truncated("container version"))?;
    if version != CONTAINER_VERSION {
        return Err(DecompressError::UnsupportedVersion(version));
    }
    let id = *bytes
        .get(5)
        .ok_or(DecompressError::Truncated("container codec id"))?;
    CodecId::from_byte(id).ok_or(DecompressError::UnknownCodec(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips() {
        let payload = b"hello payload";
        let framed = write_frame(CodecId::SzInterp, payload);
        let (codec, body) = read_frame(&framed).unwrap();
        assert_eq!(codec, CodecId::SzInterp);
        assert_eq!(body, payload);
        assert_eq!(peek_codec(&framed).unwrap(), CodecId::SzInterp);
    }

    #[test]
    fn codec_ids_roundtrip_through_bytes() {
        for id in CodecId::all() {
            assert_eq!(CodecId::from_byte(id as u8), Some(id));
            assert!(!id.name().is_empty());
        }
        assert_eq!(CodecId::from_byte(0), None);
        assert_eq!(CodecId::from_byte(200), None);
    }

    #[test]
    fn every_truncated_prefix_is_rejected() {
        let framed = write_frame(CodecId::AeSz, &[7u8; 100]);
        for len in 0..framed.len() {
            assert!(
                read_frame(&framed[..len]).is_err(),
                "prefix of {len} bytes parsed as a complete frame"
            );
        }
    }

    #[test]
    fn bad_magic_version_codec_and_trailing_bytes_are_rejected() {
        let mut framed = write_frame(CodecId::Zfp, b"abc");
        framed.push(0);
        assert_eq!(
            read_frame(&framed),
            Err(DecompressError::Inconsistent(
                "trailing bytes after container payload"
            ))
        );
        let mut framed = write_frame(CodecId::Zfp, b"abc");
        framed[0] = b'X';
        assert_eq!(read_frame(&framed), Err(DecompressError::BadMagic));
        let mut framed = write_frame(CodecId::Zfp, b"abc");
        framed[4] = 99;
        assert_eq!(
            read_frame(&framed),
            Err(DecompressError::UnsupportedVersion(99))
        );
        let mut framed = write_frame(CodecId::Zfp, b"abc");
        framed[5] = 0;
        assert_eq!(read_frame(&framed), Err(DecompressError::UnknownCodec(0)));
    }
}
