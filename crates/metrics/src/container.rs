//! The self-describing outer container every compressed stream is wrapped in.
//!
//! Each codec keeps its own payload format, but every stream produced through
//! the [`Compressor`](crate::Compressor) trait starts with one tiny frame so
//! a service front-end can dispatch untrusted bytes to the right decoder
//! without trusting anything beyond the frame itself:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"AESC"
//! 4       1     container version (currently 1)
//! 5       1     codec id (see CodecId)
//! 6       8     payload length, u64 little-endian
//! 14      n     codec-specific payload (exactly `payload length` bytes)
//! ```
//!
//! [`read_frame`] rejects bad magic, unknown codec ids, unknown versions and
//! any disagreement between the declared payload length and the actual input
//! length, so truncated or padded streams fail before a single payload byte
//! is interpreted.
//!
//! # The multi-chunk archive format (`AESA`)
//!
//! On top of the single-payload frame, this module defines the wire format
//! of the **streaming archive** ([`crate::archive`]): a field split into a
//! grid of chunks, each chunk compressed independently into one complete
//! `AESC` frame, with a per-chunk codec id + offset index up front so single
//! chunks can be decoded without touching the rest of the archive:
//!
//! ```text
//! offset      size  field
//! 0           4     magic  b"AESA"
//! 4           1     archive version (currently 1)
//! 5           1     dtype (1 = f32 little-endian)
//! 6           1     rank r (1..=3)
//! 7           1     reserved, must be 0
//! 8           8·r   extents, u64 little-endian each, slow-to-fast
//! 8+8r        8     chunk edge length, u64 little-endian
//! 16+8r       8     chunk count n, u64 little-endian (== the grid product)
//! 24+8r       17·n  chunk index: n × (codec id u8, absolute byte offset
//!                   u64 LE, frame length u64 LE)
//! 24+8r+17n   …     n chunk frames, each a complete AESC frame, stored
//!                   back-to-back in index order
//! ```
//!
//! Version 2 ([`ARCHIVE_VERSION_MODELS`]) extends the header with one
//! trailing `u64` — the byte length of a **model section** appended after
//! the last chunk frame — so an archive can ship the trained networks its
//! learned chunks reference, each embedded exactly once and indexed by
//! content-addressed [`ModelId`]:
//!
//! ```text
//! offset      size  field (v2 additions)
//! 24+8r       8     model section length m_len, u64 little-endian
//! 32+8r       17·n  chunk index (as in v1, shifted by 8)
//! …                 chunk frames (as in v1)
//! end−m_len   m_len model section: per model, a 16-byte ModelId, a u64 LE
//!                   frame length, and a complete AESM model frame
//! ```
//!
//! Version 3 ([`ARCHIVE_VERSION_APPEND`]) inserts one more `u64` between the
//! chunk count and the model-section length: the **index capacity** `cap`,
//! the number of index slots physically present. Two regimes:
//!
//! * `cap == 0` — **inline archive**: no index table at all; the chunk
//!   frames follow the header directly, back-to-back in index order. This
//!   is what a seekless writer (a pipe) emits — the reader reconstructs the
//!   index by walking the frame headers ([`reconstruct_chunk_index`]), so
//!   random access still works once the bytes are on disk.
//! * `cap >= n` — **appendable archive**: `cap` slots are reserved up
//!   front, the first `n` hold real entries and the rest are zero-filled
//!   (validated zero on read). [`crate::archive::ArchiveAppender`] fills
//!   spare slots in place without shifting a single payload byte.
//!
//! ```text
//! offset      size  field (v3 additions)
//! 24+8r       8     index capacity cap, u64 LE (0, or >= chunk count n)
//! 32+8r       8     model section length m_len, u64 little-endian
//! 40+8r       17·cap chunk index slots (absent when cap == 0)
//! …                 chunk frames, then the model section as in v2
//! ```
//!
//! [`ArchiveHeader::read`], [`read_chunk_index`] and [`read_model_section`]
//! are the trust boundary: extents are capped at [`MAX_FIELD_ELEMS`], the
//! stored chunk count must equal the recomputed grid product, index entries
//! must tile the data section exactly (first offset at the data start, each
//! entry abutting the previous one, the last ending where the model section
//! begins — the input's end for v1), and model entries must tile the model
//! section exactly with every frame's recomputed payload hash equal to its
//! stored id — so a flipped offset, a lying chunk count, a corrupted model
//! or a truncated tail is an error before any chunk payload is interpreted,
//! and no allocation exceeds the input size.

use crate::error::DecompressError;
use aesz_tensor::Dims;

pub use aesz_codec::hash::{ModelId, MODEL_ID_LEN};

/// Magic bytes opening every container frame ("AE-SZ container").
pub const CONTAINER_MAGIC: [u8; 4] = *b"AESC";

/// Current container frame version.
pub const CONTAINER_VERSION: u8 = 1;

/// Size of the fixed-length frame preceding the payload.
pub const FRAME_LEN: usize = 4 + 1 + 1 + 8;

/// Upper bound on the element count any stream header may declare (2³¹
/// points, an 8 GiB `f32` field). Every decode-side allocation in the
/// workspace is proportional to a header-declared size, so this single cap
/// bounds what hostile headers can request from any codec.
pub const MAX_FIELD_ELEMS: usize = 1 << 31;

/// Identifies which compressor produced a stream — the dispatch key of
/// `decompress_any`. The discriminants are part of the on-disk format and
/// must never be reused for a different codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecId {
    /// The AE-SZ compressor of the paper (`aesz_core::AeSz`).
    AeSz = 1,
    /// SZ2.1-like blockwise Lorenzo/regression baseline.
    Sz2 = 2,
    /// ZFP-like transform baseline.
    Zfp = 3,
    /// SZauto-like second-order Lorenzo baseline.
    SzAuto = 4,
    /// SZinterp-like spline-interpolation baseline.
    SzInterp = 5,
    /// AE-A: the fully-connected autoencoder of Liu et al. \[43\].
    AeA = 6,
    /// AE-B: the convolutional autoencoder of Glaws et al. \[40\] (fixed-rate,
    /// not error-bounded).
    AeB = 7,
}

impl CodecId {
    /// All codec ids this build knows, in discriminant order.
    pub fn all() -> [CodecId; 7] {
        [
            CodecId::AeSz,
            CodecId::Sz2,
            CodecId::Zfp,
            CodecId::SzAuto,
            CodecId::SzInterp,
            CodecId::AeA,
            CodecId::AeB,
        ]
    }

    /// Decode a codec id byte from a frame.
    pub fn from_byte(b: u8) -> Option<CodecId> {
        match b {
            1 => Some(CodecId::AeSz),
            2 => Some(CodecId::Sz2),
            3 => Some(CodecId::Zfp),
            4 => Some(CodecId::SzAuto),
            5 => Some(CodecId::SzInterp),
            6 => Some(CodecId::AeA),
            7 => Some(CodecId::AeB),
            _ => None,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            CodecId::AeSz => "AE-SZ",
            CodecId::Sz2 => "SZ2.1",
            CodecId::Zfp => "ZFP",
            CodecId::SzAuto => "SZauto",
            CodecId::SzInterp => "SZinterp",
            CodecId::AeA => "AE-A",
            CodecId::AeB => "AE-B",
        }
    }
}

impl std::fmt::Display for CodecId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Wrap a codec payload in a container frame.
pub fn write_frame(codec: CodecId, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_LEN + payload.len());
    out.extend_from_slice(&CONTAINER_MAGIC);
    out.push(CONTAINER_VERSION);
    out.push(codec as u8);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse and validate a container frame, returning the codec id and the
/// borrowed payload. The declared payload length must match the remaining
/// input exactly; any shortfall or surplus is an error.
pub fn read_frame(bytes: &[u8]) -> Result<(CodecId, &[u8]), DecompressError> {
    if bytes.len() < CONTAINER_MAGIC.len() {
        return Err(DecompressError::Truncated("container magic"));
    }
    if bytes[..CONTAINER_MAGIC.len()] != CONTAINER_MAGIC {
        return Err(DecompressError::BadMagic);
    }
    if bytes.len() < FRAME_LEN {
        return Err(DecompressError::Truncated("container frame"));
    }
    let version = bytes[4];
    if version != CONTAINER_VERSION {
        return Err(DecompressError::UnsupportedVersion(version));
    }
    let codec = CodecId::from_byte(bytes[5]).ok_or(DecompressError::UnknownCodec(bytes[5]))?;
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&bytes[6..14]);
    let declared = u64::from_le_bytes(len_bytes);
    let actual = (bytes.len() - FRAME_LEN) as u64;
    if declared > actual {
        return Err(DecompressError::Truncated("container payload"));
    }
    if declared < actual {
        return Err(DecompressError::Inconsistent(
            "trailing bytes after container payload",
        ));
    }
    Ok((codec, &bytes[FRAME_LEN..]))
}

/// Read only the codec id of a frame (for dispatch or inspection), without
/// requiring the payload to be complete.
#[deprecated(note = "use `container::peek`, which also reports the version, \
                     payload length and referenced model id")]
pub fn peek_codec(bytes: &[u8]) -> Result<CodecId, DecompressError> {
    peek(bytes).map(|info| info.codec)
}

/// Magic bytes opening the AE-SZ codec's current *payload* (the bytes inside
/// an `AESC` frame), followed on the wire by the 16-byte [`ModelId`] of the
/// network that encoded the stream.
///
/// This is a wire constant mirrored from `aesz_core::stream::MAGIC` — the
/// container layer sits below the codec crates in the dependency graph, so
/// it keeps its own copy to peek model ids without decoding; a test in
/// `aesz_core` pins the two byte-for-byte.
pub const AESZ_PAYLOAD_MAGIC: [u8; 8] = *b"AESZ0003";

/// Everything [`peek`] can learn about a frame from its fixed-length header
/// (plus, opportunistically, the first payload bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Codec that produced the frame's payload — the dispatch key.
    pub codec: CodecId,
    /// Container version recorded in the frame.
    pub version: u8,
    /// Payload byte length the frame declares (the input may hold fewer —
    /// `peek` does not require the payload to be complete).
    pub payload_len: u64,
    /// Content-addressed id of the trained model the payload references,
    /// when the codec's payload carries one in its prefix (AE-SZ's current
    /// stream format, AE-A and AE-B) and enough payload bytes are present
    /// to read it. `None` for model-free codecs, for older AE-SZ streams
    /// that embed weights inline, and for payload prefixes too short to
    /// tell.
    pub model_id: Option<ModelId>,
}

/// Inspect a container frame without decoding it: codec id, container
/// version, declared payload length and (best-effort) the referenced model
/// id. Requires the fixed [`FRAME_LEN`]-byte header to be present; the
/// payload may be incomplete or absent.
///
/// This unifies the old `peek_codec` / `aesz_core::peek_model_id` pair into
/// one dispatch-and-inspection entry point.
pub fn peek(bytes: &[u8]) -> Result<FrameInfo, DecompressError> {
    if bytes.len() < CONTAINER_MAGIC.len() {
        return Err(DecompressError::Truncated("container magic"));
    }
    if bytes[..CONTAINER_MAGIC.len()] != CONTAINER_MAGIC {
        return Err(DecompressError::BadMagic);
    }
    if bytes.len() < FRAME_LEN {
        return Err(DecompressError::Truncated("container frame"));
    }
    let version = bytes[4];
    if version != CONTAINER_VERSION {
        return Err(DecompressError::UnsupportedVersion(version));
    }
    let codec = CodecId::from_byte(bytes[5]).ok_or(DecompressError::UnknownCodec(bytes[5]))?;
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&bytes[6..14]);
    let payload_len = u64::from_le_bytes(len_bytes);
    Ok(FrameInfo {
        codec,
        version,
        payload_len,
        model_id: peek_payload_model_id(codec, &bytes[FRAME_LEN..]),
    })
}

/// Best-effort model-id extraction from the prefix of a codec *payload*
/// (the bytes after the `AESC` frame header). Returns `None` whenever the
/// codec's format carries no id up front or the prefix is too short.
pub fn peek_payload_model_id(codec: CodecId, payload: &[u8]) -> Option<ModelId> {
    match codec {
        CodecId::AeSz => {
            let rest = payload.strip_prefix(&AESZ_PAYLOAD_MAGIC[..])?;
            ModelId::from_prefix(rest)
        }
        CodecId::AeA | CodecId::AeB => ModelId::from_prefix(payload),
        _ => None,
    }
}

/// Magic bytes opening every serialized-model frame ("AE-SZ model").
///
/// The frame is the unit the model lifecycle ships around: sidecar `.aesm`
/// files, the `AESA` v2 archive model section and [`crate::Compressor::embedded_model`]
/// all carry exactly this frame. The payload is the codec-specific model
/// serialization (`AESZMDL1` for the convolutional autoencoders, the AE-A
/// dense format for AE-A); the [`ModelId`] of a model is the truncated
/// SHA-256 of that *payload*, so the id is independent of the framing.
///
/// ```text
/// offset  size  field
/// 0       4     magic  b"AESM"
/// 4       1     model frame version (currently 1)
/// 5       1     codec id the model belongs to (see CodecId)
/// 6       8     payload length, u64 little-endian
/// 14      n     codec-specific serialized model (exactly n bytes)
/// ```
pub const MODEL_MAGIC: [u8; 4] = *b"AESM";

/// Current model frame version.
pub const MODEL_FRAME_VERSION: u8 = 1;

/// Size of the fixed-length model frame preceding the model payload.
pub const MODEL_FRAME_LEN: usize = 4 + 1 + 1 + 8;

/// Wrap a codec-specific serialized model in a model frame.
pub fn write_model_frame(codec: CodecId, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MODEL_FRAME_LEN + payload.len());
    out.extend_from_slice(&MODEL_MAGIC);
    out.push(MODEL_FRAME_VERSION);
    out.push(codec as u8);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse and validate a model frame, returning the codec the model belongs
/// to and the borrowed model payload. The declared payload length must match
/// the remaining input exactly.
pub fn read_model_frame(bytes: &[u8]) -> Result<(CodecId, &[u8]), DecompressError> {
    if bytes.len() < MODEL_MAGIC.len() {
        return Err(DecompressError::Truncated("model frame magic"));
    }
    if bytes[..MODEL_MAGIC.len()] != MODEL_MAGIC {
        return Err(DecompressError::BadMagic);
    }
    if bytes.len() < MODEL_FRAME_LEN {
        return Err(DecompressError::Truncated("model frame"));
    }
    if bytes[4] != MODEL_FRAME_VERSION {
        return Err(DecompressError::UnsupportedVersion(bytes[4]));
    }
    let codec = CodecId::from_byte(bytes[5]).ok_or(DecompressError::UnknownCodec(bytes[5]))?;
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&bytes[6..14]);
    let declared = u64::from_le_bytes(len_bytes);
    let actual = (bytes.len() - MODEL_FRAME_LEN) as u64;
    if declared > actual {
        return Err(DecompressError::Truncated("model frame payload"));
    }
    if declared < actual {
        return Err(DecompressError::Inconsistent(
            "trailing bytes after model frame payload",
        ));
    }
    Ok((codec, &bytes[MODEL_FRAME_LEN..]))
}

/// A serialized trained model ready to travel with compressed data: the
/// content-addressed id plus the complete `AESM` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbeddedModel {
    /// Content-addressed identity (truncated SHA-256 of the frame payload).
    pub id: ModelId,
    /// The complete `AESM` frame ([`write_model_frame`] output).
    pub frame: Vec<u8>,
}

impl EmbeddedModel {
    /// Frame a codec-specific model serialization, deriving its id.
    pub fn new(codec: CodecId, payload: &[u8]) -> EmbeddedModel {
        EmbeddedModel {
            id: ModelId::of(payload),
            frame: write_model_frame(codec, payload),
        }
    }

    /// Parse and verify an existing frame: the frame must be well-formed and
    /// the payload hash is recomputed, so a corrupted frame cannot smuggle a
    /// wrong id into a store. Returns the model's codec alongside.
    pub fn from_frame(frame: &[u8]) -> Result<(EmbeddedModel, CodecId), DecompressError> {
        let (codec, payload) = read_model_frame(frame)?;
        Ok((
            EmbeddedModel {
                id: ModelId::of(payload),
                frame: frame.to_vec(),
            },
            codec,
        ))
    }

    /// The codec this model belongs to (from the frame header).
    #[expect(clippy::expect_used)]
    pub fn codec(&self) -> CodecId {
        // lint:allow(R1): `new`/`from_frame` validate the frame header; a
        // hand-assembled `frame` breaking that is a programmer error in this
        // process, not untrusted input reaching the decoder
        CodecId::from_byte(self.frame[5]).expect("validated at construction")
    }

    /// The codec-specific model payload inside the frame.
    pub fn payload(&self) -> &[u8] {
        &self.frame[MODEL_FRAME_LEN..]
    }
}

/// Magic bytes opening every multi-chunk archive ("AE-SZ archive").
pub const ARCHIVE_MAGIC: [u8; 4] = *b"AESA";

/// Archive format version without a model section (the original layout).
pub const ARCHIVE_VERSION: u8 = 1;

/// Archive format version whose header carries a model-section length and
/// whose tail may embed the referenced models' `AESM` frames.
pub const ARCHIVE_VERSION_MODELS: u8 = 2;

/// Archive format version whose header additionally carries an index
/// capacity: `0` marks an **inline** archive (no index table — what a
/// seekless pipe writer emits; readers reconstruct the index from the frame
/// headers), any other value reserves that many index slots so the archive
/// can be **appended to** in place without rewriting payload bytes.
pub const ARCHIVE_VERSION_APPEND: u8 = 3;

/// The one data type archives currently carry: little-endian `f32`.
pub const ARCHIVE_DTYPE_F32: u8 = 1;

/// Encoded size of one chunk-index entry (codec id + offset + length).
pub const CHUNK_ENTRY_LEN: usize = 1 + 8 + 8;

/// The parsed fixed-size head of an archive: field geometry + chunk grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveHeader {
    /// Extents of the archived field.
    pub dims: Dims,
    /// Nominal chunk edge length (edge chunks are smaller, exactly like the
    /// blockwise compressors' edge blocks).
    pub chunk: usize,
    /// Archive format version ([`ARCHIVE_VERSION`], [`ARCHIVE_VERSION_MODELS`]
    /// or [`ARCHIVE_VERSION_APPEND`]). Version 1 archives have no model
    /// section and their header carries no model-section length, so the v1
    /// encoding is byte-identical to the original format.
    pub version: u8,
    /// Byte length of the model section at the archive's tail (0 for v1 and
    /// for v2/v3 archives that embed nothing).
    pub model_len: usize,
    /// Number of index slots physically present (v3 only; must be 0 for
    /// v1/v2, whose index always holds exactly [`Self::chunk_count`]
    /// entries). For v3, `0` means an inline archive with no index table and
    /// any other value must be `>= chunk_count()`.
    pub index_cap: usize,
}

impl ArchiveHeader {
    /// A version-1 header (no model section) — the shape every pre-model
    /// archive used.
    pub fn v1(dims: Dims, chunk: usize) -> ArchiveHeader {
        ArchiveHeader {
            dims,
            chunk,
            version: ARCHIVE_VERSION,
            model_len: 0,
            index_cap: 0,
        }
    }
    /// Number of chunks along each axis (ceiling division per axis).
    pub fn chunk_grid(&self) -> Vec<usize> {
        self.dims.block_grid(self.chunk)
    }

    /// Total number of chunks in the archive.
    pub fn chunk_count(&self) -> usize {
        self.chunk_grid().iter().product()
    }

    /// Encoded byte length of this header (rank- and version-dependent: v2
    /// appends the 8-byte model-section length, v3 additionally the 8-byte
    /// index capacity).
    pub fn encoded_len(&self) -> usize {
        8 + 8 * self.dims.rank()
            + 16
            + if self.version >= ARCHIVE_VERSION_MODELS {
                8
            } else {
                0
            }
            + if self.version >= ARCHIVE_VERSION_APPEND {
                8
            } else {
                0
            }
    }

    /// Number of index slots physically present after the header: always the
    /// chunk count for v1/v2; the stored capacity for v3 (0 for an inline
    /// archive).
    pub fn index_slots(&self) -> usize {
        if self.version >= ARCHIVE_VERSION_APPEND {
            self.index_cap
        } else {
            self.chunk_count()
        }
    }

    /// Byte length of the chunk index that follows the header.
    pub fn index_len(&self) -> usize {
        self.index_slots() * CHUNK_ENTRY_LEN
    }

    /// Absolute offset of the first chunk frame (header + index).
    pub fn data_start(&self) -> usize {
        self.encoded_len() + self.index_len()
    }

    /// Serialize the header (magic through chunk count, plus the
    /// model-section length for v2) into `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&ARCHIVE_MAGIC);
        out.push(self.version);
        out.push(ARCHIVE_DTYPE_F32);
        out.push(self.dims.rank() as u8);
        out.push(0); // reserved
        for e in self.dims.extents() {
            out.extend_from_slice(&(e as u64).to_le_bytes());
        }
        out.extend_from_slice(&(self.chunk as u64).to_le_bytes());
        out.extend_from_slice(&(self.chunk_count() as u64).to_le_bytes());
        if self.version >= ARCHIVE_VERSION_APPEND {
            out.extend_from_slice(&(self.index_cap as u64).to_le_bytes());
        }
        if self.version >= ARCHIVE_VERSION_MODELS {
            out.extend_from_slice(&(self.model_len as u64).to_le_bytes());
        }
    }

    /// Parse and validate an archive header from the start of `bytes`.
    ///
    /// Rejects wrong magic/version/dtype, out-of-range ranks, zero or
    /// over-cap extents (total capped at [`MAX_FIELD_ELEMS`]), a zero chunk
    /// edge, and any stored chunk count that disagrees with the grid implied
    /// by the extents and chunk edge. Requires the whole archive as input so
    /// a declared model-section length larger than the input is rejected
    /// here; incremental parsers that only hold a prefix use
    /// [`ArchiveHeader::read_prefix`] and enforce that bound themselves.
    pub fn read(bytes: &[u8]) -> Result<ArchiveHeader, DecompressError> {
        let header = Self::read_prefix(bytes)?;
        // The model section lives inside the archive, so its length can
        // never exceed the input; a precise bound (input minus header,
        // index and frames) is enforced by `read_chunk_index`.
        if header.model_len as u64 > bytes.len() as u64 {
            return Err(DecompressError::Truncated("archive model section"));
        }
        Ok(header)
    }

    /// Parse and validate an archive header from a *prefix* of an archive.
    ///
    /// Identical to [`ArchiveHeader::read`] except that the declared
    /// model-section length is not compared against the input length — a
    /// streaming parser holding only the first bytes cannot know the final
    /// size yet. `bytes` must still hold the complete fixed-size header.
    pub fn read_prefix(bytes: &[u8]) -> Result<ArchiveHeader, DecompressError> {
        if bytes.len() < ARCHIVE_MAGIC.len() {
            return Err(DecompressError::Truncated("archive magic"));
        }
        if bytes[..ARCHIVE_MAGIC.len()] != ARCHIVE_MAGIC {
            return Err(DecompressError::BadMagic);
        }
        if bytes.len() < 8 {
            return Err(DecompressError::Truncated("archive header"));
        }
        let version = bytes[4];
        if !(ARCHIVE_VERSION..=ARCHIVE_VERSION_APPEND).contains(&version) {
            return Err(DecompressError::UnsupportedVersion(version));
        }
        if bytes[5] != ARCHIVE_DTYPE_F32 {
            return Err(DecompressError::InvalidHeader("archive dtype"));
        }
        let rank = usize::from(bytes[6]);
        if !(1..=3).contains(&rank) {
            return Err(DecompressError::InvalidHeader("archive rank"));
        }
        if bytes[7] != 0 {
            return Err(DecompressError::InvalidHeader("archive reserved byte"));
        }
        let fixed = 8
            + 8 * rank
            + 16
            + if version >= ARCHIVE_VERSION_MODELS {
                8
            } else {
                0
            }
            + if version >= ARCHIVE_VERSION_APPEND {
                8
            } else {
                0
            };
        if bytes.len() < fixed {
            return Err(DecompressError::Truncated("archive header"));
        }
        let u64_at = |pos: usize| -> Result<u64, DecompressError> {
            let src = bytes
                .get(pos..pos + 8)
                .ok_or(DecompressError::Truncated("archive header"))?;
            let mut b = [0u8; 8];
            b.copy_from_slice(src);
            Ok(u64::from_le_bytes(b))
        };
        let mut extents = [0usize; 3];
        let mut total: usize = 1;
        for (ax, slot) in extents.iter_mut().take(rank).enumerate() {
            let e = u64_at(8 + 8 * ax)?;
            if e == 0 {
                return Err(DecompressError::InvalidHeader("archive extent is zero"));
            }
            if e > MAX_FIELD_ELEMS as u64 {
                return Err(DecompressError::InvalidHeader("archive extent exceeds cap"));
            }
            *slot = usize::try_from(e)
                .map_err(|_| DecompressError::InvalidHeader("archive extent exceeds cap"))?;
            total = total
                .checked_mul(*slot)
                .filter(|&t| t <= MAX_FIELD_ELEMS)
                .ok_or(DecompressError::InvalidHeader(
                    "archive element count exceeds cap",
                ))?;
        }
        let dims = match rank {
            1 => Dims::d1(extents[0]),
            2 => Dims::d2(extents[0], extents[1]),
            _ => Dims::d3(extents[0], extents[1], extents[2]),
        };
        let chunk = u64_at(8 + 8 * rank)?;
        if chunk == 0 {
            return Err(DecompressError::InvalidHeader("archive chunk edge is zero"));
        }
        if chunk > MAX_FIELD_ELEMS as u64 {
            return Err(DecompressError::InvalidHeader(
                "archive chunk edge exceeds cap",
            ));
        }
        let index_cap = if version >= ARCHIVE_VERSION_APPEND {
            let cap = u64_at(24 + 8 * rank)?;
            // The cap sizes the index allocation, so bound it like the
            // element count; the precise fit against the input is enforced
            // by `read_chunk_index`.
            if cap > MAX_FIELD_ELEMS as u64 {
                return Err(DecompressError::InvalidHeader(
                    "archive index capacity exceeds cap",
                ));
            }
            usize::try_from(cap)
                .map_err(|_| DecompressError::InvalidHeader("archive index capacity exceeds cap"))?
        } else {
            0
        };
        let model_len_at = if version >= ARCHIVE_VERSION_APPEND {
            32 + 8 * rank
        } else {
            24 + 8 * rank
        };
        let model_len = if version >= ARCHIVE_VERSION_MODELS {
            // Checked narrowing only — `bytes` may be just a header prefix
            // here, so the fit against the real archive length is the
            // caller's check. An `as usize` would wrap 2^32 + k to k on a
            // 32-bit target and mislocate the model-section boundary.
            usize::try_from(u64_at(model_len_at)?).map_err(|_| {
                DecompressError::InvalidHeader("model section exceeds this platform")
            })?
        } else {
            0
        };
        let header = ArchiveHeader {
            dims,
            chunk: usize::try_from(chunk)
                .map_err(|_| DecompressError::InvalidHeader("archive chunk edge exceeds cap"))?,
            version,
            model_len,
            index_cap,
        };
        let declared = u64_at(16 + 8 * rank)?;
        if declared != header.chunk_count() as u64 {
            return Err(DecompressError::Inconsistent(
                "stored chunk count disagrees with the chunk grid",
            ));
        }
        if version >= ARCHIVE_VERSION_APPEND && index_cap != 0 && index_cap < header.chunk_count() {
            return Err(DecompressError::InvalidHeader(
                "archive index capacity smaller than the chunk count",
            ));
        }
        Ok(header)
    }
}

/// One entry of the archive's chunk index: which codec wrote the chunk and
/// where its `AESC` frame lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Codec that produced this chunk's frame (the random-access dispatch key).
    pub codec: CodecId,
    /// Absolute byte offset of the chunk's frame from the archive start.
    pub offset: u64,
    /// Byte length of the chunk's frame.
    pub len: u64,
}

/// Serialize one chunk-index entry into `out`.
pub fn write_chunk_entry(out: &mut Vec<u8>, entry: &ChunkEntry) {
    out.push(entry.codec as u8);
    out.extend_from_slice(&entry.offset.to_le_bytes());
    out.extend_from_slice(&entry.len.to_le_bytes());
}

/// Validate one chunk-index entry against the running tiling cursor and the
/// data-section end, advancing the cursor past the entry's frame. Shared by
/// the buffered index reader, the inline-index reconstruction and the
/// streaming parser so every path rejects the same hostile inputs.
pub fn validate_chunk_entry(
    entry: &ChunkEntry,
    chunk: usize,
    expected_offset: u64,
    data_end: u64,
    model_len: usize,
) -> Result<u64, DecompressError> {
    if entry.offset > expected_offset {
        return Err(DecompressError::BadChunkIndex {
            chunk,
            reason: "entry leaves a gap after its predecessor",
        });
    }
    if entry.offset < expected_offset {
        return Err(DecompressError::BadChunkIndex {
            chunk,
            reason: "entry overlaps its predecessor",
        });
    }
    if entry.len < FRAME_LEN as u64 {
        return Err(DecompressError::BadChunkIndex {
            chunk,
            reason: "frame shorter than a container frame",
        });
    }
    let next = entry
        .offset
        .checked_add(entry.len)
        .ok_or(DecompressError::BadChunkIndex {
            chunk,
            reason: "frame length overflows the archive",
        })?;
    if next > data_end {
        // With a model section present the entry demonstrably reaches into
        // (or past) the model tail — a malformed index. Without one, the
        // input may simply have been cut short.
        return Err(if model_len > 0 {
            DecompressError::BadChunkIndex {
                chunk,
                reason: "entry points past the data section into the model tail",
            }
        } else {
            DecompressError::Truncated("archive chunk data")
        });
    }
    Ok(next)
}

/// Parse and validate the chunk index of an archive whose header already
/// parsed as `header`.
///
/// Beyond per-entry decoding, this enforces the tiling invariant: entry 0
/// starts at the data section, every entry abuts its predecessor (no
/// overlaps, no gaps), every frame is at least [`FRAME_LEN`] long, no entry
/// reaches into the model tail, and the last entry ends exactly where the
/// model section begins (the end of the input for archives embedding
/// nothing) — so lying offsets or lengths, overlapping or reordered entries,
/// truncation and trailing garbage are all rejected here. For v3 archives
/// the reserved capacity slots past the chunk count must be zero-filled, and
/// an inline v3 archive (capacity 0) has its index reconstructed by walking
/// the frame headers ([`reconstruct_chunk_index`]).
pub fn read_chunk_index(
    bytes: &[u8],
    header: &ArchiveHeader,
) -> Result<Vec<ChunkEntry>, DecompressError> {
    let count = header.chunk_count();
    if header.index_slots() == 0 && header.version >= ARCHIVE_VERSION_APPEND {
        return reconstruct_chunk_index(bytes, header);
    }
    let index_start = header.encoded_len();
    // Both bounds are computed from the already-validated header, so this
    // check (against the real input length) caps every allocation below.
    let data_start = index_start
        .checked_add(header.index_len())
        .ok_or(DecompressError::InvalidHeader("archive index size"))?;
    if bytes.len() < data_start {
        return Err(DecompressError::Truncated("archive chunk index"));
    }
    // The chunk frames end where the (possibly empty) model section starts.
    let data_end = bytes.len() - header.model_len.min(bytes.len());
    if data_end < data_start {
        return Err(DecompressError::Truncated("archive model section"));
    }
    let mut entries = Vec::with_capacity(count);
    let mut expected_offset = data_start as u64;
    for i in 0..count {
        let at = index_start + i * CHUNK_ENTRY_LEN;
        let raw = bytes
            .get(at..at + CHUNK_ENTRY_LEN)
            .ok_or(DecompressError::Truncated("archive chunk index"))?;
        let entry = decode_chunk_entry(raw)?;
        expected_offset = validate_chunk_entry(
            &entry,
            i,
            expected_offset,
            data_end as u64,
            header.model_len,
        )?;
        entries.push(entry);
    }
    // Reserved capacity slots (v3) must be zero-filled: a stray byte there
    // is either corruption or a finalize that never happened.
    for slot in count..header.index_slots() {
        let at = index_start + slot * CHUNK_ENTRY_LEN;
        let raw = bytes
            .get(at..at + CHUNK_ENTRY_LEN)
            .ok_or(DecompressError::Truncated("archive chunk index"))?;
        if raw.iter().any(|&b| b != 0) {
            return Err(DecompressError::BadChunkIndex {
                chunk: slot,
                reason: "reserved index slot is not zero-filled",
            });
        }
    }
    if expected_offset != data_end as u64 {
        return Err(DecompressError::Inconsistent(
            "trailing bytes after the last chunk frame",
        ));
    }
    Ok(entries)
}

/// Decode one raw 17-byte chunk-index entry (codec id, offset, length).
pub fn decode_chunk_entry(bytes: &[u8]) -> Result<ChunkEntry, DecompressError> {
    if bytes.len() < CHUNK_ENTRY_LEN {
        return Err(DecompressError::Truncated("archive chunk index"));
    }
    let codec = CodecId::from_byte(bytes[0]).ok_or(DecompressError::UnknownCodec(bytes[0]))?;
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[1..9]);
    let offset = u64::from_le_bytes(b);
    b.copy_from_slice(&bytes[9..17]);
    let len = u64::from_le_bytes(b);
    Ok(ChunkEntry { codec, offset, len })
}

/// Rebuild the chunk index of an **inline** v3 archive (index capacity 0) by
/// walking the `AESC` frame headers back-to-back from the data start.
///
/// Each frame's magic, version and codec byte are validated and its declared
/// payload length consumed; the walk must land exactly on the model-section
/// boundary after exactly [`ArchiveHeader::chunk_count`] frames. The result
/// is indistinguishable from a stored index, so random access over a piped
/// archive works as soon as the bytes are on disk.
pub fn reconstruct_chunk_index(
    bytes: &[u8],
    header: &ArchiveHeader,
) -> Result<Vec<ChunkEntry>, DecompressError> {
    let count = header.chunk_count();
    let data_start = header.encoded_len();
    if bytes.len() < data_start {
        return Err(DecompressError::Truncated("archive header"));
    }
    let data_end = bytes.len() - header.model_len.min(bytes.len());
    if data_end < data_start {
        return Err(DecompressError::Truncated("archive model section"));
    }
    let mut entries = Vec::with_capacity(count);
    let mut pos = data_start;
    for i in 0..count {
        if data_end - pos < FRAME_LEN {
            return Err(DecompressError::Truncated("archive chunk data"));
        }
        let head = bytes
            .get(pos..pos + FRAME_LEN)
            .ok_or(DecompressError::Truncated("archive chunk data"))?;
        if head[..CONTAINER_MAGIC.len()] != CONTAINER_MAGIC {
            return Err(DecompressError::BadMagic);
        }
        if head[4] != CONTAINER_VERSION {
            return Err(DecompressError::UnsupportedVersion(head[4]));
        }
        let codec = CodecId::from_byte(head[5]).ok_or(DecompressError::UnknownCodec(head[5]))?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&head[6..14]);
        let payload_len = u64::from_le_bytes(b);
        let len =
            (FRAME_LEN as u64)
                .checked_add(payload_len)
                .ok_or(DecompressError::BadChunkIndex {
                    chunk: i,
                    reason: "frame length overflows the archive",
                })?;
        let entry = ChunkEntry {
            codec,
            offset: pos as u64,
            len,
        };
        let next = validate_chunk_entry(&entry, i, pos as u64, data_end as u64, header.model_len)?;
        // The validated end offset is bounded by `data_end <= bytes.len()`,
        // so it always fits back into usize.
        pos = usize::try_from(next)
            .map_err(|_| DecompressError::Inconsistent("chunk frame end exceeds this platform"))?;
        entries.push(entry);
    }
    if pos != data_end {
        return Err(DecompressError::Inconsistent(
            "trailing bytes after the last chunk frame",
        ));
    }
    Ok(entries)
}

/// Parse and validate the model section of an archive whose header already
/// parsed as `header`, returning each embedded model's id and its borrowed
/// `AESM` frame.
///
/// The section must be tiled exactly by `(16-byte id, u64 frame length,
/// frame)` records; every frame must parse as a valid model frame whose
/// recomputed payload hash equals the stored id (so a flipped bit anywhere in
/// a model is caught before the model is trusted), and ids must be unique
/// (each referenced model is embedded exactly once).
pub fn read_model_section<'a>(
    bytes: &'a [u8],
    header: &ArchiveHeader,
) -> Result<Vec<(ModelId, &'a [u8])>, DecompressError> {
    if header.model_len == 0 {
        return Ok(Vec::new());
    }
    let start = bytes
        .len()
        .checked_sub(header.model_len)
        .ok_or(DecompressError::Truncated("archive model section"))?;
    let section = bytes
        .get(start..)
        .ok_or(DecompressError::Truncated("archive model section"))?;
    parse_model_section(section)
}

/// Walk a complete model *section* (the last `model_len` bytes of a v2/v3
/// archive), validating every record — the shared trust boundary behind
/// [`read_model_section`] and the streaming parser.
pub fn parse_model_section(section: &[u8]) -> Result<Vec<(ModelId, &[u8])>, DecompressError> {
    let mut models = Vec::new();
    let mut pos = 0usize;
    while pos < section.len() {
        let head = section
            .get(pos..pos + MODEL_ID_LEN + 8)
            .ok_or(DecompressError::Truncated("archive model entry"))?;
        let id = ModelId::from_prefix(head)
            .ok_or(DecompressError::Truncated("archive model entry id"))?;
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&head[MODEL_ID_LEN..]);
        let len = u64::from_le_bytes(len_bytes);
        pos += MODEL_ID_LEN + 8;
        if len > (section.len() - pos) as u64 {
            return Err(DecompressError::Truncated("archive model frame"));
        }
        let len =
            usize::try_from(len).map_err(|_| DecompressError::Truncated("archive model frame"))?;
        let frame = section
            .get(pos..pos + len)
            .ok_or(DecompressError::Truncated("archive model frame"))?;
        pos += len;
        let (_, payload) = read_model_frame(frame)?;
        if ModelId::of(payload) != id {
            return Err(DecompressError::Inconsistent(
                "embedded model bytes do not hash to their stored id",
            ));
        }
        if models.iter().any(|&(seen, _)| seen == id) {
            return Err(DecompressError::Inconsistent(
                "model embedded more than once",
            ));
        }
        models.push((id, frame));
    }
    Ok(models)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips() {
        let payload = b"hello payload";
        let framed = write_frame(CodecId::SzInterp, payload);
        let (codec, body) = read_frame(&framed).unwrap();
        assert_eq!(codec, CodecId::SzInterp);
        assert_eq!(body, payload);
        #[allow(deprecated)]
        let peeked = peek_codec(&framed).unwrap();
        assert_eq!(peeked, CodecId::SzInterp);
    }

    #[test]
    fn peek_reports_codec_length_and_model_id() {
        // A model-free codec: no id, full header info.
        let framed = write_frame(CodecId::Zfp, b"0123456789");
        let info = peek(&framed).unwrap();
        assert_eq!(info.codec, CodecId::Zfp);
        assert_eq!(info.version, CONTAINER_VERSION);
        assert_eq!(info.payload_len, 10);
        assert_eq!(info.model_id, None);

        // AE-SZ's current stream format: payload magic + 16-byte model id.
        let id = ModelId::of(b"some weights");
        let mut payload = AESZ_PAYLOAD_MAGIC.to_vec();
        payload.extend_from_slice(id.as_bytes());
        payload.extend_from_slice(b"rest of stream");
        let framed = write_frame(CodecId::AeSz, &payload);
        assert_eq!(peek(&framed).unwrap().model_id, Some(id));
        // Peeking works even when only the id prefix of the payload arrived.
        let cut = FRAME_LEN + AESZ_PAYLOAD_MAGIC.len() + MODEL_ID_LEN;
        assert_eq!(peek(&framed[..cut]).unwrap().model_id, Some(id));
        // …and degrades to None when too few payload bytes are present.
        assert_eq!(peek(&framed[..cut - 1]).unwrap().model_id, None);

        // AE-A / AE-B payloads open with the raw id.
        let mut payload = id.as_bytes().to_vec();
        payload.extend_from_slice(b"latents");
        let framed = write_frame(CodecId::AeA, &payload);
        assert_eq!(peek(&framed).unwrap().model_id, Some(id));

        // The frame header itself is still mandatory.
        assert!(matches!(
            peek(&framed[..FRAME_LEN - 1]),
            Err(DecompressError::Truncated(_))
        ));
    }

    #[test]
    fn codec_ids_roundtrip_through_bytes() {
        for id in CodecId::all() {
            assert_eq!(CodecId::from_byte(id as u8), Some(id));
            assert!(!id.name().is_empty());
        }
        assert_eq!(CodecId::from_byte(0), None);
        assert_eq!(CodecId::from_byte(200), None);
    }

    #[test]
    fn every_truncated_prefix_is_rejected() {
        let framed = write_frame(CodecId::AeSz, &[7u8; 100]);
        for len in 0..framed.len() {
            assert!(
                read_frame(&framed[..len]).is_err(),
                "prefix of {len} bytes parsed as a complete frame"
            );
        }
    }

    #[test]
    fn hostile_u64_lengths_are_rejected_without_truncation_or_allocation() {
        // A declared payload length of exactly 1 << 32 becomes 0 under a
        // 32-bit `as usize` cast — the truncation bug this exercises. The
        // frame must be rejected as truncated, not accepted as empty.
        let mut framed = write_frame(CodecId::Zfp, b"tiny");
        framed[6..14].copy_from_slice(&(1u64 << 32).to_le_bytes());
        assert!(matches!(
            read_frame(&framed),
            Err(DecompressError::Truncated(_))
        ));

        // The worst case: u64::MAX. Still a clean error, and `read_frame`
        // never allocates payload-proportional memory (it borrows).
        framed[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_frame(&framed).is_err());

        // An archive header whose trailing model-section length claims more
        // bytes than the whole input: `read` must fail before any caller
        // trusts the length, while `read_prefix` (which by contract does not
        // validate the tail sections) still parses the fixed prefix.
        let mut header = ArchiveHeader::v1(Dims::d1(16), 16);
        header.version = ARCHIVE_VERSION_APPEND;
        let mut bytes = Vec::new();
        header.write(&mut bytes);
        let model_len_at = bytes.len() - 8;
        bytes[model_len_at..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            ArchiveHeader::read(&bytes),
            Err(DecompressError::Truncated(_)) | Err(DecompressError::InvalidHeader(_))
        ));
        let prefix = ArchiveHeader::read_prefix(&bytes).unwrap();
        assert_eq!(prefix.dims, Dims::d1(16));
        assert_eq!(prefix.model_len as u64, u64::MAX);
    }

    #[test]
    fn model_frames_roundtrip_and_reject_corruption() {
        let payload = b"fake serialized model bytes";
        let model = EmbeddedModel::new(CodecId::AeSz, payload);
        assert_eq!(model.id, ModelId::of(payload));
        assert_eq!(model.codec(), CodecId::AeSz);
        assert_eq!(model.payload(), payload);
        let (codec, body) = read_model_frame(&model.frame).unwrap();
        assert_eq!(codec, CodecId::AeSz);
        assert_eq!(body, payload);
        let (reparsed, codec) = EmbeddedModel::from_frame(&model.frame).unwrap();
        assert_eq!(reparsed, model);
        assert_eq!(codec, CodecId::AeSz);

        for len in 0..model.frame.len() {
            assert!(read_model_frame(&model.frame[..len]).is_err());
        }
        let mut evil = model.frame.clone();
        evil.push(0);
        assert!(matches!(
            read_model_frame(&evil),
            Err(DecompressError::Inconsistent(_))
        ));
        let mut evil = model.frame.clone();
        evil[0] = b'X';
        assert_eq!(read_model_frame(&evil), Err(DecompressError::BadMagic));
        let mut evil = model.frame.clone();
        evil[4] = 9;
        assert_eq!(
            read_model_frame(&evil),
            Err(DecompressError::UnsupportedVersion(9))
        );
        let mut evil = model.frame.clone();
        evil[5] = 200;
        assert_eq!(
            read_model_frame(&evil),
            Err(DecompressError::UnknownCodec(200))
        );
    }

    /// Build a synthetic v2 archive: header + one raw-frame chunk + a model
    /// section holding `models`.
    fn v2_archive(models: &[EmbeddedModel]) -> Vec<u8> {
        let chunk_frame = write_frame(CodecId::Zfp, b"chunkpayload");
        let mut model_section = Vec::new();
        for m in models {
            model_section.extend_from_slice(m.id.as_bytes());
            model_section.extend_from_slice(&(m.frame.len() as u64).to_le_bytes());
            model_section.extend_from_slice(&m.frame);
        }
        let header = ArchiveHeader {
            dims: Dims::d1(4),
            chunk: 4,
            version: ARCHIVE_VERSION_MODELS,
            model_len: model_section.len(),
            index_cap: 0,
        };
        let mut bytes = Vec::new();
        header.write(&mut bytes);
        write_chunk_entry(
            &mut bytes,
            &ChunkEntry {
                codec: CodecId::Zfp,
                offset: header.data_start() as u64,
                len: chunk_frame.len() as u64,
            },
        );
        bytes.extend_from_slice(&chunk_frame);
        bytes.extend_from_slice(&model_section);
        bytes
    }

    #[test]
    fn v2_archives_carry_a_validated_model_section() {
        let models = [
            EmbeddedModel::new(CodecId::AeSz, b"model one"),
            EmbeddedModel::new(CodecId::AeA, b"model two"),
        ];
        let bytes = v2_archive(&models);
        let header = ArchiveHeader::read(&bytes).unwrap();
        assert_eq!(header.version, ARCHIVE_VERSION_MODELS);
        assert!(header.model_len > 0);
        let entries = read_chunk_index(&bytes, &header).unwrap();
        assert_eq!(entries.len(), 1);
        let parsed = read_model_section(&bytes, &header).unwrap();
        assert_eq!(parsed.len(), 2);
        for (m, (id, frame)) in models.iter().zip(&parsed) {
            assert_eq!(*id, m.id);
            assert_eq!(*frame, m.frame.as_slice());
        }

        // v2 with an empty model section is valid.
        let empty = v2_archive(&[]);
        let h = ArchiveHeader::read(&empty).unwrap();
        assert_eq!(h.model_len, 0);
        assert!(read_model_section(&empty, &h).unwrap().is_empty());

        // Every truncation of the archive is rejected by header, index or
        // model-section validation.
        for len in 0..bytes.len() {
            let slice = &bytes[..len];
            let ok = ArchiveHeader::read(slice)
                .and_then(|h| read_chunk_index(slice, &h).map(|_| h))
                .and_then(|h| read_model_section(slice, &h).map(|_| ()));
            assert!(ok.is_err(), "truncated v2 archive of {len} bytes parsed");
        }
    }

    #[test]
    fn corrupted_model_sections_are_rejected() {
        let model = EmbeddedModel::new(CodecId::AeSz, b"model bytes");
        let bytes = v2_archive(std::slice::from_ref(&model));
        let header = ArchiveHeader::read(&bytes).unwrap();
        let section_start = bytes.len() - header.model_len;

        // A flipped bit in the model payload breaks the stored hash.
        let mut evil = bytes.clone();
        let last = evil.len() - 1;
        evil[last] ^= 1;
        assert!(matches!(
            read_model_section(&evil, &header),
            Err(DecompressError::Inconsistent(_))
        ));

        // A flipped bit in the stored id breaks the hash check too.
        let mut evil = bytes.clone();
        evil[section_start] ^= 1;
        assert!(read_model_section(&evil, &header).is_err());

        // The same model embedded twice is rejected.
        let twice = v2_archive(&[model.clone(), model.clone()]);
        let h = ArchiveHeader::read(&twice).unwrap();
        assert_eq!(
            read_model_section(&twice, &h),
            Err(DecompressError::Inconsistent(
                "model embedded more than once"
            ))
        );

        // A lying frame length inside the section is truncation.
        let mut evil = bytes.clone();
        evil[section_start + MODEL_ID_LEN] = 0xff;
        assert!(read_model_section(&evil, &header).is_err());
    }

    #[test]
    fn bad_magic_version_codec_and_trailing_bytes_are_rejected() {
        let mut framed = write_frame(CodecId::Zfp, b"abc");
        framed.push(0);
        assert_eq!(
            read_frame(&framed),
            Err(DecompressError::Inconsistent(
                "trailing bytes after container payload"
            ))
        );
        let mut framed = write_frame(CodecId::Zfp, b"abc");
        framed[0] = b'X';
        assert_eq!(read_frame(&framed), Err(DecompressError::BadMagic));
        let mut framed = write_frame(CodecId::Zfp, b"abc");
        framed[4] = 99;
        assert_eq!(
            read_frame(&framed),
            Err(DecompressError::UnsupportedVersion(99))
        );
        let mut framed = write_frame(CodecId::Zfp, b"abc");
        framed[5] = 0;
        assert_eq!(read_frame(&framed), Err(DecompressError::UnknownCodec(0)));
    }

    /// Build a synthetic v3 archive over `Dims::d1(8)` / chunk 4 (two
    /// chunks) with the given index capacity (0 = inline).
    fn v3_archive(index_cap: usize) -> (Vec<u8>, ArchiveHeader) {
        let frames = [
            write_frame(CodecId::Zfp, b"first chunk"),
            write_frame(CodecId::Sz2, b"second"),
        ];
        let header = ArchiveHeader {
            dims: Dims::d1(8),
            chunk: 4,
            version: ARCHIVE_VERSION_APPEND,
            model_len: 0,
            index_cap,
        };
        let mut bytes = Vec::new();
        header.write(&mut bytes);
        if index_cap > 0 {
            let mut offset = header.data_start() as u64;
            for (f, codec) in frames.iter().zip([CodecId::Zfp, CodecId::Sz2]) {
                write_chunk_entry(
                    &mut bytes,
                    &ChunkEntry {
                        codec,
                        offset,
                        len: f.len() as u64,
                    },
                );
                offset += f.len() as u64;
            }
            bytes.resize(bytes.len() + (index_cap - 2) * CHUNK_ENTRY_LEN, 0);
        }
        for f in &frames {
            bytes.extend_from_slice(f);
        }
        (bytes, header)
    }

    #[test]
    fn v3_headers_roundtrip_in_both_regimes() {
        for cap in [0usize, 2, 7] {
            let (bytes, header) = v3_archive(cap);
            let parsed = ArchiveHeader::read(&bytes).unwrap();
            assert_eq!(parsed, header);
            assert_eq!(parsed.index_slots(), cap);
            let entries = read_chunk_index(&bytes, &parsed).unwrap();
            assert_eq!(entries.len(), 2);
            assert_eq!(entries[0].codec, CodecId::Zfp);
            assert_eq!(entries[1].codec, CodecId::Sz2);
            assert_eq!(entries[0].offset as usize, parsed.data_start());
        }
        // Inline and indexed forms agree on the reconstructed entries.
        let (inline, h0) = v3_archive(0);
        let (indexed, h2) = v3_archive(2);
        assert_eq!(
            read_chunk_index(&inline, &h0)
                .unwrap()
                .iter()
                .map(|e| (e.codec, e.len))
                .collect::<Vec<_>>(),
            read_chunk_index(&indexed, &h2)
                .unwrap()
                .iter()
                .map(|e| (e.codec, e.len))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn v3_capacity_and_reserved_slots_are_validated() {
        // A capacity smaller than the chunk count is rejected at the header.
        let (mut bytes, _) = v3_archive(2);
        bytes[32] = 1; // index_cap u64 at offset 24 + 8·rank = 32 for rank 1
        assert_eq!(
            ArchiveHeader::read(&bytes),
            Err(DecompressError::InvalidHeader(
                "archive index capacity smaller than the chunk count"
            ))
        );

        // A non-zero byte in a reserved slot is a dedicated index error.
        let (mut bytes, header) = v3_archive(4);
        let slot3 = header.encoded_len() + 3 * CHUNK_ENTRY_LEN;
        bytes[slot3 + 5] = 0xAA;
        assert_eq!(
            read_chunk_index(&bytes, &header),
            Err(DecompressError::BadChunkIndex {
                chunk: 3,
                reason: "reserved index slot is not zero-filled",
            })
        );

        // Every truncation of an inline archive is rejected.
        let (bytes, _) = v3_archive(0);
        for len in 0..bytes.len() {
            let slice = &bytes[..len];
            let ok = ArchiveHeader::read(slice).and_then(|h| read_chunk_index(slice, &h));
            assert!(
                ok.is_err(),
                "truncated v3 inline archive of {len} bytes parsed"
            );
        }
    }

    #[test]
    fn overlapping_and_tail_crossing_index_entries_are_rejected() {
        let (bytes, header) = v3_archive(2);
        let e0 = header.encoded_len();

        // Shrink entry 0's offset: entry 1 then overlaps it... actually
        // entry 0 itself no longer starts at the data section (a gap or
        // overlap depending on direction). Both directions must fail.
        let mut evil = bytes.clone();
        evil[e0 + 1] = evil[e0 + 1].wrapping_sub(1);
        assert!(matches!(
            read_chunk_index(&evil, &header),
            Err(DecompressError::BadChunkIndex { chunk: 0, .. })
        ));
        let mut evil = bytes.clone();
        evil[e0 + 1] = evil[e0 + 1].wrapping_add(1);
        assert!(matches!(
            read_chunk_index(&evil, &header),
            Err(DecompressError::BadChunkIndex { chunk: 0, .. })
        ));

        // Inflate entry 0's length: entry 1 now overlaps it.
        let mut evil = bytes.clone();
        evil[e0 + 9] = evil[e0 + 9].wrapping_add(1);
        assert!(matches!(
            read_chunk_index(&evil, &header),
            Err(DecompressError::BadChunkIndex { chunk: 1, .. })
        ));

        // An index entry reaching into the model tail is the dedicated
        // error when a model section exists.
        let model = EmbeddedModel::new(CodecId::AeSz, b"tail model");
        let mut section = Vec::new();
        section.extend_from_slice(model.id.as_bytes());
        section.extend_from_slice(&(model.frame.len() as u64).to_le_bytes());
        section.extend_from_slice(&model.frame);
        let mut tailed = v3_archive(2).0;
        let mlen_at = 40; // rank 1, v3: model_len u64 at offset 32 + 8·rank = 40
        tailed.extend_from_slice(&section);
        tailed[mlen_at..mlen_at + 8].copy_from_slice(&(section.len() as u64).to_le_bytes());
        let h = ArchiveHeader::read(&tailed).unwrap();
        assert_eq!(h.model_len, section.len());
        assert!(read_chunk_index(&tailed, &h).is_ok());
        // Now inflate the *last* entry's length so it crosses into the tail.
        let last = h.encoded_len() + CHUNK_ENTRY_LEN;
        tailed[last + 9] = tailed[last + 9].wrapping_add(1);
        assert_eq!(
            read_chunk_index(&tailed, &h),
            Err(DecompressError::BadChunkIndex {
                chunk: 1,
                reason: "entry points past the data section into the model tail",
            })
        );
    }
}
