//! The self-describing outer container every compressed stream is wrapped in.
//!
//! Each codec keeps its own payload format, but every stream produced through
//! the [`Compressor`](crate::Compressor) trait starts with one tiny frame so
//! a service front-end can dispatch untrusted bytes to the right decoder
//! without trusting anything beyond the frame itself:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"AESC"
//! 4       1     container version (currently 1)
//! 5       1     codec id (see CodecId)
//! 6       8     payload length, u64 little-endian
//! 14      n     codec-specific payload (exactly `payload length` bytes)
//! ```
//!
//! [`read_frame`] rejects bad magic, unknown codec ids, unknown versions and
//! any disagreement between the declared payload length and the actual input
//! length, so truncated or padded streams fail before a single payload byte
//! is interpreted.
//!
//! # The multi-chunk archive format (`AESA`)
//!
//! On top of the single-payload frame, this module defines the wire format
//! of the **streaming archive** ([`crate::archive`]): a field split into a
//! grid of chunks, each chunk compressed independently into one complete
//! `AESC` frame, with a per-chunk codec id + offset index up front so single
//! chunks can be decoded without touching the rest of the archive:
//!
//! ```text
//! offset      size  field
//! 0           4     magic  b"AESA"
//! 4           1     archive version (currently 1)
//! 5           1     dtype (1 = f32 little-endian)
//! 6           1     rank r (1..=3)
//! 7           1     reserved, must be 0
//! 8           8·r   extents, u64 little-endian each, slow-to-fast
//! 8+8r        8     chunk edge length, u64 little-endian
//! 16+8r       8     chunk count n, u64 little-endian (== the grid product)
//! 24+8r       17·n  chunk index: n × (codec id u8, absolute byte offset
//!                   u64 LE, frame length u64 LE)
//! 24+8r+17n   …     n chunk frames, each a complete AESC frame, stored
//!                   back-to-back in index order
//! ```
//!
//! [`ArchiveHeader::read`] and [`read_chunk_index`] are the trust boundary:
//! extents are capped at [`MAX_FIELD_ELEMS`], the stored chunk count must
//! equal the recomputed grid product, and index entries must tile the data
//! section exactly (first offset at the data start, each entry abutting the
//! previous one, the last ending at the input's end) — so a flipped offset,
//! a lying chunk count or a truncated tail is an error before any chunk
//! payload is interpreted, and no allocation exceeds the input size.

use crate::error::DecompressError;
use aesz_tensor::Dims;

/// Magic bytes opening every container frame ("AE-SZ container").
pub const CONTAINER_MAGIC: [u8; 4] = *b"AESC";

/// Current container frame version.
pub const CONTAINER_VERSION: u8 = 1;

/// Size of the fixed-length frame preceding the payload.
pub const FRAME_LEN: usize = 4 + 1 + 1 + 8;

/// Upper bound on the element count any stream header may declare (2³¹
/// points, an 8 GiB `f32` field). Every decode-side allocation in the
/// workspace is proportional to a header-declared size, so this single cap
/// bounds what hostile headers can request from any codec.
pub const MAX_FIELD_ELEMS: usize = 1 << 31;

/// Identifies which compressor produced a stream — the dispatch key of
/// `decompress_any`. The discriminants are part of the on-disk format and
/// must never be reused for a different codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecId {
    /// The AE-SZ compressor of the paper (`aesz_core::AeSz`).
    AeSz = 1,
    /// SZ2.1-like blockwise Lorenzo/regression baseline.
    Sz2 = 2,
    /// ZFP-like transform baseline.
    Zfp = 3,
    /// SZauto-like second-order Lorenzo baseline.
    SzAuto = 4,
    /// SZinterp-like spline-interpolation baseline.
    SzInterp = 5,
    /// AE-A: the fully-connected autoencoder of Liu et al. \[43\].
    AeA = 6,
    /// AE-B: the convolutional autoencoder of Glaws et al. \[40\] (fixed-rate,
    /// not error-bounded).
    AeB = 7,
}

impl CodecId {
    /// All codec ids this build knows, in discriminant order.
    pub fn all() -> [CodecId; 7] {
        [
            CodecId::AeSz,
            CodecId::Sz2,
            CodecId::Zfp,
            CodecId::SzAuto,
            CodecId::SzInterp,
            CodecId::AeA,
            CodecId::AeB,
        ]
    }

    /// Decode a codec id byte from a frame.
    pub fn from_byte(b: u8) -> Option<CodecId> {
        match b {
            1 => Some(CodecId::AeSz),
            2 => Some(CodecId::Sz2),
            3 => Some(CodecId::Zfp),
            4 => Some(CodecId::SzAuto),
            5 => Some(CodecId::SzInterp),
            6 => Some(CodecId::AeA),
            7 => Some(CodecId::AeB),
            _ => None,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            CodecId::AeSz => "AE-SZ",
            CodecId::Sz2 => "SZ2.1",
            CodecId::Zfp => "ZFP",
            CodecId::SzAuto => "SZauto",
            CodecId::SzInterp => "SZinterp",
            CodecId::AeA => "AE-A",
            CodecId::AeB => "AE-B",
        }
    }
}

impl std::fmt::Display for CodecId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Wrap a codec payload in a container frame.
pub fn write_frame(codec: CodecId, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_LEN + payload.len());
    out.extend_from_slice(&CONTAINER_MAGIC);
    out.push(CONTAINER_VERSION);
    out.push(codec as u8);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse and validate a container frame, returning the codec id and the
/// borrowed payload. The declared payload length must match the remaining
/// input exactly; any shortfall or surplus is an error.
pub fn read_frame(bytes: &[u8]) -> Result<(CodecId, &[u8]), DecompressError> {
    if bytes.len() < CONTAINER_MAGIC.len() {
        return Err(DecompressError::Truncated("container magic"));
    }
    if bytes[..CONTAINER_MAGIC.len()] != CONTAINER_MAGIC {
        return Err(DecompressError::BadMagic);
    }
    if bytes.len() < FRAME_LEN {
        return Err(DecompressError::Truncated("container frame"));
    }
    let version = bytes[4];
    if version != CONTAINER_VERSION {
        return Err(DecompressError::UnsupportedVersion(version));
    }
    let codec = CodecId::from_byte(bytes[5]).ok_or(DecompressError::UnknownCodec(bytes[5]))?;
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&bytes[6..14]);
    let declared = u64::from_le_bytes(len_bytes);
    let actual = (bytes.len() - FRAME_LEN) as u64;
    if declared > actual {
        return Err(DecompressError::Truncated("container payload"));
    }
    if declared < actual {
        return Err(DecompressError::Inconsistent(
            "trailing bytes after container payload",
        ));
    }
    Ok((codec, &bytes[FRAME_LEN..]))
}

/// Read only the codec id of a frame (for dispatch or inspection), without
/// requiring the payload to be complete.
pub fn peek_codec(bytes: &[u8]) -> Result<CodecId, DecompressError> {
    if bytes.len() < CONTAINER_MAGIC.len() {
        return Err(DecompressError::Truncated("container magic"));
    }
    if bytes[..CONTAINER_MAGIC.len()] != CONTAINER_MAGIC {
        return Err(DecompressError::BadMagic);
    }
    let version = *bytes
        .get(4)
        .ok_or(DecompressError::Truncated("container version"))?;
    if version != CONTAINER_VERSION {
        return Err(DecompressError::UnsupportedVersion(version));
    }
    let id = *bytes
        .get(5)
        .ok_or(DecompressError::Truncated("container codec id"))?;
    CodecId::from_byte(id).ok_or(DecompressError::UnknownCodec(id))
}

/// Magic bytes opening every multi-chunk archive ("AE-SZ archive").
pub const ARCHIVE_MAGIC: [u8; 4] = *b"AESA";

/// Current archive format version.
pub const ARCHIVE_VERSION: u8 = 1;

/// The one data type archives currently carry: little-endian `f32`.
pub const ARCHIVE_DTYPE_F32: u8 = 1;

/// Encoded size of one chunk-index entry (codec id + offset + length).
pub const CHUNK_ENTRY_LEN: usize = 1 + 8 + 8;

/// The parsed fixed-size head of an archive: field geometry + chunk grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveHeader {
    /// Extents of the archived field.
    pub dims: Dims,
    /// Nominal chunk edge length (edge chunks are smaller, exactly like the
    /// blockwise compressors' edge blocks).
    pub chunk: usize,
}

impl ArchiveHeader {
    /// Number of chunks along each axis (ceiling division per axis).
    pub fn chunk_grid(&self) -> Vec<usize> {
        self.dims.block_grid(self.chunk)
    }

    /// Total number of chunks in the archive.
    pub fn chunk_count(&self) -> usize {
        self.chunk_grid().iter().product()
    }

    /// Encoded byte length of this header (rank-dependent).
    pub fn encoded_len(&self) -> usize {
        8 + 8 * self.dims.rank() + 16
    }

    /// Byte length of the chunk index that follows the header.
    pub fn index_len(&self) -> usize {
        self.chunk_count() * CHUNK_ENTRY_LEN
    }

    /// Absolute offset of the first chunk frame (header + index).
    pub fn data_start(&self) -> usize {
        self.encoded_len() + self.index_len()
    }

    /// Serialize the header (magic through chunk count) into `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&ARCHIVE_MAGIC);
        out.push(ARCHIVE_VERSION);
        out.push(ARCHIVE_DTYPE_F32);
        out.push(self.dims.rank() as u8);
        out.push(0); // reserved
        for e in self.dims.extents() {
            out.extend_from_slice(&(e as u64).to_le_bytes());
        }
        out.extend_from_slice(&(self.chunk as u64).to_le_bytes());
        out.extend_from_slice(&(self.chunk_count() as u64).to_le_bytes());
    }

    /// Parse and validate an archive header from the start of `bytes`.
    ///
    /// Rejects wrong magic/version/dtype, out-of-range ranks, zero or
    /// over-cap extents (total capped at [`MAX_FIELD_ELEMS`]), a zero chunk
    /// edge, and any stored chunk count that disagrees with the grid implied
    /// by the extents and chunk edge.
    pub fn read(bytes: &[u8]) -> Result<ArchiveHeader, DecompressError> {
        if bytes.len() < ARCHIVE_MAGIC.len() {
            return Err(DecompressError::Truncated("archive magic"));
        }
        if bytes[..ARCHIVE_MAGIC.len()] != ARCHIVE_MAGIC {
            return Err(DecompressError::BadMagic);
        }
        if bytes.len() < 8 {
            return Err(DecompressError::Truncated("archive header"));
        }
        if bytes[4] != ARCHIVE_VERSION {
            return Err(DecompressError::UnsupportedVersion(bytes[4]));
        }
        if bytes[5] != ARCHIVE_DTYPE_F32 {
            return Err(DecompressError::InvalidHeader("archive dtype"));
        }
        let rank = bytes[6] as usize;
        if !(1..=3).contains(&rank) {
            return Err(DecompressError::InvalidHeader("archive rank"));
        }
        if bytes[7] != 0 {
            return Err(DecompressError::InvalidHeader("archive reserved byte"));
        }
        let fixed = 8 + 8 * rank + 16;
        if bytes.len() < fixed {
            return Err(DecompressError::Truncated("archive header"));
        }
        let u64_at = |pos: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[pos..pos + 8]);
            u64::from_le_bytes(b)
        };
        let mut extents = [0usize; 3];
        let mut total: usize = 1;
        for (ax, slot) in extents.iter_mut().take(rank).enumerate() {
            let e = u64_at(8 + 8 * ax);
            if e == 0 {
                return Err(DecompressError::InvalidHeader("archive extent is zero"));
            }
            if e > MAX_FIELD_ELEMS as u64 {
                return Err(DecompressError::InvalidHeader("archive extent exceeds cap"));
            }
            *slot = e as usize;
            total = total
                .checked_mul(*slot)
                .filter(|&t| t <= MAX_FIELD_ELEMS)
                .ok_or(DecompressError::InvalidHeader(
                    "archive element count exceeds cap",
                ))?;
        }
        let dims = match rank {
            1 => Dims::d1(extents[0]),
            2 => Dims::d2(extents[0], extents[1]),
            _ => Dims::d3(extents[0], extents[1], extents[2]),
        };
        let chunk = u64_at(8 + 8 * rank);
        if chunk == 0 {
            return Err(DecompressError::InvalidHeader("archive chunk edge is zero"));
        }
        if chunk > MAX_FIELD_ELEMS as u64 {
            return Err(DecompressError::InvalidHeader(
                "archive chunk edge exceeds cap",
            ));
        }
        let header = ArchiveHeader {
            dims,
            chunk: chunk as usize,
        };
        let declared = u64_at(16 + 8 * rank);
        if declared != header.chunk_count() as u64 {
            return Err(DecompressError::Inconsistent(
                "stored chunk count disagrees with the chunk grid",
            ));
        }
        Ok(header)
    }
}

/// One entry of the archive's chunk index: which codec wrote the chunk and
/// where its `AESC` frame lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Codec that produced this chunk's frame (the random-access dispatch key).
    pub codec: CodecId,
    /// Absolute byte offset of the chunk's frame from the archive start.
    pub offset: u64,
    /// Byte length of the chunk's frame.
    pub len: u64,
}

/// Serialize one chunk-index entry into `out`.
pub fn write_chunk_entry(out: &mut Vec<u8>, entry: &ChunkEntry) {
    out.push(entry.codec as u8);
    out.extend_from_slice(&entry.offset.to_le_bytes());
    out.extend_from_slice(&entry.len.to_le_bytes());
}

/// Parse and validate the chunk index of an archive whose header already
/// parsed as `header`.
///
/// Beyond per-entry decoding, this enforces the tiling invariant: entry 0
/// starts at the data section, every entry abuts its predecessor, every
/// frame is at least [`FRAME_LEN`] long, and the last entry ends exactly at
/// the end of the input — so lying offsets or lengths, overlapping or
/// reordered entries, truncation and trailing garbage are all rejected here.
pub fn read_chunk_index(
    bytes: &[u8],
    header: &ArchiveHeader,
) -> Result<Vec<ChunkEntry>, DecompressError> {
    let count = header.chunk_count();
    let index_start = header.encoded_len();
    // Both bounds are computed from the already-validated header, so this
    // check (against the real input length) caps every allocation below.
    let data_start = index_start
        .checked_add(header.index_len())
        .ok_or(DecompressError::InvalidHeader("archive index size"))?;
    if bytes.len() < data_start {
        return Err(DecompressError::Truncated("archive chunk index"));
    }
    let mut entries = Vec::with_capacity(count);
    let mut expected_offset = data_start as u64;
    for i in 0..count {
        let at = index_start + i * CHUNK_ENTRY_LEN;
        let codec =
            CodecId::from_byte(bytes[at]).ok_or(DecompressError::UnknownCodec(bytes[at]))?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[at + 1..at + 9]);
        let offset = u64::from_le_bytes(b);
        b.copy_from_slice(&bytes[at + 9..at + 17]);
        let len = u64::from_le_bytes(b);
        if offset != expected_offset {
            return Err(DecompressError::Inconsistent(
                "chunk index entries do not tile the data section",
            ));
        }
        if len < FRAME_LEN as u64 {
            return Err(DecompressError::InvalidHeader(
                "chunk frame shorter than a container frame",
            ));
        }
        expected_offset = offset
            .checked_add(len)
            .ok_or(DecompressError::InvalidHeader("chunk frame length"))?;
        if expected_offset > bytes.len() as u64 {
            return Err(DecompressError::Truncated("archive chunk data"));
        }
        entries.push(ChunkEntry { codec, offset, len });
    }
    if expected_offset != bytes.len() as u64 {
        return Err(DecompressError::Inconsistent(
            "trailing bytes after the last chunk frame",
        ));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips() {
        let payload = b"hello payload";
        let framed = write_frame(CodecId::SzInterp, payload);
        let (codec, body) = read_frame(&framed).unwrap();
        assert_eq!(codec, CodecId::SzInterp);
        assert_eq!(body, payload);
        assert_eq!(peek_codec(&framed).unwrap(), CodecId::SzInterp);
    }

    #[test]
    fn codec_ids_roundtrip_through_bytes() {
        for id in CodecId::all() {
            assert_eq!(CodecId::from_byte(id as u8), Some(id));
            assert!(!id.name().is_empty());
        }
        assert_eq!(CodecId::from_byte(0), None);
        assert_eq!(CodecId::from_byte(200), None);
    }

    #[test]
    fn every_truncated_prefix_is_rejected() {
        let framed = write_frame(CodecId::AeSz, &[7u8; 100]);
        for len in 0..framed.len() {
            assert!(
                read_frame(&framed[..len]).is_err(),
                "prefix of {len} bytes parsed as a complete frame"
            );
        }
    }

    #[test]
    fn bad_magic_version_codec_and_trailing_bytes_are_rejected() {
        let mut framed = write_frame(CodecId::Zfp, b"abc");
        framed.push(0);
        assert_eq!(
            read_frame(&framed),
            Err(DecompressError::Inconsistent(
                "trailing bytes after container payload"
            ))
        );
        let mut framed = write_frame(CodecId::Zfp, b"abc");
        framed[0] = b'X';
        assert_eq!(read_frame(&framed), Err(DecompressError::BadMagic));
        let mut framed = write_frame(CodecId::Zfp, b"abc");
        framed[4] = 99;
        assert_eq!(
            read_frame(&framed),
            Err(DecompressError::UnsupportedVersion(99))
        );
        let mut framed = write_frame(CodecId::Zfp, b"abc");
        framed[5] = 0;
        assert_eq!(read_frame(&framed), Err(DecompressError::UnknownCodec(0)));
    }
}
