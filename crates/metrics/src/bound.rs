//! Error-bound modes accepted by every compressor in the workspace.
//!
//! Production SZ-family compressors expose (at least) absolute and
//! value-range-relative bound modes; [`ErrorBound`] carries that request
//! through the [`Compressor`](crate::Compressor) trait so every figure
//! binary, example and future service front-end inherits both modes from the
//! same code path. The paper's evaluation sweeps value-range-relative bounds
//! (ε in Section III), which [`ErrorBound::RangeRel`] reproduces exactly.

use crate::error::CompressError;
use aesz_tensor::Field;

/// Smallest absolute bound a degenerate (constant / empty) field resolves to,
/// so the downstream quantizer always sees a positive step.
pub const MIN_ABS_BOUND: f64 = 1e-12;

/// A pointwise error bound request, in one of the supported modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound: `|dᵢ − d'ᵢ| ≤ e` for every point.
    Abs(f64),
    /// Value-range-relative bound (ε in the paper): the absolute bound is
    /// `e · (max − min)` of the field being compressed.
    RangeRel(f64),
}

impl ErrorBound {
    /// Absolute bound `e`.
    pub fn abs(e: f64) -> Self {
        ErrorBound::Abs(e)
    }

    /// Value-range-relative bound `e` (the paper's ε).
    pub fn rel(e: f64) -> Self {
        ErrorBound::RangeRel(e)
    }

    /// The raw numeric value of the bound, in its own mode.
    pub fn value(&self) -> f64 {
        match *self {
            ErrorBound::Abs(e) | ErrorBound::RangeRel(e) => e,
        }
    }

    /// Short mode label ("abs" / "rel") for table headers and error messages.
    pub fn mode(&self) -> &'static str {
        match self {
            ErrorBound::Abs(_) => "abs",
            ErrorBound::RangeRel(_) => "rel",
        }
    }

    /// Check that the bound is usable: finite and strictly positive.
    pub fn validate(&self) -> Result<(), CompressError> {
        let e = self.value();
        if !e.is_finite() {
            return Err(CompressError::InvalidBound("error bound must be finite"));
        }
        if e <= 0.0 {
            return Err(CompressError::InvalidBound(
                "error bound must be strictly positive",
            ));
        }
        Ok(())
    }

    /// Resolve to an absolute bound for a field spanning `[lo, hi]`.
    ///
    /// # Degenerate-range contract
    /// A relative bound has no scale on a constant (or empty) field, so for
    /// `hi <= lo` the relative value is interpreted as an **absolute** bound,
    /// floored at [`MIN_ABS_BOUND`] so the quantizer stays valid. Absolute
    /// bounds resolve to exactly themselves — no floor is applied, since the
    /// caller's request is already in the absolute domain.
    pub fn absolute(&self, lo: f32, hi: f32) -> f64 {
        let range = (hi as f64) - (lo as f64);
        match *self {
            ErrorBound::Abs(e) => e,
            ErrorBound::RangeRel(e) => {
                if range > 0.0 {
                    e * range
                } else {
                    e.max(MIN_ABS_BOUND)
                }
            }
        }
    }

    /// Resolve to an absolute bound for a concrete field (scans its min/max).
    ///
    /// On a **degenerate range** (constant or empty field, `hi <= lo`) the
    /// contract of [`ErrorBound::absolute`] applies: a relative bound acts
    /// as an absolute bound (floored at [`MIN_ABS_BOUND`]), while an
    /// absolute bound always resolves to exactly itself — so every codec
    /// driven through `decompress_any` reconstructs a constant field within
    /// the requested absolute tolerance:
    ///
    /// ```
    /// use aesz_metrics::ErrorBound;
    /// use aesz_tensor::{Dims, Field};
    ///
    /// let constant = Field::from_vec(Dims::d2(4, 4), vec![2.5; 16]).unwrap();
    /// // Relative bounds have no scale on a constant field → absolute.
    /// assert_eq!(ErrorBound::rel(1e-3).resolve(&constant), 1e-3);
    /// // Absolute bounds are never rescaled, degenerate range or not.
    /// assert_eq!(ErrorBound::abs(0.25).resolve(&constant), 0.25);
    ///
    /// let ramp = Field::from_vec(Dims::d1(3), vec![0.0, 5.0, 10.0]).unwrap();
    /// assert_eq!(ErrorBound::rel(1e-3).resolve(&ramp), 1e-2);
    /// assert_eq!(ErrorBound::abs(0.25).resolve(&ramp), 0.25);
    /// ```
    pub fn resolve(&self, field: &Field) -> f64 {
        let (lo, hi) = field.min_max();
        self.absolute(lo, hi)
    }

    /// Convert to the absolute mode for a field spanning `[lo, hi]`.
    pub fn to_abs(self, lo: f32, hi: f32) -> ErrorBound {
        ErrorBound::Abs(self.absolute(lo, hi))
    }

    /// Convert to the value-range-relative mode for a field spanning
    /// `[lo, hi]`. On a degenerate range the numeric value is kept as-is
    /// (the two modes coincide there, per the contract of
    /// [`ErrorBound::absolute`]).
    pub fn to_range_rel(self, lo: f32, hi: f32) -> ErrorBound {
        let range = (hi as f64) - (lo as f64);
        match self {
            ErrorBound::RangeRel(e) => ErrorBound::RangeRel(e),
            ErrorBound::Abs(e) => {
                if range > 0.0 {
                    ErrorBound::RangeRel(e / range)
                } else {
                    ErrorBound::RangeRel(e)
                }
            }
        }
    }
}

impl std::fmt::Display for ErrorBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorBound::Abs(e) => write!(f, "abs {e:e}"),
            ErrorBound::RangeRel(e) => write!(f, "rel {e:e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_tensor::Dims;

    #[test]
    fn relative_bounds_scale_with_the_range() {
        assert!((ErrorBound::rel(1e-3).absolute(0.0, 10.0) - 1e-2).abs() < 1e-15);
        assert!((ErrorBound::abs(0.5).absolute(0.0, 10.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn degenerate_ranges_fall_back_to_absolute() {
        assert!((ErrorBound::rel(1e-3).absolute(5.0, 5.0) - 1e-3).abs() < 1e-15);
        assert!(ErrorBound::rel(0.0f64.min(1e-20)).absolute(5.0, 5.0) >= MIN_ABS_BOUND);
        assert!((ErrorBound::abs(2.0).absolute(5.0, 5.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn resolve_scans_the_field() {
        let field = Field::from_fn(Dims::d1(11), |c| c[0] as f32);
        assert!((ErrorBound::rel(1e-2).resolve(&field) - 0.1).abs() < 1e-12);
        assert!((ErrorBound::abs(0.25).resolve(&field) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn conversions_roundtrip_on_positive_ranges() {
        let b = ErrorBound::abs(0.05).to_range_rel(0.0, 10.0);
        assert!(matches!(b, ErrorBound::RangeRel(e) if (e - 5e-3).abs() < 1e-15));
        let a = b.to_abs(0.0, 10.0);
        assert!(matches!(a, ErrorBound::Abs(e) if (e - 0.05).abs() < 1e-15));
    }

    #[test]
    fn validation_rejects_unusable_bounds() {
        assert!(ErrorBound::rel(1e-3).validate().is_ok());
        assert!(ErrorBound::abs(f64::NAN).validate().is_err());
        assert!(ErrorBound::abs(f64::INFINITY).validate().is_err());
        assert!(ErrorBound::rel(0.0).validate().is_err());
        assert!(ErrorBound::rel(-1.0).validate().is_err());
    }

    #[test]
    fn display_names_the_mode() {
        assert_eq!(ErrorBound::rel(1e-3).mode(), "rel");
        assert_eq!(ErrorBound::abs(1e-3).mode(), "abs");
        assert!(ErrorBound::abs(1e-3).to_string().starts_with("abs"));
    }
}
