//! # aesz-metrics
//!
//! Compression-quality metrics used throughout the evaluation: PSNR, MSE,
//! NRMSE, maximum pointwise error, bit rate, compression ratio, and simple
//! rate-distortion curve containers. Definitions follow Section III-B of the
//! AE-SZ paper:
//!
//! * `PSNR = 20·log10(vrange(D)) − 10·log10(mse(D, D'))`
//! * `bit rate = compressed bits / number of data points`
//! * `compression ratio = |D| / |D'|` in bytes.

#![forbid(unsafe_code)]

// Wire-parsing modules (the `aesz-lint` deny-set, see the repo-root
// lint.toml) must not panic on attacker-shaped bytes; the clippy headers
// below enforce the same contract (rule R1) at the compiler level. Tests
// are exempt via clippy.toml's allow-*-in-tests keys.
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod archive;
pub mod bound;
pub mod compressor;
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod container;
pub mod error;
pub mod error_stats;
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod protocol;
pub mod rate_distortion;
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod stream;

pub use archive::{
    write_archive, write_archive_embedding, write_archive_stream, write_field_archive,
    write_field_archive_embedding, ArchiveAppender, ArchiveOptions, ArchiveReadError,
    ArchiveReader, ArchiveStats, ArchiveWriteError, ChunkSink, ChunkSource, FieldSink, FieldSource,
};
pub use bound::ErrorBound;
pub use compressor::{measure, Compressor, SweepPoint};
pub use container::{
    peek, read_frame, read_model_frame, write_frame, write_model_frame, ArchiveHeader, ChunkEntry,
    CodecId, EmbeddedModel, FrameInfo, ModelId,
};
pub use error::{CompressError, CompressorError, DecompressError};
pub use error_stats::{max_abs_error, mse, nrmse, psnr, verify_error_bound, ErrorStats};
pub use protocol::{
    decode_request, decode_response, ErrorCode, Limits, ModelEntry, MsgHeader, MsgType, Request,
    Response, ServerStats, TrainKnobs,
};
pub use rate_distortion::{bit_rate, compression_ratio, RdCurve, RdPoint};
pub use stream::{StreamDecoder, StreamEvent};
