//! Pointwise error statistics between an original and a reconstructed field.

/// Summary of the pointwise differences between two equal-length buffers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Mean squared error.
    pub mse: f64,
    /// Maximum absolute pointwise error.
    pub max_abs_error: f64,
    /// Peak signal-to-noise ratio in dB (∞ for identical data).
    pub psnr: f64,
    /// Value range (max − min) of the original data.
    pub value_range: f64,
    /// Normalised root-mean-square error (RMSE / value range).
    pub nrmse: f64,
}

impl ErrorStats {
    /// Compute all statistics in one pass over the two buffers.
    ///
    /// # Panics
    /// Panics when the buffers have different lengths.
    pub fn compute(original: &[f32], reconstructed: &[f32]) -> ErrorStats {
        assert_eq!(
            original.len(),
            reconstructed.len(),
            "original and reconstructed data must have the same length"
        );
        if original.is_empty() {
            return ErrorStats {
                mse: 0.0,
                max_abs_error: 0.0,
                psnr: f64::INFINITY,
                value_range: 0.0,
                nrmse: 0.0,
            };
        }
        let mut sum_sq = 0.0f64;
        let mut max_err = 0.0f64;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (&a, &b) in original.iter().zip(reconstructed.iter()) {
            let a = a as f64;
            let b = b as f64;
            let diff = (a - b).abs();
            sum_sq += diff * diff;
            if diff > max_err {
                max_err = diff;
            }
            if a < lo {
                lo = a;
            }
            if a > hi {
                hi = a;
            }
        }
        let mse = sum_sq / original.len() as f64;
        let range = hi - lo;
        let psnr = if mse == 0.0 {
            f64::INFINITY
        } else if range == 0.0 {
            // Constant original data: fall back to pure −10·log10(mse).
            -10.0 * mse.log10()
        } else {
            20.0 * range.log10() - 10.0 * mse.log10()
        };
        let nrmse = if range == 0.0 {
            0.0
        } else {
            mse.sqrt() / range
        };
        ErrorStats {
            mse,
            max_abs_error: max_err,
            psnr,
            value_range: range,
            nrmse,
        }
    }
}

/// Mean squared error between two buffers.
pub fn mse(original: &[f32], reconstructed: &[f32]) -> f64 {
    ErrorStats::compute(original, reconstructed).mse
}

/// Maximum absolute pointwise error between two buffers.
pub fn max_abs_error(original: &[f32], reconstructed: &[f32]) -> f64 {
    ErrorStats::compute(original, reconstructed).max_abs_error
}

/// Peak signal-to-noise ratio (value-range based, in dB).
pub fn psnr(original: &[f32], reconstructed: &[f32]) -> f64 {
    ErrorStats::compute(original, reconstructed).psnr
}

/// Normalised root-mean-square error (RMSE divided by the value range).
pub fn nrmse(original: &[f32], reconstructed: &[f32]) -> f64 {
    ErrorStats::compute(original, reconstructed).nrmse
}

/// Check the error-bound invariant of an error-bounded compressor:
/// every reconstructed value must be within `abs_bound` of the original,
/// with `slack` absorbing one ULP of quantization rounding.
pub fn verify_error_bound(
    original: &[f32],
    reconstructed: &[f32],
    abs_bound: f64,
    slack: f64,
) -> Result<(), String> {
    assert_eq!(original.len(), reconstructed.len());
    for (i, (&a, &b)) in original.iter().zip(reconstructed.iter()).enumerate() {
        let diff = (a as f64 - b as f64).abs();
        if diff > abs_bound + slack {
            return Err(format!(
                "error bound violated at index {i}: |{a} - {b}| = {diff} > {abs_bound} (+{slack})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_data_has_infinite_psnr() {
        let d = vec![1.0f32, 2.0, 3.0];
        let s = ErrorStats::compute(&d, &d);
        assert_eq!(s.mse, 0.0);
        assert_eq!(s.max_abs_error, 0.0);
        assert!(s.psnr.is_infinite());
        assert_eq!(s.nrmse, 0.0);
    }

    #[test]
    fn known_mse_and_psnr() {
        // Original range 0..=10, constant error of 0.1 everywhere.
        let orig: Vec<f32> = (0..=100).map(|i| i as f32 * 0.1).collect();
        let recon: Vec<f32> = orig.iter().map(|v| v + 0.1).collect();
        let s = ErrorStats::compute(&orig, &recon);
        assert!((s.mse - 0.01).abs() < 1e-6);
        assert!((s.max_abs_error - 0.1).abs() < 1e-6);
        // PSNR = 20*log10(10) - 10*log10(0.01) = 20 + 20 = 40.
        assert!((s.psnr - 40.0).abs() < 0.01, "psnr = {}", s.psnr);
        assert!((s.nrmse - 0.01).abs() < 1e-5);
    }

    #[test]
    fn psnr_increases_as_error_shrinks() {
        let orig: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin()).collect();
        let noisy_big: Vec<f32> = orig.iter().map(|v| v + 0.01).collect();
        let noisy_small: Vec<f32> = orig.iter().map(|v| v + 0.001).collect();
        assert!(psnr(&orig, &noisy_small) > psnr(&orig, &noisy_big) + 15.0);
    }

    #[test]
    fn constant_field_psnr_does_not_blow_up() {
        let orig = vec![5.0f32; 100];
        let recon = vec![5.001f32; 100];
        let s = ErrorStats::compute(&orig, &recon);
        assert!(s.psnr.is_finite());
        assert_eq!(s.value_range, 0.0);
    }

    #[test]
    fn empty_inputs_are_benign() {
        let s = ErrorStats::compute(&[], &[]);
        assert!(s.psnr.is_infinite());
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        ErrorStats::compute(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn verify_error_bound_detects_violations() {
        let orig = vec![0.0f32, 1.0, 2.0];
        let ok = vec![0.05f32, 1.05, 1.95];
        let bad = vec![0.05f32, 1.3, 2.0];
        assert!(verify_error_bound(&orig, &ok, 0.1, 1e-6).is_ok());
        let err = verify_error_bound(&orig, &bad, 0.1, 1e-6).unwrap_err();
        assert!(err.contains("index 1"));
    }
}
