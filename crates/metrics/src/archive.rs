//! The streaming archive layer: bounded-memory, chunked, parallel
//! compression of fields larger than RAM.
//!
//! A whole-field [`Compressor`] stream (one `AESC` frame) forces both sides
//! to materialize the entire dataset. The archive format
//! (magic `AESA`, laid out in [`crate::container`]) instead splits the field
//! into a grid of chunks, compresses every chunk into its own complete
//! `AESC` frame — possibly through a *different* codec per chunk — and keeps
//! a codec-id + offset index up front, so:
//!
//! * **bounded memory** — [`write_archive`] pulls chunks from a
//!   [`ChunkSource`] and [`ArchiveReader::decode_into`] pushes them into a
//!   [`ChunkSink`] in windows of [`ArchiveOptions::window`] chunks; the peak
//!   resident raw payload is one window, never the whole field (the
//!   compressed archive itself is buffered only on the reader side, where it
//!   arrives as the input);
//! * **parallelism** — the chunks of a window are compressed/decompressed
//!   concurrently, each on its own [`Compressor::fork`]ed instance, so no
//!   `&mut` compressor is ever shared across threads;
//! * **random access** — [`ArchiveReader::decode_chunk`] decodes one chunk
//!   by index straight from its frame without touching the rest of the
//!   archive.
//!
//! Value-range-relative bounds are resolved against the *whole field's*
//! range (one streaming `min_max` pass over the source) and then applied to
//! every chunk as an absolute bound, so the archive honours exactly the
//! bound a whole-field compression would have.

use std::io::{Cursor, Read, Seek, SeekFrom, Write};

use rayon::prelude::*;

use crate::bound::ErrorBound;
use crate::compressor::Compressor;
use crate::container::{
    decode_chunk_entry, parse_model_section, read_chunk_index, read_model_section,
    validate_chunk_entry, write_chunk_entry, ArchiveHeader, ChunkEntry, CodecId, EmbeddedModel,
    ModelId, ARCHIVE_VERSION, ARCHIVE_VERSION_APPEND, ARCHIVE_VERSION_MODELS, CHUNK_ENTRY_LEN,
    MAX_FIELD_ELEMS,
};
use crate::error::{CompressError, DecompressError};
use aesz_tensor::{BlockSpec, Dims, Field};

/// Chunking and batching knobs of the archive writer/reader, built fluently:
///
/// ```
/// use aesz_metrics::archive::ArchiveOptions;
/// let opts = ArchiveOptions::new().chunk(32).window(4).reserve(16);
/// assert_eq!(opts.chunk_edge(), 32);
/// assert_eq!(opts.window_chunks(), 4);
/// assert_eq!(opts.reserved_chunks(), 16);
/// ```
///
/// Every builder method is `const fn`, so options can live in `const`
/// context. The fields are private on purpose: new knobs (like `reserve`,
/// added for the appender) extend the builder without breaking a single
/// call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveOptions {
    /// Nominal chunk edge length (need not divide the extents; edge chunks
    /// are smaller).
    chunk: usize,
    /// Number of chunks processed concurrently per batch — the bound on
    /// resident raw payload and on parallelism.
    window: usize,
    /// Spare index slots reserved for future appends. Non-zero makes the
    /// writer emit a version-3 archive whose index capacity is
    /// `chunk count + reserve`.
    reserve: usize,
}

impl ArchiveOptions {
    /// The default knobs: chunk edge 64, window 8, no reserved slots.
    pub const fn new() -> ArchiveOptions {
        ArchiveOptions {
            chunk: 64,
            window: 8,
            reserve: 0,
        }
    }

    /// Set the nominal chunk edge length.
    pub const fn chunk(mut self, chunk: usize) -> ArchiveOptions {
        self.chunk = chunk;
        self
    }

    /// Set the number of chunks compressed/decompressed concurrently per
    /// batch.
    pub const fn window(mut self, window: usize) -> ArchiveOptions {
        self.window = window;
        self
    }

    /// Reserve spare index slots for future [`ArchiveAppender`] appends
    /// (non-zero selects the version-3 layout).
    pub const fn reserve(mut self, reserve: usize) -> ArchiveOptions {
        self.reserve = reserve;
        self
    }

    /// The nominal chunk edge length.
    pub const fn chunk_edge(&self) -> usize {
        self.chunk
    }

    /// The per-batch concurrency window, in chunks.
    pub const fn window_chunks(&self) -> usize {
        self.window
    }

    /// Spare index slots reserved for appends.
    pub const fn reserved_chunks(&self) -> usize {
        self.reserve
    }
}

impl Default for ArchiveOptions {
    fn default() -> Self {
        ArchiveOptions::new()
    }
}

/// The dims of the small [`Field`] holding one chunk's values (same rank as
/// the parent field, extents = the chunk's valid size).
#[expect(clippy::unreachable)]
pub fn chunk_dims(spec: &BlockSpec) -> Dims {
    match *spec.size.as_slice() {
        [n] => Dims::d1(n),
        [ny, nx] => Dims::d2(ny, nx),
        [nz, ny, nx] => Dims::d3(nz, ny, nx),
        // lint:allow(R1): BlockSpec::size is built from a Dims, whose rank
        // is 1..=3 by construction; no wire input reaches this match
        _ => unreachable!("BlockSpec rank is always 1..=3"),
    }
}

/// Where the writer pulls raw chunk data from — an in-memory field
/// ([`FieldSource`]) or something out-of-core like a raw `f32` file read
/// with seeks (the `aesz` CLI), so the whole dataset never has to be
/// resident.
pub trait ChunkSource {
    /// Extents of the field being archived.
    fn dims(&self) -> Dims;

    /// Global min/max of the field (one streaming pass is fine). Only called
    /// when a value-range-relative bound needs resolving.
    fn min_max(&mut self) -> std::io::Result<(f32, f32)>;

    /// Read the chunk covering `spec` as a small field of dims
    /// [`chunk_dims`]`(spec)` (row-major over `spec.size`, no padding).
    fn read_chunk(&mut self, spec: &BlockSpec) -> std::io::Result<Field>;
}

/// Where the reader pushes decoded chunks — an in-memory field
/// ([`FieldSink`]) or an out-of-core target written with seeks.
pub trait ChunkSink {
    /// Store the decoded chunk covering `spec` (dims [`chunk_dims`]`(spec)`).
    fn write_chunk(&mut self, spec: &BlockSpec, chunk: &Field) -> std::io::Result<()>;
}

/// [`ChunkSource`] over a borrowed in-memory field.
pub struct FieldSource<'a>(pub &'a Field);

impl ChunkSource for FieldSource<'_> {
    fn dims(&self) -> Dims {
        self.0.dims()
    }

    fn min_max(&mut self) -> std::io::Result<(f32, f32)> {
        Ok(self.0.min_max())
    }

    fn read_chunk(&mut self, spec: &BlockSpec) -> std::io::Result<Field> {
        let values = self.0.read_block_valid(spec);
        Field::from_vec(chunk_dims(spec), values)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// [`ChunkSink`] assembling decoded chunks into an in-memory field.
pub struct FieldSink(Field);

impl FieldSink {
    /// A zero-initialised sink for a field with the given extents.
    pub fn new(dims: Dims) -> Self {
        FieldSink(Field::zeros(dims))
    }

    /// The assembled field.
    pub fn into_field(self) -> Field {
        self.0
    }
}

impl ChunkSink for FieldSink {
    fn write_chunk(&mut self, spec: &BlockSpec, chunk: &Field) -> std::io::Result<()> {
        self.0.write_block_valid(spec, chunk.as_slice());
        Ok(())
    }
}

/// Why an archive could not be written.
#[derive(Debug)]
pub enum ArchiveWriteError {
    /// The options, bound or source geometry are unusable.
    Invalid(&'static str),
    /// Compressing one chunk failed.
    Compress {
        /// Index of the failing chunk in the chunk grid.
        chunk: usize,
        /// The codec's error.
        error: CompressError,
    },
    /// The sink or the chunk source failed.
    Io(std::io::Error),
}

impl From<std::io::Error> for ArchiveWriteError {
    fn from(e: std::io::Error) -> Self {
        ArchiveWriteError::Io(e)
    }
}

impl std::fmt::Display for ArchiveWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveWriteError::Invalid(what) => write!(f, "invalid archive request: {what}"),
            ArchiveWriteError::Compress { chunk, error } => {
                write!(f, "compressing chunk {chunk} failed: {error}")
            }
            ArchiveWriteError::Io(e) => write!(f, "archive I/O failed: {e}"),
        }
    }
}

impl std::error::Error for ArchiveWriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveWriteError::Compress { error, .. } => Some(error),
            ArchiveWriteError::Io(e) => Some(e),
            ArchiveWriteError::Invalid(_) => None,
        }
    }
}

/// Why an archive could not be read back.
#[derive(Debug)]
pub enum ArchiveReadError {
    /// The archive header or chunk index is malformed (reported before any
    /// chunk payload is touched).
    Archive(DecompressError),
    /// Decoding one chunk frame failed.
    Chunk {
        /// Index of the failing chunk in the chunk grid.
        chunk: usize,
        /// The codec's error.
        error: DecompressError,
    },
    /// The chunk sink failed.
    Io(std::io::Error),
}

impl From<DecompressError> for ArchiveReadError {
    fn from(e: DecompressError) -> Self {
        ArchiveReadError::Archive(e)
    }
}

impl From<std::io::Error> for ArchiveReadError {
    fn from(e: std::io::Error) -> Self {
        ArchiveReadError::Io(e)
    }
}

impl std::fmt::Display for ArchiveReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveReadError::Archive(e) => write!(f, "malformed archive: {e}"),
            ArchiveReadError::Chunk { chunk, error } => {
                write!(f, "decoding chunk {chunk} failed: {error}")
            }
            ArchiveReadError::Io(e) => write!(f, "archive I/O failed: {e}"),
        }
    }
}

impl std::error::Error for ArchiveReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveReadError::Archive(e) => Some(e),
            ArchiveReadError::Chunk { error, .. } => Some(error),
            ArchiveReadError::Io(e) => Some(e),
        }
    }
}

/// What [`write_archive`] measured while streaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Number of chunks written.
    pub chunks: usize,
    /// Raw payload size (field elements × 4 bytes).
    pub raw_bytes: usize,
    /// Total archive size, header and index included.
    pub archive_bytes: usize,
    /// Largest raw payload resident at once — the bounded-memory witness:
    /// with `window × chunkᵣᵃⁿᵏ` elements per batch this stays far below
    /// `raw_bytes` for any multi-window archive.
    pub peak_window_raw_bytes: usize,
    /// Bytes of the embedded model section (0 unless written through
    /// [`write_archive_embedding`] with learned codecs that expose a model).
    pub model_bytes: usize,
}

/// What the writer's per-chunk codec factory returns: a dedicated
/// (forked) compressor for one chunk, or the reason it could not be made.
pub type CompressorFork = Result<Box<dyn Compressor>, CompressError>;

/// What the reader's per-chunk decoder factory returns.
pub type DecoderFork = Result<Box<dyn Compressor>, DecompressError>;

/// Run every job of a window, each on its own thread-confined `&mut` state.
///
/// Chunk size 1 is deliberate: the vendored rayon shim only implements the
/// `par_chunks_mut` shape (no `par_iter_mut`), and one-job chunks give it
/// exactly per-job granularity — the inner loop runs once per job.
fn run_jobs<J: Send>(jobs: &mut [J], run: impl Fn(&mut J) + Sync) {
    jobs.par_chunks_mut(1).for_each(|one| {
        for job in one {
            run(job);
        }
    });
}

/// Compress a field pulled from `source` into the multi-chunk archive
/// format, streaming chunk frames into `sink`.
///
/// `codecs` is called once per chunk (in index order) and must hand back a
/// *dedicated* compressor instance — typically [`Compressor::fork`] of a
/// registered codec; different chunks may use different codecs. Chunks are
/// compressed in rayon-parallel windows of [`ArchiveOptions::window`]; only
/// one window of raw chunk data is resident at a time. The sink must
/// support seeking because the chunk index, whose entries are only known
/// after compression, is back-patched into its reserved slot at the end.
/// The archive starts at the sink's *current* position (it may be embedded
/// in a larger stream); index offsets are archive-relative, and the sink is
/// left positioned just past the archive's last byte.
pub fn write_archive<W: Write + Seek>(
    source: &mut dyn ChunkSource,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
    sink: &mut W,
) -> Result<ArchiveStats, ArchiveWriteError> {
    write_archive_impl(source, bound, opts, codecs, false, sink)
}

/// [`write_archive`], but as a version-2 archive that **embeds the trained
/// models** of the codecs used: every forked codec is asked for its
/// [`Compressor::embedded_model`], and each distinct model (by [`ModelId`]) is
/// appended once to the archive's model section, so a reader that never saw
/// the trainer can resolve the learned chunks from the archive bytes alone.
///
/// Model-free codecs contribute nothing; an archive written purely with
/// traditional codecs gets an empty model section (still version 2).
pub fn write_archive_embedding<W: Write + Seek>(
    source: &mut dyn ChunkSource,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
    sink: &mut W,
) -> Result<ArchiveStats, ArchiveWriteError> {
    write_archive_impl(source, bound, opts, codecs, true, sink)
}

/// Validate writer knobs and resolve a range-relative bound against the
/// whole source once (a per-chunk range would be tighter on smooth chunks
/// and looser on none). Shared by every archive writer.
fn resolve_write_request(
    source: &mut dyn ChunkSource,
    bound: ErrorBound,
    chunk: usize,
    window: usize,
) -> Result<(Dims, ErrorBound), ArchiveWriteError> {
    if chunk == 0 {
        return Err(ArchiveWriteError::Invalid("chunk edge must be at least 1"));
    }
    if window == 0 {
        return Err(ArchiveWriteError::Invalid("window must be at least 1"));
    }
    if bound.validate().is_err() {
        return Err(ArchiveWriteError::Invalid(
            "error bound must be finite and strictly positive",
        ));
    }
    let dims = source.dims();
    if dims.is_empty() {
        return Err(ArchiveWriteError::Invalid("field has no elements"));
    }
    let chunk_bound = match bound {
        ErrorBound::Abs(_) => bound,
        ErrorBound::RangeRel(_) => {
            let (lo, hi) = source.min_max()?;
            if !lo.is_finite() || !hi.is_finite() {
                return Err(ArchiveWriteError::Invalid(
                    "field contains non-finite values; a relative bound is undefined",
                ));
            }
            ErrorBound::Abs(bound.absolute(lo, hi))
        }
    };
    Ok((dims, chunk_bound))
}

/// The windowed compression core every writer shares: pull chunks from
/// `source` over `dims`, compress them in rayon-parallel windows, and hand
/// each finished frame to `on_frame` in index order.
///
/// `spec_for_codec` maps the source-local [`BlockSpec`] to the spec the
/// codec factory sees — the identity for a plain write, a global-coordinate
/// shift for an append. When `models` is `Some`, each forked codec's
/// embedded model is collected there exactly once (deduplicated by id, also
/// against whatever the vector already holds — the appender seeds it with
/// the archive's existing tail). Returns `(raw_bytes, peak_window_raw_bytes)`.
#[allow(clippy::too_many_arguments)]
fn compress_chunk_frames(
    source: &mut dyn ChunkSource,
    dims: Dims,
    chunk_bound: ErrorBound,
    chunk: usize,
    window: usize,
    codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
    mut models: Option<&mut Vec<EmbeddedModel>>,
    spec_for_codec: &dyn Fn(&BlockSpec) -> BlockSpec,
    on_frame: &mut dyn FnMut(usize, CodecId, Vec<u8>) -> Result<(), ArchiveWriteError>,
) -> Result<(usize, usize), ArchiveWriteError> {
    struct Job {
        index: usize,
        id: CodecId,
        field: Field,
        codec: Box<dyn Compressor>,
        out: Option<Result<Vec<u8>, CompressError>>,
    }

    let count: usize = dims.block_grid(chunk).iter().product();
    let mut raw_bytes = 0usize;
    let mut peak_window_raw_bytes = 0usize;
    let mut next = 0usize;
    while next < count {
        let batch = window.min(count - next);
        let mut jobs = Vec::with_capacity(batch);
        for index in next..next + batch {
            let spec = BlockSpec::of(dims, chunk, index);
            let field = source.read_chunk(&spec)?;
            if field.dims() != chunk_dims(&spec) {
                return Err(ArchiveWriteError::Invalid(
                    "chunk source returned a chunk with the wrong dims",
                ));
            }
            let codec_spec = spec_for_codec(&spec);
            let codec = codecs(&codec_spec).map_err(|error| ArchiveWriteError::Compress {
                chunk: codec_spec.index,
                error,
            })?;
            if let Some(models) = models.as_deref_mut() {
                // Dedup by the cached id first: serializing + hashing the
                // full model once per *chunk* would be O(chunks × weights).
                match codec.embedded_model_id() {
                    Some(id) if models.iter().any(|m| m.id == id) => {}
                    Some(_) | None => {
                        if let Some(model) = codec.embedded_model() {
                            if !models.iter().any(|m| m.id == model.id) {
                                models.push(model);
                            }
                        }
                    }
                }
            }
            jobs.push(Job {
                index,
                id: codec.codec_id(),
                field,
                codec,
                out: None,
            });
        }
        let window_raw: usize = jobs.iter().map(|j| j.field.len() * 4).sum();
        peak_window_raw_bytes = peak_window_raw_bytes.max(window_raw);
        run_jobs(&mut jobs, |job| {
            job.out = Some(job.codec.compress(&job.field, chunk_bound));
        });
        for job in jobs {
            #[expect(clippy::expect_used)]
            // lint:allow(R1): `run_jobs` invokes the closure on every job in
            // the window exactly once, so `out` is always populated here
            let out = job.out.expect("window ran");
            let frame = out.map_err(|error| ArchiveWriteError::Compress {
                chunk: job.index,
                error,
            })?;
            raw_bytes += job.field.len() * 4;
            on_frame(job.index, job.id, frame)?;
        }
        next += batch;
    }
    Ok((raw_bytes, peak_window_raw_bytes))
}

/// Serialize the model tail: per model, its id, frame length and frame.
fn encode_model_section(models: &[EmbeddedModel]) -> Vec<u8> {
    let mut section = Vec::new();
    for model in models {
        section.extend_from_slice(model.id.as_bytes());
        section.extend_from_slice(&(model.frame.len() as u64).to_le_bytes());
        section.extend_from_slice(&model.frame);
    }
    section
}

fn write_archive_impl<W: Write + Seek>(
    source: &mut dyn ChunkSource,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
    embed_models: bool,
    sink: &mut W,
) -> Result<ArchiveStats, ArchiveWriteError> {
    let (dims, chunk_bound) = resolve_write_request(source, bound, opts.chunk, opts.window)?;

    let mut header = ArchiveHeader {
        dims,
        chunk: opts.chunk,
        version: if opts.reserve > 0 {
            ARCHIVE_VERSION_APPEND
        } else if embed_models {
            ARCHIVE_VERSION_MODELS
        } else {
            ARCHIVE_VERSION
        },
        // Which models the chunks reference is only known once every codec
        // has been forked; the length slot is back-patched like the index.
        model_len: 0,
        index_cap: 0,
    };
    let count = header.chunk_count();
    if opts.reserve > 0 {
        header.index_cap = count + opts.reserve;
    }
    // The archive may be embedded at any position of a larger stream: every
    // seek below is relative to where the sink stands now, and the index
    // offsets are archive-relative (per the format), not stream-absolute.
    let base = sink.stream_position()?;
    let mut head = Vec::with_capacity(header.encoded_len());
    header.write(&mut head);
    sink.write_all(&head)?;
    // Reserve the index; its entries are back-patched once every frame
    // length is known (reserved v3 capacity slots stay zero).
    sink.write_all(&vec![0u8; header.index_len()])?;

    let mut entries: Vec<ChunkEntry> = Vec::with_capacity(count.min(MAX_FIELD_ELEMS));
    let mut models: Vec<EmbeddedModel> = Vec::new();
    let mut offset = header.data_start() as u64;
    let (raw_bytes, peak_window_raw_bytes) = compress_chunk_frames(
        source,
        dims,
        chunk_bound,
        opts.chunk,
        opts.window,
        codecs,
        embed_models.then_some(&mut models),
        &|spec| spec.clone(),
        &mut |_index, id, frame| {
            sink.write_all(&frame)?;
            entries.push(ChunkEntry {
                codec: id,
                offset,
                len: frame.len() as u64,
            });
            offset += frame.len() as u64;
            Ok(())
        },
    )?;

    // The model section sits after the last chunk frame; its length goes
    // into the header slot reserved for it (v2/v3 only).
    let model_section = encode_model_section(&models);
    sink.write_all(&model_section)?;

    let mut index_bytes = Vec::with_capacity(entries.len() * CHUNK_ENTRY_LEN);
    for entry in &entries {
        write_chunk_entry(&mut index_bytes, entry);
    }
    if embed_models {
        // Back-patch the model-section length (the last u64 of a v2/v3
        // header).
        sink.seek(SeekFrom::Start(base + (header.encoded_len() - 8) as u64))?;
        sink.write_all(&(model_section.len() as u64).to_le_bytes())?;
    }
    sink.seek(SeekFrom::Start(base + header.encoded_len() as u64))?;
    sink.write_all(&index_bytes)?;
    // Leave the sink where writing stopped (the archive's end), not at the
    // end of whatever larger stream it may be embedded in.
    sink.seek(SeekFrom::Start(base + offset + model_section.len() as u64))?;

    Ok(ArchiveStats {
        chunks: count,
        raw_bytes,
        archive_bytes: usize::try_from(offset).unwrap_or(usize::MAX) + model_section.len(),
        peak_window_raw_bytes,
        model_bytes: model_section.len(),
    })
}

/// [`write_archive`] for sinks that cannot seek — a pipe, a socket, stdout.
///
/// Emits the **inline** version-3 layout: a v3 header with index capacity 0
/// and no index table, chunk frames back-to-back in index order, nothing to
/// back-patch. Readers reconstruct the index from the frame headers
/// ([`crate::container::reconstruct_chunk_index`]), so once the bytes land
/// on disk the archive is random-accessible like any other. Peak resident
/// raw payload is one [`ArchiveOptions::window_chunks`] window, never the
/// field. Model embedding is not available on this path (the model-section
/// length lives in the already-written header); use a seekable sink or ship
/// models as sidecars.
pub fn write_archive_stream<W: Write>(
    source: &mut dyn ChunkSource,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
    sink: &mut W,
) -> Result<ArchiveStats, ArchiveWriteError> {
    let (dims, chunk_bound) = resolve_write_request(source, bound, opts.chunk, opts.window)?;

    let header = ArchiveHeader {
        dims,
        chunk: opts.chunk,
        version: ARCHIVE_VERSION_APPEND,
        model_len: 0,
        index_cap: 0,
    };
    let mut head = Vec::with_capacity(header.encoded_len());
    header.write(&mut head);
    sink.write_all(&head)?;

    let mut archive_bytes = header.encoded_len();
    let (raw_bytes, peak_window_raw_bytes) = compress_chunk_frames(
        source,
        dims,
        chunk_bound,
        opts.chunk,
        opts.window,
        codecs,
        None,
        &|spec| spec.clone(),
        &mut |_index, _id, frame| {
            sink.write_all(&frame)?;
            archive_bytes += frame.len();
            Ok(())
        },
    )?;

    Ok(ArchiveStats {
        chunks: header.chunk_count(),
        raw_bytes,
        archive_bytes,
        peak_window_raw_bytes,
        model_bytes: 0,
    })
}

/// [`write_archive`] into a fresh in-memory buffer — the convenience path
/// for fields that are already resident.
pub fn write_field_archive(
    field: &Field,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
) -> Result<(Vec<u8>, ArchiveStats), ArchiveWriteError> {
    let mut cursor = Cursor::new(Vec::new());
    let stats = write_archive(&mut FieldSource(field), bound, opts, codecs, &mut cursor)?;
    Ok((cursor.into_inner(), stats))
}

/// [`write_archive_embedding`] into a fresh in-memory buffer.
pub fn write_field_archive_embedding(
    field: &Field,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
) -> Result<(Vec<u8>, ArchiveStats), ArchiveWriteError> {
    let mut cursor = Cursor::new(Vec::new());
    let stats = write_archive_embedding(&mut FieldSource(field), bound, opts, codecs, &mut cursor)?;
    Ok((cursor.into_inner(), stats))
}

/// In-place extension of an existing version-3 archive along its slowest
/// axis, without rewriting a single existing payload byte.
///
/// [`ArchiveAppender::open`] validates the archive exactly like
/// [`ArchiveReader::open`] (header, index tiling, model-tail hashes) but
/// through seeks — chunk payloads are never read. Each
/// [`append`](ArchiveAppender::append) compresses a new slab of data into
/// frames written where the model tail used to start; the tail itself is
/// stashed at open and written back — extended with any newly referenced
/// models — by [`finalize`](ArchiveAppender::finalize), which also
/// back-patches the header (grown extents, chunk count, model-section
/// length) and the index (new entries filled into reserved slots for
/// indexed archives; nothing to patch for inline ones).
///
/// Only version-3 archives are appendable: indexed ones need spare capacity
/// slots ([`ArchiveOptions::reserve`]), inline ones (index capacity 0, the
/// [`write_archive_stream`] output) need nothing. The archive must also be
/// *open-ended*: its slowest extent must be a multiple of the chunk edge,
/// otherwise the last slab of existing chunks would change shape when the
/// axis grows. Appends require an absolute error bound — the whole-field
/// value range that a relative bound resolves against cannot be recomputed
/// without decoding everything.
pub struct ArchiveAppender<F: Read + Write + Seek> {
    file: F,
    /// Stream position of the archive's first byte (archives may be
    /// embedded in larger files).
    base: u64,
    header: ArchiveHeader,
    entries: Vec<ChunkEntry>,
    /// The stashed model tail (existing models first, newly referenced ones
    /// appended), rewritten on finalize.
    models: Vec<EmbeddedModel>,
    /// Archive-relative offset one past the last chunk frame — where the
    /// next appended frame (and, on finalize, the model tail) goes.
    data_end: u64,
}

impl<F: Read + Write + Seek> ArchiveAppender<F> {
    /// Open and validate an existing archive for appending. The archive is
    /// taken to start at the file's *current* position and extend to its
    /// end.
    pub fn open(mut file: F) -> Result<Self, ArchiveReadError> {
        let base = file.stream_position()?;
        let archive_len = file.seek(SeekFrom::End(0))?.saturating_sub(base);

        // Fixed header first: read the largest possible encoded header (64
        // bytes, rank 3 v3) or whatever the file holds, then parse a prefix.
        let head_len = usize::try_from(archive_len.min(64)).unwrap_or(64);
        let mut head = vec![0u8; head_len];
        file.seek(SeekFrom::Start(base))?;
        file.read_exact(&mut head)?;
        let header = ArchiveHeader::read_prefix(&head).map_err(ArchiveReadError::Archive)?;
        if header.version != ARCHIVE_VERSION_APPEND {
            return Err(ArchiveReadError::Archive(DecompressError::Unsupported(
                "only version-3 archives are appendable; rewrite with reserved index slots or \
                 the stream writer",
            )));
        }
        let count = header.chunk_count();
        let data_start = header.data_start() as u64;
        let tail = (header.model_len as u64)
            .checked_add(data_start)
            .filter(|&t| t <= archive_len)
            .ok_or(ArchiveReadError::Archive(DecompressError::Truncated(
                "archive model section",
            )))?;
        let data_end = archive_len - header.model_len as u64;
        debug_assert!(tail <= archive_len);

        // The chunk index: decode stored entries (indexed) or walk the
        // frame headers with seeks (inline), with the exact validation the
        // buffered readers apply.
        let mut entries = Vec::with_capacity(count.min(MAX_FIELD_ELEMS));
        let mut expected = data_start;
        if header.index_slots() > 0 {
            let mut index = vec![0u8; header.index_len()];
            file.seek(SeekFrom::Start(base + header.encoded_len() as u64))?;
            file.read_exact(&mut index)?;
            for i in 0..count {
                let at = i * CHUNK_ENTRY_LEN;
                let raw = index
                    .get(at..at + CHUNK_ENTRY_LEN)
                    .ok_or(ArchiveReadError::Archive(DecompressError::Truncated(
                        "archive chunk index",
                    )))?;
                let entry = decode_chunk_entry(raw).map_err(ArchiveReadError::Archive)?;
                expected = validate_chunk_entry(&entry, i, expected, data_end, header.model_len)
                    .map_err(ArchiveReadError::Archive)?;
                entries.push(entry);
            }
            for slot in count..header.index_slots() {
                let at = slot * CHUNK_ENTRY_LEN;
                let raw = index
                    .get(at..at + CHUNK_ENTRY_LEN)
                    .ok_or(ArchiveReadError::Archive(DecompressError::Truncated(
                        "archive chunk index",
                    )))?;
                if raw.iter().any(|&b| b != 0) {
                    return Err(ArchiveReadError::Archive(DecompressError::BadChunkIndex {
                        chunk: slot,
                        reason: "reserved index slot is not zero-filled",
                    }));
                }
            }
        } else {
            let mut frame_head = [0u8; crate::container::FRAME_LEN];
            for i in 0..count {
                if data_end - expected < crate::container::FRAME_LEN as u64 {
                    return Err(ArchiveReadError::Archive(DecompressError::Truncated(
                        "archive chunk data",
                    )));
                }
                file.seek(SeekFrom::Start(base + expected))?;
                file.read_exact(&mut frame_head)?;
                let info =
                    crate::container::peek(&frame_head).map_err(ArchiveReadError::Archive)?;
                let len = (crate::container::FRAME_LEN as u64)
                    .checked_add(info.payload_len)
                    .ok_or(ArchiveReadError::Archive(DecompressError::BadChunkIndex {
                        chunk: i,
                        reason: "frame length overflows the archive",
                    }))?;
                let entry = ChunkEntry {
                    codec: info.codec,
                    offset: expected,
                    len,
                };
                expected = validate_chunk_entry(&entry, i, expected, data_end, header.model_len)
                    .map_err(ArchiveReadError::Archive)?;
                entries.push(entry);
            }
        }
        if expected != data_end {
            return Err(ArchiveReadError::Archive(DecompressError::Inconsistent(
                "trailing bytes after the last chunk frame",
            )));
        }

        // Stash and verify the model tail; finalize writes it back.
        let mut models = Vec::new();
        if header.model_len > 0 {
            // lint:allow(R3): model_len was bounds-checked against the real
            // archive length when computing `tail` above
            let mut section = vec![0u8; header.model_len];
            file.seek(SeekFrom::Start(base + data_end))?;
            file.read_exact(&mut section)?;
            for (_, frame) in parse_model_section(&section).map_err(ArchiveReadError::Archive)? {
                let (model, _) =
                    EmbeddedModel::from_frame(frame).map_err(ArchiveReadError::Archive)?;
                models.push(model);
            }
        }

        Ok(ArchiveAppender {
            file,
            base,
            header,
            entries,
            models,
            data_end,
        })
    }

    /// The archive's current header (extents grow with each append).
    pub fn header(&self) -> ArchiveHeader {
        self.header
    }

    /// The validated chunk index, including entries added by appends.
    pub fn entries(&self) -> &[ChunkEntry] {
        &self.entries
    }

    /// Index slots still free for appended chunks (`usize::MAX` for inline
    /// archives, which have no index to exhaust).
    pub fn spare_slots(&self) -> usize {
        if self.header.index_slots() == 0 {
            usize::MAX
        } else {
            self.header.index_slots() - self.entries.len()
        }
    }

    /// Compress `source` as new chunks extending the archive's slowest
    /// axis. `source.dims()` must match the archive on every faster axis;
    /// its slowest extent is the growth. May be called repeatedly; call
    /// [`finalize`](ArchiveAppender::finalize) once at the end.
    pub fn append(
        &mut self,
        source: &mut dyn ChunkSource,
        bound: ErrorBound,
        window: usize,
        codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
    ) -> Result<ArchiveStats, ArchiveWriteError> {
        self.append_impl(source, bound, window, codecs, false)
    }

    /// [`append`](ArchiveAppender::append), additionally embedding the
    /// trained models of the codecs used (deduplicated against the models
    /// already in the archive's tail).
    pub fn append_embedding(
        &mut self,
        source: &mut dyn ChunkSource,
        bound: ErrorBound,
        window: usize,
        codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
    ) -> Result<ArchiveStats, ArchiveWriteError> {
        self.append_impl(source, bound, window, codecs, true)
    }

    fn append_impl(
        &mut self,
        source: &mut dyn ChunkSource,
        bound: ErrorBound,
        window: usize,
        codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
        embed_models: bool,
    ) -> Result<ArchiveStats, ArchiveWriteError> {
        if !matches!(bound, ErrorBound::Abs(_)) {
            return Err(ArchiveWriteError::Invalid(
                "appending requires an absolute error bound (the whole-field value range \
                 cannot be recomputed without decoding the archive)",
            ));
        }
        let chunk = self.header.chunk;
        let (slab_dims, chunk_bound) = resolve_write_request(source, bound, chunk, window)?;
        let old_dims = self.header.dims;
        if slab_dims.rank() != old_dims.rank() {
            return Err(ArchiveWriteError::Invalid(
                "appended slab must have the archive's rank",
            ));
        }
        let old_extents = old_dims.extents();
        let slab_extents = slab_dims.extents();
        if old_extents[1..] != slab_extents[1..] {
            return Err(ArchiveWriteError::Invalid(
                "appended slab must match the archive on every axis but the slowest",
            ));
        }
        if !old_extents[0].is_multiple_of(chunk) {
            return Err(ArchiveWriteError::Invalid(
                "archive is sealed: its slowest extent is not a multiple of the chunk edge, so \
                 the existing edge chunks would change shape",
            ));
        }
        let new_dims = grow_slowest(old_dims, slab_extents[0]);
        let old_count = self.entries.len();
        let new_header = ArchiveHeader {
            dims: new_dims,
            ..self.header
        };
        let added = new_header.chunk_count() - old_count;
        if self.header.index_slots() > 0 && added > self.spare_slots() {
            return Err(ArchiveWriteError::Invalid(
                "archive index capacity exhausted; rewrite with more reserved slots",
            ));
        }

        // New chunks land exactly at indices old_count.. in row-major grid
        // order (the slow axis is the outermost), so the slab's local grid
        // enumerates them 1:1. The codec factory sees the *global* spec —
        // grid position and origin in the grown field.
        self.file.seek(SeekFrom::Start(self.base + self.data_end))?;
        let mut offset = self.data_end;
        let entries = &mut self.entries;
        let file = &mut self.file;
        let (raw_bytes, peak_window_raw_bytes) = compress_chunk_frames(
            source,
            slab_dims,
            chunk_bound,
            chunk,
            window,
            codecs,
            embed_models.then_some(&mut self.models),
            &|local| BlockSpec::of(new_dims, chunk, old_count + local.index),
            &mut |_index, id, frame| {
                file.write_all(&frame)?;
                entries.push(ChunkEntry {
                    codec: id,
                    offset,
                    len: frame.len() as u64,
                });
                offset += frame.len() as u64;
                Ok(())
            },
        )?;
        let written = usize::try_from(offset - self.data_end).unwrap_or(usize::MAX);
        self.data_end = offset;
        self.header.dims = new_dims;
        debug_assert_eq!(self.header.chunk_count(), self.entries.len());

        Ok(ArchiveStats {
            chunks: added,
            raw_bytes,
            archive_bytes: written,
            peak_window_raw_bytes,
            model_bytes: 0,
        })
    }

    /// Write the model tail back, fill the index, patch the header, flush,
    /// and hand the file back. The archive is complete and readable after
    /// this (and only after this — a crash between appends leaves the old
    /// header in place, so the previously committed chunks stay readable
    /// while the appended frames are simply unreachable garbage past the
    /// stale model tail... which the tiling check then flags; treat an
    /// unfinalized append as lost).
    pub fn finalize(mut self) -> Result<F, ArchiveWriteError> {
        let model_section = encode_model_section(&self.models);
        self.header.model_len = model_section.len();
        self.file.seek(SeekFrom::Start(self.base + self.data_end))?;
        self.file.write_all(&model_section)?;

        if self.header.index_slots() > 0 {
            let mut index = Vec::with_capacity(self.header.index_len());
            for entry in &self.entries {
                write_chunk_entry(&mut index, entry);
            }
            index.resize(self.header.index_len(), 0);
            self.file.seek(SeekFrom::Start(
                self.base + self.header.encoded_len() as u64,
            ))?;
            self.file.write_all(&index)?;
        }

        let mut head = Vec::with_capacity(self.header.encoded_len());
        self.header.write(&mut head);
        self.file.seek(SeekFrom::Start(self.base))?;
        self.file.write_all(&head)?;
        self.file.seek(SeekFrom::Start(
            self.base + self.data_end + model_section.len() as u64,
        ))?;
        self.file.flush()?;
        Ok(self.file)
    }
}

/// `dims` with its slowest extent grown by `extra`.
#[expect(clippy::unreachable)]
fn grow_slowest(dims: Dims, extra: usize) -> Dims {
    let e = dims.extents();
    match *e.as_slice() {
        [n] => Dims::d1(n + extra),
        [ny, nx] => Dims::d2(ny + extra, nx),
        [nz, ny, nx] => Dims::d3(nz + extra, ny, nx),
        // lint:allow(R1): Dims::extents always yields 1..=3 entries by
        // construction; no wire input reaches this match
        _ => unreachable!("rank is always 1..=3"),
    }
}

/// Random-access view over a validated archive byte stream.
///
/// [`ArchiveReader::open`] parses and validates the header and the complete
/// chunk index before returning, so every accessor works on trusted
/// geometry; chunk payloads stay untouched (and untrusted) until decoded.
pub struct ArchiveReader<'a> {
    bytes: &'a [u8],
    header: ArchiveHeader,
    entries: Vec<ChunkEntry>,
    models: Vec<(ModelId, &'a [u8])>,
}

impl<'a> ArchiveReader<'a> {
    /// Parse and validate the header, chunk index and (v2) model section of
    /// `bytes`.
    pub fn open(bytes: &'a [u8]) -> Result<Self, DecompressError> {
        let header = ArchiveHeader::read(bytes)?;
        let entries = read_chunk_index(bytes, &header)?;
        let models = read_model_section(bytes, &header)?;
        Ok(ArchiveReader {
            bytes,
            header,
            entries,
            models,
        })
    }

    /// The archive's parsed header.
    pub fn header(&self) -> ArchiveHeader {
        self.header
    }

    /// Extents of the archived field.
    pub fn dims(&self) -> Dims {
        self.header.dims
    }

    /// Number of chunks in the archive.
    pub fn chunk_count(&self) -> usize {
        self.entries.len()
    }

    /// The validated chunk index.
    pub fn entries(&self) -> &[ChunkEntry] {
        &self.entries
    }

    /// The embedded models of a v2 archive: each referenced model's
    /// content-addressed id and its complete `AESM` frame (hash-verified at
    /// [`ArchiveReader::open`]). Empty for v1 archives.
    pub fn models(&self) -> &[(ModelId, &'a [u8])] {
        &self.models
    }

    /// The `AESM` frame of the embedded model with the given id, if any.
    pub fn model_frame(&self, id: ModelId) -> Option<&'a [u8]> {
        self.models
            .iter()
            .find(|&&(mid, _)| mid == id)
            .map(|&(_, frame)| frame)
    }

    /// Placement of chunk `index` in the field (`None` out of range).
    pub fn chunk_spec(&self, index: usize) -> Option<BlockSpec> {
        (index < self.entries.len())
            .then(|| BlockSpec::of(self.header.dims, self.header.chunk, index))
    }

    /// The raw `AESC` frame of chunk `index` (`None` out of range).
    pub fn chunk_frame(&self, index: usize) -> Option<&'a [u8]> {
        let entry = self.entries.get(index)?;
        let start = usize::try_from(entry.offset).ok()?;
        let end = usize::try_from(entry.offset.checked_add(entry.len)?).ok()?;
        self.bytes.get(start..end)
    }

    /// Decode a single chunk by index through `codec` — the random-access
    /// path; nothing outside the chunk's frame is read.
    ///
    /// The caller picks `codec` from the chunk's index entry
    /// ([`ArchiveReader::entries`]); a mismatched codec is rejected by the
    /// frame check, and a frame whose reconstruction does not match the
    /// chunk's grid cell is rejected here.
    pub fn decode_chunk(
        &self,
        index: usize,
        codec: &mut dyn Compressor,
    ) -> Result<Field, DecompressError> {
        let frame = self
            .chunk_frame(index)
            .ok_or(DecompressError::Inconsistent("chunk index out of range"))?;
        let spec = self
            .chunk_spec(index)
            .ok_or(DecompressError::Inconsistent("chunk index out of range"))?;
        let field = codec.decompress(frame)?;
        if field.dims() != chunk_dims(&spec) {
            return Err(DecompressError::Inconsistent(
                "chunk reconstruction disagrees with the archive grid",
            ));
        }
        Ok(field)
    }

    /// Decode every chunk into `sink` in rayon-parallel windows of `window`
    /// chunks, forking one compressor per in-flight chunk via `codecs`
    /// (called with each chunk's index and its index-entry codec id — the
    /// index is what lets a factory hand *different* trained models of the
    /// same codec to different chunks).
    ///
    /// Peak resident decoded payload is one window of chunks; the sink
    /// receives chunks in index order.
    pub fn decode_into(
        &self,
        window: usize,
        codecs: &mut dyn FnMut(usize, CodecId) -> DecoderFork,
        sink: &mut dyn ChunkSink,
    ) -> Result<(), ArchiveReadError> {
        struct Job<'b> {
            index: usize,
            spec: BlockSpec,
            frame: &'b [u8],
            codec: Box<dyn Compressor>,
            out: Option<Result<Field, DecompressError>>,
        }

        let window = window.max(1);
        let count = self.entries.len();
        let mut next = 0usize;
        while next < count {
            let batch = window.min(count - next);
            let mut jobs = Vec::with_capacity(batch);
            for index in next..next + batch {
                let out_of_range = || ArchiveReadError::Chunk {
                    chunk: index,
                    error: DecompressError::Inconsistent("chunk index out of range"),
                };
                let entry = self.entries.get(index).copied().ok_or_else(out_of_range)?;
                let codec =
                    codecs(index, entry.codec).map_err(|error| ArchiveReadError::Chunk {
                        chunk: index,
                        error,
                    })?;
                jobs.push(Job {
                    index,
                    spec: self.chunk_spec(index).ok_or_else(out_of_range)?,
                    frame: self.chunk_frame(index).ok_or_else(out_of_range)?,
                    codec,
                    out: None,
                });
            }
            run_jobs(&mut jobs, |job| {
                job.out = Some(job.codec.decompress(job.frame));
            });
            for job in jobs {
                #[expect(clippy::expect_used)]
                // lint:allow(R1): `run_jobs` invokes the closure on every
                // job in the window exactly once, so `out` is always set
                let out = job.out.expect("window ran");
                let field = out.map_err(|error| ArchiveReadError::Chunk {
                    chunk: job.index,
                    error,
                })?;
                if field.dims() != chunk_dims(&job.spec) {
                    return Err(ArchiveReadError::Chunk {
                        chunk: job.index,
                        error: DecompressError::Inconsistent(
                            "chunk reconstruction disagrees with the archive grid",
                        ),
                    });
                }
                sink.write_chunk(&job.spec, &field)?;
            }
            next += batch;
        }
        Ok(())
    }

    /// Decode the whole archive into an in-memory field (a [`FieldSink`]
    /// behind [`ArchiveReader::decode_into`]).
    pub fn decode_all(
        &self,
        window: usize,
        codecs: &mut dyn FnMut(usize, CodecId) -> DecoderFork,
    ) -> Result<Field, ArchiveReadError> {
        let mut sink = FieldSink::new(self.header.dims);
        self.decode_into(window, codecs, &mut sink)?;
        Ok(sink.into_field())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{self, FRAME_LEN};

    /// A stand-in codec storing raw little-endian bytes behind a tiny
    /// dims header (borrowing the ZFP id purely for framing).
    #[derive(Clone)]
    struct Raw;

    impl Compressor for Raw {
        fn codec_id(&self) -> CodecId {
            CodecId::Zfp
        }
        fn fork(&self) -> Box<dyn Compressor> {
            Box::new(self.clone())
        }
        fn compress_payload(
            &mut self,
            field: &Field,
            _bound: ErrorBound,
        ) -> Result<Vec<u8>, CompressError> {
            let mut out = Vec::new();
            let e = field.dims().extents();
            out.push(e.len() as u8);
            for &d in &e {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            out.extend_from_slice(&field.to_le_bytes());
            Ok(out)
        }
        fn decompress_payload(&mut self, bytes: &[u8]) -> Result<Field, DecompressError> {
            let rank = *bytes.first().ok_or(DecompressError::Truncated("rank"))? as usize;
            if !(1..=3).contains(&rank) {
                return Err(DecompressError::InvalidHeader("rank"));
            }
            let mut ext = Vec::new();
            let mut pos = 1;
            for _ in 0..rank {
                let mut b = [0u8; 8];
                b.copy_from_slice(
                    bytes
                        .get(pos..pos + 8)
                        .ok_or(DecompressError::Truncated("extent"))?,
                );
                ext.push(u64::from_le_bytes(b) as usize);
                pos += 8;
            }
            let dims = match rank {
                1 => Dims::d1(ext[0]),
                2 => Dims::d2(ext[0], ext[1]),
                _ => Dims::d3(ext[0], ext[1], ext[2]),
            };
            Field::from_le_bytes(dims, &bytes[pos..])
                .map_err(|_| DecompressError::Inconsistent("payload/dims mismatch"))
        }
    }

    fn raw_codec() -> impl FnMut(&BlockSpec) -> Result<Box<dyn Compressor>, CompressError> + 'static
    {
        |_spec: &BlockSpec| Ok(Box::new(Raw) as Box<dyn Compressor>)
    }

    fn raw_decoder(
    ) -> impl FnMut(usize, CodecId) -> Result<Box<dyn Compressor>, DecompressError> + 'static {
        |_index: usize, _id: CodecId| Ok(Box::new(Raw) as Box<dyn Compressor>)
    }

    fn ramp(dims: Dims) -> Field {
        let mut k = 0.0f32;
        Field::from_fn(dims, |_| {
            k += 1.0;
            k
        })
    }

    #[test]
    fn archive_roundtrips_losslessly_with_the_raw_codec() {
        for (dims, chunk, window) in [
            (Dims::d1(37), 8, 3),
            (Dims::d2(21, 13), 8, 1),
            (Dims::d2(16, 16), 16, 4),
            (Dims::d3(5, 7, 9), 4, 5),
        ] {
            let field = ramp(dims);
            let opts = ArchiveOptions::new().chunk(chunk).window(window);
            let (bytes, stats) =
                write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec())
                    .expect("write");
            assert_eq!(stats.raw_bytes, field.len() * 4);
            assert_eq!(stats.archive_bytes, bytes.len());
            assert!(stats.peak_window_raw_bytes <= stats.raw_bytes);
            let reader = ArchiveReader::open(&bytes).expect("open");
            assert_eq!(reader.dims(), dims);
            assert_eq!(reader.chunk_count(), stats.chunks);
            let recon = reader.decode_all(window, &mut raw_decoder()).expect("read");
            assert_eq!(recon.as_slice(), field.as_slice());
        }
    }

    #[test]
    fn random_access_matches_the_full_decode() {
        let field = ramp(Dims::d2(30, 22));
        let opts = ArchiveOptions::new().chunk(8).window(2);
        let (bytes, _) =
            write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        let reader = ArchiveReader::open(&bytes).unwrap();
        let full = reader.decode_all(4, &mut raw_decoder()).unwrap();
        for i in 0..reader.chunk_count() {
            let spec = reader.chunk_spec(i).unwrap();
            let mut codec = Raw;
            let chunk = reader.decode_chunk(i, &mut codec).unwrap();
            assert_eq!(chunk.as_slice(), full.read_block_valid(&spec).as_slice());
        }
        assert!(reader.chunk_spec(reader.chunk_count()).is_none());
        assert!(reader.chunk_frame(reader.chunk_count()).is_none());
    }

    #[test]
    fn archives_can_be_embedded_at_a_nonzero_stream_position() {
        let field = ramp(Dims::d2(10, 11));
        let opts = ArchiveOptions::new().chunk(4).window(2);
        let prefix = b"sixteen byte hdr".to_vec();
        let mut cursor = Cursor::new(prefix.clone());
        cursor.set_position(prefix.len() as u64);
        let stats = write_archive(
            &mut FieldSource(&field),
            ErrorBound::abs(1.0),
            &opts,
            &mut raw_codec(),
            &mut cursor,
        )
        .expect("embedded write");
        // The sink is left just past the archive, the prefix is untouched,
        // and the archive decodes from its own start.
        assert_eq!(
            cursor.stream_position().unwrap(),
            (prefix.len() + stats.archive_bytes) as u64
        );
        let bytes = cursor.into_inner();
        assert_eq!(&bytes[..prefix.len()], prefix.as_slice());
        let reader = ArchiveReader::open(&bytes[prefix.len()..]).expect("open embedded");
        let recon = reader.decode_all(2, &mut raw_decoder()).expect("decode");
        assert_eq!(recon.as_slice(), field.as_slice());
        // Byte-identical to the same archive written at position 0.
        let (plain, _) =
            write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        assert_eq!(&bytes[prefix.len()..], plain.as_slice());
    }

    #[test]
    fn writer_rejects_unusable_requests() {
        let field = ramp(Dims::d1(8));
        let ok = ArchiveOptions::new().chunk(4).window(1);
        assert!(matches!(
            write_field_archive(&field, ErrorBound::abs(1.0), &ok.chunk(0), &mut raw_codec()),
            Err(ArchiveWriteError::Invalid(_))
        ));
        assert!(matches!(
            write_field_archive(
                &field,
                ErrorBound::abs(1.0),
                &ok.window(0),
                &mut raw_codec()
            ),
            Err(ArchiveWriteError::Invalid(_))
        ));
        assert!(matches!(
            write_field_archive(&field, ErrorBound::rel(0.0), &ok, &mut raw_codec()),
            Err(ArchiveWriteError::Invalid(_))
        ));
        let empty = Field::zeros(Dims::d1(0));
        assert!(matches!(
            write_field_archive(&empty, ErrorBound::abs(1.0), &ok, &mut raw_codec()),
            Err(ArchiveWriteError::Invalid(_))
        ));
    }

    #[test]
    fn every_truncation_of_an_archive_is_rejected() {
        let field = ramp(Dims::d2(9, 9));
        let opts = ArchiveOptions::new().chunk(4).window(2);
        let (bytes, _) =
            write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        for len in 0..bytes.len() {
            assert!(
                ArchiveReader::open(&bytes[..len]).is_err(),
                "truncated archive of {len}/{} bytes opened",
                bytes.len()
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(ArchiveReader::open(&padded).is_err());
    }

    #[test]
    fn header_errors_are_reported_before_chunk_payloads() {
        let field = ramp(Dims::d1(10));
        let opts = ArchiveOptions::new().chunk(4).window(1);
        let (bytes, _) =
            write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        // Codec byte of the first index entry → unknown id.
        let header = ArchiveHeader::read(&bytes).unwrap();
        let mut evil = bytes.clone();
        evil[header.encoded_len()] = 200;
        assert!(matches!(
            ArchiveReader::open(&evil),
            Err(DecompressError::UnknownCodec(200))
        ));
        // First entry offset off by one → tiling violation.
        let mut evil = bytes.clone();
        evil[header.encoded_len() + 1] ^= 1;
        assert!(ArchiveReader::open(&evil).is_err());
        // Stored chunk count off by one → inconsistency.
        let mut evil = bytes.clone();
        let count_at = header.encoded_len() - 8;
        evil[count_at] = evil[count_at].wrapping_add(1);
        assert!(ArchiveReader::open(&evil).is_err());
    }

    /// A [`Raw`] with a fake trained model, for the embedding path.
    #[derive(Clone)]
    struct RawWithModel(Vec<u8>);

    impl Compressor for RawWithModel {
        fn codec_id(&self) -> CodecId {
            CodecId::Zfp
        }
        fn fork(&self) -> Box<dyn Compressor> {
            Box::new(self.clone())
        }
        fn embedded_model(&self) -> Option<EmbeddedModel> {
            Some(EmbeddedModel::new(CodecId::Zfp, &self.0))
        }
        fn compress_payload(
            &mut self,
            field: &Field,
            bound: ErrorBound,
        ) -> Result<Vec<u8>, CompressError> {
            Raw.compress_payload(field, bound)
        }
        fn decompress_payload(&mut self, bytes: &[u8]) -> Result<Field, DecompressError> {
            Raw.decompress_payload(bytes)
        }
    }

    #[test]
    fn embedding_writer_ships_each_model_once_and_readers_verify_it() {
        let field = ramp(Dims::d2(12, 10));
        let opts = ArchiveOptions::new().chunk(4).window(2);
        let weights = b"pretend weights".to_vec();
        let expected = EmbeddedModel::new(CodecId::Zfp, &weights);
        let mut codecs = move |_spec: &BlockSpec| {
            Ok(Box::new(RawWithModel(weights.clone())) as Box<dyn Compressor>)
        };
        let (bytes, stats) =
            write_field_archive_embedding(&field, ErrorBound::abs(1.0), &opts, &mut codecs)
                .expect("embedding write");
        assert_eq!(stats.archive_bytes, bytes.len());
        assert!(stats.model_bytes > 0);

        let reader = ArchiveReader::open(&bytes).expect("open v2");
        assert_eq!(reader.header().version, ARCHIVE_VERSION_MODELS);
        // Nine chunks forked nine codecs, but the model is embedded once.
        assert_eq!(reader.models().len(), 1);
        assert_eq!(reader.models()[0].0, expected.id);
        assert_eq!(
            reader.model_frame(expected.id),
            Some(expected.frame.as_slice())
        );
        assert_eq!(reader.model_frame(ModelId::of(b"other")), None);
        let recon = reader.decode_all(2, &mut raw_decoder()).expect("decode");
        assert_eq!(recon.as_slice(), field.as_slice());

        // Every truncation of the v2 archive is rejected, and a flipped bit
        // in the embedded model fails the hash check at open.
        for len in 0..bytes.len() {
            assert!(ArchiveReader::open(&bytes[..len]).is_err());
        }
        let mut evil = bytes.clone();
        let last = evil.len() - 1;
        evil[last] ^= 1;
        assert!(ArchiveReader::open(&evil).is_err());
    }

    #[test]
    fn embedding_model_free_codecs_yields_an_empty_v2_section() {
        let field = ramp(Dims::d1(10));
        let opts = ArchiveOptions::new().chunk(4).window(2);
        let (v2, stats) =
            write_field_archive_embedding(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec())
                .unwrap();
        assert_eq!(stats.model_bytes, 0);
        let reader = ArchiveReader::open(&v2).unwrap();
        assert_eq!(reader.header().version, ARCHIVE_VERSION_MODELS);
        assert!(reader.models().is_empty());
        // The v1 writer is untouched by the feature: same field, same codec,
        // version byte 1 and no model-length slot.
        let (v1, s1) =
            write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        assert_eq!(
            ArchiveReader::open(&v1).unwrap().header().version,
            ARCHIVE_VERSION
        );
        assert_eq!(s1.model_bytes, 0);
        assert_eq!(v1.len() + 8, v2.len());
    }

    #[test]
    fn frames_inside_an_archive_are_plain_container_frames() {
        let field = ramp(Dims::d1(12));
        let opts = ArchiveOptions::new().chunk(4).window(2);
        let (bytes, _) =
            write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        let reader = ArchiveReader::open(&bytes).unwrap();
        for i in 0..reader.chunk_count() {
            let frame = reader.chunk_frame(i).unwrap();
            assert!(frame.len() >= FRAME_LEN);
            assert_eq!(container::peek(frame).unwrap().codec, CodecId::Zfp);
            let (codec, _) = container::read_frame(frame).unwrap();
            assert_eq!(codec, reader.entries()[i].codec);
        }
    }

    #[test]
    fn reserved_archives_are_v3_and_still_random_accessible() {
        let field = ramp(Dims::d2(8, 6));
        let opts = ArchiveOptions::new().chunk(4).window(2).reserve(5);
        let (bytes, stats) =
            write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        let reader = ArchiveReader::open(&bytes).expect("open v3");
        assert_eq!(reader.header().version, ARCHIVE_VERSION_APPEND);
        assert_eq!(reader.header().index_cap, stats.chunks + 5);
        let recon = reader.decode_all(2, &mut raw_decoder()).unwrap();
        assert_eq!(recon.as_slice(), field.as_slice());
        // The reserved slots cost exactly 5 spare index entries plus the
        // index-capacity header slot, relative to the v1 layout.
        let v1 = ArchiveOptions::new().chunk(4).window(2);
        let (plain, _) =
            write_field_archive(&field, ErrorBound::abs(1.0), &v1, &mut raw_codec()).unwrap();
        assert_eq!(bytes.len(), plain.len() + 8 + 8 + 5 * CHUNK_ENTRY_LEN);
        // A flipped byte inside a reserved slot is caught at open.
        let mut evil = bytes.clone();
        evil[reader.header().encoded_len() + stats.chunks * CHUNK_ENTRY_LEN] = 1;
        assert!(matches!(
            ArchiveReader::open(&evil),
            Err(DecompressError::BadChunkIndex { .. })
        ));
    }

    #[test]
    fn stream_written_archives_reload_with_random_access() {
        let field = ramp(Dims::d2(9, 7));
        let opts = ArchiveOptions::new().chunk(4).window(2);
        let mut piped = Vec::new();
        let stats = write_archive_stream(
            &mut FieldSource(&field),
            ErrorBound::abs(1.0),
            &opts,
            &mut raw_codec(),
            &mut piped,
        )
        .expect("stream write");
        assert_eq!(stats.archive_bytes, piped.len());
        let reader = ArchiveReader::open(&piped).expect("open inline");
        assert_eq!(reader.header().version, ARCHIVE_VERSION_APPEND);
        assert_eq!(reader.header().index_cap, 0);
        assert_eq!(reader.chunk_count(), stats.chunks);
        let full = reader.decode_all(3, &mut raw_decoder()).unwrap();
        assert_eq!(full.as_slice(), field.as_slice());
        for i in 0..reader.chunk_count() {
            let spec = reader.chunk_spec(i).unwrap();
            let chunk = reader.decode_chunk(i, &mut Raw).unwrap();
            assert_eq!(chunk.as_slice(), full.read_block_valid(&spec).as_slice());
        }
        // Truncations and trailing garbage are rejected like any archive.
        for len in 0..piped.len() {
            assert!(ArchiveReader::open(&piped[..len]).is_err());
        }
        let mut padded = piped.clone();
        padded.push(0);
        assert!(ArchiveReader::open(&padded).is_err());
    }

    /// `full` split along its slowest axis at `at`: (head field, tail field).
    #[allow(clippy::unreachable)] // no allow-unreachable-in-tests config key
    fn split_slow(full: &Field, at: usize) -> (Field, Field) {
        let e = full.dims().extents();
        let row: usize = e[1..].iter().product();
        let (head_dims, tail_dims) = match *e.as_slice() {
            [n] => (Dims::d1(at), Dims::d1(n - at)),
            [ny, nx] => (Dims::d2(at, nx), Dims::d2(ny - at, nx)),
            [nz, ny, nx] => (Dims::d3(at, ny, nx), Dims::d3(nz - at, ny, nx)),
            _ => unreachable!(),
        };
        let head = Field::from_vec(head_dims, full.as_slice()[..at * row].to_vec()).unwrap();
        let tail = Field::from_vec(tail_dims, full.as_slice()[at * row..].to_vec()).unwrap();
        (head, tail)
    }

    #[test]
    fn appended_archives_decode_as_if_written_in_one_pass() {
        // The oracle: the concatenated field, written conventionally.
        let full = ramp(Dims::d2(12, 6));
        let (head, tail) = split_slow(&full, 8);
        let opts = ArchiveOptions::new().chunk(4).window(2).reserve(8);
        let (base, base_stats) =
            write_field_archive(&head, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();

        let mut app = ArchiveAppender::open(Cursor::new(base.clone())).expect("open appender");
        assert_eq!(app.header().dims, head.dims());
        assert_eq!(app.spare_slots(), 8);
        let stats = app
            .append(
                &mut FieldSource(&tail),
                ErrorBound::abs(1.0),
                2,
                &mut raw_codec(),
            )
            .expect("append");
        // The 4×6 slab tiles into 1×2 chunks of edge 4.
        assert_eq!(stats.chunks, 2);
        assert_eq!(app.spare_slots(), 8 - 2);
        let bytes = app.finalize().expect("finalize").into_inner();

        // Existing payload bytes were not rewritten: the whole data section
        // of the base archive reappears verbatim.
        let base_header = ArchiveHeader::read(&base).unwrap();
        let data = base_header.data_start();
        let base_data_end = base.len() - base_header.model_len;
        assert_eq!(&bytes[data..base_data_end], &base[data..base_data_end]);

        let reader = ArchiveReader::open(&bytes).expect("reopen");
        assert_eq!(reader.dims(), full.dims());
        assert_eq!(reader.chunk_count(), base_stats.chunks + stats.chunks);
        let recon = reader.decode_all(3, &mut raw_decoder()).unwrap();
        assert_eq!(recon.as_slice(), full.as_slice());
        for i in 0..reader.chunk_count() {
            let spec = reader.chunk_spec(i).unwrap();
            let chunk = reader.decode_chunk(i, &mut Raw).unwrap();
            assert_eq!(chunk.as_slice(), recon.read_block_valid(&spec).as_slice());
        }

        // A second append drains the remaining capacity; a third is refused.
        let mut app = ArchiveAppender::open(Cursor::new(bytes)).unwrap();
        let more = ramp(Dims::d2(8, 6));
        app.append(
            &mut FieldSource(&more),
            ErrorBound::abs(1.0),
            2,
            &mut raw_codec(),
        )
        .expect("second append");
        assert_eq!(app.spare_slots(), 2);
        assert!(matches!(
            app.append(
                &mut FieldSource(&more),
                ErrorBound::abs(1.0),
                2,
                &mut raw_codec(),
            ),
            Err(ArchiveWriteError::Invalid(reason)) if reason.contains("capacity")
        ));
        let bytes = app.finalize().unwrap().into_inner();
        assert_eq!(ArchiveReader::open(&bytes).unwrap().dims(), Dims::d2(20, 6));
    }

    #[test]
    fn inline_archives_append_without_an_index() {
        let full = ramp(Dims::d2(12, 6));
        let (head, tail) = split_slow(&full, 8);
        let opts = ArchiveOptions::new().chunk(4).window(2);
        let mut piped = Vec::new();
        write_archive_stream(
            &mut FieldSource(&head),
            ErrorBound::abs(1.0),
            &opts,
            &mut raw_codec(),
            &mut piped,
        )
        .unwrap();
        let mut app = ArchiveAppender::open(Cursor::new(piped)).expect("open inline");
        assert_eq!(app.spare_slots(), usize::MAX);
        app.append(
            &mut FieldSource(&tail),
            ErrorBound::abs(1.0),
            2,
            &mut raw_codec(),
        )
        .expect("append to inline");
        let bytes = app.finalize().unwrap().into_inner();
        let reader = ArchiveReader::open(&bytes).unwrap();
        assert_eq!(reader.dims(), full.dims());
        let recon = reader.decode_all(2, &mut raw_decoder()).unwrap();
        assert_eq!(recon.as_slice(), full.as_slice());
    }

    #[test]
    fn appends_can_be_embedded_at_a_nonzero_stream_position() {
        let full = ramp(Dims::d1(16));
        let (head, tail) = split_slow(&full, 8);
        let opts = ArchiveOptions::new().chunk(4).window(1).reserve(4);
        let (base, _) =
            write_field_archive(&head, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        let prefix = b"sixteen byte hdr".to_vec();
        let mut cursor = Cursor::new([prefix.clone(), base].concat());
        cursor.set_position(prefix.len() as u64);
        let mut app = ArchiveAppender::open(cursor).expect("open embedded");
        app.append(
            &mut FieldSource(&tail),
            ErrorBound::abs(1.0),
            1,
            &mut raw_codec(),
        )
        .unwrap();
        let bytes = app.finalize().unwrap().into_inner();
        assert_eq!(&bytes[..prefix.len()], prefix.as_slice());
        let reader = ArchiveReader::open(&bytes[prefix.len()..]).unwrap();
        let recon = reader.decode_all(2, &mut raw_decoder()).unwrap();
        assert_eq!(recon.as_slice(), full.as_slice());
    }

    #[test]
    fn appender_preserves_and_extends_the_model_tail() {
        let full = ramp(Dims::d2(12, 6));
        let (head, tail) = split_slow(&full, 8);
        let opts = ArchiveOptions::new().chunk(4).window(2).reserve(8);
        let weights_a = b"weights alpha".to_vec();
        let weights_b = b"weights beta".to_vec();
        let mut codecs_a = {
            let w = weights_a.clone();
            move |_spec: &BlockSpec| Ok(Box::new(RawWithModel(w.clone())) as Box<dyn Compressor>)
        };
        let (base, _) = {
            let mut sink = Cursor::new(Vec::new());
            write_archive_impl(
                &mut FieldSource(&head),
                ErrorBound::abs(1.0),
                &opts,
                &mut codecs_a,
                true,
                &mut sink,
            )
            .unwrap();
            (sink.into_inner(), ())
        };
        // reserve>0 forces v3; the embedded tail rides along.
        assert_eq!(ArchiveHeader::read(&base).unwrap().version, 3);
        assert_eq!(ArchiveReader::open(&base).unwrap().models().len(), 1);

        let mut app = ArchiveAppender::open(Cursor::new(base)).unwrap();
        // Appending with one already-embedded model and one new model must
        // keep the old record and add exactly one.
        let mut codecs_ab = {
            let (a, b) = (weights_a.clone(), weights_b.clone());
            let mut flip = false;
            move |_spec: &BlockSpec| {
                flip = !flip;
                let w = if flip { a.clone() } else { b.clone() };
                Ok(Box::new(RawWithModel(w)) as Box<dyn Compressor>)
            }
        };
        app.append_embedding(
            &mut FieldSource(&tail),
            ErrorBound::abs(1.0),
            2,
            &mut codecs_ab,
        )
        .unwrap();
        let bytes = app.finalize().unwrap().into_inner();
        let reader = ArchiveReader::open(&bytes).unwrap();
        let ids: Vec<ModelId> = reader.models().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&ModelId::of(&weights_a)));
        assert!(ids.contains(&ModelId::of(&weights_b)));
        let recon = reader.decode_all(2, &mut raw_decoder()).unwrap();
        assert_eq!(recon.as_slice(), full.as_slice());
    }

    #[test]
    fn appender_rejects_what_it_cannot_honour() {
        // v1 archives are not appendable.
        let field = ramp(Dims::d2(8, 6));
        let v1_opts = ArchiveOptions::new().chunk(4).window(2);
        let (v1, _) =
            write_field_archive(&field, ErrorBound::abs(1.0), &v1_opts, &mut raw_codec()).unwrap();
        assert!(matches!(
            ArchiveAppender::open(Cursor::new(v1)),
            Err(ArchiveReadError::Archive(DecompressError::Unsupported(_)))
        ));

        let slab = ramp(Dims::d2(4, 6));
        let opts = ArchiveOptions::new().chunk(4).window(2).reserve(8);
        let (base, _) =
            write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();

        // Relative bounds would need the whole-field range — refused.
        let mut app = ArchiveAppender::open(Cursor::new(base.clone())).unwrap();
        assert!(matches!(
            app.append(
                &mut FieldSource(&slab),
                ErrorBound::rel(1e-3),
                2,
                &mut raw_codec()
            ),
            Err(ArchiveWriteError::Invalid(reason)) if reason.contains("absolute")
        ));
        // Fast axes must match.
        let skewed = ramp(Dims::d2(4, 7));
        assert!(matches!(
            app.append(
                &mut FieldSource(&skewed),
                ErrorBound::abs(1.0),
                2,
                &mut raw_codec()
            ),
            Err(ArchiveWriteError::Invalid(reason)) if reason.contains("axis")
        ));
        // So must the rank.
        let flat = ramp(Dims::d1(6));
        assert!(matches!(
            app.append(
                &mut FieldSource(&flat),
                ErrorBound::abs(1.0),
                2,
                &mut raw_codec()
            ),
            Err(ArchiveWriteError::Invalid(reason)) if reason.contains("rank")
        ));

        // A slow extent that is not chunk-aligned seals the archive: its
        // edge chunks would change shape if the axis grew.
        let ragged = ramp(Dims::d2(10, 6));
        let (sealed, _) =
            write_field_archive(&ragged, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        let mut app = ArchiveAppender::open(Cursor::new(sealed)).unwrap();
        assert!(matches!(
            app.append(
                &mut FieldSource(&slab),
                ErrorBound::abs(1.0),
                2,
                &mut raw_codec()
            ),
            Err(ArchiveWriteError::Invalid(reason)) if reason.contains("sealed")
        ));
    }
}
