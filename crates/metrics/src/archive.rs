//! The streaming archive layer: bounded-memory, chunked, parallel
//! compression of fields larger than RAM.
//!
//! A whole-field [`Compressor`] stream (one `AESC` frame) forces both sides
//! to materialize the entire dataset. The archive format
//! (magic `AESA`, laid out in [`crate::container`]) instead splits the field
//! into a grid of chunks, compresses every chunk into its own complete
//! `AESC` frame — possibly through a *different* codec per chunk — and keeps
//! a codec-id + offset index up front, so:
//!
//! * **bounded memory** — [`write_archive`] pulls chunks from a
//!   [`ChunkSource`] and [`ArchiveReader::decode_into`] pushes them into a
//!   [`ChunkSink`] in windows of [`ArchiveOptions::window`] chunks; the peak
//!   resident raw payload is one window, never the whole field (the
//!   compressed archive itself is buffered only on the reader side, where it
//!   arrives as the input);
//! * **parallelism** — the chunks of a window are compressed/decompressed
//!   concurrently, each on its own [`Compressor::fork`]ed instance, so no
//!   `&mut` compressor is ever shared across threads;
//! * **random access** — [`ArchiveReader::decode_chunk`] decodes one chunk
//!   by index straight from its frame without touching the rest of the
//!   archive.
//!
//! Value-range-relative bounds are resolved against the *whole field's*
//! range (one streaming `min_max` pass over the source) and then applied to
//! every chunk as an absolute bound, so the archive honours exactly the
//! bound a whole-field compression would have.

use std::io::{Cursor, Seek, SeekFrom, Write};

use rayon::prelude::*;

use crate::bound::ErrorBound;
use crate::compressor::Compressor;
use crate::container::{
    read_chunk_index, read_model_section, write_chunk_entry, ArchiveHeader, ChunkEntry, CodecId,
    EmbeddedModel, ModelId, ARCHIVE_VERSION, ARCHIVE_VERSION_MODELS,
};
use crate::error::{CompressError, DecompressError};
use aesz_tensor::{BlockSpec, Dims, Field};

/// Chunking and batching knobs of the archive writer/reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveOptions {
    /// Nominal chunk edge length (need not divide the extents; edge chunks
    /// are smaller).
    pub chunk: usize,
    /// Number of chunks processed concurrently per batch — the bound on
    /// resident raw payload and on parallelism.
    pub window: usize,
}

impl Default for ArchiveOptions {
    fn default() -> Self {
        ArchiveOptions {
            chunk: 64,
            window: 8,
        }
    }
}

/// The dims of the small [`Field`] holding one chunk's values (same rank as
/// the parent field, extents = the chunk's valid size).
pub fn chunk_dims(spec: &BlockSpec) -> Dims {
    match *spec.size.as_slice() {
        [n] => Dims::d1(n),
        [ny, nx] => Dims::d2(ny, nx),
        [nz, ny, nx] => Dims::d3(nz, ny, nx),
        _ => unreachable!("BlockSpec rank is always 1..=3"),
    }
}

/// Where the writer pulls raw chunk data from — an in-memory field
/// ([`FieldSource`]) or something out-of-core like a raw `f32` file read
/// with seeks (the `aesz` CLI), so the whole dataset never has to be
/// resident.
pub trait ChunkSource {
    /// Extents of the field being archived.
    fn dims(&self) -> Dims;

    /// Global min/max of the field (one streaming pass is fine). Only called
    /// when a value-range-relative bound needs resolving.
    fn min_max(&mut self) -> std::io::Result<(f32, f32)>;

    /// Read the chunk covering `spec` as a small field of dims
    /// [`chunk_dims`]`(spec)` (row-major over `spec.size`, no padding).
    fn read_chunk(&mut self, spec: &BlockSpec) -> std::io::Result<Field>;
}

/// Where the reader pushes decoded chunks — an in-memory field
/// ([`FieldSink`]) or an out-of-core target written with seeks.
pub trait ChunkSink {
    /// Store the decoded chunk covering `spec` (dims [`chunk_dims`]`(spec)`).
    fn write_chunk(&mut self, spec: &BlockSpec, chunk: &Field) -> std::io::Result<()>;
}

/// [`ChunkSource`] over a borrowed in-memory field.
pub struct FieldSource<'a>(pub &'a Field);

impl ChunkSource for FieldSource<'_> {
    fn dims(&self) -> Dims {
        self.0.dims()
    }

    fn min_max(&mut self) -> std::io::Result<(f32, f32)> {
        Ok(self.0.min_max())
    }

    fn read_chunk(&mut self, spec: &BlockSpec) -> std::io::Result<Field> {
        let values = self.0.read_block_valid(spec);
        Ok(Field::from_vec(chunk_dims(spec), values).expect("spec sizes match value count"))
    }
}

/// [`ChunkSink`] assembling decoded chunks into an in-memory field.
pub struct FieldSink(Field);

impl FieldSink {
    /// A zero-initialised sink for a field with the given extents.
    pub fn new(dims: Dims) -> Self {
        FieldSink(Field::zeros(dims))
    }

    /// The assembled field.
    pub fn into_field(self) -> Field {
        self.0
    }
}

impl ChunkSink for FieldSink {
    fn write_chunk(&mut self, spec: &BlockSpec, chunk: &Field) -> std::io::Result<()> {
        self.0.write_block_valid(spec, chunk.as_slice());
        Ok(())
    }
}

/// Why an archive could not be written.
#[derive(Debug)]
pub enum ArchiveWriteError {
    /// The options, bound or source geometry are unusable.
    Invalid(&'static str),
    /// Compressing one chunk failed.
    Compress {
        /// Index of the failing chunk in the chunk grid.
        chunk: usize,
        /// The codec's error.
        error: CompressError,
    },
    /// The sink or the chunk source failed.
    Io(std::io::Error),
}

impl From<std::io::Error> for ArchiveWriteError {
    fn from(e: std::io::Error) -> Self {
        ArchiveWriteError::Io(e)
    }
}

impl std::fmt::Display for ArchiveWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveWriteError::Invalid(what) => write!(f, "invalid archive request: {what}"),
            ArchiveWriteError::Compress { chunk, error } => {
                write!(f, "compressing chunk {chunk} failed: {error}")
            }
            ArchiveWriteError::Io(e) => write!(f, "archive I/O failed: {e}"),
        }
    }
}

impl std::error::Error for ArchiveWriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveWriteError::Compress { error, .. } => Some(error),
            ArchiveWriteError::Io(e) => Some(e),
            ArchiveWriteError::Invalid(_) => None,
        }
    }
}

/// Why an archive could not be read back.
#[derive(Debug)]
pub enum ArchiveReadError {
    /// The archive header or chunk index is malformed (reported before any
    /// chunk payload is touched).
    Archive(DecompressError),
    /// Decoding one chunk frame failed.
    Chunk {
        /// Index of the failing chunk in the chunk grid.
        chunk: usize,
        /// The codec's error.
        error: DecompressError,
    },
    /// The chunk sink failed.
    Io(std::io::Error),
}

impl From<DecompressError> for ArchiveReadError {
    fn from(e: DecompressError) -> Self {
        ArchiveReadError::Archive(e)
    }
}

impl From<std::io::Error> for ArchiveReadError {
    fn from(e: std::io::Error) -> Self {
        ArchiveReadError::Io(e)
    }
}

impl std::fmt::Display for ArchiveReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveReadError::Archive(e) => write!(f, "malformed archive: {e}"),
            ArchiveReadError::Chunk { chunk, error } => {
                write!(f, "decoding chunk {chunk} failed: {error}")
            }
            ArchiveReadError::Io(e) => write!(f, "archive I/O failed: {e}"),
        }
    }
}

impl std::error::Error for ArchiveReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveReadError::Archive(e) => Some(e),
            ArchiveReadError::Chunk { error, .. } => Some(error),
            ArchiveReadError::Io(e) => Some(e),
        }
    }
}

/// What [`write_archive`] measured while streaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Number of chunks written.
    pub chunks: usize,
    /// Raw payload size (field elements × 4 bytes).
    pub raw_bytes: usize,
    /// Total archive size, header and index included.
    pub archive_bytes: usize,
    /// Largest raw payload resident at once — the bounded-memory witness:
    /// with `window × chunkᵣᵃⁿᵏ` elements per batch this stays far below
    /// `raw_bytes` for any multi-window archive.
    pub peak_window_raw_bytes: usize,
    /// Bytes of the embedded model section (0 unless written through
    /// [`write_archive_embedding`] with learned codecs that expose a model).
    pub model_bytes: usize,
}

/// What the writer's per-chunk codec factory returns: a dedicated
/// (forked) compressor for one chunk, or the reason it could not be made.
pub type CompressorFork = Result<Box<dyn Compressor>, CompressError>;

/// What the reader's per-chunk decoder factory returns.
pub type DecoderFork = Result<Box<dyn Compressor>, DecompressError>;

/// Run every job of a window, each on its own thread-confined `&mut` state.
///
/// Chunk size 1 is deliberate: the vendored rayon shim only implements the
/// `par_chunks_mut` shape (no `par_iter_mut`), and one-job chunks give it
/// exactly per-job granularity — the inner loop runs once per job.
fn run_jobs<J: Send>(jobs: &mut [J], run: impl Fn(&mut J) + Sync) {
    jobs.par_chunks_mut(1).for_each(|one| {
        for job in one {
            run(job);
        }
    });
}

/// Compress a field pulled from `source` into the multi-chunk archive
/// format, streaming chunk frames into `sink`.
///
/// `codecs` is called once per chunk (in index order) and must hand back a
/// *dedicated* compressor instance — typically [`Compressor::fork`] of a
/// registered codec; different chunks may use different codecs. Chunks are
/// compressed in rayon-parallel windows of [`ArchiveOptions::window`]; only
/// one window of raw chunk data is resident at a time. The sink must
/// support seeking because the chunk index, whose entries are only known
/// after compression, is back-patched into its reserved slot at the end.
/// The archive starts at the sink's *current* position (it may be embedded
/// in a larger stream); index offsets are archive-relative, and the sink is
/// left positioned just past the archive's last byte.
pub fn write_archive<W: Write + Seek>(
    source: &mut dyn ChunkSource,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
    sink: &mut W,
) -> Result<ArchiveStats, ArchiveWriteError> {
    write_archive_impl(source, bound, opts, codecs, false, sink)
}

/// [`write_archive`], but as a version-2 archive that **embeds the trained
/// models** of the codecs used: every forked codec is asked for its
/// [`Compressor::embedded_model`], and each distinct model (by [`ModelId`]) is
/// appended once to the archive's model section, so a reader that never saw
/// the trainer can resolve the learned chunks from the archive bytes alone.
///
/// Model-free codecs contribute nothing; an archive written purely with
/// traditional codecs gets an empty model section (still version 2).
pub fn write_archive_embedding<W: Write + Seek>(
    source: &mut dyn ChunkSource,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
    sink: &mut W,
) -> Result<ArchiveStats, ArchiveWriteError> {
    write_archive_impl(source, bound, opts, codecs, true, sink)
}

fn write_archive_impl<W: Write + Seek>(
    source: &mut dyn ChunkSource,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
    embed_models: bool,
    sink: &mut W,
) -> Result<ArchiveStats, ArchiveWriteError> {
    if opts.chunk == 0 {
        return Err(ArchiveWriteError::Invalid("chunk edge must be at least 1"));
    }
    if opts.window == 0 {
        return Err(ArchiveWriteError::Invalid("window must be at least 1"));
    }
    if bound.validate().is_err() {
        return Err(ArchiveWriteError::Invalid(
            "error bound must be finite and strictly positive",
        ));
    }
    let dims = source.dims();
    if dims.is_empty() {
        return Err(ArchiveWriteError::Invalid("field has no elements"));
    }

    // Resolve a range-relative bound against the whole field once, so every
    // chunk honours the field-level bound (a per-chunk range would be
    // tighter on smooth chunks and looser on none).
    let chunk_bound = match bound {
        ErrorBound::Abs(_) => bound,
        ErrorBound::RangeRel(_) => {
            let (lo, hi) = source.min_max()?;
            if !lo.is_finite() || !hi.is_finite() {
                return Err(ArchiveWriteError::Invalid(
                    "field contains non-finite values; a relative bound is undefined",
                ));
            }
            ErrorBound::Abs(bound.absolute(lo, hi))
        }
    };

    let header = ArchiveHeader {
        dims,
        chunk: opts.chunk,
        version: if embed_models {
            ARCHIVE_VERSION_MODELS
        } else {
            ARCHIVE_VERSION
        },
        // Which models the chunks reference is only known once every codec
        // has been forked; the length slot is back-patched like the index.
        model_len: 0,
    };
    // The archive may be embedded at any position of a larger stream: every
    // seek below is relative to where the sink stands now, and the index
    // offsets are archive-relative (per the format), not stream-absolute.
    let base = sink.stream_position()?;
    let count = header.chunk_count();
    let mut head = Vec::with_capacity(header.encoded_len());
    header.write(&mut head);
    sink.write_all(&head)?;
    // Reserve the index; its entries are back-patched once every frame
    // length is known.
    sink.write_all(&vec![0u8; header.index_len()])?;

    struct Job {
        index: usize,
        id: CodecId,
        field: Field,
        codec: Box<dyn Compressor>,
        out: Option<Result<Vec<u8>, CompressError>>,
    }

    let mut entries: Vec<ChunkEntry> = Vec::with_capacity(count);
    let mut models: Vec<EmbeddedModel> = Vec::new();
    let mut offset = header.data_start() as u64;
    let mut raw_bytes = 0usize;
    let mut peak_window_raw_bytes = 0usize;
    let mut next = 0usize;
    while next < count {
        let batch = opts.window.min(count - next);
        let mut jobs = Vec::with_capacity(batch);
        for index in next..next + batch {
            let spec = BlockSpec::of(dims, opts.chunk, index);
            let field = source.read_chunk(&spec)?;
            if field.dims() != chunk_dims(&spec) {
                return Err(ArchiveWriteError::Invalid(
                    "chunk source returned a chunk with the wrong dims",
                ));
            }
            let codec = codecs(&spec).map_err(|error| ArchiveWriteError::Compress {
                chunk: index,
                error,
            })?;
            if embed_models {
                // Dedup by the cached id first: serializing + hashing the
                // full model once per *chunk* would be O(chunks × weights).
                match codec.embedded_model_id() {
                    Some(id) if models.iter().any(|m| m.id == id) => {}
                    Some(_) | None => {
                        if let Some(model) = codec.embedded_model() {
                            if !models.iter().any(|m| m.id == model.id) {
                                models.push(model);
                            }
                        }
                    }
                }
            }
            jobs.push(Job {
                index,
                id: codec.codec_id(),
                field,
                codec,
                out: None,
            });
        }
        let window_raw: usize = jobs.iter().map(|j| j.field.len() * 4).sum();
        peak_window_raw_bytes = peak_window_raw_bytes.max(window_raw);
        run_jobs(&mut jobs, |job| {
            job.out = Some(job.codec.compress(&job.field, chunk_bound));
        });
        for job in jobs {
            let frame =
                job.out
                    .expect("window ran")
                    .map_err(|error| ArchiveWriteError::Compress {
                        chunk: job.index,
                        error,
                    })?;
            sink.write_all(&frame)?;
            entries.push(ChunkEntry {
                codec: job.id,
                offset,
                len: frame.len() as u64,
            });
            offset += frame.len() as u64;
            raw_bytes += job.field.len() * 4;
        }
        next += batch;
    }

    // The model section sits after the last chunk frame; its length goes
    // into the header slot reserved for it (v2 only).
    let mut model_section = Vec::new();
    for model in &models {
        model_section.extend_from_slice(model.id.as_bytes());
        model_section.extend_from_slice(&(model.frame.len() as u64).to_le_bytes());
        model_section.extend_from_slice(&model.frame);
    }
    sink.write_all(&model_section)?;

    let mut index_bytes = Vec::with_capacity(header.index_len());
    for entry in &entries {
        write_chunk_entry(&mut index_bytes, entry);
    }
    if embed_models {
        // Back-patch the model-section length (the u64 right before the
        // chunk index in a v2 header).
        sink.seek(SeekFrom::Start(base + (header.encoded_len() - 8) as u64))?;
        sink.write_all(&(model_section.len() as u64).to_le_bytes())?;
    }
    sink.seek(SeekFrom::Start(base + header.encoded_len() as u64))?;
    sink.write_all(&index_bytes)?;
    // Leave the sink where writing stopped (the archive's end), not at the
    // end of whatever larger stream it may be embedded in.
    sink.seek(SeekFrom::Start(base + offset + model_section.len() as u64))?;

    Ok(ArchiveStats {
        chunks: count,
        raw_bytes,
        archive_bytes: offset as usize + model_section.len(),
        peak_window_raw_bytes,
        model_bytes: model_section.len(),
    })
}

/// [`write_archive`] into a fresh in-memory buffer — the convenience path
/// for fields that are already resident.
pub fn write_field_archive(
    field: &Field,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
) -> Result<(Vec<u8>, ArchiveStats), ArchiveWriteError> {
    let mut cursor = Cursor::new(Vec::new());
    let stats = write_archive(&mut FieldSource(field), bound, opts, codecs, &mut cursor)?;
    Ok((cursor.into_inner(), stats))
}

/// [`write_archive_embedding`] into a fresh in-memory buffer.
pub fn write_field_archive_embedding(
    field: &Field,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    codecs: &mut dyn FnMut(&BlockSpec) -> CompressorFork,
) -> Result<(Vec<u8>, ArchiveStats), ArchiveWriteError> {
    let mut cursor = Cursor::new(Vec::new());
    let stats = write_archive_embedding(&mut FieldSource(field), bound, opts, codecs, &mut cursor)?;
    Ok((cursor.into_inner(), stats))
}

/// Random-access view over a validated archive byte stream.
///
/// [`ArchiveReader::open`] parses and validates the header and the complete
/// chunk index before returning, so every accessor works on trusted
/// geometry; chunk payloads stay untouched (and untrusted) until decoded.
pub struct ArchiveReader<'a> {
    bytes: &'a [u8],
    header: ArchiveHeader,
    entries: Vec<ChunkEntry>,
    models: Vec<(ModelId, &'a [u8])>,
}

impl<'a> ArchiveReader<'a> {
    /// Parse and validate the header, chunk index and (v2) model section of
    /// `bytes`.
    pub fn open(bytes: &'a [u8]) -> Result<Self, DecompressError> {
        let header = ArchiveHeader::read(bytes)?;
        let entries = read_chunk_index(bytes, &header)?;
        let models = read_model_section(bytes, &header)?;
        Ok(ArchiveReader {
            bytes,
            header,
            entries,
            models,
        })
    }

    /// The archive's parsed header.
    pub fn header(&self) -> ArchiveHeader {
        self.header
    }

    /// Extents of the archived field.
    pub fn dims(&self) -> Dims {
        self.header.dims
    }

    /// Number of chunks in the archive.
    pub fn chunk_count(&self) -> usize {
        self.entries.len()
    }

    /// The validated chunk index.
    pub fn entries(&self) -> &[ChunkEntry] {
        &self.entries
    }

    /// The embedded models of a v2 archive: each referenced model's
    /// content-addressed id and its complete `AESM` frame (hash-verified at
    /// [`ArchiveReader::open`]). Empty for v1 archives.
    pub fn models(&self) -> &[(ModelId, &'a [u8])] {
        &self.models
    }

    /// The `AESM` frame of the embedded model with the given id, if any.
    pub fn model_frame(&self, id: ModelId) -> Option<&'a [u8]> {
        self.models
            .iter()
            .find(|&&(mid, _)| mid == id)
            .map(|&(_, frame)| frame)
    }

    /// Placement of chunk `index` in the field (`None` out of range).
    pub fn chunk_spec(&self, index: usize) -> Option<BlockSpec> {
        (index < self.entries.len())
            .then(|| BlockSpec::of(self.header.dims, self.header.chunk, index))
    }

    /// The raw `AESC` frame of chunk `index` (`None` out of range).
    pub fn chunk_frame(&self, index: usize) -> Option<&'a [u8]> {
        let entry = self.entries.get(index)?;
        Some(&self.bytes[entry.offset as usize..(entry.offset + entry.len) as usize])
    }

    /// Decode a single chunk by index through `codec` — the random-access
    /// path; nothing outside the chunk's frame is read.
    ///
    /// The caller picks `codec` from the chunk's index entry
    /// ([`ArchiveReader::entries`]); a mismatched codec is rejected by the
    /// frame check, and a frame whose reconstruction does not match the
    /// chunk's grid cell is rejected here.
    pub fn decode_chunk(
        &self,
        index: usize,
        codec: &mut dyn Compressor,
    ) -> Result<Field, DecompressError> {
        let frame = self
            .chunk_frame(index)
            .ok_or(DecompressError::Inconsistent("chunk index out of range"))?;
        let spec = self.chunk_spec(index).expect("index checked");
        let field = codec.decompress(frame)?;
        if field.dims() != chunk_dims(&spec) {
            return Err(DecompressError::Inconsistent(
                "chunk reconstruction disagrees with the archive grid",
            ));
        }
        Ok(field)
    }

    /// Decode every chunk into `sink` in rayon-parallel windows of `window`
    /// chunks, forking one compressor per in-flight chunk via `codecs`
    /// (called with each chunk's index and its index-entry codec id — the
    /// index is what lets a factory hand *different* trained models of the
    /// same codec to different chunks).
    ///
    /// Peak resident decoded payload is one window of chunks; the sink
    /// receives chunks in index order.
    pub fn decode_into(
        &self,
        window: usize,
        codecs: &mut dyn FnMut(usize, CodecId) -> DecoderFork,
        sink: &mut dyn ChunkSink,
    ) -> Result<(), ArchiveReadError> {
        struct Job<'b> {
            index: usize,
            spec: BlockSpec,
            frame: &'b [u8],
            codec: Box<dyn Compressor>,
            out: Option<Result<Field, DecompressError>>,
        }

        let window = window.max(1);
        let count = self.entries.len();
        let mut next = 0usize;
        while next < count {
            let batch = window.min(count - next);
            let mut jobs = Vec::with_capacity(batch);
            for index in next..next + batch {
                let entry = self.entries[index];
                let codec =
                    codecs(index, entry.codec).map_err(|error| ArchiveReadError::Chunk {
                        chunk: index,
                        error,
                    })?;
                jobs.push(Job {
                    index,
                    spec: self.chunk_spec(index).expect("index in range"),
                    frame: self.chunk_frame(index).expect("index in range"),
                    codec,
                    out: None,
                });
            }
            run_jobs(&mut jobs, |job| {
                job.out = Some(job.codec.decompress(job.frame));
            });
            for job in jobs {
                let field =
                    job.out
                        .expect("window ran")
                        .map_err(|error| ArchiveReadError::Chunk {
                            chunk: job.index,
                            error,
                        })?;
                if field.dims() != chunk_dims(&job.spec) {
                    return Err(ArchiveReadError::Chunk {
                        chunk: job.index,
                        error: DecompressError::Inconsistent(
                            "chunk reconstruction disagrees with the archive grid",
                        ),
                    });
                }
                sink.write_chunk(&job.spec, &field)?;
            }
            next += batch;
        }
        Ok(())
    }

    /// Decode the whole archive into an in-memory field (a [`FieldSink`]
    /// behind [`ArchiveReader::decode_into`]).
    pub fn decode_all(
        &self,
        window: usize,
        codecs: &mut dyn FnMut(usize, CodecId) -> DecoderFork,
    ) -> Result<Field, ArchiveReadError> {
        let mut sink = FieldSink::new(self.header.dims);
        self.decode_into(window, codecs, &mut sink)?;
        Ok(sink.into_field())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{self, FRAME_LEN};

    /// A stand-in codec storing raw little-endian bytes behind a tiny
    /// dims header (borrowing the ZFP id purely for framing).
    #[derive(Clone)]
    struct Raw;

    impl Compressor for Raw {
        fn codec_id(&self) -> CodecId {
            CodecId::Zfp
        }
        fn fork(&self) -> Box<dyn Compressor> {
            Box::new(self.clone())
        }
        fn compress_payload(
            &mut self,
            field: &Field,
            _bound: ErrorBound,
        ) -> Result<Vec<u8>, CompressError> {
            let mut out = Vec::new();
            let e = field.dims().extents();
            out.push(e.len() as u8);
            for &d in &e {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            out.extend_from_slice(&field.to_le_bytes());
            Ok(out)
        }
        fn decompress_payload(&mut self, bytes: &[u8]) -> Result<Field, DecompressError> {
            let rank = *bytes.first().ok_or(DecompressError::Truncated("rank"))? as usize;
            if !(1..=3).contains(&rank) {
                return Err(DecompressError::InvalidHeader("rank"));
            }
            let mut ext = Vec::new();
            let mut pos = 1;
            for _ in 0..rank {
                let mut b = [0u8; 8];
                b.copy_from_slice(
                    bytes
                        .get(pos..pos + 8)
                        .ok_or(DecompressError::Truncated("extent"))?,
                );
                ext.push(u64::from_le_bytes(b) as usize);
                pos += 8;
            }
            let dims = match rank {
                1 => Dims::d1(ext[0]),
                2 => Dims::d2(ext[0], ext[1]),
                _ => Dims::d3(ext[0], ext[1], ext[2]),
            };
            Field::from_le_bytes(dims, &bytes[pos..])
                .map_err(|_| DecompressError::Inconsistent("payload/dims mismatch"))
        }
    }

    fn raw_codec() -> impl FnMut(&BlockSpec) -> Result<Box<dyn Compressor>, CompressError> + 'static
    {
        |_spec: &BlockSpec| Ok(Box::new(Raw) as Box<dyn Compressor>)
    }

    fn raw_decoder(
    ) -> impl FnMut(usize, CodecId) -> Result<Box<dyn Compressor>, DecompressError> + 'static {
        |_index: usize, _id: CodecId| Ok(Box::new(Raw) as Box<dyn Compressor>)
    }

    fn ramp(dims: Dims) -> Field {
        let mut k = 0.0f32;
        Field::from_fn(dims, |_| {
            k += 1.0;
            k
        })
    }

    #[test]
    fn archive_roundtrips_losslessly_with_the_raw_codec() {
        for (dims, chunk, window) in [
            (Dims::d1(37), 8, 3),
            (Dims::d2(21, 13), 8, 1),
            (Dims::d2(16, 16), 16, 4),
            (Dims::d3(5, 7, 9), 4, 5),
        ] {
            let field = ramp(dims);
            let opts = ArchiveOptions { chunk, window };
            let (bytes, stats) =
                write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec())
                    .expect("write");
            assert_eq!(stats.raw_bytes, field.len() * 4);
            assert_eq!(stats.archive_bytes, bytes.len());
            assert!(stats.peak_window_raw_bytes <= stats.raw_bytes);
            let reader = ArchiveReader::open(&bytes).expect("open");
            assert_eq!(reader.dims(), dims);
            assert_eq!(reader.chunk_count(), stats.chunks);
            let recon = reader.decode_all(window, &mut raw_decoder()).expect("read");
            assert_eq!(recon.as_slice(), field.as_slice());
        }
    }

    #[test]
    fn random_access_matches_the_full_decode() {
        let field = ramp(Dims::d2(30, 22));
        let opts = ArchiveOptions {
            chunk: 8,
            window: 2,
        };
        let (bytes, _) =
            write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        let reader = ArchiveReader::open(&bytes).unwrap();
        let full = reader.decode_all(4, &mut raw_decoder()).unwrap();
        for i in 0..reader.chunk_count() {
            let spec = reader.chunk_spec(i).unwrap();
            let mut codec = Raw;
            let chunk = reader.decode_chunk(i, &mut codec).unwrap();
            assert_eq!(chunk.as_slice(), full.read_block_valid(&spec).as_slice());
        }
        assert!(reader.chunk_spec(reader.chunk_count()).is_none());
        assert!(reader.chunk_frame(reader.chunk_count()).is_none());
    }

    #[test]
    fn archives_can_be_embedded_at_a_nonzero_stream_position() {
        let field = ramp(Dims::d2(10, 11));
        let opts = ArchiveOptions {
            chunk: 4,
            window: 2,
        };
        let prefix = b"sixteen byte hdr".to_vec();
        let mut cursor = Cursor::new(prefix.clone());
        cursor.set_position(prefix.len() as u64);
        let stats = write_archive(
            &mut FieldSource(&field),
            ErrorBound::abs(1.0),
            &opts,
            &mut raw_codec(),
            &mut cursor,
        )
        .expect("embedded write");
        // The sink is left just past the archive, the prefix is untouched,
        // and the archive decodes from its own start.
        assert_eq!(
            cursor.stream_position().unwrap(),
            (prefix.len() + stats.archive_bytes) as u64
        );
        let bytes = cursor.into_inner();
        assert_eq!(&bytes[..prefix.len()], prefix.as_slice());
        let reader = ArchiveReader::open(&bytes[prefix.len()..]).expect("open embedded");
        let recon = reader.decode_all(2, &mut raw_decoder()).expect("decode");
        assert_eq!(recon.as_slice(), field.as_slice());
        // Byte-identical to the same archive written at position 0.
        let (plain, _) =
            write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        assert_eq!(&bytes[prefix.len()..], plain.as_slice());
    }

    #[test]
    fn writer_rejects_unusable_requests() {
        let field = ramp(Dims::d1(8));
        let ok = ArchiveOptions {
            chunk: 4,
            window: 1,
        };
        assert!(matches!(
            write_field_archive(
                &field,
                ErrorBound::abs(1.0),
                &ArchiveOptions { chunk: 0, ..ok },
                &mut raw_codec()
            ),
            Err(ArchiveWriteError::Invalid(_))
        ));
        assert!(matches!(
            write_field_archive(
                &field,
                ErrorBound::abs(1.0),
                &ArchiveOptions { window: 0, ..ok },
                &mut raw_codec()
            ),
            Err(ArchiveWriteError::Invalid(_))
        ));
        assert!(matches!(
            write_field_archive(&field, ErrorBound::rel(0.0), &ok, &mut raw_codec()),
            Err(ArchiveWriteError::Invalid(_))
        ));
        let empty = Field::zeros(Dims::d1(0));
        assert!(matches!(
            write_field_archive(&empty, ErrorBound::abs(1.0), &ok, &mut raw_codec()),
            Err(ArchiveWriteError::Invalid(_))
        ));
    }

    #[test]
    fn every_truncation_of_an_archive_is_rejected() {
        let field = ramp(Dims::d2(9, 9));
        let opts = ArchiveOptions {
            chunk: 4,
            window: 2,
        };
        let (bytes, _) =
            write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        for len in 0..bytes.len() {
            assert!(
                ArchiveReader::open(&bytes[..len]).is_err(),
                "truncated archive of {len}/{} bytes opened",
                bytes.len()
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(ArchiveReader::open(&padded).is_err());
    }

    #[test]
    fn header_errors_are_reported_before_chunk_payloads() {
        let field = ramp(Dims::d1(10));
        let opts = ArchiveOptions {
            chunk: 4,
            window: 1,
        };
        let (bytes, _) =
            write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        // Codec byte of the first index entry → unknown id.
        let header = ArchiveHeader::read(&bytes).unwrap();
        let mut evil = bytes.clone();
        evil[header.encoded_len()] = 200;
        assert!(matches!(
            ArchiveReader::open(&evil),
            Err(DecompressError::UnknownCodec(200))
        ));
        // First entry offset off by one → tiling violation.
        let mut evil = bytes.clone();
        evil[header.encoded_len() + 1] ^= 1;
        assert!(ArchiveReader::open(&evil).is_err());
        // Stored chunk count off by one → inconsistency.
        let mut evil = bytes.clone();
        let count_at = header.encoded_len() - 8;
        evil[count_at] = evil[count_at].wrapping_add(1);
        assert!(ArchiveReader::open(&evil).is_err());
    }

    /// A [`Raw`] with a fake trained model, for the embedding path.
    #[derive(Clone)]
    struct RawWithModel(Vec<u8>);

    impl Compressor for RawWithModel {
        fn codec_id(&self) -> CodecId {
            CodecId::Zfp
        }
        fn fork(&self) -> Box<dyn Compressor> {
            Box::new(self.clone())
        }
        fn embedded_model(&self) -> Option<EmbeddedModel> {
            Some(EmbeddedModel::new(CodecId::Zfp, &self.0))
        }
        fn compress_payload(
            &mut self,
            field: &Field,
            bound: ErrorBound,
        ) -> Result<Vec<u8>, CompressError> {
            Raw.compress_payload(field, bound)
        }
        fn decompress_payload(&mut self, bytes: &[u8]) -> Result<Field, DecompressError> {
            Raw.decompress_payload(bytes)
        }
    }

    #[test]
    fn embedding_writer_ships_each_model_once_and_readers_verify_it() {
        let field = ramp(Dims::d2(12, 10));
        let opts = ArchiveOptions {
            chunk: 4,
            window: 2,
        };
        let weights = b"pretend weights".to_vec();
        let expected = EmbeddedModel::new(CodecId::Zfp, &weights);
        let mut codecs = move |_spec: &BlockSpec| {
            Ok(Box::new(RawWithModel(weights.clone())) as Box<dyn Compressor>)
        };
        let (bytes, stats) =
            write_field_archive_embedding(&field, ErrorBound::abs(1.0), &opts, &mut codecs)
                .expect("embedding write");
        assert_eq!(stats.archive_bytes, bytes.len());
        assert!(stats.model_bytes > 0);

        let reader = ArchiveReader::open(&bytes).expect("open v2");
        assert_eq!(reader.header().version, ARCHIVE_VERSION_MODELS);
        // Nine chunks forked nine codecs, but the model is embedded once.
        assert_eq!(reader.models().len(), 1);
        assert_eq!(reader.models()[0].0, expected.id);
        assert_eq!(
            reader.model_frame(expected.id),
            Some(expected.frame.as_slice())
        );
        assert_eq!(reader.model_frame(ModelId::of(b"other")), None);
        let recon = reader.decode_all(2, &mut raw_decoder()).expect("decode");
        assert_eq!(recon.as_slice(), field.as_slice());

        // Every truncation of the v2 archive is rejected, and a flipped bit
        // in the embedded model fails the hash check at open.
        for len in 0..bytes.len() {
            assert!(ArchiveReader::open(&bytes[..len]).is_err());
        }
        let mut evil = bytes.clone();
        let last = evil.len() - 1;
        evil[last] ^= 1;
        assert!(ArchiveReader::open(&evil).is_err());
    }

    #[test]
    fn embedding_model_free_codecs_yields_an_empty_v2_section() {
        let field = ramp(Dims::d1(10));
        let opts = ArchiveOptions {
            chunk: 4,
            window: 2,
        };
        let (v2, stats) =
            write_field_archive_embedding(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec())
                .unwrap();
        assert_eq!(stats.model_bytes, 0);
        let reader = ArchiveReader::open(&v2).unwrap();
        assert_eq!(reader.header().version, ARCHIVE_VERSION_MODELS);
        assert!(reader.models().is_empty());
        // The v1 writer is untouched by the feature: same field, same codec,
        // version byte 1 and no model-length slot.
        let (v1, s1) =
            write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        assert_eq!(
            ArchiveReader::open(&v1).unwrap().header().version,
            ARCHIVE_VERSION
        );
        assert_eq!(s1.model_bytes, 0);
        assert_eq!(v1.len() + 8, v2.len());
    }

    #[test]
    fn frames_inside_an_archive_are_plain_container_frames() {
        let field = ramp(Dims::d1(12));
        let opts = ArchiveOptions {
            chunk: 4,
            window: 2,
        };
        let (bytes, _) =
            write_field_archive(&field, ErrorBound::abs(1.0), &opts, &mut raw_codec()).unwrap();
        let reader = ArchiveReader::open(&bytes).unwrap();
        for i in 0..reader.chunk_count() {
            let frame = reader.chunk_frame(i).unwrap();
            assert!(frame.len() >= FRAME_LEN);
            assert_eq!(container::peek_codec(frame).unwrap(), CodecId::Zfp);
            let (codec, _) = container::read_frame(frame).unwrap();
            assert_eq!(codec, reader.entries()[i].codec);
        }
    }
}
