//! Release-mode service throughput measurement: an in-process daemon under
//! eight concurrent remote clients, reporting requests/s, payload MB/s and
//! request latency percentiles to `BENCH_serve.json` (CI's bench artifact).
//!
//! Timings only mean something under the optimized profile, so the suite is
//! ignored in debug builds (CI runs it via `cargo test --release`).

use std::sync::Arc;
use std::time::Instant;

use aesz_datagen::Application;
use aesz_repro::metrics::protocol as wire;
use aesz_repro::metrics::CodecId;
use aesz_repro::{Dims, ErrorBound, Registry};
use aesz_server::{RemoteClient, Server, ServerConfig};

#[test]
#[cfg_attr(debug_assertions, ignore = "throughput measurement needs --release")]
fn concurrent_service_throughput_is_recorded() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 20;

    let dims = Dims::d2(128, 128);
    let field = Application::CesmCldhgh.generate(dims, 17);
    let raw_bytes = field.len() * 4;
    let bound = ErrorBound::abs(1e-3);

    // A compressed stream for the decompress rounds, from the local path.
    let registry = Registry::with_defaults();
    let mut codec = registry.fork(CodecId::Zfp).expect("zfp registered");
    let stream = codec.compress(&field, bound).expect("local compress");

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: CLIENTS,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let handle = server.handle().expect("handle");
    let addr = handle.addr().to_string();
    let state = server.state();
    let runner = std::thread::spawn(move || server.run());

    let field = Arc::new(field);
    let stream = Arc::new(stream);
    let t0 = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let field = Arc::clone(&field);
            let stream = Arc::clone(&stream);
            std::thread::spawn(move || {
                let mut client = RemoteClient::connect(&addr).expect("connect");
                let mut latencies = Vec::with_capacity(ROUNDS * 2);
                let mut moved = 0usize;
                for _ in 0..ROUNDS {
                    let t = Instant::now();
                    let got = client
                        .request(&wire::Request::Compress {
                            codec: CodecId::Zfp,
                            bound,
                            field: (*field).clone(),
                        })
                        .expect("compress request");
                    latencies.push(t.elapsed().as_secs_f64());
                    let wire::Response::CompressOk { stream: s } = got else {
                        panic!("expected CompressOk");
                    };
                    moved += field.len() * 4 + s.len();

                    let t = Instant::now();
                    let got = client
                        .request(&wire::Request::Decompress {
                            bytes: (*stream).clone(),
                        })
                        .expect("decompress request");
                    latencies.push(t.elapsed().as_secs_f64());
                    let wire::Response::DecompressOk { field: recon } = got else {
                        panic!("expected DecompressOk");
                    };
                    moved += stream.len() + recon.len() * 4;
                }
                (latencies, moved)
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    let mut moved = 0usize;
    for t in threads {
        let (l, m) = t.join().expect("client thread");
        latencies.extend(l);
        moved += m;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    handle.shutdown();
    runner
        .join()
        .expect("accept loop exits")
        .expect("clean run");

    let stats = state.snapshot();
    assert_eq!(stats.errors, 0, "benchmark requests must all succeed");
    let requests = latencies.len();
    assert_eq!(requests, CLIENTS * ROUNDS * 2);

    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| {
        let at = ((requests as f64 * p).ceil() as usize).clamp(1, requests) - 1;
        latencies[at]
    };
    let p50 = pct(0.50);
    let p99 = pct(0.99);
    let rps = requests as f64 / wall_s;
    let mbps = moved as f64 / 1e6 / wall_s;

    let json = format!(
        "{{\n  \"field\": \"cesm {dims}\",\n  \"field_bytes\": {raw_bytes},\n  \
         \"bound\": \"{bound}\",\n  \"codec\": \"zfp\",\n  \
         \"clients\": {CLIENTS},\n  \"requests\": {requests},\n  \"wall_s\": {wall_s:.4},\n  \
         \"requests_per_s\": {rps:.1},\n  \"payload_mbps\": {mbps:.2},\n  \
         \"latency_p50_ms\": {:.3},\n  \"latency_p99_ms\": {:.3},\n  \
         \"busy_rejections\": {},\n  \"bytes_in\": {},\n  \"bytes_out\": {}\n}}\n",
        p50 * 1e3,
        p99 * 1e3,
        stats.busy_rejections,
        stats.bytes_in,
        stats.bytes_out,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}:\n{json}");
}
