//! End-to-end daemon tests: a real `Server` on a loopback socket, real
//! `RemoteClient`s on OS threads. The service path must be *bit-identical*
//! to the local library path for compress, decompress, and train — the
//! daemon is a deployment shape, not a different compressor.

use std::sync::Arc;

use aesz_datagen::Application;
use aesz_repro::metrics::protocol as wire;
use aesz_repro::metrics::CodecId;
use aesz_repro::{Compressor, Dims, ErrorBound, Field, Registry};
use aesz_server::{RemoteClient, Server, ServerConfig, ServerState};

fn test_field(seed: u64) -> Field {
    Application::CesmCldhgh.generate(Dims::d2(32, 48), seed)
}

fn assert_fields_bit_identical(a: &Field, b: &Field, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what}: dims diverged");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i} diverged");
    }
}

/// Bind a daemon on an ephemeral port and run it on a background thread.
/// Returns the address, the shared state, and a shutdown closure.
fn spawn_server(config: ServerConfig) -> (String, Arc<ServerState>, impl FnOnce()) {
    let server = Server::bind(config).expect("bind loopback");
    let state = server.state();
    let handle = server.handle().expect("handle");
    let addr = handle.addr().to_string();
    let runner = std::thread::spawn(move || server.run());
    let stop = move || {
        handle.shutdown();
        runner
            .join()
            .expect("accept loop exits")
            .expect("clean run");
    };
    (addr, state, stop)
}

#[test]
fn eight_concurrent_clients_match_the_local_path_bit_for_bit() {
    let (addr, state, stop) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        ..ServerConfig::default()
    });
    let bound = ErrorBound::abs(1e-3);

    let clients: Vec<_> = (0..8u64)
        .map(|seed| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let field = test_field(seed);
                // The reference result from the in-process library path.
                let registry = Registry::with_defaults();
                let mut local = registry.fork(CodecId::Zfp).expect("zfp registered");
                let want_stream = local.compress(&field, bound).expect("local compress");
                let want_field = local.decompress(&want_stream).expect("local decompress");

                let mut client = RemoteClient::connect(&addr).expect("connect");
                let got = client
                    .request(&wire::Request::Compress {
                        codec: CodecId::Zfp,
                        bound,
                        field: field.clone(),
                    })
                    .expect("compress request");
                let wire::Response::CompressOk { stream } = got else {
                    panic!("client {seed}: expected CompressOk, got {got:?}");
                };
                assert_eq!(
                    stream, want_stream,
                    "client {seed}: compressed bytes diverged"
                );

                // Same connection, next request: the daemon keeps it open
                // after a success response.
                let got = client
                    .request(&wire::Request::Decompress { bytes: stream })
                    .expect("decompress request");
                let wire::Response::DecompressOk { field: recon } = got else {
                    panic!("client {seed}: expected DecompressOk, got {got:?}");
                };
                assert_fields_bit_identical(&recon, &want_field, "remote decompress");
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // Liveness + counters over the wire.
    let mut probe = RemoteClient::connect(&addr).expect("connect");
    let got = probe
        .request(&wire::Request::Health)
        .expect("health request");
    assert!(matches!(got, wire::Response::HealthOk { .. }));
    let got = probe.request(&wire::Request::Stats).expect("stats request");
    let wire::Response::StatsOk(stats) = got else {
        panic!("expected StatsOk, got {got:?}");
    };
    assert!(stats.requests >= 18, "8×(compress+decompress)+health+stats");
    // The stats request itself is still in flight when the snapshot is
    // taken — it is counted ok only after its response is built.
    assert!(stats.ok >= 17);
    assert_eq!(stats.errors, 0);
    let zfp = wire::ServerStats::codec_slot(CodecId::Zfp);
    assert_eq!(stats.compress_by_codec[zfp], 8);
    assert_eq!(stats.decompress_by_codec[zfp], 8);
    assert!(stats.connections_total >= 9);
    drop(probe);
    stop();
    assert_eq!(state.snapshot().errors, 0);
}

#[test]
fn train_is_deterministic_resident_and_saved_as_a_sidecar() {
    let dir = std::env::temp_dir().join(format!("aesz-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, state, stop) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        model_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let field = test_field(3);
    let knobs = wire::TrainKnobs {
        epochs: 1,
        block: 0,
        latent: 0,
        max_blocks: 0,
        seed: 5,
    };

    // Reference: the same training run through the library path.
    let mut local = aesz_repro::baselines::AeA::new(knobs.seed);
    local.train(std::slice::from_ref(&field), 1, knobs.seed);
    let want = local.embedded_model().expect("trained model");

    let mut client = RemoteClient::connect(&addr).expect("connect");
    let got = client
        .request(&wire::Request::Train {
            codec: CodecId::AeA,
            knobs,
            field: field.clone(),
        })
        .expect("train request");
    let wire::Response::TrainOk { id, frame } = got else {
        panic!("expected TrainOk, got {got:?}");
    };
    assert_eq!(id, want.id, "training is not deterministic across paths");
    assert_eq!(frame, want.frame);

    // The model is resident: a learned stream compressed locally with the
    // very same model must decompress over the wire, no sidecar handshake.
    let mut codec = aesz_repro::model_store::build_compressor(&want).expect("build");
    let stream = codec
        .compress(&field, ErrorBound::abs(1e-3))
        .expect("local learned compress");
    let want_recon = codec.decompress(&stream).expect("local learned decode");
    let got = client
        .request(&wire::Request::Decompress { bytes: stream })
        .expect("decompress request");
    let wire::Response::DecompressOk { field: recon } = got else {
        panic!("expected DecompressOk, got {got:?}");
    };
    assert_fields_bit_identical(&recon, &want_recon, "learned remote decompress");

    // Inventory over the wire names the trained model, hash-verified.
    let got = client
        .request(&wire::Request::ListModels)
        .expect("models request");
    let wire::Response::ModelList { entries } = got else {
        panic!("expected ModelList, got {got:?}");
    };
    let entry = entries
        .iter()
        .find(|e| e.id == id)
        .expect("trained model listed");
    assert!(entry.verified);
    assert_eq!(entry.codec, Some(CodecId::AeA));

    let stats = state.snapshot();
    assert!(stats.models_resident >= 1);
    drop(client);
    stop();

    // The sidecar landed on disk under the content-addressed name.
    let sidecar = dir.join(format!("{id}.aesm"));
    let bytes = std::fs::read(&sidecar).expect("sidecar written");
    assert_eq!(bytes, want.frame);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The per-worker resident codec cache must follow retraining: compress
/// requests after a `Train` that re-registers the codec must be served by
/// a fork of the *new* model, byte-identical to the library path — a stale
/// cached fork would emit the old model's stream. Repeated rounds on one
/// worker also prove the cached fork itself never drifts between requests.
#[test]
fn worker_codec_cache_follows_retraining() {
    let (addr, state, stop) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ..ServerConfig::default()
    });
    let field = test_field(7);
    let bound = ErrorBound::abs(1e-3);
    let mut client = RemoteClient::connect(&addr).expect("connect");

    for seed in [5u64, 9] {
        let knobs = wire::TrainKnobs {
            epochs: 1,
            block: 0,
            latent: 0,
            max_blocks: 0,
            seed,
        };
        let got = client
            .request(&wire::Request::Train {
                codec: CodecId::AeA,
                knobs,
                field: field.clone(),
            })
            .expect("train request");
        let wire::Response::TrainOk { .. } = got else {
            panic!("expected TrainOk, got {got:?}");
        };

        // The library-path reference for this model generation.
        let mut local = aesz_repro::baselines::AeA::new(seed);
        local.train(std::slice::from_ref(&field), 1, seed);
        let want = local.compress(&field, bound).expect("local compress");

        for round in 0..3 {
            let got = client
                .request(&wire::Request::Compress {
                    codec: CodecId::AeA,
                    bound,
                    field: field.clone(),
                })
                .expect("compress request");
            let wire::Response::CompressOk { stream } = got else {
                panic!("expected CompressOk, got {got:?}");
            };
            assert_eq!(
                stream, want,
                "seed {seed} round {round}: worker cache served a stale or drifted fork"
            );
        }
    }
    drop(client);
    stop();
    assert_eq!(state.snapshot().errors, 0);
}

#[test]
fn archive_bytes_stream_decode_remotely() {
    let (addr, _state, stop) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    });
    let field = Application::Rtm.generate(Dims::d3(16, 16, 16), 9);
    let registry = Registry::with_defaults();
    let opts = aesz_repro::archive::ArchiveOptions::new()
        .chunk(8)
        .window(2);
    let (bytes, _stats) = aesz_repro::archive::compress_field(
        &registry,
        &field,
        ErrorBound::abs(1e-3),
        &opts,
        CodecId::Zfp,
    )
    .expect("build archive");
    let (want, _) = aesz_repro::archive::decompress(&registry, &bytes, 2).expect("local decode");

    let mut client = RemoteClient::connect(&addr).expect("connect");
    let got = client
        .request(&wire::Request::Decompress { bytes })
        .expect("decompress request");
    let wire::Response::DecompressOk { field: recon } = got else {
        panic!("expected DecompressOk, got {got:?}");
    };
    assert_fields_bit_identical(&recon, &want, "remote archive decompress");
    drop(client);
    stop();
}

#[test]
fn connection_cap_rejects_with_typed_busy() {
    let (addr, state, stop) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 0,
        max_connections: 1,
        ..ServerConfig::default()
    });

    // First connection occupies the single slot (and stays open: success
    // responses keep the connection alive).
    let mut first = RemoteClient::connect(&addr).expect("connect");
    let got = first.request(&wire::Request::Health).expect("health");
    assert!(matches!(got, wire::Response::HealthOk { .. }));

    // Second connection must be shed at the edge with a typed Busy — the
    // acceptor observed the first connection before ever accepting this one,
    // so the rejection is deterministic, not timing-dependent. Read without
    // writing: the Busy arrives unprompted, and never sending means no RST
    // can race the buffered response away.
    {
        use std::io::Read;
        let mut second = std::net::TcpStream::connect(&addr).expect("connect");
        let mut reply = Vec::new();
        second
            .read_to_end(&mut reply)
            .expect("busy response then close");
        let (resp, _) =
            wire::decode_response(&reply, &wire::Limits::default()).expect("typed response");
        assert!(
            matches!(resp, wire::Response::Busy { .. }),
            "expected Busy, got {resp:?}"
        );
    }
    assert!(state.snapshot().busy_rejections >= 1);

    // Releasing the slot lets fresh connections through again.
    drop(first);
    let mut served = false;
    for _ in 0..50 {
        let mut retry = RemoteClient::connect(&addr).expect("connect");
        if let Ok(wire::Response::HealthOk { .. }) = retry.request(&wire::Request::Health) {
            served = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(served, "slot never freed after the first client left");
    stop();
}

#[test]
fn stalled_decompress_body_does_not_stall_train_or_other_clients() {
    use std::io::Write;

    let (addr, _state, stop) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        read_timeout: std::time::Duration::from_secs(8),
        ..ServerConfig::default()
    });

    // A peer that declares a Decompress body and then goes silent. Before
    // streaming decodes scoped their registry access per call, this held
    // the registry read lock for the whole read timeout — and one Train
    // request waiting on the write lock then queued every new reader
    // behind it, stalling the entire daemon.
    let mut stalled = std::net::TcpStream::connect(&addr).expect("connect");
    stalled
        .write_all(&wire::header_bytes(wire::MsgType::Decompress, 4096))
        .expect("send header");
    stalled.flush().expect("flush");
    // Give a worker time to pick the connection up and block on the body.
    std::thread::sleep(std::time::Duration::from_millis(200));

    // Train (write lock) plus a fresh decompress (read locks) must both
    // complete far inside the stalled peer's read timeout.
    let started = std::time::Instant::now();
    let field = test_field(7);
    let mut client = RemoteClient::connect(&addr).expect("connect");
    let got = client
        .request(&wire::Request::Train {
            codec: CodecId::AeA,
            knobs: wire::TrainKnobs {
                epochs: 1,
                block: 0,
                latent: 0,
                max_blocks: 0,
                seed: 2,
            },
            field: field.clone(),
        })
        .expect("train request");
    assert!(
        matches!(got, wire::Response::TrainOk { .. }),
        "expected TrainOk, got {got:?}"
    );

    let registry = Registry::with_defaults();
    let mut zfp = registry.fork(CodecId::Zfp).expect("zfp registered");
    let stream = zfp
        .compress(&field, ErrorBound::abs(1e-3))
        .expect("local compress");
    let got = client
        .request(&wire::Request::Decompress { bytes: stream })
        .expect("decompress request");
    assert!(
        matches!(got, wire::Response::DecompressOk { .. }),
        "expected DecompressOk, got {got:?}"
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(4),
        "requests stalled behind an idle decompress body for {:?}",
        started.elapsed()
    );
    drop(stalled);
    drop(client);
    stop();
}

#[test]
fn hostile_train_knobs_are_rejected_before_any_work() {
    let (addr, _state, stop) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    });

    // epochs is untrusted wire input: u32::MAX must bounce off the server
    // cap with a typed TooLarge, not pin a worker for ~4.3e9 epochs.
    let started = std::time::Instant::now();
    let mut client = RemoteClient::connect(&addr).expect("connect");
    let got = client
        .request(&wire::Request::Train {
            codec: CodecId::AeA,
            knobs: wire::TrainKnobs {
                epochs: u32::MAX,
                block: 0,
                latent: 0,
                max_blocks: 0,
                seed: 1,
            },
            field: test_field(1),
        })
        .expect("error still parses");
    let wire::Response::Error { code, message } = got else {
        panic!("expected Error, got {got:?}");
    };
    assert_eq!(code, wire::ErrorCode::TooLarge);
    assert!(message.contains("epochs"), "cap named in: {message}");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "the cap must reject before training, not after"
    );
    stop();
}

#[test]
fn oversized_and_hostile_requests_get_typed_errors() {
    use std::io::{Read, Write};

    let (addr, _state, stop) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_request_bytes: 1024,
        ..ServerConfig::default()
    });

    // A legitimate request whose body exceeds the server cap: typed
    // TooLarge, connection closed, nothing drained.
    let mut client = RemoteClient::connect(&addr).expect("connect");
    let got = client
        .request(&wire::Request::Compress {
            codec: CodecId::Zfp,
            bound: ErrorBound::abs(1e-3),
            field: test_field(0), // 32×48×4 B ≫ 1024
        })
        .expect("error still parses");
    let wire::Response::Error { code, .. } = got else {
        panic!("expected Error, got {got:?}");
    };
    assert_eq!(code, wire::ErrorCode::TooLarge);

    // A hostile declared length with no body behind it: the server must
    // answer from the header alone, without waiting for u64::MAX bytes.
    let mut raw = std::net::TcpStream::connect(&addr).expect("connect");
    raw.write_all(&wire::header_bytes(wire::MsgType::Compress, u64::MAX))
        .expect("send hostile header");
    raw.flush().expect("flush");
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply)
        .expect("server responds and closes");
    let (resp, _) =
        wire::decode_response(&reply, &wire::Limits::default()).expect("typed response");
    let wire::Response::Error { code, .. } = resp else {
        panic!("expected Error, got {resp:?}");
    };
    assert_eq!(code, wire::ErrorCode::TooLarge);
    stop();
}
