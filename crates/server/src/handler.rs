//! Request → response logic, independent of the socket framing.
//!
//! [`handle_buffered`] serves every fully-read request body;
//! [`handle_decompress_stream`] is the streaming path `conn` uses for
//! `Decompress` bodies, feeding socket slabs straight through
//! [`StreamFieldDecoder`] so the compressed input is never resident whole.

use std::io::Read;

use crate::state::ServerState;
use aesz_repro::core::training::{train_swae_for_field, TrainingOptions};
use aesz_repro::metrics::protocol::{ErrorCode, ModelEntry, Request, Response, TrainKnobs};
use aesz_repro::{
    CodecId, Compressor, DecompressError, Field, ModelStore, StreamFieldDecoder, StreamOutput,
};

/// Map a decode/dispatch failure onto the wire error code.
pub fn error_code_for(e: &DecompressError) -> ErrorCode {
    match e {
        DecompressError::Unsupported(what) if what.contains("cap") => ErrorCode::TooLarge,
        DecompressError::Unsupported(_) | DecompressError::UnknownCodec(_) => {
            ErrorCode::Unsupported
        }
        DecompressError::MissingModel { .. } | DecompressError::CodecFailed { .. } => {
            ErrorCode::DecompressFailed
        }
        _ => ErrorCode::Malformed,
    }
}

fn error(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

/// Serve one fully-buffered request body of type `msg`. `worker` is the
/// pool worker executing the connection (keys the per-worker codec cache);
/// `None` falls back to fork-per-call compression.
pub fn handle_buffered(
    state: &ServerState,
    worker: Option<usize>,
    msg: aesz_repro::metrics::protocol::MsgType,
    body: &[u8],
) -> Response {
    let request = match Request::decode_body(msg, body, state.config.max_field_elems) {
        Ok(r) => r,
        Err(e) => return error(error_code_for(&e), e.to_string()),
    };
    match request {
        Request::Compress {
            codec,
            bound,
            field,
        } => match state.compress_cached(worker, codec, &field, bound) {
            Ok(stream) => {
                state.count_compress(codec);
                Response::CompressOk { stream }
            }
            Err(e) => error(ErrorCode::CompressFailed, e.to_string()),
        },
        Request::Decompress { bytes } => match state.registry.decompress_any(&bytes) {
            Ok((field, codec)) => {
                state.count_decompress(codec);
                Response::DecompressOk { field }
            }
            Err(e) => error(error_code_for(&e), e.to_string()),
        },
        Request::Train {
            codec,
            knobs,
            field,
        } => train(state, codec, knobs, &field),
        Request::Health => Response::HealthOk {
            uptime_ms: state.uptime_ms(),
            queue_depth: state.queue_depth(),
        },
        Request::Stats => Response::StatsOk(state.snapshot()),
        Request::ListModels => list_models(state),
    }
}

/// Serve a `Decompress` body directly from the socket: slabs feed the
/// incremental decoder, so per-connection residency is one slab plus the
/// decoder's own bounded buffer — never the whole compressed body.
///
/// No registry lock is held across the socket reads: the decoder accesses
/// the shared registry through [`aesz_repro::RegistryAccess`], which scopes
/// each read-lock acquisition to a single fork/lookup inside `poll`. A peer
/// trickling its body therefore cannot pin the lock while a `Train`
/// request's write blocks — which would otherwise queue every new reader
/// behind it and stall all workers.
pub fn handle_decompress_stream(state: &ServerState, input: &mut dyn Read) -> Response {
    let max_elems = state.config.max_field_elems;
    let mut decoder = StreamFieldDecoder::new(&state.registry);
    let mut sink: Option<Field> = None;
    let mut first_codec: Option<CodecId> = None;
    let mut primed = false;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = match input.read(&mut buf) {
            Ok(n) => n,
            Err(e) => return error(ErrorCode::Internal, format!("body read failed: {e}")),
        };
        if n == 0 {
            decoder.finish();
        } else {
            let Some(fed) = buf.get(..n) else {
                return error(ErrorCode::Internal, "reader overran its buffer");
            };
            if !primed {
                primed = true;
                // Single-frame streams reveal their codec up front; for
                // archives (different magic) this stays None and the
                // per-codec counter is not attributed.
                first_codec = aesz_repro::metrics::container::peek(fed)
                    .ok()
                    .map(|info| info.codec);
            }
            decoder.feed(fed);
        }
        loop {
            let out = match decoder.poll() {
                Ok(out) => out,
                Err(e) => return error(error_code_for(&e), e.to_string()),
            };
            let Some(out) = out else { break };
            match out {
                StreamOutput::Header(h) => {
                    if h.dims.len() > max_elems {
                        return error(
                            ErrorCode::TooLarge,
                            "reconstruction exceeds the element cap",
                        );
                    }
                    sink = Some(Field::zeros(h.dims));
                }
                StreamOutput::Chunk(spec, chunk) => match sink.as_mut() {
                    Some(field) => field.write_block_valid(&spec, chunk.as_slice()),
                    None => {
                        return error(
                            ErrorCode::Malformed,
                            "chunk emitted before the archive header",
                        )
                    }
                },
                StreamOutput::Field(field) => {
                    if field.len() > max_elems {
                        return error(
                            ErrorCode::TooLarge,
                            "reconstruction exceeds the element cap",
                        );
                    }
                    sink = Some(field);
                }
            }
        }
        if n == 0 {
            state.count_stream_models(
                decoder.registry_model_hits(),
                decoder.resolved_models() as u64,
            );
            return match sink {
                Some(field) => {
                    if let Some(codec) = first_codec {
                        state.count_decompress(codec);
                    }
                    Response::DecompressOk { field }
                }
                None => error(ErrorCode::Malformed, "empty decompress body"),
            };
        }
    }
}

/// Reject wire-supplied training knobs above the server's configured
/// maxima. Knobs are a compute budget handed to untrusted peers — the
/// socket read timeout bounds their I/O but not the CPU a `Train` request
/// spends — so each one is checked before any training work starts.
fn check_train_knobs(knobs: &TrainKnobs, state: &ServerState) -> Result<(), (ErrorCode, String)> {
    let config = &state.config;
    let caps = [
        ("epochs", knobs.epochs, config.max_train_epochs),
        ("block", knobs.block, config.max_train_block),
        ("latent", knobs.latent, config.max_train_latent),
        ("max_blocks", knobs.max_blocks, config.max_train_blocks),
    ];
    for (name, got, cap) in caps {
        if got > cap {
            return Err((
                ErrorCode::TooLarge,
                format!("training knob {name}={got} exceeds the server cap of {cap}"),
            ));
        }
    }
    Ok(())
}

/// Train a learned codec, make the model resident (registry + store +
/// optional sidecar), and hand the serialized frame back.
fn train(state: &ServerState, codec: CodecId, knobs: TrainKnobs, field: &Field) -> Response {
    if let Err((code, msg)) = check_train_knobs(&knobs, state) {
        return error(code, msg);
    }
    let built = match build_trained(codec, &knobs, field) {
        Ok(b) => b,
        Err((code, msg)) => return error(code, msg),
    };
    let Some(model) = built.embedded_model() else {
        return error(ErrorCode::Internal, "trained codec produced no model");
    };
    // Resident immediately: later decompress requests hit the registered
    // instance without a store round-trip.
    state.registry.with_write(|r| {
        r.model_store_mut().insert(model.clone());
        r.register(built);
    });
    if let Some(dir) = &state.config.model_dir {
        let _ = std::fs::create_dir_all(dir);
        let _ = ModelStore::save_sidecar(dir, &model);
    }
    Response::TrainOk {
        id: model.id,
        frame: model.frame.clone(),
    }
}

/// Mirror of the CLI's training dispatch (`aesz train`): same codecs, same
/// rank checks, same defaulting — a knob of 0 means "codec default".
fn build_trained(
    codec: CodecId,
    knobs: &TrainKnobs,
    field: &Field,
) -> Result<Box<dyn Compressor>, (ErrorCode, String)> {
    use aesz_repro::baselines::{AeA, AeB};
    use aesz_repro::AeSz;

    let fields = std::slice::from_ref(field);
    let default_epochs = 3usize;
    match codec {
        CodecId::AeSz => {
            let rank = field.dims().rank();
            if rank < 2 {
                return Err((
                    ErrorCode::Unsupported,
                    "aesz training needs a 2D or 3D field".into(),
                ));
            }
            let mut opts = TrainingOptions::default_for_rank(rank);
            if knobs.epochs != 0 {
                opts.epochs = knobs.epochs as usize;
            }
            if knobs.block != 0 {
                opts.block_size = knobs.block as usize;
            }
            if knobs.latent != 0 {
                opts.latent_dim = knobs.latent as usize;
            }
            if knobs.max_blocks != 0 {
                opts.max_blocks = knobs.max_blocks as usize;
            }
            opts.seed = knobs.seed;
            Ok(Box::new(AeSz::from_model(train_swae_for_field(
                fields, &opts,
            ))))
        }
        CodecId::AeA => {
            let mut ae = AeA::new(knobs.seed);
            let epochs = if knobs.epochs == 0 {
                default_epochs
            } else {
                knobs.epochs as usize
            };
            ae.train(fields, epochs, knobs.seed);
            Ok(Box::new(ae))
        }
        CodecId::AeB => {
            if field.dims().rank() != 3 {
                return Err((
                    ErrorCode::Unsupported,
                    "aeb training needs a 3D field".into(),
                ));
            }
            let mut ae = AeB::new(knobs.seed);
            let epochs = if knobs.epochs == 0 {
                default_epochs
            } else {
                knobs.epochs as usize
            };
            ae.train(fields, epochs, knobs.seed);
            Ok(Box::new(ae))
        }
        other => Err((
            ErrorCode::Unsupported,
            format!(
                "codec {} takes no model; only aesz, aea and aeb train",
                other.name()
            ),
        )),
    }
}

/// Inventory: models resident in the store (verified by construction) plus
/// anything sitting in the configured sidecar directory.
fn list_models(state: &ServerState) -> Response {
    let mut entries: Vec<ModelEntry> = Vec::new();
    state.registry.with_read(|r| {
        for id in r.model_store().ids() {
            if let Some(m) = r.model_store().lookup(id) {
                entries.push(ModelEntry {
                    id,
                    codec: Some(m.codec()),
                    verified: true,
                    param_bytes: m.payload().len() as u64,
                });
            }
        }
    });
    if let Some(dir) = &state.config.model_dir {
        if let Ok(scan) = ModelStore::scan_sidecar_dir(dir) {
            for s in scan {
                let Some(id) = s.id else { continue };
                if entries.iter().any(|e| e.id == id) {
                    continue;
                }
                entries.push(ModelEntry {
                    id,
                    codec: s.codec,
                    verified: s.verified,
                    param_bytes: s.param_bytes,
                });
            }
        }
    }
    Response::ModelList { entries }
}
