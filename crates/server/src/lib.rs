//! # aesz-server
//!
//! Compression-as-a-service for the AE-SZ reproduction: a std-only TCP
//! daemon speaking the length-prefixed [`AESP`
//! protocol](aesz_repro::metrics::protocol) with existing `AESC`/`AESA`
//! container bytes as payloads.
//!
//! The deployment story of the paper (one trained network serving every
//! snapshot of an application) needs models to be *resident*: training
//! dominates end-to-end latency, so a per-file CLI pays it on every
//! invocation while a daemon pays it once. [`Server`] keeps a
//! [`SharedRegistry`](aesz_repro::SharedRegistry) of hot trained models
//! behind an `RwLock`, forks per-request instances under a read lock, and
//! resolves missing models through the content-addressed
//! [`ModelStore`](aesz_repro::ModelStore) exactly once per model no matter
//! how many requests race on it.
//!
//! Resource discipline:
//!
//! * **caps before allocation** — the declared body length is checked
//!   against [`ServerConfig::max_request_bytes`] before a single body byte
//!   is read, and raw fields against [`ServerConfig::max_field_elems`]
//!   before their data is touched;
//! * **bounded concurrency** — a fixed worker pool
//!   ([`rayon::pool::WorkPool`]) serves connections; past the connection
//!   cap or the queue cap the acceptor answers with a typed `Busy`
//!   response instead of buffering, so load sheds at the edge;
//! * **bounded per-connection memory** — `Decompress` bodies stream from
//!   the socket through
//!   [`StreamFieldDecoder`](aesz_repro::StreamFieldDecoder) in fixed
//!   slabs; the input is never buffered whole.
//!
//! `health` and `stats` endpoints expose uptime, request/byte counters,
//! per-codec counts, queue depth, and model-cache hit/resolution counts
//! ([`ServerStats`](aesz_repro::metrics::protocol::ServerStats)).

#![forbid(unsafe_code)]

pub mod client;
pub mod config;
// Socket-facing parse paths carry the workspace's no-panic contract (the
// `aesz-lint` deny-set plus the clippy header, mirroring the wire modules).
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod conn;
pub mod handler;
pub mod server;
pub mod state;

pub use client::{ClientError, RemoteClient};
pub use config::ServerConfig;
pub use server::{Server, ServerHandle};
pub use state::ServerState;
