//! Per-connection protocol framing over a `TcpStream`.
//!
//! This module owns the socket-facing parse path, so it carries the
//! workspace's wire-safety contract (lint.toml deny-set): the declared body
//! length is checked against the configured cap *before* a single body byte
//! is read or allocated, every failure is a typed `Error` response followed
//! by a close, and nothing here can panic on hostile bytes.
//!
//! Connection lifecycle: success responses keep the connection open for the
//! next request (clients may pipeline sequentially); `Error` and `Busy`
//! responses close it, so a peer that desynchronized the framing cannot
//! feed us garbage forever.

use std::io::{Read, Write};
use std::net::TcpStream;

use crate::handler;
use crate::state::ServerState;
use aesz_repro::metrics::protocol::{ErrorCode, MsgHeader, MsgType, Response, HEADER_LEN};

/// Serve requests on `stream` until EOF, an error response, or an I/O
/// failure. Never panics; never blocks longer than the configured read
/// timeout on an idle peer. `worker` is the pool worker index executing
/// this connection (the per-worker codec-cache key); `None` when the
/// caller runs outside the pool.
pub fn serve_connection(stream: TcpStream, state: &ServerState, worker: Option<usize>) {
    let mut stream = stream;
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        match serve_one(&mut stream, state, worker) {
            Ok(true) => continue,
            Ok(false) | Err(_) => return,
        }
    }
}

/// Serve one request. `Ok(true)` keeps the connection open.
fn serve_one(
    stream: &mut TcpStream,
    state: &ServerState,
    worker: Option<usize>,
) -> std::io::Result<bool> {
    let mut header = [0u8; HEADER_LEN];
    if read_header_or_eof(stream, &mut header)? {
        return Ok(false); // clean close at a message boundary
    }
    let parsed = match MsgHeader::parse(&header) {
        Ok(h) => h,
        Err(e) => {
            state.count_request();
            state.count_error();
            drain_available(stream, u64::MAX);
            return respond(
                stream,
                state,
                &Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                },
                false,
            );
        }
    };
    state.count_request();
    state.count_bytes_in(HEADER_LEN as u64);
    if !parsed.msg.is_request() {
        state.count_error();
        drain_available(stream, parsed.body_len);
        return respond(
            stream,
            state,
            &Response::Error {
                code: ErrorCode::Malformed,
                message: "response type where a request was expected".into(),
            },
            false,
        );
    }
    if parsed.body_len > state.config.max_request_bytes {
        // The cap check precedes any body read or allocation: an oversized
        // (or hostile u64) declared length costs nothing. Bytes the peer
        // already pushed are drained (bounded, non-blocking) so the error
        // response is not torn away by a reset on close.
        state.count_error();
        drain_available(stream, parsed.body_len);
        return respond(
            stream,
            state,
            &Response::Error {
                code: ErrorCode::TooLarge,
                message: "request body exceeds the server limit".into(),
            },
            false,
        );
    }
    let response = if parsed.msg == MsgType::Decompress {
        // Stream the body straight off the socket; it is never buffered
        // whole on the server side.
        let mut limited = Read::take(&mut *stream, parsed.body_len);
        let response = handler::handle_decompress_stream(state, &mut limited);
        let leftover = limited.limit();
        // bytes_in counts what the decoder actually consumed, not the
        // declared length — a body that never arrives must not inflate it.
        state.count_bytes_in(parsed.body_len.saturating_sub(leftover));
        if leftover > 0 {
            // The decoder stopped before consuming the body (it errored);
            // the connection closes below, so only what already arrived is
            // drained — never more.
            debug_assert!(!matches!(response, Response::DecompressOk { .. }));
            drain_available(stream, leftover);
        }
        response
    } else {
        // Bounded by the cap check above; `take` enforces it byte-for-byte.
        let mut body = Vec::new();
        let got = Read::take(&mut *stream, parsed.body_len).read_to_end(&mut body)?;
        // Count the bytes that actually arrived, truncated bodies included.
        state.count_bytes_in(got as u64);
        if (got as u64) != parsed.body_len {
            state.count_error();
            return respond(
                stream,
                state,
                &Response::Error {
                    code: ErrorCode::Malformed,
                    message: "request body ended early".into(),
                },
                false,
            );
        }
        handler::handle_buffered(state, worker, parsed.msg, &body)
    };
    let keep_open = match &response {
        Response::Error { .. } => {
            state.count_error();
            false
        }
        Response::Busy { .. } => {
            state.count_busy();
            false
        }
        _ => {
            state.count_ok();
            true
        }
    };
    respond(stream, state, &response, keep_open)
}

/// Encode and send `response`, returning `keep_open` on success.
fn respond(
    stream: &mut TcpStream,
    state: &ServerState,
    response: &Response,
    keep_open: bool,
) -> std::io::Result<bool> {
    let bytes = response.encode();
    stream.write_all(&bytes)?;
    stream.flush()?;
    state.count_bytes_out(bytes.len() as u64);
    Ok(keep_open)
}

/// Best-effort drain of request bytes the peer already sent, ahead of an
/// error response that closes the connection: closing a socket with unread
/// received data answers with a reset, and a reset can discard the error
/// response out of the peer's receive buffer before it reads it. Takes only
/// what is already available locally — never blocks, never reads more than
/// a fixed cap — so a hostile declared length still costs nothing.
fn drain_available(stream: &mut TcpStream, declared: u64) {
    const DRAIN_CAP: u64 = 1 << 20;
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let mut scratch = [0u8; 16 * 1024];
    let mut left = declared.min(DRAIN_CAP);
    while left > 0 {
        match stream.read(&mut scratch) {
            Ok(0) => break,
            Ok(n) => left = left.saturating_sub(n as u64),
            Err(_) => break, // WouldBlock: nothing more has arrived
        }
    }
    let _ = stream.set_nonblocking(false);
}

/// Fill the 16-byte header buffer. `Ok(true)` means the peer closed cleanly
/// before sending anything; EOF mid-header is an error.
fn read_header_or_eof(stream: &mut TcpStream, buf: &mut [u8; HEADER_LEN]) -> std::io::Result<bool> {
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        let region = match buf.get_mut(filled..) {
            Some(r) => r,
            None => return Ok(false), // filled == HEADER_LEN, loop exits
        };
        let n = stream.read(region)?;
        if n == 0 {
            if filled == 0 {
                return Ok(true);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-header",
            ));
        }
        filled += n;
    }
    Ok(false)
}
