//! Shared daemon state: the hot-model registry and the stats counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::config::ServerConfig;
use aesz_repro::metrics::protocol::{ServerStats, CODEC_SLOTS};
use aesz_repro::{
    CodecId, Compressor, DecompressError, ErrorBound, Field, ModelId, SharedRegistry,
};
use rayon::pool::{WorkPool, WorkerLocal};

/// One worker thread's resident codec forks, one slot per codec
/// (`ServerStats::codec_slot`). Each entry remembers the embedded-model id
/// the fork was taken at, so staleness is a cheap id comparison against the
/// registry ([`SharedRegistry::registered_codec_state`]): stateless codecs
/// report `None` forever (the fork never invalidates), while a `Train`
/// re-registering a learned codec changes the id and forces a re-fork.
///
/// A resident fork is more than warm weights: the AE codecs carry their
/// inference scratch (`aesz_nn::NnScratch` plus batch/latent staging
/// buffers) inside the fork. Forks clone *cold* — each worker's fork warms
/// its own buffers on first use and then serves every subsequent request on
/// that worker allocation-free, which is exactly the residency this cache
/// exists to provide.
pub(crate) struct CodecCache {
    entries: Vec<Option<CacheEntry>>,
}

/// The embedded-model id a fork was taken at, plus the fork itself.
type CacheEntry = (Option<ModelId>, Box<dyn Compressor>);

impl Default for CodecCache {
    fn default() -> Self {
        CodecCache {
            entries: (0..CODEC_SLOTS).map(|_| None).collect(),
        }
    }
}

/// Everything the connection handlers share: the registry of resident
/// models, the configuration caps, and lock-free stats counters. One
/// instance lives behind an `Arc` for the daemon's lifetime.
pub struct ServerState {
    /// Hot codec registry (trained models stay resident here).
    pub registry: SharedRegistry,
    /// The caps and knobs the daemon was started with.
    pub config: ServerConfig,
    started: Instant,
    pool: OnceLock<Arc<WorkPool>>,
    /// Per-worker codec forks, sized to the pool when it is attached.
    worker_codecs: OnceLock<WorkerLocal<CodecCache>>,
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    busy: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    conns_active: AtomicU64,
    conns_total: AtomicU64,
    /// Model-cache hits observed inside streaming decodes (the per-stream
    /// decoder counters, folded in as streams finish).
    stream_hits: AtomicU64,
    /// Store resolutions observed inside streaming decodes.
    stream_resolutions: AtomicU64,
    compress_by_codec: [AtomicU64; CODEC_SLOTS],
    decompress_by_codec: [AtomicU64; CODEC_SLOTS],
}

impl ServerState {
    /// Fresh state around `registry`, started "now".
    pub fn new(config: ServerConfig, registry: SharedRegistry) -> Self {
        ServerState {
            registry,
            config,
            started: Instant::now(),
            pool: OnceLock::new(),
            worker_codecs: OnceLock::new(),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            conns_active: AtomicU64::new(0),
            conns_total: AtomicU64::new(0),
            stream_hits: AtomicU64::new(0),
            stream_resolutions: AtomicU64::new(0),
            compress_by_codec: std::array::from_fn(|_| AtomicU64::new(0)),
            decompress_by_codec: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Attach the worker pool (once, by the server during bind) so queue
    /// depth can be reported, and size the per-worker codec caches to it.
    pub(crate) fn set_pool(&self, pool: Arc<WorkPool>) {
        let _ = self.worker_codecs.set(WorkerLocal::new(pool.workers()));
        let _ = self.pool.set(pool);
    }

    /// Compress `field`, preferring the executing worker's resident codec
    /// fork over the registry's fork-per-call path. A cached fork is used
    /// only while it is *current* — the registered instance still reports
    /// the embedded-model id the fork was taken at — so results are
    /// indistinguishable from a fresh fork (compression is deterministic in
    /// the model and input; see `tests/registry_concurrency.rs`). Without a
    /// worker identity (no pool attached, direct calls) this falls back to
    /// [`SharedRegistry::compress`].
    pub(crate) fn compress_cached(
        &self,
        worker: Option<usize>,
        codec: CodecId,
        field: &Field,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, DecompressError> {
        let (Some(locals), Some(worker)) = (self.worker_codecs.get(), worker) else {
            return self.registry.compress(codec, field, bound);
        };
        let Some(mut cache) = locals.get(worker) else {
            return self.registry.compress(codec, field, bound);
        };
        let Some(current) = self.registry.registered_codec_state(codec) else {
            return Err(DecompressError::UnknownCodec(codec as u8));
        };
        let slot = ServerStats::codec_slot(codec);
        if let Some(Some((forked_at, instance))) = cache.entries.get_mut(slot) {
            if *forked_at == current && instance.codec_id() == codec {
                return SharedRegistry::compress_on(instance.as_mut(), field, bound);
            }
        }
        let mut fresh = self
            .registry
            .fork(codec)
            .ok_or(DecompressError::UnknownCodec(codec as u8))?;
        let result = SharedRegistry::compress_on(fresh.as_mut(), field, bound);
        if let Some(entry) = cache.entries.get_mut(slot) {
            *entry = Some((current, fresh));
        }
        result
    }

    /// Connections queued behind busy workers right now.
    pub fn queue_depth(&self) -> u64 {
        self.pool
            .get()
            .map(|p| p.pending().saturating_sub(p.workers()) as u64)
            .unwrap_or(0)
    }

    /// Connections currently in service (accepted, not yet closed).
    pub fn active_connections(&self) -> u64 {
        self.conns_active.load(Ordering::Relaxed)
    }

    /// Milliseconds since the daemon started.
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    pub(crate) fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_ok(&self) {
        self.ok.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_busy(&self) {
        self.busy.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn count_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn connection_opened(&self) {
        self.conns_total.fetch_add(1, Ordering::Relaxed);
        self.conns_active.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was counted ([`ServerState::connection_opened`]) and is
    /// now done.
    pub(crate) fn connection_closed(&self) {
        self.conns_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// A connection was rejected at the edge (never entered service).
    pub(crate) fn connection_rejected(&self) {
        self.conns_total.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_compress(&self, codec: CodecId) {
        if let Some(slot) = self.compress_by_codec.get(ServerStats::codec_slot(codec)) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn count_decompress(&self, codec: CodecId) {
        if let Some(slot) = self.decompress_by_codec.get(ServerStats::codec_slot(codec)) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fold the counters of a finished streaming decode into the totals.
    pub(crate) fn count_stream_models(&self, hits: u64, resolutions: u64) {
        self.stream_hits.fetch_add(hits, Ordering::Relaxed);
        self.stream_resolutions
            .fetch_add(resolutions, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of every counter (individually atomic;
    /// relative skew across counters is fine for monitoring).
    pub fn snapshot(&self) -> ServerStats {
        let mut stats = ServerStats {
            uptime_ms: self.uptime_ms(),
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            busy_rejections: self.busy.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            queue_depth: self.queue_depth(),
            connections_active: self.conns_active.load(Ordering::Relaxed),
            connections_total: self.conns_total.load(Ordering::Relaxed),
            model_cache_hits: self.registry.model_cache_hits()
                + self.stream_hits.load(Ordering::Relaxed),
            model_resolutions: self.registry.model_resolutions()
                + self.stream_resolutions.load(Ordering::Relaxed),
            models_resident: self.registry.models_resident() as u64,
            ..ServerStats::default()
        };
        for (out, slot) in stats
            .compress_by_codec
            .iter_mut()
            .zip(self.compress_by_codec.iter())
        {
            *out = slot.load(Ordering::Relaxed);
        }
        for (out, slot) in stats
            .decompress_by_codec
            .iter_mut()
            .zip(self.decompress_by_codec.iter())
        {
            *out = slot.load(Ordering::Relaxed);
        }
        stats
    }
}
