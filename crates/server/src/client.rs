//! Blocking `AESP` client over a `TcpStream` — what `aesz remote` (and the
//! tests) speak to the daemon.
//!
//! The client side parses server bytes with the same hostile-input
//! discipline as the server parses client bytes: the declared response
//! length is capped before allocation and every malformed byte surfaces as
//! a typed [`ClientError`], never a panic — a compromised or confused
//! server cannot take the client down with it.

use std::io::{Read, Write};
use std::net::TcpStream;

use aesz_repro::metrics::protocol::{Limits, MsgHeader, Request, Response};
use aesz_repro::DecompressError;

/// Why a remote request failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, send, or receive).
    Io(std::io::Error),
    /// The server's bytes violated the protocol.
    Protocol(DecompressError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation from server: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to an `aesz serve` daemon. Requests are sequential
/// (send, then read the matching response); the connection stays usable
/// after success responses and is consumed by `Error`/`Busy` (the server
/// closes its end).
pub struct RemoteClient {
    stream: TcpStream,
    limits: Limits,
}

impl RemoteClient {
    /// Connect to `addr` (`host:port`) with default response limits.
    pub fn connect(addr: &str) -> std::io::Result<RemoteClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(RemoteClient {
            stream,
            limits: Limits::default(),
        })
    }

    /// Replace the response-side caps (body bytes / field elements).
    pub fn with_limits(mut self, limits: Limits) -> RemoteClient {
        self.limits = limits;
        self
    }

    /// Send one request and read its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let bytes = request.encode();
        self.stream.write_all(&bytes)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut header = [0u8; aesz_repro::metrics::protocol::HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let parsed = MsgHeader::parse(&header).map_err(ClientError::Protocol)?;
        if parsed.msg.is_request() {
            return Err(ClientError::Protocol(DecompressError::InvalidHeader(
                "request type where a response was expected",
            )));
        }
        if parsed.body_len > self.limits.max_body {
            // Capped before allocation, mirroring the server side.
            return Err(ClientError::Protocol(DecompressError::Unsupported(
                "response body exceeds the client limit",
            )));
        }
        let mut body = Vec::new();
        let got = Read::take(&mut self.stream, parsed.body_len).read_to_end(&mut body)?;
        if (got as u64) != parsed.body_len {
            return Err(ClientError::Protocol(DecompressError::Truncated(
                "response body",
            )));
        }
        Response::decode_body(parsed.msg, &body, self.limits.max_elems)
            .map_err(ClientError::Protocol)
    }
}
