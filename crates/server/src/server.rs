//! The daemon: bind, accept, shed load at the edge, serve from the pool.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::config::ServerConfig;
use crate::conn;
use crate::state::ServerState;
use aesz_repro::metrics::protocol::Response;
use aesz_repro::SharedRegistry;
use rayon::pool::WorkPool;
use std::io::Write;

/// A bound (not yet running) daemon. [`Server::run`] blocks the calling
/// thread in the accept loop; take a [`ServerHandle`] first to stop it from
/// another thread.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    pool: Arc<WorkPool>,
    /// `workers + queue_cap`: past this many connections in flight the
    /// acceptor answers `Busy` instead of queueing.
    pool_cap: usize,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listener and build the shared state: a default registry
    /// (all seven codecs) with the configured sidecar directory attached,
    /// and a worker pool sized `workers` with `queue_cap` connections of
    /// headroom.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let registry = SharedRegistry::with_defaults();
        if let Some(dir) = &config.model_dir {
            registry.add_sidecar_dir(dir.clone());
        }
        let workers = config.workers.max(1);
        let pool_cap = workers.saturating_add(config.queue_cap);
        let pool = Arc::new(WorkPool::new(workers, pool_cap));
        let state = Arc::new(ServerState::new(config, registry));
        state.set_pool(Arc::clone(&pool));
        Ok(Server {
            listener,
            state,
            pool,
            pool_cap,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (registry + counters) — lets an embedder pre-train
    /// models or read stats without a socket round-trip.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// A handle that can stop [`Server::run`] from another thread.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            stop: Arc::clone(&self.stop),
        })
    }

    /// Accept and serve until [`ServerHandle::shutdown`]. Blocks the
    /// calling thread.
    pub fn run(self) -> std::io::Result<()> {
        for incoming in self.listener.incoming() {
            if self.stop.load(Ordering::Acquire) {
                return Ok(());
            }
            let stream = match incoming {
                Ok(stream) => stream,
                Err(_) => {
                    // Accept can fail persistently (EMFILE once fds are
                    // exhausted); back off briefly instead of spinning the
                    // acceptor at 100% CPU until the condition clears.
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            self.accept(stream);
        }
        Ok(())
    }

    /// Admit or reject one fresh connection. Rejection is cheap and typed:
    /// a `Busy` response carrying the queue depth, then close — the peer
    /// knows to back off, and the daemon buffers nothing.
    fn accept(&self, stream: TcpStream) {
        let active = self.state.active_connections();
        let at_connection_cap = active >= self.state.config.max_connections as u64;
        // The acceptor is the pool's only submitter, so this check cannot
        // race against another producer: if there is room now, try_execute
        // below cannot fail.
        let at_queue_cap = self.pool.pending() >= self.pool_cap;
        if at_connection_cap || at_queue_cap {
            self.state.connection_rejected();
            self.state.count_busy();
            busy_reject(stream, self.state.queue_depth());
            return;
        }
        self.state.connection_opened();
        let state = Arc::clone(&self.state);
        // Tagged submission: the job learns which worker thread runs it, the
        // key into the per-worker codec cache (stolen jobs get the stealing
        // worker's index, so the key always names the executing thread).
        let submitted = self.pool.try_execute_with(Box::new(move |worker| {
            conn::serve_connection(stream, &state, Some(worker));
            state.connection_closed();
        }));
        if let Err(full) = submitted {
            // Unreachable with a single submitter (checked above); if it
            // ever happens, dropping the job closes the stream.
            drop(full);
            self.state.connection_closed();
            self.state.count_busy();
        }
    }
}

/// Best-effort `Busy` + close; the peer may already be gone, which is fine.
fn busy_reject(mut stream: TcpStream, queue_depth: u64) {
    let bytes = Response::Busy { queue_depth }.encode();
    let _ = stream.write_all(&bytes);
    let _ = stream.flush();
}

/// Stops a running [`Server`] from another thread.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to exit: sets the stop flag, then opens (and
    /// immediately drops) one connection to unblock the blocking accept.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
    }
}
