//! Daemon configuration: bind address, concurrency, and resource caps.

use std::path::PathBuf;
use std::time::Duration;

/// Everything `aesz serve` can be told. Every cap has a deliberate default
/// so a bare `ServerConfig::default()` is already safe to expose to
/// untrusted peers.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks a free one).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Connections allowed to queue behind busy workers before the
    /// acceptor answers `Busy`.
    pub queue_cap: usize,
    /// Connections allowed to be in service at once (queued + running);
    /// past this the acceptor answers `Busy` immediately.
    pub max_connections: usize,
    /// Largest request body accepted, in bytes — checked against the
    /// declared length *before* any body byte is read.
    pub max_request_bytes: u64,
    /// Largest raw-field element count accepted (compress/train inputs and
    /// decompress outputs alike).
    pub max_field_elems: usize,
    /// Sidecar directory of `.aesm` models: attached to the model store for
    /// lazy resolution, scanned by `ListModels`, and where freshly trained
    /// models are saved.
    pub model_dir: Option<PathBuf>,
    /// Per-connection socket read timeout, so an idle or stalled peer
    /// cannot pin a worker forever.
    pub read_timeout: Duration,
    /// Largest `epochs` training knob accepted from the wire. The read
    /// timeout bounds a peer's I/O but not the CPU a `Train` request buys,
    /// so every training knob is capped before any work starts.
    pub max_train_epochs: u32,
    /// Largest `block` (edge length) training knob accepted from the wire.
    pub max_train_block: u32,
    /// Largest `latent` (dimension) training knob accepted from the wire.
    pub max_train_latent: u32,
    /// Largest `max_blocks` (block budget) training knob accepted from the
    /// wire.
    pub max_train_blocks: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2),
            queue_cap: 16,
            max_connections: 64,
            max_request_bytes: 256 << 20,
            max_field_elems: 1 << 27,
            model_dir: None,
            read_timeout: Duration::from_secs(30),
            // Comfortably above the codec defaults (6 epochs, 32-block,
            // 16-latent, 256-block budget) while keeping the compute one
            // request can buy bounded.
            max_train_epochs: 128,
            max_train_block: 128,
            max_train_latent: 256,
            max_train_blocks: 8192,
        }
    }
}
