//! AE-SZ compressor configuration.

/// Which predictors the compressor may choose from per block.
///
/// `Adaptive` is the AE-SZ default (Algorithm 1); the single-predictor
/// policies exist for the ablation of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorPolicy {
    /// Select between the autoencoder and (mean-)Lorenzo per block.
    Adaptive,
    /// Always use the autoencoder predictor.
    AeOnly,
    /// Always use the (mean-)Lorenzo predictor.
    LorenzoOnly,
}

/// Tunable parameters of the AE-SZ compressor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AeSzConfig {
    /// Block edge length; must match the block size the model was trained on.
    pub block_size: usize,
    /// Number of linear quantization bins (65,536 in the paper).
    pub quant_bins: usize,
    /// The latent vectors are quantized with an error bound of
    /// `latent_eb_fraction · e` where `e` is the data error bound (0.1 in the
    /// paper's "custo." codec).
    pub latent_eb_fraction: f64,
    /// Predictor selection policy (Fig. 11 ablation).
    pub policy: PredictorPolicy,
    /// Number of consecutive blocks each parallel work unit processes in the
    /// rayon fan-out of [`crate::AeSz`]. Larger chunks amortize scheduling,
    /// smaller ones balance load; the produced stream is identical for every
    /// value (including the serial path). Values below 1 are treated as 1.
    pub chunk_blocks: usize,
}

impl Default for AeSzConfig {
    fn default() -> Self {
        AeSzConfig {
            block_size: 32,
            quant_bins: 65_536,
            latent_eb_fraction: 0.1,
            policy: PredictorPolicy::Adaptive,
            chunk_blocks: 64,
        }
    }
}

impl AeSzConfig {
    /// Default configuration for 2D fields (32×32 blocks).
    pub fn default_2d() -> Self {
        Self::default()
    }

    /// Default configuration for 3D fields (8×8×8 blocks).
    pub fn default_3d() -> Self {
        AeSzConfig {
            block_size: 8,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c2 = AeSzConfig::default_2d();
        assert_eq!(c2.block_size, 32);
        assert_eq!(c2.quant_bins, 65_536);
        assert!((c2.latent_eb_fraction - 0.1).abs() < 1e-12);
        assert_eq!(c2.policy, PredictorPolicy::Adaptive);
        assert!(c2.chunk_blocks >= 1);
        assert_eq!(AeSzConfig::default_3d().block_size, 8);
    }
}
