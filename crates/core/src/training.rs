//! Offline training of the AE-SZ predictor (the left half of Fig. 2).
//!
//! The paper trains one SWAE per data field on blocks drawn from the training
//! snapshots, then reuses that network for every later snapshot of the same
//! application. These helpers turn fields into normalised training blocks and
//! drive [`aesz_nn::Trainer`] with the SWAE objective.

use aesz_nn::models::conv_ae::{AeConfig, ConvAutoencoder};
use aesz_nn::models::zoo::AeVariant;
use aesz_nn::train::{TrainConfig, Trainer};
use aesz_tensor::Field;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Options controlling blockwise SWAE training for one data field.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingOptions {
    /// Block edge length (must match the compressor's block size).
    pub block_size: usize,
    /// Latent vector length.
    pub latent_dim: usize,
    /// Channels per convolutional block.
    pub channels: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Cap on the number of training blocks sampled from the fields.
    pub max_blocks: usize,
    /// Which autoencoder variant to train (SWAE for AE-SZ itself).
    pub variant: AeVariant,
    /// RNG seed.
    pub seed: u64,
}

impl TrainingOptions {
    /// Reasonable CPU-scale defaults for 2D (rank 2) or 3D (rank 3) fields.
    pub fn default_for_rank(rank: usize) -> Self {
        match rank {
            2 => TrainingOptions {
                block_size: 32,
                latent_dim: 16,
                channels: vec![8, 16],
                epochs: 6,
                batch_size: 16,
                learning_rate: 2e-3,
                max_blocks: 256,
                variant: AeVariant::aesz_default(),
                seed: 2021,
            },
            3 => TrainingOptions {
                block_size: 8,
                latent_dim: 16,
                channels: vec![8, 16],
                epochs: 6,
                batch_size: 16,
                learning_rate: 2e-3,
                max_blocks: 256,
                variant: AeVariant::aesz_default(),
                seed: 2021,
            },
            r => panic!("unsupported rank {r}"),
        }
    }

    /// Spatial rank implied by the block shape of the first training field.
    fn ae_config(&self, rank: usize) -> AeConfig {
        AeConfig {
            spatial_rank: rank,
            block_size: self.block_size,
            latent_dim: self.latent_dim,
            channels: self.channels.clone(),
            variational: self.variant.is_variational(),
            seed: self.seed,
        }
    }
}

/// Extract up to `max_blocks` normalised (to `[-1, 1]`) padded blocks from a
/// field, sampled uniformly without replacement.
pub fn training_blocks_from_field(
    field: &Field,
    block_size: usize,
    max_blocks: usize,
    seed: u64,
) -> Vec<Vec<f32>> {
    let (lo, hi) = field.min_max();
    let range = hi - lo;
    let mut specs: Vec<_> = field.blocks(block_size).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    specs.shuffle(&mut rng);
    specs
        .into_iter()
        .take(max_blocks)
        .map(|spec| {
            let blk = field.extract_block(&spec);
            if range > 0.0 {
                blk.data
                    .iter()
                    .map(|&v| 2.0 * (v - lo) / range - 1.0)
                    .collect()
            } else {
                vec![0.0; blk.data.len()]
            }
        })
        .collect()
}

/// Train an autoencoder (SWAE by default) on blocks drawn from the training
/// fields, following the offline-training stage of Fig. 2.
pub fn train_swae_for_field(
    training_fields: &[Field],
    options: &TrainingOptions,
) -> ConvAutoencoder {
    assert!(
        !training_fields.is_empty(),
        "need at least one training field"
    );
    let rank = training_fields[0].dims().rank();
    assert!(
        training_fields.iter().all(|f| f.dims().rank() == rank),
        "all training fields must share the same rank"
    );
    let per_field = (options.max_blocks / training_fields.len()).max(1);
    let mut blocks = Vec::new();
    for (i, field) in training_fields.iter().enumerate() {
        blocks.extend(training_blocks_from_field(
            field,
            options.block_size,
            per_field,
            options.seed ^ (i as u64),
        ));
    }
    let train_config = TrainConfig {
        epochs: options.epochs,
        batch_size: options.batch_size,
        learning_rate: options.learning_rate,
        variant: options.variant,
        seed: options.seed,
    };
    let mut trainer = Trainer::new(options.ae_config(rank), train_config);
    trainer.train(&blocks);
    trainer.into_model()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_datagen::Application;
    use aesz_tensor::Dims;

    #[test]
    fn blocks_are_normalised_and_capped() {
        let field = Application::CesmCldhgh.generate(Dims::d2(96, 96), 0);
        let blocks = training_blocks_from_field(&field, 32, 5, 1);
        assert_eq!(blocks.len(), 5);
        for b in &blocks {
            assert_eq!(b.len(), 32 * 32);
            assert!(b.iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn constant_field_normalises_to_zero_blocks() {
        let field = Field::from_vec(Dims::d2(32, 32), vec![3.0; 1024]).unwrap();
        let blocks = training_blocks_from_field(&field, 32, 2, 1);
        assert!(blocks[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn training_produces_a_model_of_the_requested_shape() {
        let field = Application::HurricaneU.generate(Dims::d3(16, 24, 24), 1);
        let opts = TrainingOptions {
            epochs: 1,
            max_blocks: 24,
            latent_dim: 4,
            channels: vec![4],
            ..TrainingOptions::default_for_rank(3)
        };
        let model = train_swae_for_field(&[field], &opts);
        assert_eq!(model.config().spatial_rank, 3);
        assert_eq!(model.config().block_size, 8);
        assert_eq!(model.config().latent_dim, 4);
    }

    #[test]
    #[should_panic(expected = "at least one training field")]
    fn rejects_empty_training_set() {
        train_swae_for_field(&[], &TrainingOptions::default_for_rank(2));
    }
}
