//! On-disk / in-memory layout of an AE-SZ compressed stream.
//!
//! The stream mirrors the paper's description of the compressed data: "a
//! header containing metadata (with trivial space cost), lossy compressed
//! latent vectors from autoencoders, and quantization bins (losslessly
//! encoded)" — plus the block means of mean-predicted blocks and the escaped
//! unpredictable values that SZ-style quantization always needs.

use aesz_codec::varint::{read_f32, read_f64, read_uvarint, write_f32, write_f64, write_uvarint};
use aesz_codec::CodecError;
use aesz_tensor::Dims;

use crate::config::PredictorPolicy;

/// Magic bytes identifying an AE-SZ stream.
pub const MAGIC: &[u8; 8] = b"AESZ0001";

/// Per-block predictor choice, two bits per block in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockPredictor {
    /// Autoencoder prediction from the lossily compressed latent vector.
    Ae = 0,
    /// Classic first-order Lorenzo within the block.
    Lorenzo = 1,
    /// Constant block-mean prediction ("mean-Lorenzo").
    Mean = 2,
}

impl BlockPredictor {
    fn from_bits(bits: u8) -> BlockPredictor {
        match bits & 0b11 {
            0 => BlockPredictor::Ae,
            1 => BlockPredictor::Lorenzo,
            _ => BlockPredictor::Mean,
        }
    }
}

/// Parsed header of an AE-SZ stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Extents of the original field.
    pub dims: Dims,
    /// Global minimum of the original field (for the [-1, 1] normalization).
    pub data_min: f32,
    /// Global maximum of the original field.
    pub data_max: f32,
    /// Value-range-relative error bound the stream was compressed with.
    pub rel_eb: f64,
    /// Block edge length.
    pub block_size: usize,
    /// Latent vector length of the model that produced the stream.
    pub latent_dim: usize,
    /// Predictor policy used (Adaptive / AeOnly / LorenzoOnly).
    pub policy: PredictorPolicy,
}

/// Fully parsed AE-SZ stream: header, per-block predictor flags, and the four
/// compressed payload sections.
#[derive(Debug, Clone, PartialEq)]
pub struct Stream {
    /// Stream header.
    pub header: Header,
    /// Predictor choice per block, in block-grid scan order.
    pub predictors: Vec<BlockPredictor>,
    /// "custo."-encoded latent indices of the AE-predicted blocks.
    pub latent_section: Vec<u8>,
    /// zlite-compressed little-endian means of the mean-predicted blocks.
    pub means_section: Vec<u8>,
    /// Huffman+zlite-encoded quantization codes of every block, concatenated.
    pub codes_section: Vec<u8>,
    /// zlite-compressed little-endian unpredictable values.
    pub unpredictable_section: Vec<u8>,
}

fn write_dims(out: &mut Vec<u8>, dims: Dims) {
    let e = dims.extents();
    out.push(e.len() as u8);
    for &d in &e {
        write_uvarint(out, d as u64);
    }
}

fn read_dims(buf: &[u8], pos: &mut usize) -> Result<Dims, CodecError> {
    let rank = *buf.get(*pos).ok_or(CodecError::Malformed("rank"))? as usize;
    *pos += 1;
    let mut e = Vec::with_capacity(rank);
    for _ in 0..rank {
        e.push(read_uvarint(buf, pos).ok_or(CodecError::Malformed("extent"))? as usize);
    }
    match rank {
        1 => Ok(Dims::d1(e[0])),
        2 => Ok(Dims::d2(e[0], e[1])),
        3 => Ok(Dims::d3(e[0], e[1], e[2])),
        _ => Err(CodecError::Malformed("rank must be 1-3")),
    }
}

fn write_section(out: &mut Vec<u8>, section: &[u8]) {
    write_uvarint(out, section.len() as u64);
    out.extend_from_slice(section);
}

fn read_section(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, CodecError> {
    let len = read_uvarint(buf, pos).ok_or(CodecError::Malformed("section length"))? as usize;
    let bytes = buf
        .get(*pos..*pos + len)
        .ok_or(CodecError::Malformed("section payload"))?;
    *pos += len;
    Ok(bytes.to_vec())
}

impl Stream {
    /// Serialize the stream to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        write_dims(&mut out, self.header.dims);
        write_f32(&mut out, self.header.data_min);
        write_f32(&mut out, self.header.data_max);
        write_f64(&mut out, self.header.rel_eb);
        write_uvarint(&mut out, self.header.block_size as u64);
        write_uvarint(&mut out, self.header.latent_dim as u64);
        out.push(match self.header.policy {
            PredictorPolicy::Adaptive => 0,
            PredictorPolicy::AeOnly => 1,
            PredictorPolicy::LorenzoOnly => 2,
        });
        write_uvarint(&mut out, self.predictors.len() as u64);
        // Two bits per block, packed four to a byte.
        let mut packed = vec![0u8; self.predictors.len().div_ceil(4)];
        for (i, &p) in self.predictors.iter().enumerate() {
            packed[i / 4] |= (p as u8) << ((i % 4) * 2);
        }
        out.extend_from_slice(&packed);
        write_section(&mut out, &self.latent_section);
        write_section(&mut out, &self.means_section);
        write_section(&mut out, &self.codes_section);
        write_section(&mut out, &self.unpredictable_section);
        out
    }

    /// Parse a stream from bytes produced by [`Stream::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Stream, CodecError> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(CodecError::Malformed("magic"));
        }
        let mut pos = MAGIC.len();
        let dims = read_dims(bytes, &mut pos)?;
        let data_min = read_f32(bytes, &mut pos).ok_or(CodecError::Malformed("data_min"))?;
        let data_max = read_f32(bytes, &mut pos).ok_or(CodecError::Malformed("data_max"))?;
        let rel_eb = read_f64(bytes, &mut pos).ok_or(CodecError::Malformed("rel_eb"))?;
        let block_size =
            read_uvarint(bytes, &mut pos).ok_or(CodecError::Malformed("block_size"))? as usize;
        let latent_dim =
            read_uvarint(bytes, &mut pos).ok_or(CodecError::Malformed("latent_dim"))? as usize;
        let policy = match bytes.get(pos).ok_or(CodecError::Malformed("policy"))? {
            0 => PredictorPolicy::Adaptive,
            1 => PredictorPolicy::AeOnly,
            2 => PredictorPolicy::LorenzoOnly,
            _ => return Err(CodecError::Malformed("policy value")),
        };
        pos += 1;
        let n_blocks =
            read_uvarint(bytes, &mut pos).ok_or(CodecError::Malformed("n_blocks"))? as usize;
        let packed_len = n_blocks.div_ceil(4);
        let packed = bytes
            .get(pos..pos + packed_len)
            .ok_or(CodecError::Malformed("predictor flags"))?;
        pos += packed_len;
        let predictors = (0..n_blocks)
            .map(|i| BlockPredictor::from_bits(packed[i / 4] >> ((i % 4) * 2)))
            .collect();
        let latent_section = read_section(bytes, &mut pos)?;
        let means_section = read_section(bytes, &mut pos)?;
        let codes_section = read_section(bytes, &mut pos)?;
        let unpredictable_section = read_section(bytes, &mut pos)?;
        Ok(Stream {
            header: Header {
                dims,
                data_min,
                data_max,
                rel_eb,
                block_size,
                latent_dim,
                policy,
            },
            predictors,
            latent_section,
            means_section,
            codes_section,
            unpredictable_section,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> Stream {
        Stream {
            header: Header {
                dims: Dims::d2(100, 200),
                data_min: -1.5,
                data_max: 2.5,
                rel_eb: 1e-3,
                block_size: 32,
                latent_dim: 16,
                policy: PredictorPolicy::Adaptive,
            },
            predictors: vec![
                BlockPredictor::Ae,
                BlockPredictor::Lorenzo,
                BlockPredictor::Mean,
                BlockPredictor::Ae,
                BlockPredictor::Lorenzo,
            ],
            latent_section: vec![1, 2, 3],
            means_section: vec![4, 5],
            codes_section: vec![6, 7, 8, 9],
            unpredictable_section: vec![],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = sample_stream();
        let bytes = s.to_bytes();
        let parsed = Stream::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn header_overhead_is_trivial() {
        // The paper calls the header "trivial space cost"; ours is tens of bytes.
        let s = sample_stream();
        let empty_payload = s.to_bytes().len()
            - s.latent_section.len()
            - s.means_section.len()
            - s.codes_section.len()
            - s.unpredictable_section.len();
        assert!(empty_payload < 64, "header is {empty_payload} bytes");
    }

    #[test]
    fn corrupt_magic_and_truncation_are_rejected() {
        let s = sample_stream();
        let mut bytes = s.to_bytes();
        assert!(Stream::from_bytes(&bytes[..10]).is_err());
        bytes[0] = b'X';
        assert!(Stream::from_bytes(&bytes).is_err());
    }

    #[test]
    fn all_predictor_policies_roundtrip() {
        for policy in [
            PredictorPolicy::Adaptive,
            PredictorPolicy::AeOnly,
            PredictorPolicy::LorenzoOnly,
        ] {
            let mut s = sample_stream();
            s.header.policy = policy;
            let parsed = Stream::from_bytes(&s.to_bytes()).unwrap();
            assert_eq!(parsed.header.policy, policy);
        }
    }

    #[test]
    fn predictor_flags_pack_two_bits_each() {
        let mut s = sample_stream();
        s.predictors = (0..17)
            .map(|i| match i % 3 {
                0 => BlockPredictor::Ae,
                1 => BlockPredictor::Lorenzo,
                _ => BlockPredictor::Mean,
            })
            .collect();
        let parsed = Stream::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(parsed.predictors, s.predictors);
    }
}
